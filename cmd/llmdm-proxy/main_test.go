package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero traces", []string{"-traces", "0"}, "-traces"},
		{"negative traces", []string{"-traces", "-5"}, "-traces"},
		{"zero events", []string{"-events", "0"}, "-events"},
		{"negative events", []string{"-events", "-1"}, "-events"},
		{"negative runtime interval", []string{"-runtime-interval", "-1s"}, "-runtime-interval"},
		{"zero batch max", []string{"-batch", "-batch-max", "0"}, "-batch-max"},
		{"negative batch max", []string{"-batch-max", "-3"}, "-batch-max"},
		{"threshold above one", []string{"-threshold", "1.5"}, "-threshold"},
		{"threshold negative", []string{"-threshold", "-0.1"}, "-threshold"},
		{"negative cache capacity", []string{"-cache-capacity", "-1"}, "-cache-capacity"},
		{"negative max concurrent", []string{"-max-concurrent", "-2"}, "-max-concurrent"},
		{"negative max queue", []string{"-max-queue", "-2"}, "-max-queue"},
		{"negative batch wait", []string{"-batch-wait", "-1ms"}, "-batch-wait"},
		{"zero tenants", []string{"-tenants", "0"}, "-tenants"},
		{"negative alert interval", []string{"-alert-interval", "-1s"}, "-alert-interval"},
		{"bad log level", []string{"-log-level", "loud"}, "-log-level"},
		{"unknown flag", []string{"-no-such-flag"}, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted invalid flags", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunServesWithValidFlags(t *testing.T) {
	// Swap the listener hook so run builds the full stack and "serves" it
	// without binding a port; drive one request through the handler to
	// prove the wiring is real.
	orig := listenAndServe
	defer func() { listenAndServe = orig }()

	var handler http.Handler
	listenAndServe = func(addr string, h http.Handler) error {
		handler = h
		return nil
	}
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-batch",
		"-max-concurrent", "8",
		"-tenants", "64",
		"-alert-interval", "0",
		"-runtime-interval", "0",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run with valid flags: %v", err)
	}
	if handler == nil {
		t.Fatal("run never reached the serve hook")
	}

	srv := httptest.NewServer(handler)
	defer srv.Close()
	for _, path := range []string{"/healthz", "/v1/tenants", "/v1/alerts", "/v1/slo"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestRunDisablesSubsystems(t *testing.T) {
	orig := listenAndServe
	defer func() { listenAndServe = orig }()
	var handler http.Handler
	listenAndServe = func(addr string, h http.Handler) error {
		handler = h
		return nil
	}
	if err := run([]string{"-no-tenants", "-no-alerts", "-no-slo", "-runtime-interval", "0"}, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()
	for _, path := range []string{"/v1/tenants", "/v1/alerts", "/v1/slo"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404 when disabled", path, resp.StatusCode)
		}
	}
}
