// Command llmdm-proxy serves the LLM proxy of the paper's Section III-B
// over HTTP: a semantic cache, in-flight deduplication, and the model
// cascade stacked in front of the simulated model family.
//
//	llmdm-proxy -addr :8080
//	curl -s localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","difficulty":0.3}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/proxy"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.62, "cascade confidence threshold")
	capacity := flag.Int("cache-capacity", 10000, "semantic cache capacity (0 = unbounded)")
	noCache := flag.Bool("no-cache", false, "disable the semantic cache")
	flag.Parse()

	p := proxy.New(proxy.Config{
		Threshold:     *threshold,
		CacheCapacity: *capacity,
		DisableCache:  *noCache,
	})
	log.Printf("llmdm-proxy listening on %s (cache=%t, cascade threshold=%.2f)", *addr, !*noCache, *threshold)
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}
