// Command llmdm-proxy serves the LLM proxy of the paper's Section III-B
// over HTTP: a semantic cache, in-flight deduplication, the model
// cascade, and an optional adaptive micro-batching scheduler stacked in
// front of the simulated model family — fully instrumented with the
// internal/obs metrics registry, request tracing, a structured
// lifecycle event log, per-class SLO burn-rate tracking, per-tenant
// attribution, a declarative alert engine and a Go runtime collector.
//
//	llmdm-proxy -addr :8080 -batch
//	curl -s localhost:8080/v1/complete -H 'X-LLMDM-Tenant: acme' -d '{"prompt":"...","gold":"...","difficulty":0.3}'
//	curl -s localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","priority":"batch"}'
//	curl -sN localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","stream":true}'   # SSE token stream
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/slo           # per-class SLO scorecard + burn rates
//	curl -s localhost:8080/v1/tenants       # per-tenant spend/latency attribution
//	curl -s localhost:8080/v1/alerts        # alert rule states
//	curl -s localhost:8080/metrics          # Prometheus text exposition
//	curl -s localhost:8080/debug/traces     # recent request span trees (JSON)
//	curl -s 'localhost:8080/debug/events?trace=t1f'  # one request's event story
//	curl -s 'localhost:8080/debug/events?tenant=acme&since=120'  # one tenant's story, cursored
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sched"
)

// listenAndServe is swapped out by tests so run can be exercised end to
// end without binding a socket.
var listenAndServe = http.ListenAndServe

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		log.Fatalf("llmdm-proxy: %v", err)
	}
}

// run parses and validates args, builds the proxy stack, and serves it.
// It is main minus the process exit, so tests can drive every flag
// combination as data.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("llmdm-proxy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	threshold := fs.Float64("threshold", 0.62, "cascade confidence threshold")
	exitThreshold := fs.Float64("exit-threshold", 0.35, "streamed early-exit confidence threshold (abort + escalate a tier mid-generation below it)")
	noEarlyExit := fs.Bool("no-early-exit", false, "disable mid-generation early exit on streamed requests")
	capacity := fs.Int("cache-capacity", 10000, "semantic cache capacity (0 = unbounded)")
	noCache := fs.Bool("no-cache", false, "disable the semantic cache")
	traces := fs.Int("traces", obs.DefaultTraceCapacity, "request traces retained for /debug/traces")
	events := fs.Int("events", obs.DefaultEventCapacity, "lifecycle events retained for /debug/events")
	logLevel := fs.String("log-level", "debug", "minimum event level recorded: debug, info, warn or error")
	maxConcurrent := fs.Int("max-concurrent", 0, "max requests served at once (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "callers queued for a slot before shedding")
	batch := fs.Bool("batch", false, "enable the adaptive micro-batching scheduler")
	batchMax := fs.Int("batch-max", sched.DefaultMaxBatch, "max requests per batch")
	batchWait := fs.Duration("batch-wait", 0, "max batch window, e.g. 4ms (0 = scheduler default)")
	noSLO := fs.Bool("no-slo", false, "disable per-class SLO tracking (/v1/slo)")
	tenantCap := fs.Int("tenants", obs.DefaultTenantCapacity, "tenants tracked individually before heavy-hitter eviction")
	noTenants := fs.Bool("no-tenants", false, "disable per-tenant attribution (/v1/tenants)")
	noAlerts := fs.Bool("no-alerts", false, "disable the alert engine (/v1/alerts)")
	alertInterval := fs.Duration("alert-interval", 15*time.Second, "background alert evaluation period (0 = evaluate only on /v1/alerts and /healthz reads)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	runtimeInterval := fs.Duration("runtime-interval", obs.DefaultRuntimeInterval, "Go runtime sampling period for go_* metrics (0 disables the collector)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate before building anything: a proxy constructed on nonsense
	// limits would only fail later and stranger.
	if *traces <= 0 {
		return fmt.Errorf("-traces must be > 0 (got %d): the trace ring cannot be empty", *traces)
	}
	if *events <= 0 {
		return fmt.Errorf("-events must be > 0 (got %d): the event ring cannot be empty", *events)
	}
	if *threshold < 0 || *threshold > 1 {
		return fmt.Errorf("-threshold must be in [0, 1] (got %g)", *threshold)
	}
	if *exitThreshold < 0 || *exitThreshold > 1 {
		return fmt.Errorf("-exit-threshold must be in [0, 1] (got %g)", *exitThreshold)
	}
	if *capacity < 0 {
		return fmt.Errorf("-cache-capacity must be >= 0 (got %d)", *capacity)
	}
	if *maxConcurrent < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0 (got %d)", *maxConcurrent)
	}
	if *maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0 (got %d)", *maxQueue)
	}
	if *batchMax < 1 {
		return fmt.Errorf("-batch-max must be >= 1 (got %d)", *batchMax)
	}
	if *batchWait < 0 {
		return fmt.Errorf("-batch-wait must be >= 0 (got %s)", *batchWait)
	}
	if *tenantCap <= 0 {
		return fmt.Errorf("-tenants must be > 0 (got %d)", *tenantCap)
	}
	if *alertInterval < 0 {
		return fmt.Errorf("-alert-interval must be >= 0 (got %s)", *alertInterval)
	}
	if *runtimeInterval < 0 {
		return fmt.Errorf("-runtime-interval must be >= 0 (got %s)", *runtimeInterval)
	}
	min, ok := obs.ParseLevel(*logLevel)
	if !ok {
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", *logLevel)
	}

	ring := obs.NewEventLog(*events)
	cfg := proxy.Config{
		Threshold:        *threshold,
		ExitThreshold:    *exitThreshold,
		DisableEarlyExit: *noEarlyExit,
		CacheCapacity:    *capacity,
		DisableCache:     *noCache,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		Tracer:           obs.NewTracer(*traces),
		Log:              obs.NewLogger(ring, min, obs.Default),
		DisableSLO:       *noSLO,
		TenantCapacity:   *tenantCap,
		DisableTenants:   *noTenants,
		DisableAlerts:    *noAlerts,
		EnablePprof:      *pprofOn,
	}
	if *batch {
		cfg.Scheduler = &sched.Config{
			MaxBatch: *batchMax,
			MaxWait:  *batchWait,
		}
	}
	if *runtimeInterval > 0 {
		stop := obs.StartRuntimeCollector(obs.Default, *runtimeInterval)
		defer stop()
	}
	p := proxy.New(cfg)
	defer p.Close()
	if a := p.Alerts(); a != nil && *alertInterval > 0 {
		stop := a.Start(*alertInterval)
		defer stop()
	}
	log.Printf("llmdm-proxy listening on %s (cache=%t, cascade threshold=%.2f, stream early-exit=%t@%.2f, batching=%t, trace ring=%d, event ring=%d, slo=%t, tenants=%t, alerts=%t, pprof=%t)",
		*addr, !*noCache, *threshold, !*noEarlyExit, *exitThreshold, *batch, *traces, *events, !*noSLO, !*noTenants, !*noAlerts, *pprofOn)
	log.Printf("endpoints: POST /v1/complete · GET /v1/stats /v1/slo /v1/tenants /v1/alerts /metrics /debug/traces /debug/events /healthz")
	return listenAndServe(*addr, p.Handler())
}
