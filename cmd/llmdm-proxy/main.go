// Command llmdm-proxy serves the LLM proxy of the paper's Section III-B
// over HTTP: a semantic cache, in-flight deduplication, and the model
// cascade stacked in front of the simulated model family — fully
// instrumented with the internal/obs metrics registry and request tracing.
//
//	llmdm-proxy -addr :8080
//	curl -s localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","difficulty":0.3}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics        # Prometheus text exposition
//	curl -s localhost:8080/debug/traces   # recent request span trees (JSON)
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/obs"
	"repro/internal/proxy"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.62, "cascade confidence threshold")
	capacity := flag.Int("cache-capacity", 10000, "semantic cache capacity (0 = unbounded)")
	noCache := flag.Bool("no-cache", false, "disable the semantic cache")
	traces := flag.Int("traces", obs.DefaultTraceCapacity, "request traces retained for /debug/traces")
	flag.Parse()

	p := proxy.New(proxy.Config{
		Threshold:     *threshold,
		CacheCapacity: *capacity,
		DisableCache:  *noCache,
		Tracer:        obs.NewTracer(*traces),
	})
	log.Printf("llmdm-proxy listening on %s (cache=%t, cascade threshold=%.2f, trace ring=%d)",
		*addr, !*noCache, *threshold, *traces)
	log.Printf("endpoints: POST /v1/complete · GET /v1/stats /metrics /debug/traces /healthz")
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}
