// Command llmdm-proxy serves the LLM proxy of the paper's Section III-B
// over HTTP: a semantic cache, in-flight deduplication, the model
// cascade, and an optional adaptive micro-batching scheduler stacked in
// front of the simulated model family — fully instrumented with the
// internal/obs metrics registry, request tracing, a structured
// lifecycle event log, per-class SLO burn-rate tracking and a Go
// runtime collector.
//
//	llmdm-proxy -addr :8080 -batch
//	curl -s localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","difficulty":0.3}'
//	curl -s localhost:8080/v1/complete -d '{"prompt":"...","gold":"...","priority":"batch"}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/slo           # per-class SLO scorecard + burn rates
//	curl -s localhost:8080/metrics          # Prometheus text exposition
//	curl -s localhost:8080/debug/traces     # recent request span trees (JSON)
//	curl -s 'localhost:8080/debug/events?trace=t1f'  # one request's event story
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sched"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	threshold := flag.Float64("threshold", 0.62, "cascade confidence threshold")
	capacity := flag.Int("cache-capacity", 10000, "semantic cache capacity (0 = unbounded)")
	noCache := flag.Bool("no-cache", false, "disable the semantic cache")
	traces := flag.Int("traces", obs.DefaultTraceCapacity, "request traces retained for /debug/traces")
	events := flag.Int("events", obs.DefaultEventCapacity, "lifecycle events retained for /debug/events")
	logLevel := flag.String("log-level", "debug", "minimum event level recorded: debug, info, warn or error")
	maxConcurrent := flag.Int("max-concurrent", 0, "max requests served at once (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "callers queued for a slot before shedding")
	batch := flag.Bool("batch", false, "enable the adaptive micro-batching scheduler")
	batchMax := flag.Int("batch-max", 0, "max requests per batch (0 = scheduler default)")
	batchWait := flag.Duration("batch-wait", 0, "max batch window, e.g. 4ms (0 = scheduler default)")
	noSLO := flag.Bool("no-slo", false, "disable per-class SLO tracking (/v1/slo)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	runtimeInterval := flag.Duration("runtime-interval", obs.DefaultRuntimeInterval, "Go runtime sampling period for go_* metrics (0 disables the collector)")
	flag.Parse()

	min, ok := obs.ParseLevel(*logLevel)
	if !ok {
		log.Fatalf("llmdm-proxy: unknown -log-level %q", *logLevel)
	}
	ring := obs.NewEventLog(*events)
	cfg := proxy.Config{
		Threshold:     *threshold,
		CacheCapacity: *capacity,
		DisableCache:  *noCache,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Tracer:        obs.NewTracer(*traces),
		Log:           obs.NewLogger(ring, min, obs.Default),
		DisableSLO:    *noSLO,
		EnablePprof:   *pprofOn,
	}
	if *batch {
		cfg.Scheduler = &sched.Config{
			MaxBatch: *batchMax,
			MaxWait:  *batchWait,
		}
	}
	if *runtimeInterval > 0 {
		stop := obs.StartRuntimeCollector(obs.Default, *runtimeInterval)
		defer stop()
	}
	p := proxy.New(cfg)
	defer p.Close()
	log.Printf("llmdm-proxy listening on %s (cache=%t, cascade threshold=%.2f, batching=%t, trace ring=%d, event ring=%d, slo=%t, pprof=%t)",
		*addr, !*noCache, *threshold, *batch, *traces, *events, !*noSLO, *pprofOn)
	log.Printf("endpoints: POST /v1/complete · GET /v1/stats /v1/slo /metrics /debug/traces /debug/events /healthz")
	log.Fatal(http.ListenAndServe(*addr, p.Handler()))
}
