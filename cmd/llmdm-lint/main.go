// Command llmdm-lint runs the project's static-analysis suite — ctxflow,
// lockscope, billmeter, gospawn, metricname (see internal/analysis) —
// over the module.
//
// Standalone (what `make lint` runs):
//
//	llmdm-lint ./...                  # whole module
//	llmdm-lint ./internal/proxy/...   # one subtree
//	llmdm-lint -only ctxflow,gospawn ./...
//	llmdm-lint -list                  # print the analyzers and rules
//
// Diagnostics print as file:line:col: [analyzer] message, and the exit
// status is 1 when any are found — so CI fails on a new violation.
//
// Vettool compatibility: the binary also speaks enough of the `go vet
// -vettool` unit-checker protocol (-V=full, a single *.cfg argument) to
// run under `go vet -vettool=$(which llmdm-lint) ./...`. Standalone mode
// is canonical; the vettool path analyzes the same files per package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	version := flag.String("V", "", "vettool version handshake (-V=full)")
	flagDefs := flag.Bool("flags", false, "print flag definitions as JSON (go vet handshake)")
	flag.Parse()

	if *version != "" {
		// The go vet driver parses `name version x` (and for devel
		// builds requires a trailing buildID=); it caches on this line,
		// so any stable version string works.
		fmt.Printf("llmdm-lint version llmdm-suite-v1\n")
		return
	}
	if *flagDefs {
		// go vet asks which tool flags it may forward; we expose none.
		fmt.Println("[]")
		return
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers))
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := analysis.Load(root, patterns)
	if err != nil {
		fatalf("%v", err)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers, false)
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "llmdm-lint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit-checker config we consume.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

func runVettool(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// The driver requires the facts file regardless of findings.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("%v", err)
		}
	}
	// go vet hands the tool every dependency unit, stdlib included; the
	// suite's rules are for this module only.
	if cfg.ImportPath != "repro" && !strings.HasPrefix(cfg.ImportPath, "repro/") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := analysis.LoadFiles(files, cfg.ImportPath)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers, false)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "llmdm-lint: "+format+"\n", args...)
	os.Exit(1)
}
