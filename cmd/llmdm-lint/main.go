// Command llmdm-lint runs the project's static-analysis suite — the
// five per-function analyzers (ctxflow, lockscope, billmeter, gospawn,
// metricname) plus the three interprocedural ones (lockorder,
// reslifecycle, goleak) built on the call-graph/summary layer in
// internal/analysis — over the module.
//
// Standalone (what `make lint` runs):
//
//	llmdm-lint ./...                  # whole module, one shared Program
//	llmdm-lint ./internal/proxy/...   # one subtree
//	llmdm-lint -only ctxflow,gospawn ./...
//	llmdm-lint -list                  # print the analyzers and rules
//	llmdm-lint -json ./...            # machine-readable findings
//	llmdm-lint -waivers ./...         # audit every //llmdm: annotation
//
// Diagnostics print as file:line:col: [analyzer] message. Exit codes:
//
//	0  clean (no findings; for -waivers, no reasonless waivers)
//	1  findings (or reasonless waivers under -waivers)
//	2  load error (bad pattern, unparsable source, no go.mod)
//
// -json emits one object over stdout: {"schema":"llmdm-lint/1",
// "findings":[{file,line,col,analyzer,message,waived}...],"count":N}
// where count is the number of NON-waived findings (the exit-1 set);
// waived findings are included so CI can annotate accepted sites.
//
// -waivers lists every //llmdm:allow and //llmdm:detached site with its
// reason and exits 1 if any waiver lacks one: annotations are grep-able
// audit points, and a reasonless waiver is an unreviewable one.
//
// Vettool compatibility: the binary also speaks enough of the `go vet
// -vettool` unit-checker protocol (-V=full, a single *.cfg argument) to
// run under `go vet -vettool=$(which llmdm-lint) ./...`. Standalone mode
// is canonical (and is the only mode with cross-package summaries); the
// vettool path analyzes each package in isolation and exits 2 on
// findings per that protocol's convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON findings")
	waivers := flag.Bool("waivers", false, "audit //llmdm: annotation sites; exit 1 on reasonless waivers")
	version := flag.String("V", "", "vettool version handshake (-V=full)")
	flagDefs := flag.Bool("flags", false, "print flag definitions as JSON (go vet handshake)")
	flag.Parse()

	if *version != "" {
		// The go vet driver parses `name version x` (and for devel
		// builds requires a trailing buildID=); it caches on this line,
		// so any stable version string works.
		fmt.Printf("llmdm-lint version llmdm-suite-v1\n")
		return
	}
	if *flagDefs {
		// go vet asks which tool flags it may forward; we expose none.
		fmt.Println("[]")
		return
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0], analyzers))
	}
	if *waivers {
		os.Exit(runWaivers(os.Stdout, args))
	}
	os.Exit(runStandalone(os.Stdout, args, analyzers, *jsonOut))
}

// loadProgram loads the module packages selected by patterns into one
// shared Program. Exit code 2 on any load failure.
func loadProgram(patterns []string) (*analysis.Program, string, error) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return nil, "", err
	}
	pkgs, err := analysis.Load(root, patterns)
	if err != nil {
		return nil, "", err
	}
	return analysis.BuildProgram(pkgs), root, nil
}

// jsonFinding is one diagnostic in the llmdm-lint/1 schema.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Schema   string        `json:"schema"`
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

func runStandalone(w io.Writer, patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	prog, root, err := loadProgram(patterns)
	if err != nil {
		return loadError(err)
	}
	return runReport(w, prog, root, analyzers, jsonOut)
}

// runReport renders prog's findings to w (text or llmdm-lint/1 JSON)
// and returns the process exit code. Split from runStandalone so tests
// can drive it with a synthetic program.
func runReport(w io.Writer, prog *analysis.Program, root string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	// Two passes over the shared program: the annotation-honoring run
	// is the finding set; the ignoring run additionally surfaces waived
	// sites so -json can report them as accepted.
	active := map[string]bool{}
	var activeDiags []analysis.Diagnostic
	for _, pkg := range prog.Pkgs {
		diags, err := analysis.RunAnalyzersProg(prog, pkg, analyzers, false)
		if err != nil {
			return loadError(err)
		}
		for _, d := range diags {
			active[diagKey(d)] = true
		}
		activeDiags = append(activeDiags, diags...)
	}

	if !jsonOut {
		for _, d := range activeDiags {
			fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if len(activeDiags) > 0 {
			fmt.Fprintf(os.Stderr, "llmdm-lint: %d finding(s)\n", len(activeDiags))
			return 1
		}
		return 0
	}

	report := jsonReport{Schema: "llmdm-lint/1", Findings: []jsonFinding{}}
	for _, pkg := range prog.Pkgs {
		diags, err := analysis.RunAnalyzersProg(prog, pkg, analyzers, true)
		if err != nil {
			return loadError(err)
		}
		for _, d := range diags {
			waived := !active[diagKey(d)]
			if !waived {
				report.Count++
			}
			report.Findings = append(report.Findings, jsonFinding{
				File:     relPath(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Waived:   waived,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return loadError(err)
	}
	if report.Count > 0 {
		return 1
	}
	return 0
}

// runWaivers implements the -waivers audit.
func runWaivers(w io.Writer, patterns []string) int {
	prog, root, err := loadProgram(patterns)
	if err != nil {
		return loadError(err)
	}
	return runWaiverReport(w, prog, root)
}

// runWaiverReport renders prog's annotation sites and returns the exit
// code (1 when any waiver lacks a reason).
func runWaiverReport(w io.Writer, prog *analysis.Program, root string) int {
	reasonless := 0
	for _, wv := range prog.Waivers() {
		name := wv.Verb
		if wv.Analyzer != "" {
			name += " " + wv.Analyzer
		}
		reason := wv.Reason
		if reason == "" {
			reason = "(no reason)"
			reasonless++
		}
		fmt.Fprintf(w, "%s:%d: [%s] %s\n", relPath(root, wv.Pos.Filename), wv.Pos.Line, name, reason)
	}
	if reasonless > 0 {
		fmt.Fprintf(os.Stderr, "llmdm-lint: %d waiver(s) without a reason — every //llmdm: annotation must say why\n", reasonless)
		return 1
	}
	return 0
}

func diagKey(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

func relPath(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

func loadError(err error) int {
	fmt.Fprintf(os.Stderr, "llmdm-lint: %v\n", err)
	return 2
}

// vetConfig is the subset of the go vet unit-checker config we consume.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

func runVettool(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// The driver requires the facts file regardless of findings.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("%v", err)
		}
	}
	// go vet hands the tool every dependency unit, stdlib included; the
	// suite's rules are for this module only.
	if cfg.ImportPath != "repro" && !strings.HasPrefix(cfg.ImportPath, "repro/") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := analysis.LoadFiles(files, cfg.ImportPath)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers, false)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "llmdm-lint: "+format+"\n", args...)
	os.Exit(2)
}
