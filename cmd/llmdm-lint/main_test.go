package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// injectProgram writes src as lib.go in a temp dir and builds a
// one-package Program over it, returning the program and its root so
// tests can drive runReport/runWaiverReport with fully known positions.
func injectProgram(t *testing.T, src string) (*analysis.Program, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFiles([]string{path}, "repro/internal/tmplib")
	if err != nil {
		t.Fatal(err)
	}
	return analysis.BuildProgram([]*analysis.Package{pkg}), dir
}

// TestJSONGolden pins the llmdm-lint/1 schema byte for byte: field
// names, ordering, the waived flag on annotated sites, and count being
// the non-waived subset. A schema change must change this golden.
func TestJSONGolden(t *testing.T) {
	prog, root := injectProgram(t, `package tmplib

import "context"

func fresh() context.Context {
	return context.Background()
}

func deliberate() context.Context {
	//llmdm:detached fixture: process-scoped warm-up root
	return context.TODO()
}
`)
	var buf bytes.Buffer
	code := runReport(&buf, prog, root, suite.All(), true)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one non-waived finding)", code)
	}
	const golden = `{
  "schema": "llmdm-lint/1",
  "findings": [
    {
      "file": "lib.go",
      "line": 6,
      "col": 9,
      "analyzer": "ctxflow",
      "message": "context.Background() in library code: thread ctx from the caller, or annotate a deliberate detached root with //llmdm:detached",
      "waived": false
    },
    {
      "file": "lib.go",
      "line": 11,
      "col": 9,
      "analyzer": "ctxflow",
      "message": "context.TODO() in library code: thread ctx from the caller, or annotate a deliberate detached root with //llmdm:detached",
      "waived": true
    }
  ],
  "count": 1
}
`
	if got := buf.String(); got != golden {
		t.Errorf("-json output drifted from the llmdm-lint/1 golden\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// The document must round-trip through the published struct shape.
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("golden output does not unmarshal: %v", err)
	}
	if report.Schema != "llmdm-lint/1" || report.Count != 1 || len(report.Findings) != 2 {
		t.Errorf("round-trip mismatch: %+v", report)
	}
}

// TestJSONCleanTree: an empty finding set still emits findings as [],
// not null, and exits 0 — CI consumers parse the same shape either way.
func TestJSONCleanTree(t *testing.T) {
	prog, root := injectProgram(t, `package tmplib

func add(a, b int) int { return a + b }
`)
	var buf bytes.Buffer
	if code := runReport(&buf, prog, root, suite.All(), true); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("clean report should serialize findings as [], got:\n%s", buf.String())
	}
}

// TestTextOutput pins the human-readable diagnostic line format and the
// 0/1 exit split.
func TestTextOutput(t *testing.T) {
	prog, root := injectProgram(t, `package tmplib

import "context"

func fresh() context.Context {
	return context.Background()
}
`)
	var buf bytes.Buffer
	if code := runReport(&buf, prog, root, suite.All(), false); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	want := "lib.go:6:9: [ctxflow] context.Background() in library code"
	if !strings.HasPrefix(buf.String(), want) {
		t.Errorf("text output = %q, want prefix %q", buf.String(), want)
	}
}

// TestLoadErrorExitCode: an unresolvable pattern is exit 2, distinct
// from "findings" so CI can tell a broken invocation from a dirty tree.
func TestLoadErrorExitCode(t *testing.T) {
	var buf bytes.Buffer
	if code := runStandalone(&buf, []string{"./no-such-subtree"}, suite.All(), false); code != 2 {
		t.Errorf("exit code for bad pattern = %d, want 2", code)
	}
}

// TestWaiverAudit: -waivers lists each annotation with its reason and
// fails only when one has none.
func TestWaiverAudit(t *testing.T) {
	prog, root := injectProgram(t, `package tmplib

import "sync"

func locked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	//llmdm:allow lockscope bounded by the test harness
	ch <- 1
}
`)
	var buf bytes.Buffer
	if code := runWaiverReport(&buf, prog, root); code != 0 {
		t.Fatalf("exit code = %d, want 0 (waiver has a reason); output:\n%s", code, buf.String())
	}
	want := "lib.go:8: [allow lockscope] bounded by the test harness\n"
	if buf.String() != want {
		t.Errorf("waiver listing = %q, want %q", buf.String(), want)
	}

	prog, root = injectProgram(t, `package tmplib

import "sync"

func locked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	//llmdm:allow lockscope
	ch <- 1
}
`)
	buf.Reset()
	if code := runWaiverReport(&buf, prog, root); code != 1 {
		t.Fatalf("exit code = %d, want 1 (reasonless waiver); output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "(no reason)") {
		t.Errorf("reasonless waiver should print (no reason), got %q", buf.String())
	}
}

// TestModuleTreeIsCleanAndAudited runs the real CLI paths over the
// whole module: the standalone run must be clean (exit 0, no output)
// and the waiver audit must pass (every annotation carries a reason).
func TestModuleTreeIsCleanAndAudited(t *testing.T) {
	var buf bytes.Buffer
	if code := runStandalone(&buf, []string{"./..."}, suite.All(), false); code != 0 {
		t.Errorf("llmdm-lint ./... = exit %d, want 0; findings:\n%s", code, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("clean tree should print nothing, got:\n%s", buf.String())
	}

	buf.Reset()
	if code := runWaivers(&buf, []string{"./..."}); code != 0 {
		t.Errorf("llmdm-lint -waivers ./... = exit %d, want 0; output:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "[allow gospawn]") {
		t.Errorf("waiver audit should list the obs.Go spawn waiver, got:\n%s", buf.String())
	}
}
