// Command llmdm-bench regenerates the paper's evaluation: every table and
// figure, printed in the paper's row format.
//
// Usage:
//
//	llmdm-bench              # run everything
//	llmdm-bench -exp table2  # run one experiment
//	llmdm-bench -exp chaos   # fault injection: availability/spend vs failure rate
//	llmdm-bench -list        # list experiment IDs
//	llmdm-bench -telemetry   # append each experiment's telemetry delta
//
// With -telemetry, the internal/obs default registry is snapshotted around
// each experiment and the delta — model calls, tokens, spend, cache hits,
// cascade escalations, decomposition savings — is printed after the
// experiment's table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	llmdm "repro"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (table1..table3, fig1..fig7, ab-*, chaos), 'all' (paper artifacts), or 'ablations'")
	format := flag.String("format", "table", "output format: table or csv")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	telemetry := flag.Bool("telemetry", false, "print a per-experiment telemetry summary (obs registry delta)")
	flag.Parse()

	if *list {
		for _, id := range llmdm.ExperimentIDs() {
			fmt.Println(id)
		}
		for _, id := range llmdm.AblationIDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch *exp {
	case "all":
		ids = llmdm.ExperimentIDs()
	case "ablations":
		ids = llmdm.AblationIDs()
	default:
		ids = []string{*exp}
	}
	// Ctrl-C cancels the context and the running experiment aborts at its
	// next model call or sweep cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, id := range ids {
		before := obs.Default.Snapshot()
		rep, err := llmdm.RunExperiment(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmdm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		default:
			fmt.Println(rep.Format())
		}
		if *telemetry {
			delta := obs.Default.Snapshot().Delta(before)
			fmt.Printf("telemetry (%s):\n%s\n", id, delta.Summary("  "))
		}
	}
}
