// Command llmdm-bench regenerates the paper's evaluation: every table and
// figure, printed in the paper's row format.
//
// Usage:
//
//	llmdm-bench              # run everything
//	llmdm-bench -exp table2  # run one experiment
//	llmdm-bench -exp chaos   # fault injection: availability/spend vs failure rate
//	llmdm-bench -list        # list experiment IDs
//	llmdm-bench -telemetry   # append each experiment's telemetry delta
//
//	llmdm-bench -bench-json [-bench-dir DIR]       # write BENCH_*.json artifacts
//	llmdm-bench -bench-compare OLD.json NEW.json   # exit 1 on large regressions
//
// With -telemetry, the internal/obs default registry is snapshotted around
// each experiment and the delta — model calls, tokens, spend, cache hits,
// cascade escalations, decomposition savings — is printed after the
// experiment's table.
//
// -bench-json runs the internal/perf suite (serving path + kernels)
// through testing.Benchmark and writes schema-stable BENCH_serving.json
// and BENCH_kernels.json — the repository's recorded perf trajectory.
// -bench-compare diffs two artifacts of the same area and exits nonzero
// when ns/op regresses by more than -bench-ratio (or a benchmark
// disappears); -bench-warn downgrades that to a warning for CI smoke
// jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	llmdm "repro"
	"repro/internal/obs"
	"repro/internal/perf"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (table1..table3, fig1..fig7, ab-*, chaos), 'all' (paper artifacts), or 'ablations'")
	format := flag.String("format", "table", "output format: table or csv")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	telemetry := flag.Bool("telemetry", false, "print a per-experiment telemetry summary (obs registry delta)")
	benchJSON := flag.Bool("bench-json", false, "run the perf suite and write BENCH_serving.json / BENCH_kernels.json")
	benchDir := flag.String("bench-dir", ".", "directory for -bench-json artifacts")
	benchCompare := flag.Bool("bench-compare", false, "compare two bench artifacts: -bench-compare OLD.json NEW.json")
	benchWarn := flag.Bool("bench-warn", false, "with -bench-compare, report regressions but exit 0")
	benchRatio := flag.Float64("bench-ratio", 2.5, "ns/op growth (and derived-metric shrink) factor that counts as a regression")
	flag.Parse()

	if *benchCompare {
		os.Exit(runBenchCompare(flag.Args(), *benchRatio, *benchWarn))
	}
	if *benchJSON {
		// Ctrl-C aborts the suite between model calls.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runBenchJSON(ctx, *benchDir); err != nil {
			fmt.Fprintf(os.Stderr, "llmdm-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range llmdm.ExperimentIDs() {
			fmt.Println(id)
		}
		for _, id := range llmdm.AblationIDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch *exp {
	case "all":
		ids = llmdm.ExperimentIDs()
	case "ablations":
		ids = llmdm.AblationIDs()
	default:
		ids = []string{*exp}
	}
	// Ctrl-C cancels the context and the running experiment aborts at its
	// next model call or sweep cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, id := range ids {
		before := obs.Default.Snapshot()
		rep, err := llmdm.RunExperiment(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmdm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		default:
			fmt.Println(rep.Format())
		}
		if *telemetry {
			delta := obs.Default.Snapshot().Delta(before)
			fmt.Printf("telemetry (%s):\n%s\n", id, delta.Summary("  "))
		}
	}
}

// runBenchJSON runs both perf areas and writes one artifact per area.
func runBenchJSON(ctx context.Context, dir string) error {
	serving := perf.Run(perf.AreaServing, perf.Serving(ctx))
	win, err := perf.ThroughputWin(ctx)
	if err != nil {
		return err
	}
	serving.Derived = map[string]float64{"sched_throughput_win": win}
	path, err := perf.WriteReport(dir, serving)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, sched_throughput_win %.2fx)\n", path, len(serving.Benchmarks), win)

	kernels := perf.Run(perf.AreaKernels, perf.Kernels())
	path, err = perf.WriteReport(dir, kernels)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(kernels.Benchmarks))
	return nil
}

// runBenchCompare diffs two artifacts, printing findings; the exit code
// is 1 on regressions unless warnOnly.
func runBenchCompare(args []string, maxRatio float64, warnOnly bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "llmdm-bench: -bench-compare needs exactly two artifact paths: OLD.json NEW.json")
		return 2
	}
	oldRep, err := perf.ReadReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "llmdm-bench: %v\n", err)
		return 2
	}
	newRep, err := perf.ReadReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "llmdm-bench: %v\n", err)
		return 2
	}
	if oldRep.Area != newRep.Area {
		fmt.Fprintf(os.Stderr, "llmdm-bench: comparing area %q against %q\n", oldRep.Area, newRep.Area)
		return 2
	}
	regs := perf.Compare(oldRep, newRep, maxRatio)
	if len(regs) == 0 {
		fmt.Printf("%s: no regressions beyond %.1fx across %d benchmarks\n", newRep.Area, maxRatio, len(newRep.Benchmarks))
		return 0
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	if warnOnly {
		fmt.Printf("%s: %d regression(s) beyond %.1fx (warn-only mode)\n", newRep.Area, len(regs), maxRatio)
		return 0
	}
	return 1
}
