// Command llmdm-bench regenerates the paper's evaluation: every table and
// figure, printed in the paper's row format.
//
// Usage:
//
//	llmdm-bench              # run everything
//	llmdm-bench -exp table2  # run one experiment
//	llmdm-bench -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	llmdm "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (table1..table3, fig1..fig7, ab-*), 'all' (paper artifacts), or 'ablations'")
	format := flag.String("format", "table", "output format: table or csv")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range llmdm.ExperimentIDs() {
			fmt.Println(id)
		}
		for _, id := range llmdm.AblationIDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch *exp {
	case "all":
		ids = llmdm.ExperimentIDs()
	case "ablations":
		ids = llmdm.AblationIDs()
	default:
		ids = []string{*exp}
	}
	for _, id := range ids {
		rep, err := llmdm.RunExperiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmdm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(rep.CSV())
		default:
			fmt.Println(rep.Format())
		}
	}
}
