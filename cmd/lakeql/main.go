// Command lakeql explores a demo multi-modal data lake: semantic search
// with optional attribute filtering, plus SQL over the LLM-backed virtual
// people table ("LLM as databases").
//
// Usage:
//
//	lakeql "where was Mei Tanaka born"
//	lakeql -filter entity_type=professor "Could Prof. Michael Jordan play basketball"
//	lakeql -sql "SELECT name, born_country FROM people WHERE field = 'databases'"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	llmdm "repro"
	"repro/internal/core/explore"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/vector"
)

func main() {
	filter := flag.String("filter", "", "attribute filter key=value")
	order := flag.String("order", "adaptive", "hybrid order: attribute-first, vector-first, adaptive")
	sqlQuery := flag.String("sql", "", "run SQL against the LLM-backed virtual people table instead of searching")
	k := flag.Int("k", 5, "results to return")
	seed := flag.Int64("seed", 1, "demo knowledge base seed")
	flag.Parse()

	kb := llmdm.DemoKnowledgeBase(*seed)

	if *sqlQuery != "" {
		db := explore.NewLLMDB(llm.DefaultFamily().Largest(), kb)
		res, err := db.Query(context.Background(), *sqlQuery)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		calls, cost := db.Usage()
		fmt.Printf("(%d rows; %d LLM cell fetches, %s)\n", res.NumRows(), calls, cost)
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lakeql [flags] \"query\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	query := strings.Join(flag.Args(), " ")

	lake := explore.NewLake(embed.New(embed.DefaultDim))
	for i, f := range kb.Facts() {
		kind := "city"
		if i >= len(kb.Cities) && i < len(kb.Cities)+len(kb.Orgs) {
			kind = "organization"
		} else if i >= len(kb.Cities)+len(kb.Orgs) {
			kind = "person"
		}
		lake.AddText("fact", f, map[string]string{"entity_type": kind})
	}

	var pred vector.Predicate
	if *filter != "" {
		parts := strings.SplitN(*filter, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -filter %q, want key=value", *filter))
		}
		pred = vector.AttrEquals(parts[0], parts[1])
	}
	var ord vector.FilterOrder
	switch *order {
	case "attribute-first":
		ord = vector.AttributeFirst
	case "vector-first":
		ord = vector.VectorFirst
	case "adaptive":
		ord = vector.Adaptive
	default:
		fatal(fmt.Errorf("unknown -order %q", *order))
	}

	for _, hit := range lake.HybridSearch(query, *k, pred, ord) {
		fmt.Println(hit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lakeql:", err)
	os.Exit(1)
}
