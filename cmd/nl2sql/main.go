// Command nl2sql translates natural-language questions over the demo
// concert/stadium schema into SQL and executes them.
//
// Usage:
//
//	nl2sql "Show the names of stadiums that had concerts in 2014?"
//	nl2sql -model gpt-4 -strategy decompose "What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	llmdm "repro"
	"repro/internal/core/qopt"
)

func main() {
	model := flag.String("model", llmdm.ModelLarge, "model tier: babbage-002, gpt-3.5-turbo, gpt-4")
	strategy := flag.String("strategy", "origin", "translation strategy: origin or decompose")
	seed := flag.Int64("seed", 1, "demo database seed")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nl2sql [flags] \"question\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	question := strings.Join(flag.Args(), " ")

	client := llmdm.NewClient()
	planner, err := client.Planner(*model)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	var results []qopt.Translated
	switch *strategy {
	case "origin":
		results, _, err = planner.RunOrigin(ctx, []string{question})
	case "decompose":
		results, _, err = planner.RunDecomposed(ctx, []string{question})
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if err != nil {
		fatal(err)
	}

	sql := results[0].SQL
	fmt.Println("SQL:", sql)

	db := llmdm.ConcertDB(*seed)
	res, err := db.Exec(sql)
	if err != nil {
		fatal(fmt.Errorf("executing generated SQL: %w", err))
	}
	fmt.Println()
	fmt.Print(res.Format())
	fmt.Printf("(%d rows, spent %s)\n", res.NumRows(), client.Spend())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nl2sql:", err)
	os.Exit(1)
}
