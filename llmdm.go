// Package llmdm is an offline, stdlib-only reproduction of "Applications
// and Challenges for Large Language Models: From Data Management
// Perspective" (Zhang et al., ICDE 2024).
//
// It packages the paper's four application categories — data generation,
// data transformation, data integration and data exploration — and its five
// challenge remedies — prompt optimization, query optimization (cascade,
// decomposition, combination), semantic caching, privacy-preserving
// training and output validation — on top of a simulated LLM family, a real
// in-memory SQL engine and a real vector store. See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for the paper-vs-measured results.
//
// The facade exposes the pieces most users need: a Client bundling the
// model family with the application toolkits, the end-to-end Pipeline of
// the paper's Figure 1, and the experiment harness regenerating every table
// and figure.
package llmdm

import (
	"context"
	"fmt"

	"repro/internal/core/cascade"
	"repro/internal/core/datagen"
	"repro/internal/core/explore"
	"repro/internal/core/integrate"
	"repro/internal/core/qopt"
	"repro/internal/core/semcache"
	"repro/internal/core/transform"
	"repro/internal/embed"
	"repro/internal/exper"
	"repro/internal/llm"
	"repro/internal/proxy"
	"repro/internal/sqlkit"
	"repro/internal/token"
	"repro/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Aliases re-exporting the core vocabulary so downstream code can work
// entirely through this package.
type (
	// Report is one regenerated experiment table.
	Report = exper.Report
	// Model is a simulated LLM.
	Model = llm.Model
	// Cost is an amount of money in micro-dollars.
	Cost = token.Cost
	// DB is the in-memory SQL engine.
	DB = sqlkit.DB
)

// Model tier names, mirroring the paper's Table I.
const (
	ModelSmall  = llm.NameSmall
	ModelMedium = llm.NameMedium
	ModelLarge  = llm.NameLarge
)

// Client bundles the model family with the application toolkits.
type Client struct {
	family llm.Family
	emb    *embed.Embedder
}

// NewClient returns a Client over the default three-tier model family.
func NewClient() *Client {
	return &Client{family: llm.DefaultFamily(), emb: embed.New(embed.DefaultDim)}
}

// Model returns the named tier (ModelSmall, ModelMedium, ModelLarge).
func (c *Client) Model(name string) (Model, error) {
	m := c.family.ByName(name)
	if m == nil {
		return nil, fmt.Errorf("llmdm: unknown model %q", name)
	}
	return m, nil
}

// Spend reports the total spend across all tiers since the last reset.
func (c *Client) Spend() Cost { return c.family.TotalSpend() }

// ResetSpend zeroes the usage meters.
func (c *Client) ResetSpend() { c.family.ResetMeters() }

// Cascade returns an LLM cascade over the whole family with the given
// confidence threshold (paper Figure 6).
func (c *Client) Cascade(threshold float64) *cascade.Cascade {
	models := make([]llm.Model, len(c.family))
	for i, m := range c.family {
		models[i] = m
	}
	return cascade.New(cascade.Threshold{Tau: threshold}, models...)
}

// Translator returns the NL2SQL translator on the named tier.
func (c *Client) Translator(model string) (*transform.Translator, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return transform.NewTranslator(m), nil
}

// Planner returns the batched NL2SQL query optimizer (decomposition +
// combination, paper Table II) on the named tier.
func (c *Client) Planner(model string) (*qopt.Planner, error) {
	tr, err := c.Translator(model)
	if err != nil {
		return nil, err
	}
	return qopt.NewPlanner(tr), nil
}

// SemanticCache returns a semantic LLM cache (paper Table III).
func (c *Client) SemanticCache(capacity int, threshold float64) *semcache.Cache {
	return semcache.New(semcache.Config{
		Embedder:  c.emb,
		Capacity:  capacity,
		Threshold: threshold,
		Policy:    semcache.Weighted,
	})
}

// Lake returns an empty multi-modal data lake (paper Section II-D).
func (c *Client) Lake() *explore.Lake { return explore.NewLake(c.emb) }

// Proxy returns the serving proxy of the paper's Section III-B — semantic
// cache, in-flight deduplication and the cascade stacked in front of this
// client's model family. Serve it with net/http via its Handler method.
func (c *Client) Proxy(cacheCapacity int, cascadeThreshold float64) *proxy.Proxy {
	models := make([]llm.Model, len(c.family))
	for i, m := range c.family {
		models[i] = m
	}
	return proxy.New(proxy.Config{
		Models:        models,
		Threshold:     cascadeThreshold,
		CacheCapacity: cacheCapacity,
	})
}

// SQLGenerator returns the constraint-aware SQL generator over db (paper
// Figure 2).
func (c *Client) SQLGenerator(db *DB, model string, seed int64) (*datagen.Generator, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return datagen.NewGenerator(db, m, seed), nil
}

// Resolver returns an entity resolver on the named tier (paper Section
// II-C).
func (c *Client) Resolver(model string, threshold float64, compareCols []string, blockCol string) (*integrate.Resolver, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return &integrate.Resolver{Model: m, Threshold: threshold, CompareCols: compareCols, BlockCol: blockCol}, nil
}

// RunExperiment regenerates one paper table or figure by ID ("table1",
// "table2", "table3", "fig1" ... "fig7"), or one of this repository's own
// ablation studies ("ab-index", "ab-cache-policy", "ab-cache-threshold",
// "ab-hybrid", "ab-dp").
func RunExperiment(id string) (Report, error) {
	if r, ok := exper.Registry()[id]; ok {
		return r()
	}
	if r, ok := exper.ExtRegistry()[id]; ok {
		return r()
	}
	return Report{}, fmt.Errorf("llmdm: unknown experiment %q (have %v and %v)", id, exper.IDs(), exper.ExtIDs())
}

// ExperimentIDs lists the paper-artifact experiment IDs in presentation
// order.
func ExperimentIDs() []string { return exper.IDs() }

// AblationIDs lists the design-choice ablation experiment IDs.
func AblationIDs() []string { return exper.ExtIDs() }

// StageResult is one pipeline stage's outcome.
type StageResult struct {
	Stage  string
	Metric string
	Value  string
}

// Pipeline runs the paper's Figure 1 flow — generation → transformation →
// integration → exploration — on the built-in scenario and returns one
// quality metric per stage. It is the quickest way to see every subsystem
// work together.
func (c *Client) Pipeline(ctx context.Context) ([]StageResult, error) {
	rep, err := exper.Fig1Pipeline()
	if err != nil {
		return nil, err
	}
	out := make([]StageResult, len(rep.Rows))
	for i, row := range rep.Rows {
		out[i] = StageResult{Stage: row[0], Metric: row[2], Value: row[3]}
	}
	_ = ctx
	return out, nil
}

// ConcertDB returns the Spider-style concert/stadium demo database.
func ConcertDB(seed int64) *DB { return workload.ConcertDB(seed) }

// DemoKnowledgeBase returns the entity knowledge base behind the QA and
// exploration demos.
func DemoKnowledgeBase(seed int64) *workload.KnowledgeBase { return workload.GenKB(seed) }
