// Package llmdm is an offline, stdlib-only reproduction of "Applications
// and Challenges for Large Language Models: From Data Management
// Perspective" (Zhang et al., ICDE 2024).
//
// It packages the paper's four application categories — data generation,
// data transformation, data integration and data exploration — and its five
// challenge remedies — prompt optimization, query optimization (cascade,
// decomposition, combination), semantic caching, privacy-preserving
// training and output validation — on top of a simulated LLM family, a real
// in-memory SQL engine and a real vector store. See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for the paper-vs-measured results.
//
// The facade exposes the pieces most users need: a Client bundling the
// model family with the application toolkits, the end-to-end Pipeline of
// the paper's Figure 1, and the experiment harness regenerating every table
// and figure.
package llmdm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core/cascade"
	"repro/internal/core/datagen"
	"repro/internal/core/explore"
	"repro/internal/core/integrate"
	"repro/internal/core/qopt"
	"repro/internal/core/semcache"
	"repro/internal/core/transform"
	"repro/internal/embed"
	"repro/internal/exper"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sched"
	"repro/internal/sqlkit"
	"repro/internal/token"
	"repro/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// Aliases re-exporting the core vocabulary so downstream code can work
// entirely through this package.
type (
	// Report is one regenerated experiment table.
	Report = exper.Report
	// Model is a simulated LLM.
	Model = llm.Model
	// Cost is an amount of money in micro-dollars.
	Cost = token.Cost
	// DB is the in-memory SQL engine.
	DB = sqlkit.DB
	// MetricsRegistry collects counters, gauges and histograms from every
	// component built over it (see WithMetricsRegistry). It serves both
	// Prometheus text and JSON expositions.
	MetricsRegistry = obs.Registry
	// SchedulerConfig parameterizes the adaptive micro-batching scheduler
	// (see WithScheduler). The zero value selects sensible defaults.
	SchedulerConfig = sched.Config
	// Priority is a batching-scheduler request class; attach it to a
	// context with WithPriority.
	Priority = sched.Class
	// Stream is one client's view of a token-streamed completion, as
	// returned by the proxy's CompleteStream method.
	Stream = proxy.Stream
	// Chunk is one server-sent piece of a streamed completion.
	Chunk = proxy.Chunk
)

// Scheduler priority classes.
const (
	// PriorityInteractive is the default, latency-sensitive class.
	PriorityInteractive = sched.Interactive
	// PriorityBatch marks bulk traffic (experiments, backfills) that must
	// not crowd out interactive requests.
	PriorityBatch = sched.Batch
	// PriorityStreaming bypasses micro-batching entirely; the proxy's
	// CompleteStream applies it automatically.
	PriorityStreaming = sched.Streaming
)

// NewMetricsRegistry returns an empty metrics registry to share across
// clients and proxies via WithMetricsRegistry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithPriority marks every request issued under ctx with the given
// scheduler priority class.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return sched.WithClass(ctx, p)
}

// Model tier names, mirroring the paper's Table I.
const (
	ModelSmall  = llm.NameSmall
	ModelMedium = llm.NameMedium
	ModelLarge  = llm.NameLarge
)

// Client bundles the model family with the application toolkits.
type Client struct {
	family llm.Family
	emb    *embed.Embedder
	reg    *obs.Registry
}

// Option configures a Client (see NewClient).
type Option func(*Client)

// WithMetricsRegistry routes the client's model-family metrics — and
// those of every proxy built from it — into reg instead of the global
// default registry. Use it to isolate metrics per client or to scrape
// several clients separately.
func WithMetricsRegistry(reg *MetricsRegistry) Option {
	return func(c *Client) { c.reg = reg }
}

// NewClient returns a Client over the default three-tier model family.
func NewClient(opts ...Option) *Client {
	c := &Client{emb: embed.New(embed.DefaultDim)}
	for _, opt := range opts {
		opt(c)
	}
	c.family = llm.DefaultFamilyObs(c.reg)
	return c
}

// Model returns the named tier (ModelSmall, ModelMedium, ModelLarge).
func (c *Client) Model(name string) (Model, error) {
	m := c.family.ByName(name)
	if m == nil {
		return nil, fmt.Errorf("llmdm: unknown model %q", name)
	}
	return m, nil
}

// Spend reports the total spend across all tiers since the last reset.
func (c *Client) Spend() Cost { return c.family.TotalSpend() }

// ResetSpend zeroes the usage meters.
func (c *Client) ResetSpend() { c.family.ResetMeters() }

// Cascade returns an LLM cascade over the whole family with the given
// confidence threshold (paper Figure 6).
func (c *Client) Cascade(threshold float64) *cascade.Cascade {
	models := make([]llm.Model, len(c.family))
	for i, m := range c.family {
		models[i] = m
	}
	return cascade.New(cascade.Threshold{Tau: threshold}, models...)
}

// Translator returns the NL2SQL translator on the named tier.
func (c *Client) Translator(model string) (*transform.Translator, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return transform.NewTranslator(m), nil
}

// Planner returns the batched NL2SQL query optimizer (decomposition +
// combination, paper Table II) on the named tier.
func (c *Client) Planner(model string) (*qopt.Planner, error) {
	tr, err := c.Translator(model)
	if err != nil {
		return nil, err
	}
	return qopt.NewPlanner(tr), nil
}

// SemanticCache returns a semantic LLM cache (paper Table III).
func (c *Client) SemanticCache(capacity int, threshold float64) *semcache.Cache {
	return semcache.New(semcache.Config{
		Embedder:  c.emb,
		Capacity:  capacity,
		Threshold: threshold,
		Policy:    semcache.Weighted,
	})
}

// Lake returns an empty multi-modal data lake (paper Section II-D).
func (c *Client) Lake() *explore.Lake { return explore.NewLake(c.emb) }

// ProxyOption configures the serving proxy built by Client.Proxy.
type ProxyOption func(*proxy.Config)

// WithCacheCapacity bounds the proxy's semantic cache to n entries
// (0 = unbounded, the default).
func WithCacheCapacity(n int) ProxyOption {
	return func(cfg *proxy.Config) { cfg.CacheCapacity = n }
}

// WithCacheThreshold sets the semantic-cache hit similarity bound
// (default 0.97).
func WithCacheThreshold(sim float64) ProxyOption {
	return func(cfg *proxy.Config) { cfg.CacheThreshold = sim }
}

// WithoutCache disables the semantic cache (for ablations).
func WithoutCache() ProxyOption {
	return func(cfg *proxy.Config) { cfg.DisableCache = true }
}

// WithCascadeThreshold sets the cascade's confidence acceptance
// threshold (default 0.62).
func WithCascadeThreshold(tau float64) ProxyOption {
	return func(cfg *proxy.Config) { cfg.Threshold = tau }
}

// WithEarlyExit sets the streamed cascade's mid-generation exit
// threshold: a non-final tier whose per-chunk confidence drops below it
// is aborted and escalated immediately, billing only the chunks already
// emitted (default 0.35).
func WithEarlyExit(threshold float64) ProxyOption {
	return func(cfg *proxy.Config) {
		cfg.ExitThreshold = threshold
		cfg.DisableEarlyExit = false
	}
}

// WithoutEarlyExit disables mid-generation early exit: every streamed
// tier runs to completion before the cascade decides.
func WithoutEarlyExit() ProxyOption {
	return func(cfg *proxy.Config) { cfg.DisableEarlyExit = true }
}

// WithScheduler places an adaptive micro-batching scheduler between the
// cascade and the model family: concurrent requests to the same tier
// share batches, bulk traffic is weighted-fairly interleaved with
// interactive traffic (see WithPriority), and the batching window
// adapts to load. The zero SchedulerConfig selects defaults. Call the
// proxy's Close method to drain the scheduler on shutdown.
func WithScheduler(cfg SchedulerConfig) ProxyOption {
	return func(pc *proxy.Config) { pc.Scheduler = &cfg }
}

// ResilienceConfig parameterizes the proxy's heavy-traffic protections
// (see WithResilience). The zero value keeps every default: no
// concurrency limit, breakers and stale serving on, a 30s upstream
// timeout.
type ResilienceConfig struct {
	// MaxConcurrent caps requests served at once; 0 disables the limiter.
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot once MaxConcurrent is
	// reached; beyond it requests are shed.
	MaxQueue int
	// UpstreamTimeout bounds each cascade run (0 = 30s).
	UpstreamTimeout time.Duration
	// DisableBreaker turns the per-model circuit breakers off.
	DisableBreaker bool
	// DisableStale turns degraded stale-cache serving off.
	DisableStale bool
}

// WithResilience configures the proxy's load shedding, upstream
// timeout, circuit breakers and stale-serve degradation.
func WithResilience(rc ResilienceConfig) ProxyOption {
	return func(cfg *proxy.Config) {
		cfg.MaxConcurrent = rc.MaxConcurrent
		cfg.MaxQueue = rc.MaxQueue
		cfg.UpstreamTimeout = rc.UpstreamTimeout
		cfg.DisableBreaker = rc.DisableBreaker
		cfg.DisableStale = rc.DisableStale
	}
}

// Proxy returns the serving proxy of the paper's Section III-B — semantic
// cache, in-flight deduplication and the cascade stacked in front of this
// client's model family, configured through functional options:
//
//	p := client.Proxy(
//	        llmdm.WithCacheCapacity(10_000),
//	        llmdm.WithCascadeThreshold(0.62),
//	        llmdm.WithScheduler(llmdm.SchedulerConfig{}),
//	)
//
// Serve it with net/http via its Handler method — POST /v1/complete
// with "stream": true streams the completion as Server-Sent Events —
// or stream in-process through its CompleteStream method (see Stream
// and Chunk). The proxy meters into the client's metrics registry (see
// WithMetricsRegistry).
func (c *Client) Proxy(opts ...ProxyOption) *proxy.Proxy {
	models := make([]llm.Model, len(c.family))
	for i, m := range c.family {
		models[i] = m
	}
	cfg := proxy.Config{Models: models, Obs: c.reg}
	for _, opt := range opts {
		opt(&cfg)
	}
	return proxy.New(cfg)
}

// SQLGenerator returns the constraint-aware SQL generator over db (paper
// Figure 2).
func (c *Client) SQLGenerator(db *DB, model string, seed int64) (*datagen.Generator, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return datagen.NewGenerator(db, m, seed), nil
}

// Resolver returns an entity resolver on the named tier (paper Section
// II-C).
func (c *Client) Resolver(model string, threshold float64, compareCols []string, blockCol string) (*integrate.Resolver, error) {
	m, err := c.Model(model)
	if err != nil {
		return nil, err
	}
	return &integrate.Resolver{Model: m, Threshold: threshold, CompareCols: compareCols, BlockCol: blockCol}, nil
}

// RunExperiment regenerates one paper table or figure by ID ("table1",
// "table2", "table3", "fig1" ... "fig7"), or one of this repository's own
// ablation studies ("ab-index", "ab-cache-policy", "ab-cache-threshold",
// "ab-hybrid", "ab-dp"). The context bounds the whole experiment:
// canceling it aborts the run at the next model call or sweep cell.
func RunExperiment(ctx context.Context, id string) (Report, error) {
	if r, ok := exper.Registry()[id]; ok {
		return r(ctx)
	}
	if r, ok := exper.ExtRegistry()[id]; ok {
		return r(ctx)
	}
	known := append(exper.IDs(), exper.ExtIDs()...)
	sort.Strings(known)
	return Report{}, fmt.Errorf("llmdm: unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
}

// ExperimentIDs lists the paper-artifact experiment IDs in presentation
// order.
func ExperimentIDs() []string { return exper.IDs() }

// AblationIDs lists the design-choice ablation experiment IDs.
func AblationIDs() []string { return exper.ExtIDs() }

// StageResult is one pipeline stage's outcome.
type StageResult struct {
	Stage  string
	Metric string
	Value  string
}

// Pipeline runs the paper's Figure 1 flow — generation → transformation →
// integration → exploration — on the built-in scenario and returns one
// quality metric per stage. It is the quickest way to see every subsystem
// work together. Canceling ctx aborts the pipeline mid-stage.
func (c *Client) Pipeline(ctx context.Context) ([]StageResult, error) {
	rep, err := exper.Fig1Pipeline(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]StageResult, len(rep.Rows))
	for i, row := range rep.Rows {
		out[i] = StageResult{Stage: row[0], Metric: row[2], Value: row[3]}
	}
	return out, nil
}

// ConcertDB returns the Spider-style concert/stadium demo database.
func ConcertDB(seed int64) *DB { return workload.ConcertDB(seed) }

// DemoKnowledgeBase returns the entity knowledge base behind the QA and
// exploration demos.
func DemoKnowledgeBase(seed int64) *workload.KnowledgeBase { return workload.GenKB(seed) }
