package llmdm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/datagen"
	"repro/internal/llm"
)

// llmRequestForTest builds a minimal completion request.
func llmRequestForTest() llm.Request {
	return llm.Request{Prompt: "label this obvious case", Gold: "yes", Difficulty: 0.05}
}

func TestClientModels(t *testing.T) {
	c := NewClient()
	for _, name := range []string{ModelSmall, ModelMedium, ModelLarge} {
		m, err := c.Model(name)
		if err != nil {
			t.Fatalf("Model(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Model(%s).Name() = %s", name, m.Name())
		}
	}
	if _, err := c.Model("gpt-99"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestClientSpendAccounting(t *testing.T) {
	c := NewClient()
	tr, err := c.Translator(ModelMedium)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Spend()
	if _, _, err := tr.Translate(context.Background(), "Show the names of stadiums that had concerts in 2014?"); err != nil {
		t.Fatal(err)
	}
	if c.Spend() <= before {
		t.Error("spend did not grow after a call")
	}
	c.ResetSpend()
	if c.Spend() != 0 {
		t.Error("reset did not zero spend")
	}
}

func TestClientCascade(t *testing.T) {
	c := NewClient()
	casc := c.Cascade(0.62)
	if len(casc.Models) != 3 {
		t.Errorf("cascade has %d models", len(casc.Models))
	}
}

func TestClientSemanticCache(t *testing.T) {
	c := NewClient()
	sc := c.SemanticCache(10, 0.9)
	sc.Put("a question about stadiums", "an answer", 0, 0)
	if _, ok := sc.Lookup("a question about stadiums"); !ok {
		t.Error("cache miss on exact key")
	}
}

func TestClientLakeAndKB(t *testing.T) {
	c := NewClient()
	lake := c.Lake()
	kb := DemoKnowledgeBase(1)
	for _, f := range kb.Facts()[:10] {
		lake.AddText("fact", f, nil)
	}
	if lake.Len() != 10 {
		t.Errorf("lake len = %d", lake.Len())
	}
	if len(lake.Search(kb.Cities[0].Name, 1)) != 1 {
		t.Error("lake search returned nothing")
	}
}

func TestClientSQLGenerator(t *testing.T) {
	c := NewClient()
	db := ConcertDB(1)
	g, err := c.SQLGenerator(db, ModelLarge, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := g.Generate(context.Background(), 6, datagen.Constraints{MustExecute: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 || st.Executable != 6 {
		t.Errorf("generated %d, executable %d", len(out), st.Executable)
	}
}

func TestClientResolver(t *testing.T) {
	c := NewClient()
	if _, err := c.Resolver("nope", 0.5, nil, ""); err == nil {
		t.Error("unknown model accepted")
	}
	r, err := c.Resolver(ModelLarge, 0.5, []string{"name"}, "")
	if err != nil || r == nil {
		t.Fatalf("resolver: %v", err)
	}
}

func TestPipelineFacade(t *testing.T) {
	c := NewClient()
	stages, err := c.Pipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	want := []string{"generation", "transformation", "integration", "exploration"}
	for i, s := range stages {
		if s.Stage != want[i] {
			t.Errorf("stage %d = %s, want %s", i, s.Stage, want[i])
		}
		if s.Value == "" {
			t.Errorf("stage %s has empty value", s.Stage)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment(context.Background(), "table9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Errorf("ids = %v", ids)
	}
}

func TestClientProxy(t *testing.T) {
	c := NewClient()
	p := c.Proxy(WithCacheCapacity(100), WithCascadeThreshold(0.62))
	if p == nil || p.Handler() == nil {
		t.Fatal("proxy not constructed")
	}
	ans, err := p.Complete(context.Background(), llmRequestForTest())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text == "" {
		t.Error("empty answer")
	}
}

// The facade's streaming vocabulary: CompleteStream through a client
// proxy yields ordered Chunks whose costs sum to the settled Answer.
func TestClientProxyCompleteStream(t *testing.T) {
	c := NewClient()
	p := c.Proxy(WithEarlyExit(0.35))
	s, err := p.CompleteStream(context.Background(), llmRequestForTest())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var (
		chunks []Chunk
		sum    Cost
	)
	for {
		ch, err := s.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, ch)
		sum += ch.Cost
	}
	if len(chunks) == 0 || !chunks[len(chunks)-1].Final {
		t.Fatalf("chunks = %+v", chunks)
	}
	ans, err := s.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text == "" || sum != ans.Cost {
		t.Fatalf("answer = %+v, chunk cost sum %v", ans, sum)
	}
}

// A proxy with a scheduler batches concurrent traffic, meters into the
// client's registry, and respects the PriorityBatch class end to end.
func TestClientProxyWithSchedulerAndMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	c := NewClient(WithMetricsRegistry(reg))
	p := c.Proxy(
		WithoutCache(),
		WithScheduler(SchedulerConfig{MaxBatch: 8, MaxWait: time.Millisecond}),
		WithResilience(ResilienceConfig{MaxConcurrent: 64, MaxQueue: 64}),
	)
	defer p.Close()
	if p.Scheduler() == nil {
		t.Fatal("scheduler not built")
	}

	ctx := WithPriority(context.Background(), PriorityBatch)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := llmRequestForTest()
			req.Prompt = fmt.Sprintf("%s variant %d", req.Prompt, i)
			if _, err := p.Complete(ctx, req); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	st, ok := p.SchedStats()
	if !ok || st.Submitted == 0 {
		t.Fatalf("scheduler saw no traffic: %+v", st)
	}
	if p.Stats().Spend != c.Spend() {
		t.Errorf("proxy spend %v, client meters %v", p.Stats().Spend, c.Spend())
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `sched_submitted_total{class="batch"}`) {
		t.Error("client registry missing batch-class scheduler metrics")
	}
}

// Canceling the pipeline context aborts it promptly with the context's
// error instead of running all four stages.
func TestPipelineCancellation(t *testing.T) {
	c := NewClient()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.Pipeline(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled pipeline returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled pipeline still took %v", elapsed)
	}
}

// The unknown-experiment error lists every known ID exactly once,
// sorted.
func TestRunExperimentUnknownErrorListsIDsOnce(t *testing.T) {
	_, err := RunExperiment(context.Background(), "table9")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	all := append(ExperimentIDs(), AblationIDs()...)
	for _, id := range all {
		if got := strings.Count(msg, id); got != 1 {
			t.Errorf("error mentions %q %d times: %s", id, got, msg)
		}
	}
	sorted := append([]string(nil), all...)
	sort.Strings(sorted)
	if !strings.Contains(msg, strings.Join(sorted, ", ")) {
		t.Errorf("error does not list IDs sorted: %s", msg)
	}
}
