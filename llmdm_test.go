package llmdm

import (
	"context"
	"testing"

	"repro/internal/core/datagen"
	"repro/internal/llm"
)

// llmRequestForTest builds a minimal completion request.
func llmRequestForTest() llm.Request {
	return llm.Request{Prompt: "label this obvious case", Gold: "yes", Difficulty: 0.05}
}

func TestClientModels(t *testing.T) {
	c := NewClient()
	for _, name := range []string{ModelSmall, ModelMedium, ModelLarge} {
		m, err := c.Model(name)
		if err != nil {
			t.Fatalf("Model(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Model(%s).Name() = %s", name, m.Name())
		}
	}
	if _, err := c.Model("gpt-99"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestClientSpendAccounting(t *testing.T) {
	c := NewClient()
	tr, err := c.Translator(ModelMedium)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Spend()
	if _, _, err := tr.Translate(context.Background(), "Show the names of stadiums that had concerts in 2014?"); err != nil {
		t.Fatal(err)
	}
	if c.Spend() <= before {
		t.Error("spend did not grow after a call")
	}
	c.ResetSpend()
	if c.Spend() != 0 {
		t.Error("reset did not zero spend")
	}
}

func TestClientCascade(t *testing.T) {
	c := NewClient()
	casc := c.Cascade(0.62)
	if len(casc.Models) != 3 {
		t.Errorf("cascade has %d models", len(casc.Models))
	}
}

func TestClientSemanticCache(t *testing.T) {
	c := NewClient()
	sc := c.SemanticCache(10, 0.9)
	sc.Put("a question about stadiums", "an answer", 0, 0)
	if _, ok := sc.Lookup("a question about stadiums"); !ok {
		t.Error("cache miss on exact key")
	}
}

func TestClientLakeAndKB(t *testing.T) {
	c := NewClient()
	lake := c.Lake()
	kb := DemoKnowledgeBase(1)
	for _, f := range kb.Facts()[:10] {
		lake.AddText("fact", f, nil)
	}
	if lake.Len() != 10 {
		t.Errorf("lake len = %d", lake.Len())
	}
	if len(lake.Search(kb.Cities[0].Name, 1)) != 1 {
		t.Error("lake search returned nothing")
	}
}

func TestClientSQLGenerator(t *testing.T) {
	c := NewClient()
	db := ConcertDB(1)
	g, err := c.SQLGenerator(db, ModelLarge, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := g.Generate(context.Background(), 6, datagen.Constraints{MustExecute: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 || st.Executable != 6 {
		t.Errorf("generated %d, executable %d", len(out), st.Executable)
	}
}

func TestClientResolver(t *testing.T) {
	c := NewClient()
	if _, err := c.Resolver("nope", 0.5, nil, ""); err == nil {
		t.Error("unknown model accepted")
	}
	r, err := c.Resolver(ModelLarge, 0.5, []string{"name"}, "")
	if err != nil || r == nil {
		t.Fatalf("resolver: %v", err)
	}
}

func TestPipelineFacade(t *testing.T) {
	c := NewClient()
	stages, err := c.Pipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	want := []string{"generation", "transformation", "integration", "exploration"}
	for i, s := range stages {
		if s.Stage != want[i] {
			t.Errorf("stage %d = %s, want %s", i, s.Stage, want[i])
		}
		if s.Value == "" {
			t.Errorf("stage %s has empty value", s.Stage)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("table9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Errorf("ids = %v", ids)
	}
}

func TestClientProxy(t *testing.T) {
	c := NewClient()
	p := c.Proxy(100, 0.62)
	if p == nil || p.Handler() == nil {
		t.Fatal("proxy not constructed")
	}
	ans, err := p.Complete(context.Background(), llmRequestForTest())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text == "" {
		t.Error("empty answer")
	}
}
