package llmdm_test

import (
	"context"
	"fmt"
	"log"

	llmdm "repro"
)

// The five-line tour: translate a natural-language question to SQL and run
// it on the demo database.
func Example() {
	client := llmdm.NewClient()
	tr, err := client.Translator(llmdm.ModelLarge)
	if err != nil {
		log.Fatal(err)
	}
	sql, _, err := tr.Translate(context.Background(),
		"Show the names of stadiums that have a capacity greater than 80000?")
	if err != nil {
		log.Fatal(err)
	}
	res, err := llmdm.ConcertDB(1).Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Rows) > 0)
	// Output: true
}

// Regenerating one of the paper's tables takes one call.
func ExampleRunExperiment() {
	rep, err := llmdm.RunExperiment(context.Background(), "table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.ID, len(rep.Rows))
	// Output: table1 4
}

// The cascade answers cheap questions with cheap models.
func ExampleClient_Cascade() {
	client := llmdm.NewClient()
	casc := client.Cascade(0.62)
	fmt.Println(len(casc.Models))
	// Output: 3
}

// The semantic cache serves paraphrases without a model call.
func ExampleClient_SemanticCache() {
	client := llmdm.NewClient()
	cache := client.SemanticCache(100, 0.9)
	cache.Put("What are the names of stadiums that had concerts in 2014?",
		"Anfield, Camp Nou", 0, 0)
	hit, ok := cache.Lookup("Show the names of stadiums that had concerts in 2014")
	fmt.Println(ok, hit.Entry.Response)
	// Output: true Anfield, Camp Nou
}
