# llmdm — build, test and benchmark targets.

GO ?= go

.PHONY: all build vet test race cover bench fuzz experiments ablations clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short live-fuzz pass over every fuzz target (seed corpora always run
# under plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlkit/
	$(GO) test -fuzz=FuzzExec -fuzztime=30s ./internal/sqlkit/
	$(GO) test -fuzz=FuzzParseQuestion -fuzztime=20s ./internal/core/transform/
	$(GO) test -fuzz=FuzzMinePattern -fuzztime=20s ./internal/core/transform/

experiments:
	$(GO) run ./cmd/llmdm-bench

ablations:
	$(GO) run ./cmd/llmdm-bench -exp ablations

clean:
	$(GO) clean ./...
