# llmdm — build, test and benchmark targets.

GO ?= go

.PHONY: all build vet lint analyzers-test test race race-concurrent cover bench bench-sched bench-json bench-check fuzz experiments ablations chaos telemetry clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the internal/analysis suite — five
# per-function analyzers (ctxflow, lockscope, billmeter, gospawn,
# metricname) plus three interprocedural ones (lockorder, reslifecycle,
# goleak) over the shared call-graph/summary program — run by the
# llmdm-lint driver, followed by the waiver audit (every //llmdm:
# annotation must carry a reason). Also usable as a vettool:
# go vet -vettool=bin/llmdm-lint ./...
lint:
	$(GO) build -o bin/llmdm-lint ./cmd/llmdm-lint
	./bin/llmdm-lint ./...
	./bin/llmdm-lint -waivers ./...

# The analyzers' own tests: fixture suites plus the in-tree enforcement
# tests that pin the annotated waiver sites.
analyzers-test:
	$(GO) test ./internal/analysis/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serving-path packages that run concurrent under load; the CI race
# gate covers exactly these. internal/vector and internal/embed are here
# because their kernels shard searches across goroutines and share pooled
# scratch buffers. internal/analysis is here because the lint driver and
# its enforcement tests walk one shared Program (summary/waiver caches)
# from multiple test processes' goroutines.
race-concurrent:
	$(GO) test -race ./internal/proxy/ ./internal/core/cascade/ ./internal/core/semcache/ ./internal/llm/ ./internal/obs/ ./internal/resilience/ ./internal/sched/ ./internal/exper/ ./internal/vector/ ./internal/embed/ ./internal/analysis/...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The scheduler's headline numbers: the concurrency-64 throughput gate
# (batched >= 2x direct at identical spend), the no-starvation gate, and
# the batched-vs-direct wall-clock benchmarks.
bench-sched:
	$(GO) test -run 'TestSchedThroughputWin|TestInteractiveNotStarvedUnderBatchLoad' -v ./internal/sched/
	$(GO) test -run - -bench 'BenchmarkScheduler' -benchtime=1x -benchmem ./internal/sched/

# The recorded perf trajectory: run the internal/perf suite and write
# schema-stable BENCH_serving.json / BENCH_kernels.json into BENCH_DIR
# (the repo root by default — the artifacts are checked in).
BENCH_DIR ?= .
bench-json:
	$(GO) run ./cmd/llmdm-bench -bench-json -bench-dir $(BENCH_DIR)

# Regenerate into a scratch dir and compare against the checked-in
# artifacts; exits nonzero on large (>2.5x) regressions.
bench-check:
	$(GO) run ./cmd/llmdm-bench -bench-json -bench-dir /tmp/llmdm-bench-check
	$(GO) run ./cmd/llmdm-bench -bench-compare BENCH_serving.json /tmp/llmdm-bench-check/BENCH_serving.json
	$(GO) run ./cmd/llmdm-bench -bench-compare BENCH_kernels.json /tmp/llmdm-bench-check/BENCH_kernels.json

# Short live-fuzz pass over every fuzz target (seed corpora always run
# under plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlkit/
	$(GO) test -fuzz=FuzzExec -fuzztime=30s ./internal/sqlkit/
	$(GO) test -fuzz=FuzzParseQuestion -fuzztime=20s ./internal/core/transform/
	$(GO) test -fuzz=FuzzMinePattern -fuzztime=20s ./internal/core/transform/

experiments:
	$(GO) run ./cmd/llmdm-bench

ablations:
	$(GO) run ./cmd/llmdm-bench -exp ablations

# Fault-injection experiment: availability and spend accounting under
# injected upstream failures, bare stack vs the resilience layer.
chaos:
	$(GO) run ./cmd/llmdm-bench -exp chaos

# Demo the instrumented bench: each experiment's table followed by its
# internal/obs telemetry delta (model calls, tokens, spend, cache hits,
# cascade escalations).
telemetry:
	$(GO) run ./cmd/llmdm-bench -exp table1 -telemetry
	$(GO) run ./cmd/llmdm-bench -exp table3 -telemetry

clean:
	$(GO) clean ./...
