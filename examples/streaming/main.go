// Streaming: serve completions token by token through the proxy's
// unified streaming API — an easy request streams from the cheap tier,
// a hard one early-exits mid-generation and restarts on the strong
// tier, a repeat streams instantly from the semantic cache — then the
// same answers over the SSE HTTP surface.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	llmdm "repro"
	"repro/internal/llm"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient(llmdm.WithMetricsRegistry(llmdm.NewMetricsRegistry()))
	p := client.Proxy(
		llmdm.WithCascadeThreshold(0.62),
		llmdm.WithEarlyExit(0.35), // abort a collapsing tier mid-generation
	)
	defer p.Close()

	easy := llm.Request{
		Prompt:     "Q: which column holds the order date?",
		Gold:       "the order_date column in the orders table",
		Difficulty: 0.1,
	}
	hard := llm.Request{
		Prompt:     "Q: derive the join selectivity bound from the histogram",
		Gold:       "the bound follows from the histogram overlap",
		Wrong:      "the answer could not be determined from the available statistics in the catalog",
		Difficulty: 0.9,
	}

	fmt.Println("— easy request: streams straight through the cheap tier —")
	stream(ctx, p, easy)

	fmt.Println("\n— hard request: early exit mid-generation, restart on the strong tier —")
	stream(ctx, p, hard)

	fmt.Println("\n— repeat of the easy request: instant single-chunk cache hit —")
	stream(ctx, p, easy)

	// The same path over HTTP: POST /v1/complete with "stream": true
	// replies with Server-Sent Events.
	fmt.Println("\n— the SSE surface —")
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/complete", "application/json",
		strings.NewReader(`{"prompt":"Q: which table holds shipments?","gold":"the shipments table","difficulty":0.1,"stream":true}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			fmt.Println("  " + line)
		}
	}

	fmt.Printf("\ntotal spend this session: %s\n", client.Spend())
}

// stream drains one streamed completion, printing chunks as a client
// UI would render them.
func stream(ctx context.Context, p interface {
	CompleteStream(context.Context, llm.Request) (llmdm.Stream, error)
}, req llm.Request) {
	s, err := p.CompleteStream(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	for {
		ch, err := s.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if ch.Restart {
			fmt.Printf("\n  [restart: escalated to %s]\n", ch.Model)
		}
		fmt.Printf("  #%-2d %-12s conf=%.2f cost=%-8s %q\n", ch.Index, ch.Model, ch.Confidence, ch.Cost, ch.Text)
	}
	ans, err := s.Answer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  => %q from %s via %s, %s\n", ans.Text, ans.Model, ans.Source, ans.Cost)
}
