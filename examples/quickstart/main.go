// Quickstart: the five-minute tour — build a client, run the Figure 1
// pipeline end to end, translate one NL question to SQL, answer one
// question through the LLM cascade, and serve concurrent traffic through
// the batching proxy.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	llmdm "repro"
	"repro/internal/core/cascade"
	"repro/internal/llm"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient(llmdm.WithMetricsRegistry(llmdm.NewMetricsRegistry()))

	// 1. The whole Figure 1 pipeline in one call.
	fmt.Println("— pipeline (generation → transformation → integration → exploration) —")
	stages, err := client.Pipeline(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stages {
		fmt.Printf("  %-14s %-14s %s\n", s.Stage, s.Metric, s.Value)
	}

	// 2. NL2SQL: one question, translated and executed.
	fmt.Println("\n— NL2SQL —")
	tr, err := client.Translator(llmdm.ModelLarge)
	if err != nil {
		log.Fatal(err)
	}
	question := "Show the names of stadiums that had the most number of concerts in 2014?"
	sql, _, err := tr.Translate(ctx, question)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  Q:  ", question)
	fmt.Println("  SQL:", sql)
	res, err := llmdm.ConcertDB(1).Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println("  ->  ", row[0].Display())
	}

	// 3. The LLM cascade: cheap model first, escalate only when unsure.
	fmt.Println("\n— LLM cascade —")
	set := workload.GenQA(3, 4)
	casc := client.Cascade(0.62)
	for _, it := range set.Items {
		resp, trace, err := casc.Complete(ctx, llm.Request{
			Task:       llm.TaskQA,
			Prompt:     "Context: " + it.ContextFor() + "\nQ: " + it.Question,
			Gold:       it.Answer,
			Wrong:      it.Distractor,
			Difficulty: it.Difficulty,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-70s -> %-18s (answered by %s after %d escalation(s), %s)\n",
			it.Question, resp.Text, resp.Model, trace.Escalations(), trace.TotalCost)
	}

	// 4. The serving proxy, configured with functional options: semantic
	// cache + cascade + adaptive micro-batching scheduler. Concurrent
	// requests to the same tier share batches; bulk traffic is marked
	// with PriorityBatch so it cannot crowd out interactive requests.
	fmt.Println("\n— serving proxy (cache + cascade + micro-batching) —")
	p := client.Proxy(
		llmdm.WithCacheCapacity(1000),
		llmdm.WithCascadeThreshold(0.62),
		llmdm.WithScheduler(llmdm.SchedulerConfig{}),
		llmdm.WithResilience(llmdm.ResilienceConfig{MaxConcurrent: 64, MaxQueue: 64}),
	)
	defer p.Close()
	bulkCtx := llmdm.WithPriority(ctx, llmdm.PriorityBatch)
	var wg sync.WaitGroup
	for i, it := range workload.GenQA(9, 16).Items {
		wg.Add(1)
		go func(i int, it workload.QAItem) {
			defer wg.Done()
			reqCtx := ctx
			if i%2 == 1 { // odd requests are bulk traffic
				reqCtx = bulkCtx
			}
			if _, err := p.Complete(reqCtx, llm.Request{
				Task:       llm.TaskQA,
				Prompt:     "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:       it.Answer,
				Wrong:      it.Distractor,
				Difficulty: it.Difficulty,
			}); err != nil {
				log.Fatal(err)
			}
		}(i, it)
	}
	wg.Wait()
	st := p.Stats()
	fmt.Printf("  served %d requests (%d model calls, %s total)\n", st.Requests, st.ModelCalls, st.Spend)
	if ss, ok := p.SchedStats(); ok {
		fmt.Printf("  scheduler: %d submitted across %d batches\n", ss.Submitted, ss.Batches)
	}

	fmt.Printf("\ntotal spend this session: %s\n", client.Spend())
	_ = cascade.Threshold{} // keep the import for readers exploring types
}
