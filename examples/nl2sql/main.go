// NL2SQL example: the paper's Q1-Q5 batch from Section III-B1, run through
// all three translation strategies of Table II, graded by executing the SQL
// and compared on cost — plus the cost-aware batch planner.
package main

import (
	"context"
	"fmt"
	"log"

	llmdm "repro"
	"repro/internal/core/qopt"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient()
	db := llmdm.ConcertDB(1)

	// The paper's exact Q1-Q5.
	questions := []string{
		"What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?",
		"What are the names of stadiums that had the most number of concerts in 2014?",
		"Show the names of stadiums that had the most number of sports meetings in 2015?",
		"Show the names of stadiums that had concerts in 2014 and had sports meetings in 2015?",
		"Show the names of stadiums that had concerts in 2014 but did not have sports meetings in 2015?",
	}

	// Gold SQL for grading, via the workload atoms.
	golds := map[string]string{}
	for _, q := range questions {
		d, err := qopt.Decompose(q)
		if err != nil {
			log.Fatal(err)
		}
		atoms := make([]string, len(d.Subs))
		for i, s := range d.Subs {
			atoms[i] = s.Phrase
		}
		golds[q] = d.Parsed.SQL()
	}

	run := func(name string, f func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error)) {
		planner, err := client.Planner(llmdm.ModelMedium)
		if err != nil {
			log.Fatal(err)
		}
		res, st, err := f(planner)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for _, r := range res {
			got, err := db.Exec(r.SQL)
			if err != nil {
				continue
			}
			want, _ := db.Exec(golds[r.Question])
			if got.EqualBag(want) {
				correct++
			}
		}
		fmt.Printf("%-28s accuracy %d/%d  cost %-8s llm calls %d (sub-queries: %d total, %d unique)\n",
			name, correct, len(res), st.Cost, st.LLMCalls, st.TotalSubQueries, st.UniqueSubQueries)
	}

	fmt.Println("paper Q1-Q5 through the three Table II strategies:")
	run("origin", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
		return p.RunOrigin(ctx, questions)
	})
	run("decomposition", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
		return p.RunDecomposed(ctx, questions)
	})
	run("decomposition+combination", func(p *qopt.Planner) ([]qopt.Translated, qopt.BatchStats, error) {
		return p.RunDecomposedCombined(ctx, questions, 5)
	})

	// The cost-aware planner: which queries to decompose given sharing.
	fmt.Println("\ncost-aware plan (marginal prompt tokens per query):")
	tr, _ := client.Translator(llmdm.ModelMedium)
	decisions, err := qopt.PlanBatch(tr, questions)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range decisions {
		mode := "whole"
		if d.Decompose {
			mode = "decompose"
		}
		fmt.Printf("  Q%d: %-9s marginal %d tokens\n", i+1, mode, d.MarginalTokens)
	}

	// Show one decomposition in full, Figure 7 style.
	fmt.Println("\nQ1 decomposition:")
	d, _ := qopt.Decompose(questions[0])
	for i, s := range d.Subs {
		fmt.Printf("  Q1%d: stadiums that %s\n", i+1, s.Phrase)
	}
	_ = workload.ConnOr
}
