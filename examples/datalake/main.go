// Datalake example: Section II-D — a multi-modal data lake mixing text,
// table rows and images in one embedding space; the paper's "Prof. Michael
// Jordan" disambiguation via hybrid attribute+vector search; and SQL over
// the LLM-backed virtual people table.
package main

import (
	"context"
	"fmt"
	"log"

	llmdm "repro"
	"repro/internal/core/explore"
	"repro/internal/vector"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient()

	lake := client.Lake()

	// Text, table and image items — the paper's ambiguity example.
	lake.AddText("mj-bio",
		"Michael Jordan, the greatest basketball player of all time, found the secret to success",
		map[string]string{"entity_type": "athlete"})
	lake.AddTableRow("professors",
		[]string{"name", "department", "university"},
		[]string{"Michael Jordan", "computer science", "Berkeley"},
		map[string]string{"entity_type": "professor"})
	lake.AddText("note-001",
		"discharge summary for a patient with arrhythmia and elevated lab values",
		map[string]string{"entity_type": "patient"})
	lake.AddImage("xray-001", "chest x-ray image of a patient",
		[]float64{0.4, 0.2, 0.9}, map[string]string{"entity_type": "patient"})

	query := "Could Prof. Michael Jordan play basketball"
	fmt.Println("query:", query)

	fmt.Println("\npure vector search (misled by surface similarity):")
	for _, hit := range lake.Search(query, 2) {
		fmt.Println(" ", hit)
	}

	fmt.Println("\nhybrid search with entity_type=professor (the paper's fix):")
	for _, hit := range lake.HybridSearch(query, 2, vector.AttrEquals("entity_type", "professor"), vector.Adaptive) {
		fmt.Println(" ", hit)
	}

	// Cross-modal search: a text query finding an image.
	fmt.Println("\ncross-modal search for \"x-ray scan of the chest\":")
	for _, hit := range lake.Search("x-ray scan of the chest", 1) {
		fmt.Println(" ", hit)
	}

	// LLM as database: SQL against a virtual table whose cells are fetched
	// from the model on demand.
	fmt.Println("\nSQL over the LLM-backed virtual people table:")
	kb := llmdm.DemoKnowledgeBase(1)
	large, err := client.Model(llmdm.ModelLarge)
	if err != nil {
		log.Fatal(err)
	}
	db := explore.NewLLMDB(large, kb)
	res, err := db.Query(ctx, "SELECT born_country, COUNT(*) AS n FROM people GROUP BY born_country ORDER BY n DESC LIMIT 4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	calls, cost := db.Usage()
	fmt.Printf("(%d LLM cell fetches, %s — only the referenced columns were materialized)\n", calls, cost)
}
