// Healthcare example: the paper's running motivation — patient records
// arriving as XML/JSON/spreadsheets are transformed to relational form
// (Section II-B, Figure 4), missing fields are imputed by few-shot ICL
// (Section II-A2), aggregate statistics are released under differential
// privacy (Section III-D), and every LLM output is validated before use
// (Section III-E).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	llmdm "repro"
	"repro/internal/core/datagen"
	"repro/internal/core/privacy"
	"repro/internal/core/transform"
	"repro/internal/core/validate"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient()
	model, err := client.Model(llmdm.ModelLarge)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Transform: one LLM call synthesizes a program per layout, applied
	//    to every incoming document for free.
	docs := workload.GenDocs(7, 9)
	syn := &transform.Synthesizer{Model: model}
	programs := map[string]transform.Program{}
	var rows []workload.Row
	for _, d := range docs {
		p, ok := programs[d.Format]
		if !ok {
			var err error
			p, _, err = syn.Synthesize(ctx, d)
			if err != nil {
				log.Fatal(err)
			}
			programs[d.Format] = p
		}
		tab, err := p.Apply(d)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, tab.Rows...)
	}
	fmt.Printf("transformed %d documents (%d layouts, %d LLM calls) into %d patient rows\n",
		len(docs), len(programs), len(programs), len(rows))

	// 2. Impute: fill a blanked diagnosis from similar complete records.
	blank := workload.Row{}
	for k, v := range rows[0] {
		blank[k] = v
	}
	gold := blank["diagnosis"]
	blank["diagnosis"] = ""
	im := datagen.NewImputer(model, rows[1:], map[string]string{"diagnosis": "name"})
	imputed, _, err := im.Impute(ctx, blank, "diagnosis")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imputed diagnosis %q (original was %q — diagnosis has no functional determinant, so the imputer falls back to the corpus mode; see Fig 3 for accuracy on determined columns)\n", imputed, gold)

	// 3. Release aggregate lab statistics under differential privacy.
	var labs []float64
	for _, r := range rows {
		var v float64
		fmt.Sscanf(r["lab_value"], "%g", &v)
		labs = append(labs, v)
	}
	rng := rand.New(rand.NewSource(42))
	private, err := privacy.PrivateMean(rng, labs, 0, 200, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	var exact float64
	for _, v := range labs {
		exact += v
	}
	exact /= float64(len(labs))
	fmt.Printf("mean lab value: exact %.2f, released (ε=1.0 DP) %.2f\n", exact, private)

	// 4. Validate an extraction before trusting it: is the answer grounded
	//    in the source document?
	doc := docs[0]
	answer := rows[0]["name"]
	if validate.Supported(answer, []string{doc.Body}) {
		fmt.Printf("validated: extracted name %q is grounded in the source document\n", answer)
	} else {
		fmt.Printf("REJECTED: extracted name %q not found in source\n", answer)
	}

	fmt.Printf("total spend: %s\n", client.Spend())
}
