// Retail example: the paper's Section II-C motivation — "various inputs
// from different individuals may cause ... inconsistencies in formatting,
// as well as missing information, leading retailers to draw inaccurate
// conclusions". A customer feed with mixed date formats, near-duplicate
// records and missing cells is monitored for drift, cleaned, deduplicated,
// loaded into the SQL engine and queried — with the query plan explained.
package main

import (
	"context"
	"fmt"
	"log"

	llmdm "repro"
	"repro/internal/core/integrate"
	"repro/internal/core/transform"
	"repro/internal/sqlkit"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	client := llmdm.NewClient()
	model, err := client.Model(llmdm.ModelLarge)
	if err != nil {
		log.Fatal(err)
	}

	// The dirty feed: 120 rows, 10% missing cells, 20% near-duplicates.
	feed := workload.GenCustomers(42, 100, 0.1, 0.2)
	fmt.Printf("feed: %d rows (%d injected duplicates, %d blanked cells)\n",
		len(feed.Rows), len(feed.DuplicatePairs), len(feed.MissingCells))

	// 1. Quality monitoring: the signup_date column drifts (duplicates
	//    re-emit dates in the slash format).
	var baseline []string
	for _, r := range feed.Rows[:50] {
		if v := r["signup_date"]; v != "" {
			baseline = append(baseline, v)
		}
	}
	mon, err := transform.NewColumnMonitor("signup_date", baseline, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	var refreshed []string
	for _, r := range feed.Rows[100:] { // the duplicate tail
		if v := r["signup_date"]; v != "" {
			refreshed = append(refreshed, v)
		}
	}
	if alert, drifted := mon.Observe(refreshed); drifted {
		fmt.Println("drift alert:", alert)
	}

	// 2. Clean: normalize the drifting date column to the majority format.
	rep, cleaned := integrate.CleanColumnDates(feed.Rows, "signup_date")
	fmt.Printf("cleaned %d/%d violating dates (pattern %s)\n", rep.Fixed, rep.Violations, rep.Pattern)

	// 3. Deduplicate: LLM-judged entity resolution, then union-find
	//    clustering and survivorship merging.
	resolver := &integrate.Resolver{Model: model, Threshold: 0.5, CompareCols: []string{"name"}, BlockCol: "country"}
	decisions, calls, err := resolver.Resolve(ctx, cleaned)
	if err != nil {
		log.Fatal(err)
	}
	canonical := integrate.Dedupe(cleaned, decisions, feed.Cols)
	fmt.Printf("deduplicated %d -> %d customers (%d LLM pair judgments)\n", len(cleaned), len(canonical), calls)

	// 4. Load into the SQL engine and answer the retailer's question.
	db := sqlkit.NewDB()
	if err := db.CreateTable("customers", []sqlkit.Column{
		{Name: "customer_id", Type: sqlkit.TText},
		{Name: "name", Type: sqlkit.TText},
		{Name: "city", Type: sqlkit.TText},
		{Name: "country", Type: sqlkit.TText},
		{Name: "signup_date", Type: sqlkit.TText},
		{Name: "segment", Type: sqlkit.TText},
	}); err != nil {
		log.Fatal(err)
	}
	for _, r := range canonical {
		db.InsertRow("customers", []sqlkit.Value{
			sqlkit.StringVal(r["customer_id"]), sqlkit.StringVal(r["name"]),
			sqlkit.StringVal(r["city"]), sqlkit.StringVal(r["country"]),
			sqlkit.StringVal(r["signup_date"]), sqlkit.StringVal(r["segment"]),
		})
	}

	q := "SELECT country, COUNT(*) AS customers FROM customers GROUP BY country ORDER BY customers DESC LIMIT 5"
	plan, err := db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery plan:")
	fmt.Print(plan)
	res, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top countries by customers:")
	fmt.Print(res.Format())
	fmt.Printf("total spend: %s\n", client.Spend())
}
