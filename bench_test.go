package llmdm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exper"
)

// One benchmark per paper table and figure: each iteration regenerates the
// full experiment, so `go test -bench=.` both re-measures the rows in
// EXPERIMENTS.md and tracks the harness's own runtime.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run := exper.Registry()[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func benchAblation(b *testing.B, id string) {
	b.Helper()
	run := exper.ExtRegistry()[id]
	if run == nil {
		b.Fatalf("unknown ablation %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1Cascade(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Decomposition(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Cache(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkFig1Pipeline(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2SQLGen(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig3TrainGen(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4Transform(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5Challenges(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6CascadeSweep(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7Sharing(b *testing.B)         { benchExperiment(b, "fig7") }

func BenchmarkAblationIndexes(b *testing.B)        { benchAblation(b, "ab-index") }
func BenchmarkAblationCachePolicies(b *testing.B)  { benchAblation(b, "ab-cache-policy") }
func BenchmarkAblationCacheThreshold(b *testing.B) { benchAblation(b, "ab-cache-threshold") }
func BenchmarkAblationHybridOrders(b *testing.B)   { benchAblation(b, "ab-hybrid") }
func BenchmarkAblationDPSweep(b *testing.B)        { benchAblation(b, "ab-dp") }
func BenchmarkChaosResilience(b *testing.B)        { benchAblation(b, "chaos") }

// TestAllExperimentsRun smoke-runs the full harness exactly as
// cmd/llmdm-bench does.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range ExperimentIDs() {
		rep, err := RunExperiment(context.Background(), id)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		out := rep.Format()
		if !strings.Contains(out, strings.ToUpper(id)) {
			t.Errorf("%s: malformed report:\n%s", id, out)
		}
	}
}
