package sqlkit

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := stadiumDB(t)
	db.Exec("CREATE TABLE mixed (i INT, f FLOAT, s TEXT, b BOOL)")
	db.Exec("INSERT INTO mixed VALUES (42, 1.5, 'hello ''quoted''', TRUE), (NULL, NULL, NULL, FALSE), (2, 2.0, '', TRUE)")

	var buf bytes.Buffer
	if err := db.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Every table matches row for row.
	for _, name := range db.TableNames() {
		orig, _ := db.Exec("SELECT * FROM " + name)
		got, err := loaded.Exec("SELECT * FROM " + name)
		if err != nil {
			t.Fatalf("loaded db missing table %s: %v", name, err)
		}
		if !orig.EqualOrdered(got) {
			t.Errorf("table %s does not round trip", name)
		}
	}

	// The int/float distinction survives: 2 (int) vs 2.0 (float).
	got, _ := loaded.Exec("SELECT i, f FROM mixed WHERE b = TRUE AND i = 2")
	if got.Rows[0][0].Kind != KindInt || got.Rows[0][1].Kind != KindFloat {
		t.Errorf("kinds lost: %v %v", got.Rows[0][0].Kind, got.Rows[0][1].Kind)
	}
}

func TestSaveDeterministic(t *testing.T) {
	db := stadiumDB(t)
	var a, b bytes.Buffer
	db.SaveJSON(&a)
	db.SaveJSON(&b)
	if a.String() != b.String() {
		t.Error("snapshot not deterministic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := stadiumDB(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := loaded.Exec("SELECT COUNT(*) FROM stadium")
	if err != nil || r.Rows[0][0].Int != 5 {
		t.Errorf("loaded count = %v err = %v", r, err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON loaded")
	}
	if _, err := LoadJSON(strings.NewReader(`{"tables":[{"name":"t","cols":[{"name":"a","type":"BLOB"}]}]}`)); err == nil {
		t.Error("unknown column type loaded")
	}
	if _, err := LoadJSON(strings.NewReader(`{"tables":[{"name":"t","cols":[{"name":"a","type":"INT"}],"rows":[[{"k":"x","v":"1"}]]}]}`)); err == nil {
		t.Error("unknown value tag loaded")
	}
}

func TestInsertSelect(t *testing.T) {
	db := stadiumDB(t)
	if _, err := db.Exec("CREATE TABLE big_stadiums (name TEXT, capacity INT)"); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec("INSERT INTO big_stadiums (name, capacity) SELECT name, capacity FROM stadium WHERE capacity > 80000")
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Errorf("affected = %d, want 2", r.Affected)
	}
	got, _ := db.Exec("SELECT name FROM big_stadiums ORDER BY name")
	if len(got.Rows) != 2 || got.Rows[0][0].Display() != "Camp Nou" {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestInsertSelectArityMismatch(t *testing.T) {
	db := stadiumDB(t)
	db.Exec("CREATE TABLE narrow (name TEXT)")
	if _, err := db.Exec("INSERT INTO narrow SELECT name, capacity FROM stadium"); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestInsertSelectRoundTripSQL(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a) SELECT x FROM u WHERE x > 1")
	r1 := st.SQL()
	st2, err := Parse(r1)
	if err != nil {
		t.Fatalf("re-parse %q: %v", r1, err)
	}
	if st2.SQL() != r1 {
		t.Errorf("round trip unstable: %q vs %q", r1, st2.SQL())
	}
}

func TestInsertSelectArchivePattern(t *testing.T) {
	// The archival pattern: snapshot old rows into a history table, then
	// delete them — all through the SQL surface, inside a transaction.
	db := stadiumDB(t)
	script := `CREATE TABLE concert_archive (concert_id INT, stadium_id INT, year INT, attendance INT);
BEGIN;
INSERT INTO concert_archive SELECT * FROM concert WHERE year < 2014;
DELETE FROM concert WHERE year < 2014;
COMMIT;`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	live, _ := db.Exec("SELECT COUNT(*) FROM concert")
	archived, _ := db.Exec("SELECT COUNT(*) FROM concert_archive")
	if archived.Rows[0][0].Int != 1 { // one 2013 concert in the fixture
		t.Errorf("archived = %v", archived.Rows[0][0])
	}
	if live.Rows[0][0].Int != 5 {
		t.Errorf("live = %v", live.Rows[0][0])
	}
}

// Property: every representable Value survives the JSON encoding.
func TestValueJSONRoundTripProperty(t *testing.T) {
	vals := []Value{
		Null(), BoolVal(true), BoolVal(false),
		IntVal(0), IntVal(-42), IntVal(1 << 60),
		FloatVal(0), FloatVal(2.0), FloatVal(-1.5e-9),
		StringVal(""), StringVal("with \"quotes\" and 'apostrophes'"),
		StringVal("unicode 日本語"), StringVal("null"), StringVal("42"),
	}
	for _, v := range vals {
		raw, err := encodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := decodeValue(raw)
		if err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if got.Kind != v.Kind || got.key() != v.key() {
			t.Errorf("round trip %v -> %s -> %v", v, raw, got)
		}
	}
}
