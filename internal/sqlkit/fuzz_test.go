package sqlkit

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser is total: any input either parses or
// returns an error — never panics — and successful parses re-render to SQL
// that parses again to the same rendition.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT name FROM stadium WHERE capacity > 50000",
		"SELECT DISTINCT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id",
		"SELECT city, COUNT(*) FROM stadium GROUP BY city HAVING COUNT(*) > 1 ORDER BY city LIMIT 5",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y''z')",
		"INSERT INTO t SELECT a FROM u",
		"UPDATE t SET a = a + 1 WHERE b IS NOT NULL",
		"DELETE FROM t WHERE a IN (SELECT b FROM u)",
		"CREATE TABLE t (a INT, b VARCHAR(20))",
		"SELECT * FROM a UNION ALL SELECT * FROM b INTERSECT SELECT * FROM c",
		"BEGIN", "COMMIT;", "ROLLBACK",
		"SELECT 1 + 2 * 3 - -4 / 5",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR b NOT LIKE '%x_' AND NOT c = 'q'",
		"select '", "(((", "SELECT", "", ";;", "--comment only",
		"SELECT \xff\xfe FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		r1 := st.SQL()
		st2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendition of parsed input does not re-parse:\n input: %q\nrender: %q\n   err: %v", input, r1, err)
		}
		if r2 := st2.SQL(); r1 != r2 {
			t.Fatalf("unstable rendition:\n1: %q\n2: %q", r1, r2)
		}
	})
}

// FuzzExec asserts the executor never panics on parseable input.
func FuzzExec(f *testing.F) {
	f.Add("SELECT * FROM t WHERE a = 1")
	f.Add("SELECT COUNT(*) FROM t GROUP BY a")
	f.Add("SELECT a / 0 FROM t")
	f.Add("SELECT * FROM t JOIN t AS u ON t.a = u.b")
	f.Add("INSERT INTO t VALUES (1, 2.5, 'x')")
	f.Add("UPDATE t SET a = b WHERE c LIKE '%'")
	f.Fuzz(func(t *testing.T, input string) {
		db := NewDB()
		db.Exec("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
		db.Exec("INSERT INTO t VALUES (1, 1.5, 'x'), (NULL, NULL, NULL)")
		db.Exec(input) // must not panic; errors are fine
	})
}

// FuzzSplitStatements asserts script splitting preserves content outside
// string literals.
func FuzzSplitStatements(f *testing.F) {
	f.Add("a;b;c")
	f.Add("INSERT INTO t VALUES ('a;b');SELECT 1")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, input string) {
		parts := splitStatements(input)
		// Joining with ";" must reproduce inputs that contain no quotes
		// (quote state machines are exercised by the seed corpus).
		if !strings.Contains(input, "'") {
			if got := strings.Join(parts, ";"); got != input {
				t.Fatalf("lossy split: %q -> %q", input, got)
			}
		}
	})
}
