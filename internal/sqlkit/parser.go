package sqlkit

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements — the
// NL2Transaction representation.
func ParseScript(input string) ([]Statement, error) {
	var out []Statement
	for _, part := range splitStatements(input) {
		if strings.TrimSpace(part) == "" {
			continue
		}
		st, err := Parse(part)
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", len(out)+1, err)
		}
		out = append(out, st)
	}
	return out, nil
}

// splitStatements splits on semicolons not inside string literals.
func splitStatements(input string) []string {
	var parts []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(input); i++ {
		c := input[i]
		if c == '\'' {
			inStr = !inStr
		}
		if c == ';' && !inStr {
			parts = append(parts, b.String())
			b.Reset()
			continue
		}
		b.WriteByte(c)
	}
	parts = append(parts, b.String())
	return parts
}

type parser struct {
	toks []tok
	i    int
	src  string
}

func (p *parser) peek() tok  { return p.toks[p.i] }
func (p *parser) next() tok  { t := p.toks[p.i]; p.i++; return t }
func (p *parser) save() int  { return p.i }
func (p *parser) load(m int) { p.i = m }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlkit: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// kw reports whether the next token is the given keyword, consuming it if so.
func (p *parser) kw(word string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == word {
		p.next()
		return true
	}
	return false
}

// sym reports whether the next token is the given symbol, consuming it if so.
func (p *parser) sym(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s, got %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	if !p.sym(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected identifier, got %q", t.text)
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "BEGIN":
		p.next()
		return &TxStmt{Kind: TxBegin}, nil
	case "COMMIT":
		p.next()
		return &TxStmt{Kind: TxCommit}, nil
	case "ROLLBACK":
		p.next()
		return &TxStmt{Kind: TxRollback}, nil
	default:
		return nil, p.errf("unsupported statement %q", t.text)
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.kw("DISTINCT")

	// Projection list.
	if p.sym("*") {
		// SELECT * — leave Exprs empty.
	} else {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.kw("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = a
			} else if p.peek().kind == tokIdent {
				se.Alias = p.next().text
			}
			s.Exprs = append(s.Exprs, se)
			if !p.sym(",") {
				break
			}
		}
	}

	if p.kw("FROM") {
		for {
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.sym(",") {
				break
			}
		}
		// JOIN clauses.
		for {
			kind := InnerJoin
			mark := p.save()
			if p.kw("LEFT") {
				kind = LeftJoin
			} else if p.kw("INNER") {
				kind = InnerJoin
			}
			if !p.kw("JOIN") {
				p.load(mark)
				break
			}
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.Joins = append(s.Joins, Join{Kind: kind, Table: tr, On: on})
		}
	}

	if p.kw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("HAVING") {
		h, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.kw("DESC") {
				k.Desc = true
			} else {
				p.kw("ASC")
			}
			s.OrderBy = append(s.OrderBy, k)
			if !p.sym(",") {
				break
			}
		}
	}
	if p.kw("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count, got %q", t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}

	// Set operations.
	for {
		var kind SetOpKind
		switch {
		case p.kw("UNION"):
			kind = Union
		case p.kw("INTERSECT"):
			kind = Intersect
		case p.kw("EXCEPT"):
			kind = Except
		default:
			return s, nil
		}
		all := p.kw("ALL")
		right, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		// Attach at the end of the current chain.
		cur := s
		for cur.Setop != nil {
			cur = cur.Setop.Right
		}
		cur.Setop = &SetOp{Kind: kind, All: all, Right: right}
	}
}

func (p *parser) tableRef() (TableRef, error) {
	var tr TableRef
	if p.sym("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return tr, err
		}
		if err := p.expectSym(")"); err != nil {
			return tr, err
		}
		tr.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Name = name
	}
	if p.kw("AS") {
		a, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = a
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.sym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.sym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Query = sub
		return st, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.sym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.sym(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Col: col, Expr: e})
		if !p.sym(",") {
			break
		}
	}
	if p.kw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.kw("WHERE") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	if p.kw("INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: table}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokKeyword {
			return nil, p.errf("expected column type, got %q", t.text)
		}
		p.next()
		var ct ColType
		switch t.text {
		case "INT", "INTEGER":
			ct = TInt
		case "FLOAT", "REAL":
			ct = TFloat
		case "TEXT", "VARCHAR":
			ct = TText
			// Optional length, e.g. VARCHAR(255).
			if p.sym("(") {
				if p.peek().kind == tokNumber {
					p.next()
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
		case "BOOL", "BOOLEAN":
			ct = TBool
		default:
			return nil, p.errf("unsupported column type %q", t.text)
		}
		st.Cols = append(st.Cols, ColumnDef{Name: name, Type: ct})
		if !p.sym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	if p.kw("INDEX") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: table}, nil
}

// --- Expression parsing, precedence climbing ---

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.kw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol {
			var op BinOp
			ok := true
			switch t.text {
			case "=":
				op = OpEq
			case "<>", "!=":
				op = OpNe
			case "<":
				op = OpLt
			case "<=":
				op = OpLe
			case ">":
				op = OpGt
			case ">=":
				op = OpGe
			default:
				ok = false
			}
			if ok {
				p.next()
				r, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: op, L: l, R: r}
				continue
			}
		}
		if t.kind == tokKeyword {
			switch t.text {
			case "LIKE":
				p.next()
				r, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: OpLike, L: l, R: r}
				continue
			case "IS":
				p.next()
				not := p.kw("NOT")
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				l = &IsNullExpr{X: l, Not: not}
				continue
			case "IN":
				p.next()
				in, err := p.inTail(l, false)
				if err != nil {
					return nil, err
				}
				l = in
				continue
			case "BETWEEN":
				p.next()
				bt, err := p.betweenTail(l, false)
				if err != nil {
					return nil, err
				}
				l = bt
				continue
			case "NOT":
				// x NOT IN / x NOT BETWEEN / x NOT LIKE
				mark := p.save()
				p.next()
				switch {
				case p.kw("IN"):
					in, err := p.inTail(l, true)
					if err != nil {
						return nil, err
					}
					l = in
					continue
				case p.kw("BETWEEN"):
					bt, err := p.betweenTail(l, true)
					if err != nil {
						return nil, err
					}
					l = bt
					continue
				case p.kw("LIKE"):
					r, err := p.addExpr()
					if err != nil {
						return nil, err
					}
					l = &Unary{Op: "NOT", X: &Binary{Op: OpLike, L: l, R: r}}
					continue
				default:
					p.load(mark)
				}
			}
		}
		return l, nil
	}
}

func (p *parser) inTail(x Expr, not bool) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: x, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.sym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &InExpr{X: x, List: list, Not: not}, nil
}

func (p *parser) betweenTail(x Expr, not bool) (Expr, error) {
	lo, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: x, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.sym("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.sym("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.sym("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.sym("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.sym("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: FloatVal(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: IntVal(i)}, nil
	case tokString:
		p.next()
		return &Literal{Val: StringVal(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: BoolVal(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: BoolVal(false)}, nil
		case "EXISTS":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			return p.funcTail(t.text)
		default:
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
	case tokIdent:
		p.next()
		// Function call?
		if p.sym("(") {
			p.load(p.save() - 1) // un-consume "("
			return p.funcTail(strings.ToUpper(t.text))
		}
		// Qualified column?
		if p.sym(".") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Name: name}, nil
		}
		return &ColRef{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			// Sub-query or parenthesized expression.
			if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// funcTail parses the argument list of a function whose name has been
// consumed.
func (p *parser) funcTail(name string) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.sym("*") {
		f.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.sym(")") {
		return f, nil
	}
	f.Distinct = p.kw("DISTINCT")
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.sym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return f, nil
}
