package sqlkit

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustParse(t, "SELECT name FROM stadium WHERE capacity > 50000")
	s, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if len(s.Exprs) != 1 || len(s.From) != 1 || s.Where == nil {
		t.Errorf("structure wrong: %+v", s)
	}
	if s.From[0].Name != "stadium" {
		t.Errorf("table = %q", s.From[0].Name)
	}
}

func TestParseSelectStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM concert").(*SelectStmt)
	if len(s.Exprs) != 0 {
		t.Errorf("star select should have empty Exprs, got %d", len(s.Exprs))
	}
}

func TestParseJoin(t *testing.T) {
	s := mustParse(t, "SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014").(*SelectStmt)
	if len(s.Joins) != 1 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	if s.Joins[0].Kind != InnerJoin {
		t.Errorf("join kind = %v", s.Joins[0].Kind)
	}
	if s.From[0].Alias != "s" || s.Joins[0].Table.Alias != "c" {
		t.Errorf("aliases wrong: %+v", s)
	}
}

func TestParseLeftJoin(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.y").(*SelectStmt)
	if s.Joins[0].Kind != LeftJoin {
		t.Errorf("kind = %v, want LeftJoin", s.Joins[0].Kind)
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	s := mustParse(t, "SELECT city, COUNT(*) AS n FROM stadium GROUP BY city HAVING COUNT(*) > 1 ORDER BY n DESC, city ASC LIMIT 5").(*SelectStmt)
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 2 || s.Limit != 5 {
		t.Errorf("structure wrong: %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order directions wrong")
	}
}

func TestParseSubqueryInWhere(t *testing.T) {
	s := mustParse(t, "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert WHERE year = 2014)").(*SelectStmt)
	in, ok := s.Where.(*InExpr)
	if !ok || in.Sub == nil {
		t.Fatalf("where = %T", s.Where)
	}
}

func TestParseNotIn(t *testing.T) {
	s := mustParse(t, "SELECT name FROM t WHERE x NOT IN (1, 2, 3)").(*SelectStmt)
	in := s.Where.(*InExpr)
	if !in.Not || len(in.List) != 3 {
		t.Errorf("NOT IN parse wrong: %+v", in)
	}
}

func TestParseExists(t *testing.T) {
	s := mustParse(t, "SELECT name FROM stadium AS s WHERE EXISTS (SELECT 1 FROM concert AS c WHERE c.stadium_id = s.stadium_id)").(*SelectStmt)
	if _, ok := s.Where.(*ExistsExpr); !ok {
		t.Fatalf("where = %T", s.Where)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	s := mustParse(t, "SELECT name FROM stadium WHERE capacity > (SELECT AVG(capacity) FROM stadium)").(*SelectStmt)
	b := s.Where.(*Binary)
	if _, ok := b.R.(*SubqueryExpr); !ok {
		t.Fatalf("rhs = %T", b.R)
	}
}

func TestParseDerivedTable(t *testing.T) {
	s := mustParse(t, "SELECT t.n FROM (SELECT COUNT(*) AS n FROM concert) AS t").(*SelectStmt)
	if s.From[0].Sub == nil || s.From[0].Alias != "t" {
		t.Errorf("derived table wrong: %+v", s.From[0])
	}
}

func TestParseSetOps(t *testing.T) {
	s := mustParse(t, "SELECT name FROM a UNION SELECT name FROM b INTERSECT SELECT name FROM c").(*SelectStmt)
	if s.Setop == nil || s.Setop.Kind != Union {
		t.Fatal("first setop missing")
	}
	if s.Setop.Right.Setop == nil || s.Setop.Right.Setop.Kind != Intersect {
		t.Fatal("chained setop missing")
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'abc%' AND c IS NOT NULL").(*SelectStmt)
	if s.Where == nil {
		t.Fatal("no where")
	}
	sql := s.Where.SQL()
	for _, want := range []string{"BETWEEN", "LIKE", "IS NOT NULL"} {
		if !strings.Contains(sql, want) {
			t.Errorf("rendered where %q missing %s", sql, want)
		}
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO stadium (stadium_id, name) VALUES (1, 'Anfield'), (2, 'Camp Nou')").(*InsertStmt)
	if st.Table != "stadium" || len(st.Cols) != 2 || len(st.Rows) != 2 {
		t.Errorf("insert wrong: %+v", st)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE accounts SET balance = balance - 1000 WHERE owner = 'Alice'").(*UpdateStmt)
	if up.Table != "accounts" || len(up.Set) != 1 || up.Where == nil {
		t.Errorf("update wrong: %+v", up)
	}
	del := mustParse(t, "DELETE FROM logs WHERE age > 30").(*DeleteStmt)
	if del.Table != "logs" || del.Where == nil {
		t.Errorf("delete wrong: %+v", del)
	}
}

func TestParseCreateDrop(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE emp (id INT, name TEXT, salary FLOAT, active BOOL)").(*CreateTableStmt)
	if len(ct.Cols) != 4 || ct.Cols[2].Type != TFloat {
		t.Errorf("create wrong: %+v", ct)
	}
	ct2 := mustParse(t, "CREATE TABLE x (name VARCHAR(255))").(*CreateTableStmt)
	if ct2.Cols[0].Type != TText {
		t.Errorf("varchar type = %v", ct2.Cols[0].Type)
	}
	if _, ok := mustParse(t, "DROP TABLE emp").(*DropTableStmt); !ok {
		t.Error("drop parse failed")
	}
}

func TestParseTx(t *testing.T) {
	for sql, kind := range map[string]TxKind{"BEGIN": TxBegin, "COMMIT": TxCommit, "ROLLBACK": TxRollback} {
		tx := mustParse(t, sql).(*TxStmt)
		if tx.Kind != kind {
			t.Errorf("%s parsed as %v", sql, tx.Kind)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("BEGIN; UPDATE a SET x = 1; UPDATE b SET y = 2 WHERE name = 'a;b'; COMMIT;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements, want 4", len(stmts))
	}
	// Semicolon inside a string literal must not split.
	up := stmts[2].(*UpdateStmt)
	lit := up.Where.(*Binary).R.(*Literal)
	if lit.Val.Str != "a;b" {
		t.Errorf("string literal = %q", lit.Val.Str)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC name FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT stadium VALUES (1)",
		"SELECT * FROM t GROUP",
		"SELECT 'unterminated FROM t",
		"SELECT * FROM t LIMIT x",
		"CREATE TABLE t (a BLOB)",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	s := mustParse(t, "select Name from Stadium -- trailing comment\nwhere Capacity > 1").(*SelectStmt)
	if s.From[0].Name != "Stadium" {
		t.Errorf("table name = %q", s.From[0].Name)
	}
}

// Round-trip property: rendering a parsed statement and re-parsing yields an
// identical rendition.
func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT name FROM stadium WHERE capacity > 50000",
		"SELECT DISTINCT s.name, c.year FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE (c.year = 2014 OR c.year = 2015) ORDER BY s.name LIMIT 10",
		"SELECT city, COUNT(*) AS n FROM stadium GROUP BY city HAVING COUNT(*) > 1",
		"SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert WHERE year = 2014) UNION SELECT name FROM stadium WHERE capacity > 1000",
		"SELECT name FROM t WHERE x NOT BETWEEN 1 AND 5 AND y IS NULL",
		"INSERT INTO t (a, b) VALUES (1, 'x''y')",
		"UPDATE t SET a = (a + 1) WHERE b LIKE '%z%'",
		"DELETE FROM t WHERE a IN (1, 2)",
		"CREATE TABLE t (a INT, b TEXT)",
		"SELECT name FROM stadium WHERE capacity > (SELECT AVG(capacity) FROM stadium)",
		"SELECT * FROM a EXCEPT SELECT * FROM b",
	}
	for _, q := range queries {
		st1 := mustParse(t, q)
		r1 := st1.SQL()
		st2, err := Parse(r1)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", r1, err)
			continue
		}
		if r2 := st2.SQL(); r1 != r2 {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", r1, r2)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	q := "SELECT s.name, COUNT(*) AS n FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year BETWEEN 2010 AND 2020 AND s.capacity > (SELECT AVG(capacity) FROM stadium) GROUP BY s.name HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
