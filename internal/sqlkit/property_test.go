package sqlkit

import (
	"math/rand"
	"testing"
)

// genExpr builds a random expression of bounded depth over columns a, b, c.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Val: IntVal(int64(rng.Intn(100)))}
		case 1:
			return &Literal{Val: StringVal([]string{"x", "y", "zed"}[rng.Intn(3)])}
		case 2:
			return &Literal{Val: Null()}
		default:
			return &ColRef{Name: []string{"a", "b", "c"}[rng.Intn(3)]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &Binary{Op: BinOp(rng.Intn(int(OpDiv) + 1)), L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		return &Binary{Op: OpAnd, L: genBoolExpr(rng, depth-1), R: genBoolExpr(rng, depth-1)}
	case 2:
		return &Unary{Op: "-", X: genExpr(rng, depth-1)}
	case 3:
		return &IsNullExpr{X: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	case 4:
		return &BetweenExpr{X: genExpr(rng, depth-1), Lo: genExpr(rng, 0), Hi: genExpr(rng, 0), Not: rng.Intn(2) == 0}
	case 5:
		return &InExpr{X: genExpr(rng, depth-1), List: []Expr{genExpr(rng, 0), genExpr(rng, 0)}, Not: rng.Intn(2) == 0}
	case 6:
		return &FuncCall{Name: "ABS", Args: []Expr{genExpr(rng, depth-1)}}
	default:
		return genExpr(rng, 0)
	}
}

// genBoolExpr builds a random boolean-valued expression.
func genBoolExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return &Binary{Op: BinOp(rng.Intn(int(OpGe) + 1)), L: genExpr(rng, 0), R: genExpr(rng, 0)}
	}
	switch rng.Intn(3) {
	case 0:
		return &Binary{Op: OpOr, L: genBoolExpr(rng, depth-1), R: genBoolExpr(rng, depth-1)}
	case 1:
		return &Unary{Op: "NOT", X: genBoolExpr(rng, depth-1)}
	default:
		return &IsNullExpr{X: genExpr(rng, depth-1)}
	}
}

// genSelect builds a random SELECT over table t(a, b, c).
func genSelect(rng *rand.Rand, depth int) *SelectStmt {
	s := &SelectStmt{Limit: -1}
	s.Distinct = rng.Intn(3) == 0
	nExprs := rng.Intn(3)
	for i := 0; i < nExprs; i++ {
		s.Exprs = append(s.Exprs, SelectExpr{Expr: genExpr(rng, 1)})
	}
	s.From = []TableRef{{Name: "t"}}
	if rng.Intn(2) == 0 {
		s.Where = genBoolExpr(rng, 2)
	}
	if rng.Intn(3) == 0 {
		s.OrderBy = []OrderKey{{Expr: &ColRef{Name: "a"}, Desc: rng.Intn(2) == 0}}
	}
	if rng.Intn(3) == 0 {
		s.Limit = rng.Intn(10)
	}
	if depth > 0 && rng.Intn(3) == 0 {
		s.Setop = &SetOp{Kind: SetOpKind(rng.Intn(3)), All: rng.Intn(2) == 0, Right: genSelect(rng, depth-1)}
	}
	return s
}

// Property: for every generated statement, SQL() parses back to a
// statement with an identical rendition.
func TestGeneratedStatementsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < 500; i++ {
		st := genSelect(rng, 2)
		r1 := st.SQL()
		parsed, err := Parse(r1)
		if err != nil {
			t.Fatalf("iteration %d: cannot re-parse %q: %v", i, r1, err)
		}
		if r2 := parsed.SQL(); r1 != r2 {
			t.Fatalf("iteration %d: round trip unstable:\n  1: %s\n  2: %s", i, r1, r2)
		}
	}
}

// Property: every generated statement executes without panicking, and any
// error it returns is a clean error (evaluation is total over the grammar).
func TestGeneratedStatementsEvaluateTotally(t *testing.T) {
	db := NewDB()
	db.Exec("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	db.Exec("INSERT INTO t VALUES (1, 1.5, 'x'), (2, NULL, 'y'), (NULL, 3.0, NULL), (7, 0.0, 'zed')")

	rng := rand.New(rand.NewSource(6789))
	errs := 0
	for i := 0; i < 500; i++ {
		st := genSelect(rng, 1)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iteration %d: panic on %s: %v", i, st.SQL(), r)
				}
			}()
			if _, err := db.ExecStmt(st); err != nil {
				errs++ // type errors are legitimate; panics are not
			}
		}()
	}
	if errs == 500 {
		t.Error("every generated statement errored; generator is broken")
	}
}

// Property: WHERE filters commute with themselves — running the same
// generated query twice returns identical results (executor is pure).
func TestGeneratedStatementsDeterministic(t *testing.T) {
	db := NewDB()
	db.Exec("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	db.Exec("INSERT INTO t VALUES (1, 1.5, 'x'), (2, 2.5, 'y'), (3, 3.5, 'zed')")
	rng := rand.New(rand.NewSource(24680))
	for i := 0; i < 200; i++ {
		st := genSelect(rng, 1)
		r1, err1 := db.ExecStmt(st)
		r2, err2 := db.ExecStmt(st)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iteration %d: error flip on %s", i, st.SQL())
		}
		if err1 == nil && !r1.EqualOrdered(r2) {
			t.Fatalf("iteration %d: nondeterministic results for %s", i, st.SQL())
		}
	}
}
