package sqlkit

import (
	"fmt"
	"strings"
)

// Explain renders the logical plan the executor would run for a SELECT:
// which tables are scanned, which join algorithm each JOIN clause gets
// (hash join for simple equi-joins, nested loop otherwise), and which
// post-processing stages apply. It makes the engine's one real physical
// choice — hash vs nested-loop join — observable and testable.
func (db *DB) Explain(sql string) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqlkit: EXPLAIN supports SELECT only, got %T", st)
	}
	var b strings.Builder
	db.explainSelect(&b, sel, 0)
	return b.String(), nil
}

func indentln(b *strings.Builder, depth int, format string, args ...interface{}) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, format, args...)
	b.WriteByte('\n')
}

func (db *DB) explainSelect(b *strings.Builder, s *SelectStmt, depth int) {
	proj := "*"
	if len(s.Exprs) > 0 {
		parts := make([]string, len(s.Exprs))
		for i, se := range s.Exprs {
			parts[i] = se.Expr.SQL()
		}
		proj = strings.Join(parts, ", ")
	}
	distinct := ""
	if s.Distinct {
		distinct = " DISTINCT"
	}
	indentln(b, depth, "PROJECT%s %s", distinct, proj)
	if s.Limit >= 0 {
		indentln(b, depth, "LIMIT %d", s.Limit)
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			dir := "ASC"
			if k.Desc {
				dir = "DESC"
			}
			keys[i] = k.Expr.SQL() + " " + dir
		}
		indentln(b, depth, "SORT %s", strings.Join(keys, ", "))
	}
	if len(s.GroupBy) > 0 || len(collectAggregates(s)) > 0 {
		gb := "(all rows)"
		if len(s.GroupBy) > 0 {
			parts := make([]string, len(s.GroupBy))
			for i, g := range s.GroupBy {
				parts[i] = g.SQL()
			}
			gb = strings.Join(parts, ", ")
		}
		indentln(b, depth, "AGGREGATE BY %s", gb)
		if s.Having != nil {
			indentln(b, depth, "  HAVING %s", s.Having.SQL())
		}
	}
	if s.Where != nil {
		indentln(b, depth, "FILTER %s", s.Where.SQL())
	}
	for i := len(s.Joins) - 1; i >= 0; i-- {
		j := s.Joins[i]
		algo := "NESTED LOOP"
		if db.joinUsesHash(s, i) {
			algo = "HASH JOIN"
		}
		kind := "INNER"
		if j.Kind == LeftJoin {
			kind = "LEFT"
		}
		indentln(b, depth, "%s %s JOIN %s ON %s", algo, kind, j.Table.SQL(), j.On.SQL())
	}
	if def, val, ok := db.indexScanEligible(s); ok {
		indentln(b, depth, "INDEX SCAN %s USING %s (%s = %s)", s.From[0].SQL(), def.name, def.column, val.String())
	} else {
		for _, tr := range s.From {
			if tr.Sub != nil {
				indentln(b, depth, "SCAN derived table %s:", tr.Alias)
				db.explainSelect(b, tr.Sub, depth+1)
				continue
			}
			rows := "?"
			if t := db.Table(tr.Name); t != nil {
				rows = fmt.Sprintf("%d", len(t.Rows))
			}
			indentln(b, depth, "SCAN %s (%s rows)", tr.SQL(), rows)
		}
	}
	if s.Setop != nil {
		indentln(b, depth, "%s:", s.Setop.Kind)
		db.explainSelect(b, s.Setop.Right, depth+1)
	}
}

// joinUsesHash mirrors the executor's hash-join eligibility test: the ON
// clause is a bare equality between two column references.
func (db *DB) joinUsesHash(s *SelectStmt, joinIdx int) bool {
	bin, ok := s.Joins[joinIdx].On.(*Binary)
	if !ok || bin.Op != OpEq {
		return false
	}
	_, lok := bin.L.(*ColRef)
	_, rok := bin.R.(*ColRef)
	return lok && rok
}
