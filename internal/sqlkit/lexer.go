package sqlkit

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// tok is one lexical token.
type tok struct {
	kind tokKind
	text string // keywords upper-cased, identifiers as written
	pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"JOIN": true, "LEFT": true, "INNER": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "ALL": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INDEX": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "REAL": true,
	"TEXT": true, "VARCHAR": true, "BOOL": true, "BOOLEAN": true,
	"TRUE": true, "FALSE": true, "ASC": true, "DESC": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lex tokenizes SQL input.
func lex(input string) ([]tok, error) {
	var out []tok
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlkit: unterminated string at offset %d", start)
			}
			out = append(out, tok{tokString, b.String(), start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			out = append(out, tok{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, tok{tokKeyword, up, start})
			} else {
				out = append(out, tok{tokIdent, word, start})
			}
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<>", "<=", ">=", "!=":
					out = append(out, tok{tokSymbol, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
				out = append(out, tok{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sqlkit: unexpected character %q at offset %d", c, i)
			}
		}
	}
	out = append(out, tok{tokEOF, "", n})
	return out, nil
}

// Identifiers are ASCII-only: the lexer scans bytes, so admitting
// non-ASCII "letters" byte-by-byte would tear multi-byte runes apart
// (found by FuzzParse). Non-ASCII bytes outside string literals are
// rejected with a clean parse error instead.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}
