package sqlkit

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// SQL renders the statement back to text. Parsing the rendition yields
	// an equivalent statement (tested property).
	SQL() string
}

// Expr is any expression node.
type Expr interface {
	expr()
	SQL() string
}

// --- Statements ---

// SelectStmt is a SELECT, possibly the left side of a set operation chain.
type SelectStmt struct {
	Distinct bool
	Exprs    []SelectExpr // empty means *
	From     []TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
	// Setop chains this select with another: UNION/INTERSECT/EXCEPT.
	Setop *SetOp
}

// SetOp is a set operation linking two selects.
type SetOp struct {
	Kind  SetOpKind
	All   bool
	Right *SelectStmt
}

// SetOpKind enumerates set operations.
type SetOpKind int

const (
	Union SetOpKind = iota
	Intersect
	Except
)

func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	case Except:
		return "EXCEPT"
	default:
		return "?"
	}
}

// SelectExpr is one projected expression with an optional alias.
type SelectExpr struct {
	Expr  Expr
	Alias string
}

// TableRef is a table or sub-query in FROM.
type TableRef struct {
	Name  string      // table name, empty when Sub is set
	Sub   *SelectStmt // derived table
	Alias string
}

// JoinKind enumerates join types.
type JoinKind int

const (
	InnerJoin JoinKind = iota
	LeftJoin
)

// Join is one JOIN clause.
type Join struct {
	Kind  JoinKind
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t (cols...) VALUES (...), (...) or
// INSERT INTO t (cols...) SELECT ...
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
	// Query, when set, supplies the rows instead of VALUES.
	Query *SelectStmt
}

// UpdateStmt is UPDATE t SET col = expr, ... WHERE ...
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause.
type Assignment struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Table string
	Cols  []ColumnDef
}

// ColumnDef declares one column.
type ColumnDef struct {
	Name string
	Type ColType
}

// ColType enumerates declared column types.
type ColType int

const (
	TInt ColType = iota
	TFloat
	TText
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOL"
	default:
		return "?"
	}
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Table string }

// TxStmt is BEGIN, COMMIT or ROLLBACK.
type TxStmt struct{ Kind TxKind }

// TxKind enumerates transaction control statements.
type TxKind int

const (
	TxBegin TxKind = iota
	TxCommit
	TxRollback
)

func (k TxKind) String() string {
	switch k {
	case TxBegin:
		return "BEGIN"
	case TxCommit:
		return "COMMIT"
	case TxRollback:
		return "ROLLBACK"
	default:
		return "?"
	}
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*TxStmt) stmt()          {}

// --- Expressions ---

// Literal is a constant value.
type Literal struct{ Val Value }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string
	Name  string
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpLike
)

func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpLike:
		return "LIKE"
	default:
		return "?"
	}
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is NOT or unary minus.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is a function or aggregate call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

// InExpr is x IN (list) or x IN (subquery), with optional negation.
type InExpr struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// ExistsExpr is EXISTS (subquery), with optional negation.
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

// SubqueryExpr is a scalar sub-query.
type SubqueryExpr struct{ Sub *SelectStmt }

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x BETWEEN lo AND hi, with optional negation.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Literal) expr()      {}
func (*ColRef) expr()       {}
func (*Binary) expr()       {}
func (*Unary) expr()        {}
func (*FuncCall) expr()     {}
func (*InExpr) expr()       {}
func (*ExistsExpr) expr()   {}
func (*SubqueryExpr) expr() {}
func (*IsNullExpr) expr()   {}
func (*BetweenExpr) expr()  {}

// --- SQL rendering ---

func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Exprs) == 0 {
		b.WriteString("*")
	} else {
		for i, e := range s.Exprs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.Expr.SQL())
			if e.Alias != "" {
				b.WriteString(" AS " + e.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.SQL())
		}
	}
	for _, j := range s.Joins {
		if j.Kind == LeftJoin {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(j.Table.SQL())
		b.WriteString(" ON " + j.On.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Expr.SQL())
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Setop != nil {
		b.WriteString(" " + s.Setop.Kind.String())
		if s.Setop.All {
			b.WriteString(" ALL")
		}
		b.WriteString(" " + s.Setop.Right.SQL())
	}
	return b.String()
}

func (t TableRef) SQL() string {
	var s string
	if t.Sub != nil {
		s = "(" + t.Sub.SQL() + ")"
	} else {
		s = t.Name
	}
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

func (s *InsertStmt) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Cols) > 0 {
		b.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	if s.Query != nil {
		b.WriteString(" " + s.Query.SQL())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

func (s *UpdateStmt) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Col + " = " + a.Expr.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

func (s *DeleteStmt) SQL() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}

func (s *CreateTableStmt) SQL() string {
	cols := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = c.Name + " " + c.Type.String()
	}
	return "CREATE TABLE " + s.Table + " (" + strings.Join(cols, ", ") + ")"
}

func (s *DropTableStmt) SQL() string { return "DROP TABLE " + s.Table }

func (s *TxStmt) SQL() string { return s.Kind.String() }

func (e *Literal) SQL() string { return e.Val.String() }

func (e *ColRef) SQL() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *Binary) SQL() string {
	return "(" + e.L.SQL() + " " + e.Op.String() + " " + e.R.SQL() + ")"
}

func (e *Unary) SQL() string {
	if e.Op == "NOT" {
		return "(NOT " + e.X.SQL() + ")"
	}
	return "(-" + e.X.SQL() + ")"
}

func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

func (e *InExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	if e.Sub != nil {
		return "(" + e.X.SQL() + not + " IN (" + e.Sub.SQL() + "))"
	}
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.SQL()
	}
	return "(" + e.X.SQL() + not + " IN (" + strings.Join(items, ", ") + "))"
}

func (e *ExistsExpr) SQL() string {
	if e.Not {
		return "(NOT EXISTS (" + e.Sub.SQL() + "))"
	}
	return "(EXISTS (" + e.Sub.SQL() + "))"
}

func (e *SubqueryExpr) SQL() string { return "(" + e.Sub.SQL() + ")" }

func (e *IsNullExpr) SQL() string {
	if e.Not {
		return "(" + e.X.SQL() + " IS NOT NULL)"
	}
	return "(" + e.X.SQL() + " IS NULL)"
}

func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.X.SQL() + not + " BETWEEN " + e.Lo.SQL() + " AND " + e.Hi.SQL() + ")"
}
