package sqlkit

import (
	"strings"
	"testing"
)

func TestExplainHashJoin(t *testing.T) {
	db := stadiumDB(t)
	plan, err := db.Explain("SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HASH JOIN") {
		t.Errorf("equi-join not planned as hash join:\n%s", plan)
	}
	if !strings.Contains(plan, "SCAN stadium AS s (5 rows)") {
		t.Errorf("scan row estimate missing:\n%s", plan)
	}
	if !strings.Contains(plan, "FILTER") {
		t.Errorf("filter stage missing:\n%s", plan)
	}
}

func TestExplainNestedLoopForNonEquiJoin(t *testing.T) {
	db := stadiumDB(t)
	plan, err := db.Explain("SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id AND c.year > 2013")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NESTED LOOP") {
		t.Errorf("compound ON not planned as nested loop:\n%s", plan)
	}
}

func TestExplainAggregateAndSort(t *testing.T) {
	db := stadiumDB(t)
	plan, err := db.Explain("SELECT city, COUNT(*) AS n FROM stadium GROUP BY city HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AGGREGATE BY city", "HAVING", "SORT", "LIMIT 3"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainSetOpAndDerived(t *testing.T) {
	db := stadiumDB(t)
	plan, err := db.Explain("SELECT t.n FROM (SELECT COUNT(*) AS n FROM concert) AS t UNION SELECT capacity FROM stadium")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "SCAN derived table t") {
		t.Errorf("derived table missing:\n%s", plan)
	}
	if !strings.Contains(plan, "UNION:") {
		t.Errorf("set op missing:\n%s", plan)
	}
}

func TestExplainErrors(t *testing.T) {
	db := stadiumDB(t)
	if _, err := db.Explain("DELETE FROM stadium"); err == nil {
		t.Error("EXPLAIN of DML accepted")
	}
	if _, err := db.Explain("not sql"); err == nil {
		t.Error("EXPLAIN of garbage accepted")
	}
}

// Property: the plan agrees with the executor — a query planned as HASH
// JOIN and the same query forced through a nested loop (by a compound ON)
// return identical results.
func TestExplainPlanMatchesExecution(t *testing.T) {
	db := stadiumDB(t)
	hashQ := "SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id"
	loopQ := "SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id AND 1 = 1"
	ph, _ := db.Explain(hashQ)
	pl, _ := db.Explain(loopQ)
	if !strings.Contains(ph, "HASH JOIN") || !strings.Contains(pl, "NESTED LOOP") {
		t.Fatalf("plans not as expected:\n%s\n%s", ph, pl)
	}
	rh, err := db.Exec(hashQ)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := db.Exec(loopQ)
	if err != nil {
		t.Fatal(err)
	}
	if !rh.EqualBag(rl) {
		t.Error("hash and nested-loop paths disagree")
	}
}
