package sqlkit

import (
	"sort"
	"strings"
)

// Result is the output of one statement: column names and rows for SELECT,
// Affected for DML.
type Result struct {
	Cols     []string
	Rows     [][]Value
	Affected int
}

// NumRows reports the number of result rows.
func (r *Result) NumRows() int { return len(r.Rows) }

// Fingerprint returns an order-insensitive canonical encoding of the result
// rows. Two results with equal fingerprints contain the same bag of rows —
// the semantic-equivalence test used for NL2SQL grading and logic-bug
// detection (paper Sections II-A and II-B).
func (r *Result) Fingerprint() string {
	keys := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		keys[i] = rowKey(row)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// EqualBag reports whether two results contain the same multiset of rows,
// ignoring row order and column names.
func (r *Result) EqualBag(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	return r.Fingerprint() == o.Fingerprint()
}

// EqualOrdered reports whether two results contain the same rows in the same
// order.
func (r *Result) EqualOrdered(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		if rowKey(r.Rows[i]) != rowKey(o.Rows[i]) {
			return false
		}
	}
	return true
}

// Format renders the result as an aligned text table for the CLI tools.
func (r *Result) Format() string {
	if len(r.Cols) == 0 {
		return ""
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			if ci >= len(widths) {
				continue
			}
			s := v.Display()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Cols)
	sep := make([]string, len(r.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
