package sqlkit

import (
	"fmt"
	"math"
	"strings"
)

// eval evaluates an expression in an environment (nil env means constants
// only). SQL three-valued logic: unknown propagates as NULL.
func (ex *executor) eval(e Expr, en *env) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		if en == nil {
			return Value{}, fmt.Errorf("sqlkit: column %s referenced without a row", x.SQL())
		}
		v, ok := en.lookup(x.Table, x.Name)
		if !ok {
			return Value{}, fmt.Errorf("sqlkit: unknown column %s", x.SQL())
		}
		return v, nil
	case *Binary:
		return ex.evalBinary(x, en)
	case *Unary:
		v, err := ex.eval(x.X, en)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return Null(), nil
			}
			if v.Kind != KindBool {
				return Value{}, fmt.Errorf("sqlkit: NOT over non-boolean %s", v)
			}
			return BoolVal(!v.Bool), nil
		}
		switch v.Kind {
		case KindNull:
			return Null(), nil
		case KindInt:
			return IntVal(-v.Int), nil
		case KindFloat:
			return FloatVal(-v.Float), nil
		default:
			return Value{}, fmt.Errorf("sqlkit: unary minus over %s", v.Kind)
		}
	case *FuncCall:
		return ex.evalFunc(x, en)
	case *IsNullExpr:
		v, err := ex.eval(x.X, en)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(v.IsNull() != x.Not), nil
	case *BetweenExpr:
		v, err := ex.eval(x.X, en)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(x.Lo, en)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(x.Hi, en)
		if err != nil {
			return Value{}, err
		}
		c1, ok1 := Compare(v, lo)
		c2, ok2 := Compare(v, hi)
		if !ok1 || !ok2 {
			return Null(), nil
		}
		in := c1 >= 0 && c2 <= 0
		return BoolVal(in != x.Not), nil
	case *InExpr:
		return ex.evalIn(x, en)
	case *ExistsExpr:
		_, rel, err := ex.selectChain(x.Sub, en)
		if err != nil {
			return Value{}, err
		}
		return BoolVal((len(rel.rows) > 0) != x.Not), nil
	case *SubqueryExpr:
		_, rel, err := ex.selectChain(x.Sub, en)
		if err != nil {
			return Value{}, err
		}
		if len(rel.rows) == 0 {
			return Null(), nil
		}
		if len(rel.rows) > 1 {
			return Value{}, fmt.Errorf("sqlkit: scalar sub-query returned %d rows", len(rel.rows))
		}
		if len(rel.rows[0]) != 1 {
			return Value{}, fmt.Errorf("sqlkit: scalar sub-query returned %d columns", len(rel.rows[0]))
		}
		return rel.rows[0][0], nil
	default:
		return Value{}, fmt.Errorf("sqlkit: cannot evaluate %T", e)
	}
}

func (ex *executor) evalBinary(x *Binary, en *env) (Value, error) {
	// AND/OR implement three-valued logic with short-circuit where sound.
	if x.Op == OpAnd || x.Op == OpOr {
		l, err := ex.eval(x.L, en)
		if err != nil {
			return Value{}, err
		}
		if x.Op == OpAnd && l.Kind == KindBool && !l.Bool {
			return BoolVal(false), nil
		}
		if x.Op == OpOr && l.Kind == KindBool && l.Bool {
			return BoolVal(true), nil
		}
		r, err := ex.eval(x.R, en)
		if err != nil {
			return Value{}, err
		}
		lb, lNull := l.Bool, l.IsNull()
		rb, rNull := r.Bool, r.IsNull()
		if !lNull && l.Kind != KindBool || !rNull && r.Kind != KindBool {
			return Value{}, fmt.Errorf("sqlkit: %s over non-boolean operands", x.Op)
		}
		if x.Op == OpAnd {
			switch {
			case !lNull && !rNull:
				return BoolVal(lb && rb), nil
			case (!lNull && !lb) || (!rNull && !rb):
				return BoolVal(false), nil
			default:
				return Null(), nil
			}
		}
		switch {
		case !lNull && !rNull:
			return BoolVal(lb || rb), nil
		case (!lNull && lb) || (!rNull && rb):
			return BoolVal(true), nil
		default:
			return Null(), nil
		}
	}

	l, err := ex.eval(x.L, en)
	if err != nil {
		return Value{}, err
	}
	r, err := ex.eval(x.R, en)
	if err != nil {
		return Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}

	switch x.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, ok := Compare(l, r)
		if !ok {
			return Null(), nil
		}
		switch x.Op {
		case OpEq:
			return BoolVal(c == 0), nil
		case OpNe:
			return BoolVal(c != 0), nil
		case OpLt:
			return BoolVal(c < 0), nil
		case OpLe:
			return BoolVal(c <= 0), nil
		case OpGt:
			return BoolVal(c > 0), nil
		default:
			return BoolVal(c >= 0), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.Kind == KindString && r.Kind == KindString && x.Op == OpAdd {
			return StringVal(l.Str + r.Str), nil
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Value{}, fmt.Errorf("sqlkit: arithmetic over non-numeric %s and %s", l.Kind, r.Kind)
		}
		bothInt := l.Kind == KindInt && r.Kind == KindInt
		switch x.Op {
		case OpAdd:
			if bothInt {
				return IntVal(l.Int + r.Int), nil
			}
			return FloatVal(lf + rf), nil
		case OpSub:
			if bothInt {
				return IntVal(l.Int - r.Int), nil
			}
			return FloatVal(lf - rf), nil
		case OpMul:
			if bothInt {
				return IntVal(l.Int * r.Int), nil
			}
			return FloatVal(lf * rf), nil
		default:
			if rf == 0 {
				return Null(), nil // SQL engines vary; NULL keeps generated queries executable
			}
			if bothInt && l.Int%r.Int == 0 {
				return IntVal(l.Int / r.Int), nil
			}
			return FloatVal(lf / rf), nil
		}
	case OpLike:
		if l.Kind != KindString || r.Kind != KindString {
			return Value{}, fmt.Errorf("sqlkit: LIKE over non-string operands")
		}
		return BoolVal(likeMatch(l.Str, r.Str)), nil
	default:
		return Value{}, fmt.Errorf("sqlkit: unknown operator %s", x.Op)
	}
}

func (ex *executor) evalIn(x *InExpr, en *env) (Value, error) {
	v, err := ex.eval(x.X, en)
	if err != nil {
		return Value{}, err
	}
	var candidates []Value
	if x.Sub != nil {
		_, rel, err := ex.selectChain(x.Sub, en)
		if err != nil {
			return Value{}, err
		}
		for _, row := range rel.rows {
			if len(row) != 1 {
				return Value{}, fmt.Errorf("sqlkit: IN sub-query must return one column")
			}
			candidates = append(candidates, row[0])
		}
	} else {
		for _, le := range x.List {
			cv, err := ex.eval(le, en)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, cv)
		}
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if eq, ok := Equal(v, c); ok && eq {
			return BoolVal(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return BoolVal(x.Not), nil
}

// evalFunc handles scalar functions and aggregate references (which resolve
// from the grouped environment).
func (ex *executor) evalFunc(x *FuncCall, en *env) (Value, error) {
	if aggregateNames[x.Name] {
		for s := en; s != nil; s = s.outer {
			if s.aggs != nil {
				if v, ok := s.aggs[x]; ok {
					return v, nil
				}
			}
		}
		return Value{}, fmt.Errorf("sqlkit: aggregate %s used outside a grouped query", x.Name)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a, en)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlkit: %s takes %d argument(s)", x.Name, n)
		}
		return nil
	}
	switch x.Name {
	case "UPPER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return StringVal(strings.ToUpper(args[0].Str)), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return StringVal(strings.ToLower(args[0].Str)), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return IntVal(int64(len(args[0].Str))), nil
	case "ABS":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0]
		switch v.Kind {
		case KindNull:
			return Null(), nil
		case KindInt:
			if v.Int < 0 {
				return IntVal(-v.Int), nil
			}
			return v, nil
		case KindFloat:
			return FloatVal(math.Abs(v.Float)), nil
		default:
			return Value{}, fmt.Errorf("sqlkit: ABS over %s", v.Kind)
		}
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	case "ROUND":
		if err := need(1); err != nil {
			return Value{}, err
		}
		f, ok := args[0].AsFloat()
		if !ok {
			if args[0].IsNull() {
				return Null(), nil
			}
			return Value{}, fmt.Errorf("sqlkit: ROUND over %s", args[0].Kind)
		}
		return IntVal(int64(math.Round(f))), nil
	default:
		return Value{}, fmt.Errorf("sqlkit: unknown function %q", x.Name)
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (matching common collations and keeping generated workloads forgiving).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}
