package sqlkit

import (
	"fmt"
	"strings"
	"testing"
)

func indexedDB(t testing.TB, n int) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE events (id INT, kind TEXT, year INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		db.InsertRow("events", []Value{
			IntVal(int64(i)),
			StringVal([]string{"concert", "meeting", "expo"}[i%3]),
			IntVal(int64(2010 + i%10)),
		})
	}
	if _, err := db.Exec("CREATE INDEX idx_kind ON events (kind)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	db := indexedDB(t, 300)
	indexed, err := db.Exec("SELECT id FROM events WHERE kind = 'concert' AND year > 2014 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	// Same query against an identical un-indexed database.
	plain := NewDB()
	plain.Exec("CREATE TABLE events (id INT, kind TEXT, year INT)")
	for i := 0; i < 300; i++ {
		plain.InsertRow("events", []Value{
			IntVal(int64(i)),
			StringVal([]string{"concert", "meeting", "expo"}[i%3]),
			IntVal(int64(2010 + i%10)),
		})
	}
	want, err := plain.Exec("SELECT id FROM events WHERE kind = 'concert' AND year > 2014 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !indexed.EqualOrdered(want) {
		t.Errorf("index scan results diverge: %d vs %d rows", indexed.NumRows(), want.NumRows())
	}
}

func TestIndexScanInExplain(t *testing.T) {
	db := indexedDB(t, 50)
	plan, err := db.Explain("SELECT id FROM events WHERE kind = 'meeting'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "INDEX SCAN events USING idx_kind (kind = 'meeting')") {
		t.Errorf("plan does not use index:\n%s", plan)
	}
	// Joins and non-equality predicates fall back to full scans.
	plan, _ = db.Explain("SELECT id FROM events WHERE kind > 'a'")
	if strings.Contains(plan, "INDEX SCAN") {
		t.Errorf("range predicate used an index:\n%s", plan)
	}
	plan, _ = db.Explain("SELECT a.id FROM events AS a JOIN events AS b ON a.id = b.id WHERE a.kind = 'expo'")
	if strings.Contains(plan, "INDEX SCAN") {
		t.Errorf("join query used the single-table index path:\n%s", plan)
	}
}

func TestIndexInvalidatedByWrites(t *testing.T) {
	db := indexedDB(t, 30)
	before, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'expo'")
	db.Exec("INSERT INTO events VALUES (999, 'expo', 2030)")
	after, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'expo'")
	if after.Rows[0][0].Int != before.Rows[0][0].Int+1 {
		t.Errorf("stale index after insert: %v -> %v", before.Rows[0][0], after.Rows[0][0])
	}
	db.Exec("DELETE FROM events WHERE id = 999")
	final, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'expo'")
	if final.Rows[0][0].Int != before.Rows[0][0].Int {
		t.Errorf("stale index after delete: %v", final.Rows[0][0])
	}
	db.Exec("UPDATE events SET kind = 'concert' WHERE id = 0")
	upd, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'concert'")
	plain, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'concert' OR 1 = 0") // OR defeats the index
	if upd.Rows[0][0].Int != plain.Rows[0][0].Int {
		t.Errorf("index %v disagrees with full scan %v after update", upd.Rows[0][0], plain.Rows[0][0])
	}
}

func TestIndexSurvivesTransactionRollback(t *testing.T) {
	db := indexedDB(t, 30)
	base, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'concert'")
	db.Exec("BEGIN")
	db.Exec("DELETE FROM events WHERE kind = 'concert'")
	mid, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'concert'")
	if mid.Rows[0][0].Int != 0 {
		t.Errorf("in-tx count = %v", mid.Rows[0][0])
	}
	db.Exec("ROLLBACK")
	after, _ := db.Exec("SELECT COUNT(*) FROM events WHERE kind = 'concert'")
	if after.Rows[0][0].Int != base.Rows[0][0].Int {
		t.Errorf("post-rollback index count %v, want %v", after.Rows[0][0], base.Rows[0][0])
	}
}

func TestCreateDropIndexErrors(t *testing.T) {
	db := indexedDB(t, 5)
	if _, err := db.Exec("CREATE INDEX idx_kind ON events (kind)"); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := db.Exec("CREATE INDEX i2 ON nope (kind)"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec("CREATE INDEX i3 ON events (nope)"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec("DROP INDEX nope"); err == nil {
		t.Error("unknown index dropped")
	}
	if _, err := db.Exec("DROP INDEX idx_kind"); err != nil {
		t.Errorf("drop failed: %v", err)
	}
	plan, _ := db.Explain("SELECT id FROM events WHERE kind = 'expo'")
	if strings.Contains(plan, "INDEX SCAN") {
		t.Error("dropped index still used")
	}
}

func TestDropTableDropsIndexes(t *testing.T) {
	db := indexedDB(t, 5)
	db.Exec("DROP TABLE events")
	db.Exec("CREATE TABLE events (id INT, kind TEXT, year INT)")
	// The old index must be gone; recreating under the same name works.
	if _, err := db.Exec("CREATE INDEX idx_kind ON events (kind)"); err != nil {
		t.Errorf("recreate index after drop table: %v", err)
	}
}

func TestCreateIndexSQLRoundTrip(t *testing.T) {
	for _, sql := range []string{"CREATE INDEX i ON t (c)", "DROP INDEX i"} {
		st := mustParse(t, sql)
		if st.SQL() != sql {
			t.Errorf("round trip: %q -> %q", sql, st.SQL())
		}
	}
}

func BenchmarkPointLookupIndexed(b *testing.B) {
	db := indexedDB(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM events WHERE kind = 'concert' AND year = %d", 2010+i%10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointLookupFullScan(b *testing.B) {
	db := NewDB()
	db.Exec("CREATE TABLE events (id INT, kind TEXT, year INT)")
	for i := 0; i < 5000; i++ {
		db.InsertRow("events", []Value{
			IntVal(int64(i)), StringVal([]string{"concert", "meeting", "expo"}[i%3]), IntVal(int64(2010 + i%10)),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM events WHERE kind = 'concert' AND year = %d", 2010+i%10)); err != nil {
			b.Fatal(err)
		}
	}
}
