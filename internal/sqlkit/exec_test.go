package sqlkit

import (
	"strings"
	"testing"
)

// stadiumDB builds the concert/stadium schema the paper's NL2SQL discussion
// uses (Section III-B1).
func stadiumDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	script := `
CREATE TABLE stadium (stadium_id INT, name TEXT, city TEXT, capacity INT);
CREATE TABLE concert (concert_id INT, stadium_id INT, year INT, attendance INT);
CREATE TABLE sports_meeting (meeting_id INT, stadium_id INT, year INT);
INSERT INTO stadium VALUES (1, 'Anfield', 'Liverpool', 54000), (2, 'Camp Nou', 'Barcelona', 99000), (3, 'Old Trafford', 'Manchester', 74000), (4, 'San Siro', 'Milan', 80000), (5, 'Wembley', 'London', 90000);
INSERT INTO concert VALUES (10, 1, 2014, 40000), (11, 1, 2014, 35000), (12, 2, 2014, 80000), (13, 3, 2015, 60000), (14, 4, 2013, 50000), (15, 5, 2014, 85000);
INSERT INTO sports_meeting VALUES (20, 1, 2015), (21, 2, 2015), (22, 4, 2015);
`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatalf("stadiumDB setup: %v", err)
	}
	return db
}

func query(t testing.TB, db *DB, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func names(r *Result) []string {
	var out []string
	for _, row := range r.Rows {
		out = append(out, row[0].Display())
	}
	return out
}

func TestSelectWhere(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium WHERE capacity > 80000")
	got := names(r)
	if len(got) != 2 || got[0] != "Camp Nou" || got[1] != "Wembley" {
		t.Errorf("got %v", got)
	}
}

func TestSelectStarColumns(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT * FROM stadium LIMIT 1")
	if len(r.Cols) != 4 || r.Cols[0] != "stadium_id" {
		t.Errorf("cols = %v", r.Cols)
	}
}

func TestJoinExec(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT DISTINCT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014 ORDER BY s.name")
	got := names(r)
	want := []string{"Anfield", "Camp Nou", "Wembley"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLeftJoinExec(t *testing.T) {
	db := stadiumDB(t)
	// Old Trafford had no 2014 concert; LEFT JOIN keeps it with NULLs.
	r := query(t, db, "SELECT s.name, c.concert_id FROM stadium AS s LEFT JOIN (SELECT * FROM concert WHERE year = 2014) AS c ON s.stadium_id = c.stadium_id ORDER BY s.name")
	found := false
	for _, row := range r.Rows {
		if row[0].Display() == "Old Trafford" {
			found = true
			if !row[1].IsNull() {
				t.Errorf("Old Trafford concert_id = %v, want NULL", row[1])
			}
		}
	}
	if !found {
		t.Error("LEFT JOIN dropped unmatched row")
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT stadium_id, COUNT(*) AS n, SUM(attendance) AS total, AVG(attendance) AS mean FROM concert GROUP BY stadium_id ORDER BY stadium_id")
	if len(r.Rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(r.Rows))
	}
	// stadium 1 has two concerts: 40000 + 35000.
	first := r.Rows[0]
	if first[1].Int != 2 || first[2].Int != 75000 {
		t.Errorf("stadium 1 aggregates wrong: %v", first)
	}
	if first[3].Float != 37500 {
		t.Errorf("avg = %v, want 37500", first[3])
	}
}

func TestHaving(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT stadium_id FROM concert GROUP BY stadium_id HAVING COUNT(*) > 1")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 1 {
		t.Errorf("got %v", r.Rows)
	}
}

func TestMinMax(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT MIN(capacity), MAX(capacity) FROM stadium")
	if r.Rows[0][0].Int != 54000 || r.Rows[0][1].Int != 99000 {
		t.Errorf("min/max = %v", r.Rows[0])
	}
}

func TestCountDistinct(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT COUNT(DISTINCT year) FROM concert")
	if r.Rows[0][0].Int != 3 {
		t.Errorf("distinct years = %v, want 3", r.Rows[0][0])
	}
}

func TestOrderByDesc(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2")
	got := names(r)
	if got[0] != "Camp Nou" || got[1] != "Wembley" {
		t.Errorf("got %v", got)
	}
}

func TestSubqueryIn(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM sports_meeting WHERE year = 2015) ORDER BY name")
	got := names(r)
	want := []string{"Anfield", "Camp Nou", "San Siro"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium AS s WHERE EXISTS (SELECT 1 FROM concert AS c WHERE c.stadium_id = s.stadium_id AND c.year = 2015)")
	got := names(r)
	if len(got) != 1 || got[0] != "Old Trafford" {
		t.Errorf("got %v", got)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium WHERE capacity > (SELECT AVG(capacity) FROM stadium) ORDER BY name")
	got := names(r)
	want := []string{"Camp Nou", "San Siro", "Wembley"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSetOperations(t *testing.T) {
	db := stadiumDB(t)
	// Paper's Q1: concerts in 2014 OR sports meetings in 2015.
	union := query(t, db, `SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014 UNION SELECT s.name FROM stadium AS s JOIN sports_meeting AS m ON s.stadium_id = m.stadium_id WHERE m.year = 2015`)
	if len(union.Rows) != 4 {
		t.Errorf("union rows = %d, want 4: %v", len(union.Rows), names(union))
	}
	// Paper's Q4: 2014 concerts AND 2015 sports meetings.
	inter := query(t, db, `SELECT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014 INTERSECT SELECT s.name FROM stadium AS s JOIN sports_meeting AS m ON s.stadium_id = m.stadium_id WHERE m.year = 2015`)
	got := names(inter)
	if len(got) != 2 {
		t.Errorf("intersect = %v, want Anfield and Camp Nou", got)
	}
	// Paper's Q5: 2014 concerts but NOT 2015 sports meetings.
	except := query(t, db, `SELECT DISTINCT s.name FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id WHERE c.year = 2014 EXCEPT SELECT s.name FROM stadium AS s JOIN sports_meeting AS m ON s.stadium_id = m.stadium_id WHERE m.year = 2015`)
	got = names(except)
	if len(got) != 1 || got[0] != "Wembley" {
		t.Errorf("except = %v, want [Wembley]", got)
	}
}

func TestDerivedTableExec(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT t.n FROM (SELECT COUNT(*) AS n FROM concert) AS t")
	if r.Rows[0][0].Int != 6 {
		t.Errorf("n = %v", r.Rows[0][0])
	}
}

func TestLikeAndBetween(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT name FROM stadium WHERE name LIKE '%old%' OR capacity BETWEEN 89000 AND 100000 ORDER BY name")
	got := names(r)
	want := []string{"Camp Nou", "Old Trafford", "Wembley"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	db.Exec("CREATE TABLE t (a INT, b INT)")
	db.Exec("INSERT INTO t VALUES (1, NULL), (2, 5), (NULL, NULL)")
	// NULL comparisons filter out.
	r := query(t, db, "SELECT a FROM t WHERE b > 1")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 2 {
		t.Errorf("null filter wrong: %v", r.Rows)
	}
	// COUNT(col) skips NULLs; COUNT(*) does not.
	r = query(t, db, "SELECT COUNT(a), COUNT(*) FROM t")
	if r.Rows[0][0].Int != 2 || r.Rows[0][1].Int != 3 {
		t.Errorf("count = %v", r.Rows[0])
	}
	// IS NULL.
	r = query(t, db, "SELECT COUNT(*) FROM t WHERE b IS NULL")
	if r.Rows[0][0].Int != 2 {
		t.Errorf("is-null count = %v", r.Rows[0][0])
	}
	// x IN (..., NULL) is unknown when no match.
	r = query(t, db, "SELECT COUNT(*) FROM t WHERE a IN (99, NULL)")
	if r.Rows[0][0].Int != 0 {
		t.Errorf("in-with-null = %v", r.Rows[0][0])
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "INSERT INTO stadium VALUES (6, 'Signal Iduna Park', 'Dortmund', 81000)")
	if r.Affected != 1 {
		t.Errorf("insert affected = %d", r.Affected)
	}
	r = query(t, db, "UPDATE stadium SET capacity = capacity + 1000 WHERE city = 'Dortmund'")
	if r.Affected != 1 {
		t.Errorf("update affected = %d", r.Affected)
	}
	got := query(t, db, "SELECT capacity FROM stadium WHERE stadium_id = 6")
	if got.Rows[0][0].Int != 82000 {
		t.Errorf("capacity = %v", got.Rows[0][0])
	}
	r = query(t, db, "DELETE FROM stadium WHERE stadium_id = 6")
	if r.Affected != 1 {
		t.Errorf("delete affected = %d", r.Affected)
	}
	if query(t, db, "SELECT COUNT(*) FROM stadium").Rows[0][0].Int != 5 {
		t.Error("delete did not remove row")
	}
}

func TestTransactionCommitAndRollback(t *testing.T) {
	db := NewDB()
	db.Exec("CREATE TABLE accounts (owner TEXT, balance INT)")
	db.Exec("INSERT INTO accounts VALUES ('Alice', 5000), ('Bob', 100), ('Express', 0)")

	// The paper's NL2Transaction example: Alice pays Bob $1000, Bob pays the
	// express company $5.
	script := `BEGIN;
UPDATE accounts SET balance = balance - 1000 WHERE owner = 'Alice';
UPDATE accounts SET balance = balance + 1000 WHERE owner = 'Bob';
UPDATE accounts SET balance = balance - 5 WHERE owner = 'Bob';
UPDATE accounts SET balance = balance + 5 WHERE owner = 'Express';
COMMIT;`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	r := query(t, db, "SELECT balance FROM accounts WHERE owner = 'Bob'")
	if r.Rows[0][0].Int != 1095 {
		t.Errorf("Bob balance = %v, want 1095", r.Rows[0][0])
	}

	// Rollback restores the pre-transaction state.
	db.Exec("BEGIN")
	db.Exec("UPDATE accounts SET balance = 0 WHERE owner = 'Alice'")
	db.Exec("ROLLBACK")
	r = query(t, db, "SELECT balance FROM accounts WHERE owner = 'Alice'")
	if r.Rows[0][0].Int != 4000 {
		t.Errorf("Alice balance after rollback = %v, want 4000", r.Rows[0][0])
	}
}

func TestTransactionErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("COMMIT"); err == nil {
		t.Error("COMMIT outside tx succeeded")
	}
	if _, err := db.Exec("ROLLBACK"); err == nil {
		t.Error("ROLLBACK outside tx succeeded")
	}
	db.Exec("BEGIN")
	if _, err := db.Exec("BEGIN"); err == nil {
		t.Error("nested BEGIN succeeded")
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := stadiumDB(t)
	if _, err := db.Exec("SELECT * FROM nope"); err == nil {
		t.Error("unknown table succeeded")
	}
	if _, err := db.Exec("SELECT missing FROM stadium"); err == nil {
		t.Error("unknown column succeeded")
	}
	if _, err := db.Exec("INSERT INTO stadium (bad_col) VALUES (1)"); err == nil {
		t.Error("insert into unknown column succeeded")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := stadiumDB(t)
	r := query(t, db, "SELECT UPPER(name), LOWER(city), LENGTH(name) FROM stadium WHERE stadium_id = 1")
	row := r.Rows[0]
	if row[0].Str != "ANFIELD" || row[1].Str != "liverpool" || row[2].Int != 7 {
		t.Errorf("functions wrong: %v", row)
	}
	r = query(t, db, "SELECT ABS(-5), ROUND(3.6), COALESCE(NULL, 7)")
	row = r.Rows[0]
	if row[0].Int != 5 || row[1].Int != 4 || row[2].Int != 7 {
		t.Errorf("scalar funcs: %v", row)
	}
}

func TestArithmeticAndDivisionByZero(t *testing.T) {
	db := NewDB()
	r := query(t, db, "SELECT 2 + 3 * 4, 10 / 4, 10 / 5, 1 / 0")
	row := r.Rows[0]
	if row[0].Int != 14 {
		t.Errorf("precedence: %v", row[0])
	}
	if row[1].Float != 2.5 {
		t.Errorf("10/4 = %v", row[1])
	}
	if row[2].Int != 2 {
		t.Errorf("10/5 = %v", row[2])
	}
	if !row[3].IsNull() {
		t.Errorf("1/0 = %v, want NULL", row[3])
	}
}

func TestResultEquivalence(t *testing.T) {
	db := stadiumDB(t)
	a := query(t, db, "SELECT name FROM stadium WHERE capacity > 80000 ORDER BY name")
	b := query(t, db, "SELECT name FROM stadium WHERE capacity > 80000 ORDER BY name DESC")
	if !a.EqualBag(b) {
		t.Error("bag equality failed for reordered results")
	}
	if a.EqualOrdered(b) {
		t.Error("ordered equality true for reordered results")
	}
	c := query(t, db, "SELECT name FROM stadium WHERE capacity > 90000")
	if a.EqualBag(c) {
		t.Error("bag equality true for different results")
	}
}

func TestSemanticEquivalencePairs(t *testing.T) {
	db := stadiumDB(t)
	// Rewrites that must produce identical result bags (logic-bug detection
	// protocol from the paper's Section II-A).
	pairs := [][2]string{
		{
			"SELECT name FROM stadium WHERE capacity > 60000 AND city <> 'Milan'",
			"SELECT name FROM stadium WHERE NOT (capacity <= 60000 OR city = 'Milan')",
		},
		{
			"SELECT name FROM stadium WHERE capacity BETWEEN 54000 AND 80000",
			"SELECT name FROM stadium WHERE capacity >= 54000 AND capacity <= 80000",
		},
		{
			"SELECT stadium_id FROM concert WHERE year IN (2013, 2015)",
			"SELECT stadium_id FROM concert WHERE year = 2013 OR year = 2015",
		},
	}
	for _, p := range pairs {
		a, b := query(t, db, p[0]), query(t, db, p[1])
		if !a.EqualBag(b) {
			t.Errorf("semantically equivalent queries disagree:\n  %s -> %v\n  %s -> %v",
				p[0], a.Rows, p[1], b.Rows)
		}
	}
}

func TestFormat(t *testing.T) {
	db := stadiumDB(t)
	out := query(t, db, "SELECT name, city FROM stadium WHERE stadium_id = 1").Format()
	if !strings.Contains(out, "Anfield") || !strings.Contains(out, "Liverpool") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestCloneIsolation(t *testing.T) {
	db := stadiumDB(t)
	cp := db.Clone()
	cp.Exec("DELETE FROM stadium")
	if query(t, db, "SELECT COUNT(*) FROM stadium").Rows[0][0].Int != 5 {
		t.Error("clone mutation leaked into original")
	}
}

func TestSchemaText(t *testing.T) {
	db := stadiumDB(t)
	s := db.SchemaText()
	for _, want := range []string{"CREATE TABLE stadium", "capacity INT", "CREATE TABLE concert"} {
		if !strings.Contains(s, want) {
			t.Errorf("schema text missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkExecJoinGroup(b *testing.B) {
	db := stadiumDB(b)
	q := "SELECT s.name, COUNT(*) AS n FROM stadium AS s JOIN concert AS c ON s.stadium_id = c.stadium_id GROUP BY s.name ORDER BY n DESC"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := NewDB()
	db.Exec("CREATE TABLE l (id INT, v INT)")
	db.Exec("CREATE TABLE r (id INT, v INT)")
	for i := 0; i < 500; i++ {
		db.InsertRow("l", []Value{IntVal(int64(i)), IntVal(int64(i * 2))})
		db.InsertRow("r", []Value{IntVal(int64(i)), IntVal(int64(i * 3))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM l JOIN r ON l.id = r.id"); err != nil {
			b.Fatal(err)
		}
	}
}
