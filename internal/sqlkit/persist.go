package sqlkit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// JSON snapshot format. Values use natural JSON for strings, bools and
// NULL; numbers are tagged so the int/float distinction survives the round
// trip ({"k":"i","v":"42"} / {"k":"f","v":"1.5"}).

type dbJSON struct {
	Tables []tableJSON `json:"tables"`
}

type tableJSON struct {
	Name string              `json:"name"`
	Cols []columnJSON        `json:"cols"`
	Rows [][]json.RawMessage `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func encodeValue(v Value) (json.RawMessage, error) {
	switch v.Kind {
	case KindNull:
		return json.RawMessage("null"), nil
	case KindBool:
		return json.Marshal(v.Bool)
	case KindString:
		return json.Marshal(v.Str)
	case KindInt:
		return json.Marshal(map[string]string{"k": "i", "v": strconv.FormatInt(v.Int, 10)})
	case KindFloat:
		return json.Marshal(map[string]string{"k": "f", "v": strconv.FormatFloat(v.Float, 'g', -1, 64)})
	default:
		return nil, fmt.Errorf("sqlkit: cannot encode value kind %v", v.Kind)
	}
}

func decodeValue(raw json.RawMessage) (Value, error) {
	if string(raw) == "null" {
		return Null(), nil
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return BoolVal(b), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return StringVal(s), nil
	}
	var tagged map[string]string
	if err := json.Unmarshal(raw, &tagged); err != nil {
		return Value{}, fmt.Errorf("sqlkit: bad value encoding %s", raw)
	}
	switch tagged["k"] {
	case "i":
		i, err := strconv.ParseInt(tagged["v"], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqlkit: bad int encoding %s: %w", raw, err)
		}
		return IntVal(i), nil
	case "f":
		f, err := strconv.ParseFloat(tagged["v"], 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqlkit: bad float encoding %s: %w", raw, err)
		}
		return FloatVal(f), nil
	default:
		return Value{}, fmt.Errorf("sqlkit: unknown value tag in %s", raw)
	}
}

func colTypeFromString(s string) (ColType, error) {
	switch s {
	case "INT":
		return TInt, nil
	case "FLOAT":
		return TFloat, nil
	case "TEXT":
		return TText, nil
	case "BOOL":
		return TBool, nil
	default:
		return 0, fmt.Errorf("sqlkit: unknown column type %q", s)
	}
}

// SaveJSON writes a snapshot of the database (tables in sorted name order,
// so output is deterministic).
func (db *DB) SaveJSON(w io.Writer) error {
	var out dbJSON
	for _, name := range db.TableNames() {
		t := db.Table(name)
		tj := tableJSON{Name: t.Name}
		for _, c := range t.Cols {
			tj.Cols = append(tj.Cols, columnJSON{Name: c.Name, Type: c.Type.String()})
		}
		for _, row := range t.Rows {
			rj := make([]json.RawMessage, len(row))
			for i, v := range row {
				raw, err := encodeValue(v)
				if err != nil {
					return err
				}
				rj[i] = raw
			}
			tj.Rows = append(tj.Rows, rj)
		}
		out.Tables = append(out.Tables, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a snapshot into a fresh database.
func LoadJSON(r io.Reader) (*DB, error) {
	var in dbJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sqlkit: decode snapshot: %w", err)
	}
	db := NewDB()
	for _, tj := range in.Tables {
		cols := make([]Column, len(tj.Cols))
		for i, cj := range tj.Cols {
			ct, err := colTypeFromString(cj.Type)
			if err != nil {
				return nil, err
			}
			cols[i] = Column{Name: cj.Name, Type: ct}
		}
		if err := db.CreateTable(tj.Name, cols); err != nil {
			return nil, err
		}
		for _, rj := range tj.Rows {
			row := make([]Value, len(rj))
			for i, raw := range rj {
				v, err := decodeValue(raw)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			if err := db.InsertRow(tj.Name, row); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveFile snapshots the database to path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.SaveJSON(f)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadJSON(f)
}
