package sqlkit

import (
	"fmt"
	"sort"
	"strings"
)

// qcol is a qualified column label inside the executor.
type qcol struct {
	table string // lower-cased alias or table name
	name  string // lower-cased column name
}

// env is one evaluation scope: a row with qualified column labels, chained
// to an outer scope for correlated sub-queries.
type env struct {
	cols  []qcol
	row   []Value
	outer *env
	// aggs binds computed aggregate values when evaluating grouped output.
	aggs map[*FuncCall]Value
	// groupRows holds the group's rows for aggregate computation.
}

// lookup resolves a column reference walking outward through scopes.
func (e *env) lookup(table, name string) (Value, bool) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	for s := e; s != nil; s = s.outer {
		for i, c := range s.cols {
			if c.name == name && (table == "" || c.table == table) {
				return s.row[i], true
			}
		}
	}
	return Value{}, false
}

// relation is an intermediate result: labeled columns and rows.
type relation struct {
	cols []qcol
	rows [][]Value
}

// executor runs SELECT evaluation against a DB (whose mutex the caller holds).
type executor struct {
	db *DB
}

// selectResult executes a (possibly set-op chained) select and renders a
// Result with output column names.
func (ex *executor) selectResult(s *SelectStmt, outer *env) (*Result, error) {
	names, rel, err := ex.selectChain(s, outer)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: names, Rows: rel.rows}, nil
}

// selectChain evaluates s and any set-operation chain hanging off it.
func (ex *executor) selectChain(s *SelectStmt, outer *env) ([]string, *relation, error) {
	names, rel, err := ex.selectCore(s, outer)
	if err != nil {
		return nil, nil, err
	}
	for op := s.Setop; op != nil; op = op.Right.Setop {
		_, right, err := ex.selectCore(op.Right, outer)
		if err != nil {
			return nil, nil, err
		}
		if len(right.cols) != len(rel.cols) {
			return nil, nil, fmt.Errorf("sqlkit: set operation arity mismatch: %d vs %d", len(rel.cols), len(right.cols))
		}
		rel = applySetOp(op.Kind, op.All, rel, right)
	}
	return names, rel, nil
}

func applySetOp(kind SetOpKind, all bool, left, right *relation) *relation {
	out := &relation{cols: left.cols}
	switch kind {
	case Union:
		out.rows = append(append([][]Value{}, left.rows...), right.rows...)
		if !all {
			out.rows = dedupeRows(out.rows)
		}
	case Intersect:
		rk := rowMultiset(right.rows)
		for _, r := range left.rows {
			k := rowKey(r)
			if rk[k] > 0 {
				out.rows = append(out.rows, r)
				if !all {
					rk[k] = 0
				} else {
					rk[k]--
				}
			}
		}
		if !all {
			out.rows = dedupeRows(out.rows)
		}
	case Except:
		rk := rowMultiset(right.rows)
		for _, r := range left.rows {
			k := rowKey(r)
			if rk[k] > 0 {
				if all {
					rk[k]--
				}
				continue
			}
			out.rows = append(out.rows, r)
		}
		if !all {
			out.rows = dedupeRows(out.rows)
		}
	}
	return out
}

func rowKey(r []Value) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.key()
	}
	return strings.Join(parts, "\x00")
}

func rowMultiset(rows [][]Value) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[rowKey(r)]++
	}
	return m
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// selectCore evaluates one SELECT block (no set ops).
func (ex *executor) selectCore(s *SelectStmt, outer *env) ([]string, *relation, error) {
	var src *relation
	if def, val, ok := ex.db.indexScanEligible(s); ok {
		// Index scan: probe the hash index, keep only matching rows. The
		// full WHERE still runs below (the index conjunct re-passes).
		t := ex.db.tables[def.table]
		rel, err := ex.tableRelation(s.From[0], outer)
		if err != nil {
			return nil, nil, err
		}
		rows := make([][]Value, 0)
		for _, ri := range def.payload[val.key()] {
			rows = append(rows, t.Rows[ri])
		}
		src = &relation{cols: rel.cols, rows: rows}
	} else {
		var err error
		src, err = ex.buildSource(s, outer)
		if err != nil {
			return nil, nil, err
		}
	}

	// WHERE.
	if s.Where != nil {
		filtered := src.rows[:0:0]
		for _, row := range src.rows {
			e := &env{cols: src.cols, row: row, outer: outer}
			v, err := ex.eval(s.Where, e)
			if err != nil {
				return nil, nil, err
			}
			if v.IsTrue() {
				filtered = append(filtered, row)
			}
		}
		src = &relation{cols: src.cols, rows: filtered}
	}

	aggs := collectAggregates(s)
	grouped := len(s.GroupBy) > 0 || len(aggs) > 0

	names := outputNames(s, src)

	type outRow struct {
		proj []Value
		keys []Value // order-by keys
	}
	var outs []outRow

	orderExprs := make([]Expr, len(s.OrderBy))
	for i, k := range s.OrderBy {
		orderExprs[i] = resolveOrderExpr(k.Expr, s)
	}

	project := func(e *env) (outRow, error) {
		var r outRow
		if len(s.Exprs) == 0 {
			r.proj = append([]Value(nil), e.row...)
		} else {
			r.proj = make([]Value, len(s.Exprs))
			for i, se := range s.Exprs {
				v, err := ex.eval(se.Expr, e)
				if err != nil {
					return r, err
				}
				r.proj[i] = v
			}
		}
		r.keys = make([]Value, len(orderExprs))
		for i, oe := range orderExprs {
			v, err := ex.eval(oe, e)
			if err != nil {
				return r, err
			}
			r.keys[i] = v
		}
		return r, nil
	}

	if grouped {
		groups, order, err := ex.groupRows(s, src, outer)
		if err != nil {
			return nil, nil, err
		}
		for _, gk := range order {
			g := groups[gk]
			aggVals := make(map[*FuncCall]Value, len(aggs))
			for _, a := range aggs {
				v, err := ex.computeAggregate(a, src.cols, g, outer)
				if err != nil {
					return nil, nil, err
				}
				aggVals[a] = v
			}
			var rep []Value
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = make([]Value, len(src.cols))
			}
			e := &env{cols: src.cols, row: rep, outer: outer, aggs: aggVals}
			if s.Having != nil {
				hv, err := ex.eval(s.Having, e)
				if err != nil {
					return nil, nil, err
				}
				if !hv.IsTrue() {
					continue
				}
			}
			r, err := project(e)
			if err != nil {
				return nil, nil, err
			}
			outs = append(outs, r)
		}
	} else {
		for _, row := range src.rows {
			e := &env{cols: src.cols, row: row, outer: outer}
			r, err := project(e)
			if err != nil {
				return nil, nil, err
			}
			outs = append(outs, r)
		}
	}

	// ORDER BY (stable, honoring DESC per key, NULLs last).
	if len(s.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k := range s.OrderBy {
				a, b := outs[i].keys[k], outs[j].keys[k]
				if a.IsNull() && b.IsNull() {
					continue
				}
				if a.IsNull() {
					return false
				}
				if b.IsNull() {
					return true
				}
				c, ok := Compare(a, b)
				if !ok || c == 0 {
					continue
				}
				if s.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	rows := make([][]Value, len(outs))
	for i, o := range outs {
		rows[i] = o.proj
	}
	if s.Distinct {
		rows = dedupeRows(rows)
	}
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}

	outCols := make([]qcol, len(names))
	for i, n := range names {
		outCols[i] = qcol{name: strings.ToLower(n)}
	}
	return names, &relation{cols: outCols, rows: rows}, nil
}

// outputNames derives the result column names.
func outputNames(s *SelectStmt, src *relation) []string {
	if len(s.Exprs) == 0 {
		names := make([]string, len(src.cols))
		for i, c := range src.cols {
			names[i] = c.name
		}
		return names
	}
	names := make([]string, len(s.Exprs))
	for i, se := range s.Exprs {
		switch {
		case se.Alias != "":
			names[i] = se.Alias
		default:
			if c, ok := se.Expr.(*ColRef); ok {
				names[i] = c.Name
			} else {
				names[i] = fmt.Sprintf("col%d", i+1)
			}
		}
	}
	return names
}

// resolveOrderExpr maps an ORDER BY expression that names a select alias to
// the aliased expression.
func resolveOrderExpr(e Expr, s *SelectStmt) Expr {
	c, ok := e.(*ColRef)
	if !ok || c.Table != "" {
		return e
	}
	for _, se := range s.Exprs {
		if se.Alias != "" && strings.EqualFold(se.Alias, c.Name) {
			return se.Expr
		}
	}
	return e
}

// groupRows partitions src by the GROUP BY keys, preserving first-seen order.
// With no GROUP BY (pure aggregate query) everything is one group.
func (ex *executor) groupRows(s *SelectStmt, src *relation, outer *env) (map[string][][]Value, []string, error) {
	groups := make(map[string][][]Value)
	var order []string
	if len(s.GroupBy) == 0 {
		groups[""] = src.rows
		return groups, []string{""}, nil
	}
	for _, row := range src.rows {
		e := &env{cols: src.cols, row: row, outer: outer}
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			v, err := ex.eval(g, e)
			if err != nil {
				return nil, nil, err
			}
			parts[i] = v.key()
		}
		k := strings.Join(parts, "\x00")
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	return groups, order, nil
}

// computeAggregate evaluates one aggregate call over a group.
func (ex *executor) computeAggregate(a *FuncCall, cols []qcol, rows [][]Value, outer *env) (Value, error) {
	if a.Star {
		if a.Name != "COUNT" {
			return Value{}, fmt.Errorf("sqlkit: %s(*) is not valid", a.Name)
		}
		return IntVal(int64(len(rows))), nil
	}
	if len(a.Args) != 1 {
		return Value{}, fmt.Errorf("sqlkit: aggregate %s takes one argument", a.Name)
	}
	var vals []Value
	seen := map[string]bool{}
	for _, row := range rows {
		e := &env{cols: cols, row: row, outer: outer}
		v, err := ex.eval(a.Args[0], e)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch a.Name {
	case "COUNT":
		return IntVal(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		var sum float64
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("sqlkit: %s over non-numeric value %s", a.Name, v)
			}
			if v.Kind != KindInt {
				allInt = false
			}
			sum += f
		}
		if a.Name == "AVG" {
			return FloatVal(sum / float64(len(vals))), nil
		}
		if allInt {
			return IntVal(int64(sum)), nil
		}
		return FloatVal(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := Compare(v, best)
			if !ok {
				return Value{}, fmt.Errorf("sqlkit: %s over incomparable values", a.Name)
			}
			if (a.Name == "MIN" && c < 0) || (a.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Value{}, fmt.Errorf("sqlkit: unknown aggregate %q", a.Name)
	}
}

// aggregateNames is the set of recognized aggregate functions.
var aggregateNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// collectAggregates finds aggregate calls in the select list, HAVING and
// ORDER BY of s (not descending into sub-queries).
func collectAggregates(s *SelectStmt) []*FuncCall {
	var out []*FuncCall
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *FuncCall:
			if aggregateNames[x.Name] {
				out = append(out, x)
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *IsNullExpr:
			walk(x.X)
		case *BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *InExpr:
			walk(x.X)
			for _, v := range x.List {
				walk(v)
			}
		}
	}
	for _, se := range s.Exprs {
		walk(se.Expr)
	}
	if s.Having != nil {
		walk(s.Having)
	}
	for _, k := range s.OrderBy {
		walk(resolveOrderExpr(k.Expr, s))
	}
	return out
}

// buildSource assembles the FROM/JOIN row source.
func (ex *executor) buildSource(s *SelectStmt, outer *env) (*relation, error) {
	if len(s.From) == 0 {
		// SELECT without FROM: one empty row.
		return &relation{rows: [][]Value{{}}}, nil
	}
	rel, err := ex.tableRelation(s.From[0], outer)
	if err != nil {
		return nil, err
	}
	for _, tr := range s.From[1:] {
		r, err := ex.tableRelation(tr, outer)
		if err != nil {
			return nil, err
		}
		rel = crossProduct(rel, r)
	}
	for _, j := range s.Joins {
		right, err := ex.tableRelation(j.Table, outer)
		if err != nil {
			return nil, err
		}
		rel, err = ex.join(rel, right, j, outer)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// tableRelation materializes one FROM item.
func (ex *executor) tableRelation(tr TableRef, outer *env) (*relation, error) {
	if tr.Sub != nil {
		names, rel, err := ex.selectChain(tr.Sub, outer)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(tr.Alias)
		cols := make([]qcol, len(names))
		for i, n := range names {
			cols[i] = qcol{table: alias, name: strings.ToLower(n)}
		}
		return &relation{cols: cols, rows: rel.rows}, nil
	}
	t, ok := ex.db.tables[strings.ToLower(tr.Name)]
	if !ok {
		return nil, fmt.Errorf("sqlkit: unknown table %q", tr.Name)
	}
	label := strings.ToLower(tr.Name)
	if tr.Alias != "" {
		label = strings.ToLower(tr.Alias)
	}
	cols := make([]qcol, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = qcol{table: label, name: strings.ToLower(c.Name)}
	}
	return &relation{cols: cols, rows: t.Rows}, nil
}

func crossProduct(a, b *relation) *relation {
	out := &relation{cols: append(append([]qcol{}, a.cols...), b.cols...)}
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// join evaluates one JOIN clause. Simple equi-joins between a left column
// and a right column use a hash join; everything else falls back to a
// nested-loop join.
func (ex *executor) join(left, right *relation, j Join, outer *env) (*relation, error) {
	out := &relation{cols: append(append([]qcol{}, left.cols...), right.cols...)}

	// Try hash join: ON <colref> = <colref> with one side in each input.
	if b, ok := j.On.(*Binary); ok && b.Op == OpEq {
		lc, lok := b.L.(*ColRef)
		rc, rok := b.R.(*ColRef)
		if lok && rok {
			li, inLeft := findCol(left.cols, lc)
			ri, inRight := findCol(right.cols, rc)
			if !inLeft || !inRight {
				// Maybe written reversed: right.col = left.col.
				li2, inLeft2 := findCol(left.cols, rc)
				ri2, inRight2 := findCol(right.cols, lc)
				if inLeft2 && inRight2 {
					li, ri, inLeft, inRight = li2, ri2, true, true
				}
			}
			if inLeft && inRight {
				return hashJoin(left, right, li, ri, j.Kind), nil
			}
		}
	}

	// Nested loop.
	for _, ra := range left.rows {
		matched := false
		for _, rb := range right.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			e := &env{cols: out.cols, row: row, outer: outer}
			v, err := ex.eval(j.On, e)
			if err != nil {
				return nil, err
			}
			if v.IsTrue() {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched && j.Kind == LeftJoin {
			row := make([]Value, 0, len(ra)+len(right.cols))
			row = append(row, ra...)
			for range right.cols {
				row = append(row, Null())
			}
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// findCol locates a ColRef among qualified columns; unqualified references
// match any table label, qualified ones must match it.
func findCol(cols []qcol, c *ColRef) (int, bool) {
	table := strings.ToLower(c.Table)
	name := strings.ToLower(c.Name)
	for i, q := range cols {
		if q.name == name && (table == "" || q.table == table) {
			return i, true
		}
	}
	return 0, false
}

func hashJoin(left, right *relation, li, ri int, kind JoinKind) *relation {
	out := &relation{cols: append(append([]qcol{}, left.cols...), right.cols...)}
	index := make(map[string][]int)
	for i, rb := range right.rows {
		v := rb[ri]
		if v.IsNull() {
			continue
		}
		index[v.key()] = append(index[v.key()], i)
	}
	for _, ra := range left.rows {
		v := ra[li]
		var matches []int
		if !v.IsNull() {
			matches = index[v.key()]
		}
		if len(matches) == 0 {
			if kind == LeftJoin {
				row := make([]Value, 0, len(ra)+len(right.cols))
				row = append(row, ra...)
				for range right.cols {
					row = append(row, Null())
				}
				out.rows = append(out.rows, row)
			}
			continue
		}
		for _, mi := range matches {
			rb := right.rows[mi]
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}
