package sqlkit

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory relation. gen is a write-epoch stamp (unique
// across the owning DB) used to invalidate lazily built secondary indexes.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Value
	gen  int64
}

// colIndex returns the position of the named column (case-insensitive).
func (t *Table) colIndex(name string) (int, bool) {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// clone deep-copies the table.
func (t *Table) clone() *Table {
	cols := make([]Column, len(t.Cols))
	copy(cols, t.Cols)
	rows := make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		rr := make([]Value, len(r))
		copy(rr, r)
		rows[i] = rr
	}
	return &Table{Name: t.Name, Cols: cols, Rows: rows, gen: t.gen}
}

// DB is an in-memory database with single-writer transactions.
// DB is safe for concurrent use; Exec serializes statements.
type DB struct {
	mu       sync.Mutex
	tables   map[string]*Table
	inTx     bool
	snapshot map[string]*Table
	indexes  map[string]*indexDef
	genSeq   int64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table), indexes: make(map[string]*indexDef)}
}

// nextGen issues a fresh write-epoch stamp.
func (db *DB) nextGen() int64 {
	db.genSeq++
	return db.genSeq
}

// CreateTable registers a table definition directly (bypassing SQL), useful
// for programmatic schema setup by the workload generators.
func (db *DB) CreateTable(name string, cols []Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("sqlkit: table %q already exists", name)
	}
	db.tables[key] = &Table{Name: name, Cols: append([]Column(nil), cols...), gen: db.nextGen()}
	return nil
}

// InsertRow appends a row to a table, validating arity.
func (db *DB) InsertRow(name string, row []Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("sqlkit: unknown table %q", name)
	}
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqlkit: table %q has %d columns, row has %d", name, len(t.Cols), len(row))
	}
	t.Rows = append(t.Rows, append([]Value(nil), row...))
	t.gen = db.nextGen()
	return nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames lists the tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the whole database (used by workloads to hand each
// experiment an isolated copy).
func (db *DB) Clone() *DB {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := NewDB()
	out.genSeq = db.genSeq
	for k, t := range db.tables {
		out.tables[k] = t.clone()
	}
	for k, def := range db.indexes {
		out.indexes[k] = &indexDef{name: def.name, table: def.table, column: def.column, gen: -1}
	}
	return out
}

// SchemaText renders the schema as CREATE TABLE statements — the "database
// information" block fed into LLM prompts (paper Figures 2 and 3).
func (db *DB) SchemaText() string {
	var b strings.Builder
	for _, name := range db.TableNames() {
		t := db.Table(name)
		cols := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name + " " + c.Type.String()
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (%s);\n", t.Name, strings.Join(cols, ", "))
	}
	return b.String()
}

// Exec parses and executes one statement.
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecScript executes a semicolon-separated script, returning the result of
// the final statement. A failing statement inside an explicit transaction
// leaves the rollback decision to the script (as a DBMS would).
func (db *DB) ExecScript(sql string) (*Result, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = db.ExecStmt(st)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(st Statement) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := st.(type) {
	case *SelectStmt:
		ex := &executor{db: db}
		return ex.selectResult(s, nil)
	case *InsertStmt:
		return db.execInsert(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *CreateTableStmt:
		key := strings.ToLower(s.Table)
		if _, ok := db.tables[key]; ok {
			return nil, fmt.Errorf("sqlkit: table %q already exists", s.Table)
		}
		cols := make([]Column, len(s.Cols))
		for i, c := range s.Cols {
			cols[i] = Column{Name: c.Name, Type: c.Type}
		}
		db.tables[key] = &Table{Name: s.Table, Cols: cols, gen: db.nextGen()}
		return &Result{}, nil
	case *DropTableStmt:
		key := strings.ToLower(s.Table)
		if _, ok := db.tables[key]; !ok {
			return nil, fmt.Errorf("sqlkit: unknown table %q", s.Table)
		}
		delete(db.tables, key)
		for name, def := range db.indexes {
			if def.table == key {
				delete(db.indexes, name)
			}
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		if err := db.registerIndex(s.Name, s.Table, s.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropIndexStmt:
		key := strings.ToLower(s.Name)
		if _, ok := db.indexes[key]; !ok {
			return nil, fmt.Errorf("sqlkit: unknown index %q", s.Name)
		}
		delete(db.indexes, key)
		return &Result{}, nil
	case *TxStmt:
		return db.execTx(s)
	default:
		return nil, fmt.Errorf("sqlkit: unsupported statement %T", st)
	}
}

func (db *DB) execTx(s *TxStmt) (*Result, error) {
	switch s.Kind {
	case TxBegin:
		if db.inTx {
			return nil, fmt.Errorf("sqlkit: nested BEGIN")
		}
		db.snapshot = make(map[string]*Table, len(db.tables))
		for k, t := range db.tables {
			db.snapshot[k] = t.clone()
		}
		db.inTx = true
		return &Result{}, nil
	case TxCommit:
		if !db.inTx {
			return nil, fmt.Errorf("sqlkit: COMMIT outside transaction")
		}
		db.snapshot = nil
		db.inTx = false
		return &Result{}, nil
	case TxRollback:
		if !db.inTx {
			return nil, fmt.Errorf("sqlkit: ROLLBACK outside transaction")
		}
		db.tables = db.snapshot
		db.snapshot = nil
		db.inTx = false
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sqlkit: unknown tx statement")
	}
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("sqlkit: unknown table %q", s.Table)
	}
	cols := s.Cols
	if len(cols) == 0 {
		cols = make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.colIndex(c)
		if !ok {
			return nil, fmt.Errorf("sqlkit: table %q has no column %q", s.Table, c)
		}
		idx[i] = j
	}
	ex := &executor{db: db}
	if s.Query != nil {
		res, err := ex.selectResult(s.Query, nil)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, src := range res.Rows {
			if len(src) != len(cols) {
				return nil, fmt.Errorf("sqlkit: INSERT ... SELECT arity %d, want %d", len(src), len(cols))
			}
			row := make([]Value, len(t.Cols))
			for i := range src {
				row[idx[i]] = src[i]
			}
			t.Rows = append(t.Rows, row)
			n++
		}
		t.gen = db.nextGen()
		return &Result{Affected: n}, nil
	}
	n := 0
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(cols) {
			return nil, fmt.Errorf("sqlkit: INSERT row has %d values, want %d", len(rowExprs), len(cols))
		}
		row := make([]Value, len(t.Cols))
		for i, e := range rowExprs {
			v, err := ex.eval(e, nil)
			if err != nil {
				return nil, err
			}
			row[idx[i]] = v
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	t.gen = db.nextGen()
	return &Result{Affected: n}, nil
}

func (db *DB) execUpdate(s *UpdateStmt) (*Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("sqlkit: unknown table %q", s.Table)
	}
	ex := &executor{db: db}
	n := 0
	for ri, row := range t.Rows {
		env := tableEnv(t, "", row)
		if s.Where != nil {
			cond, err := ex.eval(s.Where, env)
			if err != nil {
				return nil, err
			}
			if !cond.IsTrue() {
				continue
			}
		}
		for _, a := range s.Set {
			ci, ok := t.colIndex(a.Col)
			if !ok {
				return nil, fmt.Errorf("sqlkit: table %q has no column %q", s.Table, a.Col)
			}
			v, err := ex.eval(a.Expr, env)
			if err != nil {
				return nil, err
			}
			t.Rows[ri][ci] = v
		}
		n++
	}
	if n > 0 {
		t.gen = db.nextGen()
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("sqlkit: unknown table %q", s.Table)
	}
	ex := &executor{db: db}
	kept := t.Rows[:0]
	n := 0
	for _, row := range t.Rows {
		del := true
		if s.Where != nil {
			cond, err := ex.eval(s.Where, tableEnv(t, "", row))
			if err != nil {
				return nil, err
			}
			del = cond.IsTrue()
		}
		if del {
			n++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	if n > 0 {
		t.gen = db.nextGen()
	}
	return &Result{Affected: n}, nil
}

// tableEnv builds an evaluation environment over one table row.
func tableEnv(t *Table, alias string, row []Value) *env {
	name := t.Name
	if alias != "" {
		name = alias
	}
	cols := make([]qcol, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = qcol{table: strings.ToLower(name), name: strings.ToLower(c.Name)}
	}
	return &env{cols: cols, row: row}
}
