// Package sqlkit implements a small but real SQL engine: a lexer, a parser
// covering the SELECT/INSERT/UPDATE/DELETE/CREATE TABLE dialect the paper's
// workloads need (joins, sub-queries, aggregates, set operations,
// transactions), and an in-memory executor.
//
// It is the execution substrate for NL2SQL grading (generated SQL is judged
// by running it and comparing result sets with the gold SQL — the Spider
// protocol), for constraint-aware SQL generation (Section II-A), and for the
// "LLM as database" exploration scenario (Section II-D).
package sqlkit

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates runtime value types.
type Kind int

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one SQL runtime value. The zero value is NULL.
type Value struct {
	Kind  Kind
	Bool  bool
	Int   int64
	Float float64
	Str   string
}

// Convenience constructors.
func Null() Value            { return Value{} }
func BoolVal(b bool) Value   { return Value{Kind: KindBool, Bool: b} }
func IntVal(i int64) Value   { return Value{Kind: KindInt, Int: i} }
func FloatVal(f float64) Val { return Value{Kind: KindFloat, Float: f} }

// Val is an alias kept short because Value literals appear throughout tests.
type Val = Value

// StringVal constructs a string value.
func StringVal(s string) Value { return Value{Kind: KindString, Str: s} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsTrue reports whether v is boolean true (NULL and non-bool are false).
func (v Value) IsTrue() bool { return v.Kind == KindBool && v.Bool }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// String renders the value in SQL literal-ish form.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	default:
		return "?"
	}
}

// Display renders the value for result tables (strings unquoted).
func (v Value) Display() string {
	if v.Kind == KindString {
		return v.Str
	}
	return v.String()
}

// Compare orders two values. It returns (cmp, ok): ok is false when either
// side is NULL or the kinds are incomparable; cmp is -1/0/+1 otherwise.
// Int and float compare numerically; bools order false < true.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	switch {
	case aNum && bNum:
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	case a.Kind == KindString && b.Kind == KindString:
		return strings.Compare(a.Str, b.Str), true
	case a.Kind == KindBool && b.Kind == KindBool:
		switch {
		case !a.Bool && b.Bool:
			return -1, true
		case a.Bool && !b.Bool:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Equal reports SQL equality as three-valued logic collapsed to bool+ok:
// ok false means NULL/incomparable (unknown).
func Equal(a, b Value) (bool, bool) {
	c, ok := Compare(a, b)
	return c == 0, ok
}

// key returns a map key identifying the value for grouping, DISTINCT and
// result comparison. Int and float that are numerically equal share a key.
func (v Value) key() string {
	switch v.Kind {
	case KindNull:
		return "N"
	case KindBool:
		if v.Bool {
			return "b1"
		}
		return "b0"
	case KindInt:
		return "f" + strconv.FormatFloat(float64(v.Int), 'g', -1, 64)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return "s" + v.Str
	default:
		return "?"
	}
}
