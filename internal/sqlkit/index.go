package sqlkit

import (
	"fmt"
	"strings"
)

// Secondary indexes: CREATE INDEX name ON table (column) builds a hash
// index used by single-table equality predicates. Index payloads are built
// lazily and invalidated by any write to the table (a generation counter),
// so DML stays simple and reads pay the build cost once per write epoch —
// the right trade for the read-heavy analytical workloads this engine
// serves.

// CreateIndexStmt is CREATE INDEX name ON table (column).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndexStmt) stmt() {}

// SQL implements Statement.
func (s *CreateIndexStmt) SQL() string {
	return "CREATE INDEX " + s.Name + " ON " + s.Table + " (" + s.Column + ")"
}

// DropIndexStmt is DROP INDEX name.
type DropIndexStmt struct{ Name string }

func (*DropIndexStmt) stmt() {}

// SQL implements Statement.
func (s *DropIndexStmt) SQL() string { return "DROP INDEX " + s.Name }

// indexDef is one registered index.
type indexDef struct {
	name   string
	table  string // lower-cased
	column string // lower-cased
	// built payload, valid while gen matches the table's generation.
	payload map[string][]int
	gen     int64
}

// registerIndex validates and records an index definition.
func (db *DB) registerIndex(name, table, column string) error {
	if _, ok := db.indexes[strings.ToLower(name)]; ok {
		return fmt.Errorf("sqlkit: index %q already exists", name)
	}
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("sqlkit: unknown table %q", table)
	}
	if _, ok := t.colIndex(column); !ok {
		return fmt.Errorf("sqlkit: table %q has no column %q", table, column)
	}
	db.indexes[strings.ToLower(name)] = &indexDef{
		name:   name,
		table:  strings.ToLower(table),
		column: strings.ToLower(column),
		gen:    -1,
	}
	return nil
}

// CreateIndex registers an index programmatically.
func (db *DB) CreateIndex(name, table, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.registerIndex(name, table, column)
}

// lookupIndexLocked finds a current index over (table, column), building
// its payload if stale. Returns nil when no index exists.
func (db *DB) lookupIndexLocked(table, column string) *indexDef {
	table = strings.ToLower(table)
	column = strings.ToLower(column)
	for _, def := range db.indexes {
		if def.table != table || def.column != column {
			continue
		}
		t := db.tables[table]
		if t == nil {
			return nil
		}
		if def.gen != t.gen {
			ci, _ := t.colIndex(column)
			def.payload = make(map[string][]int, len(t.Rows))
			for ri, row := range t.Rows {
				k := row[ci].key()
				def.payload[k] = append(def.payload[k], ri)
			}
			def.gen = t.gen
		}
		return def
	}
	return nil
}

// indexableEq inspects a WHERE tree for a top-level conjunct of the form
// column = literal (or literal = column) and returns the column and value.
func indexableEq(e Expr) (col string, val Value, ok bool) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpAnd:
			if c, v, ok := indexableEq(x.L); ok {
				return c, v, true
			}
			return indexableEq(x.R)
		case OpEq:
			if cr, okc := x.L.(*ColRef); okc {
				if lit, okl := x.R.(*Literal); okl && cr.Table == "" {
					return cr.Name, lit.Val, true
				}
			}
			if cr, okc := x.R.(*ColRef); okc {
				if lit, okl := x.L.(*Literal); okl && cr.Table == "" {
					return cr.Name, lit.Val, true
				}
			}
		}
	}
	return "", Value{}, false
}

// indexScanEligible reports whether the select can use an index: a single
// base table, no joins, and an indexable equality in WHERE. It returns the
// matching index (payload refreshed) and the probe value.
func (db *DB) indexScanEligible(s *SelectStmt) (*indexDef, Value, bool) {
	if len(s.From) != 1 || s.From[0].Sub != nil || len(s.Joins) != 0 || s.Where == nil {
		return nil, Value{}, false
	}
	col, val, ok := indexableEq(s.Where)
	if !ok || val.IsNull() {
		return nil, Value{}, false
	}
	def := db.lookupIndexLocked(s.From[0].Name, col)
	if def == nil {
		return nil, Value{}, false
	}
	return def, val, true
}
