package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
)

// fakeBatch is a controllable BatchModel: it records every batch it
// serves (with the class mix resolved by the scheduler), optionally
// blocks on a gate before serving, and answers each request with its
// gold text.
type fakeBatch struct {
	name  string
	gate  chan struct{} // when non-nil, one receive per batch before serving
	delay time.Duration // per-batch service time

	mu      sync.Mutex
	batches [][]llm.Request
}

func (f *fakeBatch) Name() string        { return f.name }
func (f *fakeBatch) Capability() float64 { return 0.9 }
func (f *fakeBatch) Price() token.Price  { return token.Price{} }

func (f *fakeBatch) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	resps, err := f.GenerateBatch(ctx, []llm.Request{req})
	if err != nil {
		return llm.Response{}, err
	}
	return resps[0], nil
}

func (f *fakeBatch) GenerateBatch(ctx context.Context, reqs []llm.Request) ([]llm.Response, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	f.batches = append(f.batches, append([]llm.Request(nil), reqs...))
	f.mu.Unlock()
	resps := make([]llm.Response, len(reqs))
	for i, r := range reqs {
		resps[i] = llm.Response{Text: r.Gold, Correct: true, Confidence: 0.9, Model: f.name}
	}
	return resps, nil
}

func (f *fakeBatch) recorded() [][]llm.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]llm.Request(nil), f.batches...)
}

func req(class Class, i int) llm.Request {
	return llm.Request{Prompt: fmt.Sprintf("%s req %d", class, i), Gold: fmt.Sprintf("gold %d", i)}
}

func TestSubmitRoundTrip(t *testing.T) {
	f := &fakeBatch{name: "m"}
	s := New(Config{Obs: obs.NewRegistry()}, f)
	defer s.Close()

	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), "m", req(Interactive, i))
			if err == nil && resp.Text != fmt.Sprintf("gold %d", i) {
				err = fmt.Errorf("wrong answer %q", resp.Text)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Submitted != 20 || st.BatchedItems != 20 {
		t.Errorf("stats: %+v", st)
	}
	if st.Batches == 0 || st.Batches > 20 {
		t.Errorf("batches = %d", st.Batches)
	}
}

func TestSubmitErrors(t *testing.T) {
	f := &fakeBatch{name: "m"}
	s := New(Config{Obs: obs.NewRegistry()}, f)

	if _, err := s.Submit(context.Background(), "nope", req(Interactive, 0)); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", err)
	}
	if _, err := s.Submit(context.Background(), "m", llm.Request{}); !errors.Is(err, llm.ErrEmptyPrompt) {
		t.Errorf("empty prompt: %v", err)
	}
	if !s.Has("m") || s.Has("nope") {
		t.Error("Has is wrong")
	}
	s.Close()
	if _, err := s.Submit(context.Background(), "m", req(Interactive, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("closed scheduler: %v", err)
	}
	if s.Has("m") {
		t.Error("closed scheduler still advertises tiers")
	}
}

// With both classes backlogged, dequeues must follow the configured
// weighted-fair ratio — bulk load cannot crowd interactive out, and
// interactive history cannot starve bulk either.
func TestWeightedFairRatioUnderBacklog(t *testing.T) {
	gate := make(chan struct{})
	f := &fakeBatch{name: "m", gate: gate}
	s := New(Config{
		MaxBatch:          5,
		MaxWait:           time.Millisecond,
		InteractiveWeight: 4,
		BatchWeight:       1,
		Obs:               obs.NewRegistry(),
	}, f)
	defer s.Close()

	// Park the dispatcher on a first sacrificial batch so the real
	// traffic accumulates as backlog behind it.
	bctx := WithClass(context.Background(), Batch)
	ictx := WithClass(context.Background(), Interactive)
	go s.Submit(bctx, "m", req(Batch, 999))
	time.Sleep(20 * time.Millisecond) // dispatcher now blocked on the gate

	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); s.Submit(ictx, "m", req(Interactive, i)) }(i)
		wg.Add(1)
		go func(i int) { defer wg.Done(); s.Submit(bctx, "m", req(Batch, i)) }(i)
	}
	time.Sleep(50 * time.Millisecond) // let every submitter enqueue

	// Release batches until all traffic is served.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case gate <- struct{}{}:
		case <-done:
			goto check
		case <-time.After(5 * time.Second):
			t.Fatal("scheduler wedged")
		}
	}
check:
	// While both classes were backlogged (the early flushes), each full
	// batch of 5 should carry 4 interactive + 1 batch items.
	batches := f.recorded()
	interleaved := 0
	for _, b := range batches[1:] { // skip the sacrificial first batch
		if len(b) < 5 {
			continue // tail flush after one class drained
		}
		var i, bk int
		for _, r := range b {
			if len(r.Prompt) >= len("interactive") && r.Prompt[:11] == "interactive" {
				i++
			} else {
				bk++
			}
		}
		if i == 0 || bk == 0 {
			continue // backlog of one class exhausted
		}
		interleaved++
		if i != 4 || bk != 1 {
			t.Errorf("full batch mix %d interactive / %d batch, want 4/1 (batch %v)", i, bk, b)
		}
	}
	if interleaved < 3 {
		t.Errorf("only %d interleaved full batches observed; backlog phase too short", interleaved)
	}
}

// Interactive requests must keep completing promptly while bulk
// producers maintain a standing batch-class backlog.
func TestInteractiveNotStarvedUnderBatchLoad(t *testing.T) {
	f := &fakeBatch{name: "m", delay: 2 * time.Millisecond}
	s := New(Config{
		MaxBatch: 8,
		MaxWait:  500 * time.Microsecond,
		Obs:      obs.NewRegistry(),
	}, f)
	defer s.Close()

	stop := make(chan struct{})
	var producers sync.WaitGroup
	bctx := WithClass(context.Background(), Batch)
	for p := 0; p < 4; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Submit(bctx, "m", req(Batch, p*1_000_000+i))
			}
		}(p)
	}
	time.Sleep(20 * time.Millisecond) // build a standing backlog

	ictx := WithClass(context.Background(), Interactive)
	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(ictx, 2*time.Second)
		_, err := s.Submit(ctx, "m", req(Interactive, i))
		cancel()
		if err != nil {
			t.Fatalf("interactive request %d starved: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(stop)
	producers.Wait()
	// Each interactive request should ride one of the next few flushes
	// (~2ms service each), not wait for the whole bulk backlog.
	if worst > 500*time.Millisecond {
		t.Errorf("worst interactive latency %v under batch load", worst)
	}
}

// Under light sequential load the window must shrink to the floor, and
// under a concurrent flood it must grow again.
func TestAdaptiveWindow(t *testing.T) {
	f := &fakeBatch{name: "m"}
	cfg := Config{
		MaxBatch: 16,
		MaxWait:  20 * time.Millisecond,
		MinWait:  200 * time.Microsecond,
		Obs:      obs.NewRegistry(),
	}
	s := New(cfg, f)
	defer s.Close()

	if w := s.Stats().Windows["m"]; w != cfg.MaxWait {
		t.Fatalf("initial window %v, want ceiling %v", w, cfg.MaxWait)
	}
	// Light load: one request at a time. Every flush is a deadline flush
	// of size 1, so the window halves down to the floor.
	for i := 0; i < 12; i++ {
		if _, err := s.Submit(context.Background(), "m", req(Interactive, i)); err != nil {
			t.Fatal(err)
		}
	}
	if w := s.Stats().Windows["m"]; w != cfg.MinWait {
		t.Errorf("window after light load %v, want floor %v", w, cfg.MinWait)
	}

	// Heavy load: a flood of concurrent requests produces size-triggered
	// flushes, which double the window back up.
	var wg sync.WaitGroup
	for i := 0; i < 400; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Submit(context.Background(), "m", req(Interactive, 1000+i))
		}(i)
	}
	wg.Wait()
	if w := s.Stats().Windows["m"]; w <= 2*cfg.MinWait {
		t.Errorf("window after heavy load %v, expected growth above %v", w, 2*cfg.MinWait)
	}
}

// The adaptive window keeps the batched path's p50 latency within 2× of
// the direct unbatched path under light load.
func TestLightLoadP50WithinTwiceUnbatched(t *testing.T) {
	mk := func() (*llm.Paced, *llm.SimModel) {
		sim := llm.NewSim(llm.SimConfig{
			Name:       "m",
			Capability: 0.9,
			Price:      token.Price{InputPer1K: 1000, OutputPer1K: 2000},
			// ~10 tokens per call at 5 tok/s simulated ≈ 2s simulated;
			// scale 1000 → ~2ms of wall clock per call.
			TokensPerSec: 5,
			Obs:          obs.NewRegistry(),
		})
		return llm.NewPaced(sim, 1000), sim
	}

	p50 := func(samples []time.Duration) time.Duration {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples[len(samples)/2]
	}

	const warm, n = 15, 30
	ctx := context.Background()

	direct, _ := mk()
	var directSamples []time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := direct.Complete(ctx, req(Interactive, i)); err != nil {
			t.Fatal(err)
		}
		directSamples = append(directSamples, time.Since(start))
	}

	paced, _ := mk()
	s := New(Config{
		MaxBatch: 16,
		MaxWait:  10 * time.Millisecond,
		MinWait:  100 * time.Microsecond,
		Obs:      obs.NewRegistry(),
	}, paced)
	defer s.Close()
	// Warm-up: let the adaptive window shrink to the floor.
	for i := 0; i < warm; i++ {
		if _, err := s.Submit(ctx, "m", req(Interactive, i)); err != nil {
			t.Fatal(err)
		}
	}
	var schedSamples []time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := s.Submit(ctx, "m", req(Interactive, warm+i)); err != nil {
			t.Fatal(err)
		}
		schedSamples = append(schedSamples, time.Since(start))
	}

	dp, sp := p50(directSamples), p50(schedSamples)
	t.Logf("p50 direct=%v scheduled=%v window=%v", dp, sp, s.Stats().Windows["m"])
	if sp > 2*dp {
		t.Errorf("light-load p50 %v exceeds 2× the unbatched p50 %v", sp, dp)
	}
}

// A submitter whose context dies while queued stops waiting, and its
// item is dropped from the flush instead of billed into the batch.
func TestSubmitCancellation(t *testing.T) {
	gate := make(chan struct{})
	f := &fakeBatch{name: "m", gate: gate}
	s := New(Config{MaxBatch: 4, MaxWait: time.Millisecond, Obs: obs.NewRegistry()}, f)
	defer s.Close()

	// Park the dispatcher, then queue an item and cancel it.
	go s.Submit(context.Background(), "m", req(Interactive, 0))
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, "m", req(Interactive, 1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enqueue
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submitter got %v", err)
	}

	// Release the parked batch; the canceled item's flush never reaches
	// the model, so no further gate sends are needed.
	gate <- struct{}{}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled item never dropped")
		}
		time.Sleep(time.Millisecond)
	}
	for _, b := range f.recorded() {
		for _, r := range b {
			if r.Prompt == "interactive req 1" {
				t.Error("canceled item was served in a batch")
			}
		}
	}
}

// Close flushes everything already queued and unblocks every submitter.
func TestCloseDrains(t *testing.T) {
	f := &fakeBatch{name: "m", delay: time.Millisecond}
	s := New(Config{MaxBatch: 4, MaxWait: 50 * time.Millisecond, Obs: obs.NewRegistry()}, f)

	const n = 30
	var served, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), "m", req(Interactive, i))
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, ErrClosed):
				failed.Add(1)
			default:
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()
	if got := served.Load() + failed.Load(); got != n {
		t.Errorf("accounted for %d of %d submitters", got, n)
	}
	if served.Load() == 0 {
		t.Error("close served nothing that was already queued")
	}
	s.Close() // idempotent
}

func TestClassContextAndParse(t *testing.T) {
	if got := ClassFrom(context.Background()); got != Interactive {
		t.Errorf("default class %v", got)
	}
	ctx := WithClass(context.Background(), Batch)
	if got := ClassFrom(ctx); got != Batch {
		t.Errorf("class from ctx %v", got)
	}
	if got := ClassFrom(context.WithoutCancel(ctx)); got != Batch {
		t.Errorf("class lost across WithoutCancel: %v", got)
	}
	for in, want := range map[string]Class{"": Interactive, "interactive": Interactive, "batch": Batch} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("bad class accepted")
	}
	if Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Error("class names wrong")
	}
}
