package sched

import (
	"context"
	"errors"
	"testing"

	"repro/internal/llm"
	"repro/internal/obs"
)

// Streaming-class submissions bypass the batch queues entirely: the
// model is called directly, no batch is recorded, and the bypass
// counter moves.
func TestStreamingClassBypassesBatching(t *testing.T) {
	f := &fakeBatch{name: "m"}
	s := New(Config{Obs: obs.NewRegistry()}, f)
	defer s.Close()

	ctx := WithClass(context.Background(), Streaming)
	resp, err := s.Submit(ctx, "m", llm.Request{Prompt: "stream me", Gold: "streamed"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Text != "streamed" {
		t.Fatalf("resp %+v", resp)
	}
	st := s.Stats()
	if st.Bypassed != 1 {
		t.Fatalf("Bypassed = %d, want 1", st.Bypassed)
	}
	if st.Submitted != 0 || st.Batches != 0 {
		// The scheduler must not have queued or flushed anything for a
		// streaming request (the fake records the direct Complete itself).
		t.Fatalf("stats %+v: streaming request leaked into the queueing path", st)
	}
	for _, b := range f.recorded() {
		if len(b) != 1 {
			t.Fatalf("streaming request was grouped into a batch of %d", len(b))
		}
	}
}

// The bypass still honors the closed gate.
func TestStreamingBypassAfterClose(t *testing.T) {
	f := &fakeBatch{name: "m"}
	s := New(Config{Obs: obs.NewRegistry()}, f)
	s.Close()
	ctx := WithClass(context.Background(), Streaming)
	if _, err := s.Submit(ctx, "m", llm.Request{Prompt: "p", Gold: "g"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// The new class round-trips through the wire names.
func TestStreamingClassWireName(t *testing.T) {
	if Streaming.String() != "streaming" {
		t.Fatalf("String = %q", Streaming.String())
	}
	c, err := ParseClass("streaming")
	if err != nil || c != Streaming {
		t.Fatalf("ParseClass = %v, %v", c, err)
	}
}
