package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
)

// benchModel builds a fresh paced simulated model. The pace scale
// compresses simulated seconds into wall-clock microseconds so the
// benchmark measures real elapsed time without taking real minutes.
func benchModel(scale float64) (*llm.Paced, *llm.SimModel) {
	sim := llm.NewSim(llm.SimConfig{
		Name:         "bench",
		Capability:   0.9,
		Price:        token.Price{InputPer1K: 1000, OutputPer1K: 2000},
		TokensPerSec: 50,
		Obs:          obs.NewRegistry(),
	})
	return llm.NewPaced(sim, scale), sim
}

func benchReq(i int) llm.Request {
	return llm.Request{
		Task:       llm.TaskQA,
		Prompt:     fmt.Sprintf("benchmark question %d about throughput", i),
		Gold:       fmt.Sprintf("answer %d", i),
		Difficulty: 0.3,
	}
}

// runClients drives total requests from workers concurrent goroutines
// through call, returning elapsed wall clock and the exact summed cost
// of every response.
func runClients(t testing.TB, workers, perWorker int, call func(ctx context.Context, req llm.Request) (llm.Response, error)) (time.Duration, token.Cost) {
	t.Helper()
	ctx := context.Background()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		sum  token.Cost
		errs int
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local token.Cost
			for i := 0; i < perWorker; i++ {
				resp, err := call(ctx, benchReq(w*perWorker+i))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					return
				}
				local += resp.Cost
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if errs > 0 {
		t.Fatalf("%d workers failed", errs)
	}
	return elapsed, sum
}

// TestSchedThroughputWin is the headline gate for the scheduler: at 64
// concurrent clients the batched path must deliver at least 2× the
// request throughput of the direct per-request path on the same paced
// model, bill exactly what the model meters, and keep serving
// interactive traffic alongside a bulk backlog.
func TestSchedThroughputWin(t *testing.T) {
	const (
		workers   = 64
		perWorker = 8
		scale     = 2000 // 1 simulated second = 0.5ms wall
	)

	// Direct path: every request holds the model's single execution lane
	// for its own scaled latency — concurrency serializes.
	direct, directSim := benchModel(scale)
	directElapsed, directCost := runClients(t, workers, perWorker, direct.Complete)
	if got := directSim.Meter().Spend; got != directCost {
		t.Fatalf("direct path spend %v, responses sum to %v", got, directCost)
	}

	// Scheduled path: the same traffic batched through the scheduler pays
	// the sub-linear batch latency once per flush.
	paced, sim := benchModel(scale)
	s := New(Config{
		MaxBatch: 32,
		MaxWait:  2 * time.Millisecond,
		Obs:      obs.NewRegistry(),
	}, paced)
	defer s.Close()
	schedElapsed, schedCost := runClients(t, workers, perWorker, func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return s.Submit(ctx, "bench", req)
	})

	// Per-item billing through batches must match the model's meter and
	// the direct path exactly — batching saves time, not (here) money.
	if got := sim.Meter().Spend; got != schedCost {
		t.Fatalf("scheduled path spend %v, responses sum to %v", got, schedCost)
	}
	if schedCost != directCost {
		t.Fatalf("scheduled spend %v differs from direct spend %v for identical traffic", schedCost, directCost)
	}

	st := s.Stats()
	n := int64(workers * perWorker)
	if st.Submitted != n || st.BatchedItems != n {
		t.Fatalf("scheduler accounted %d submitted / %d batched, want %d", st.Submitted, st.BatchedItems, n)
	}
	if st.Batches >= n {
		t.Fatalf("no batching happened: %d batches for %d requests", st.Batches, n)
	}

	directRPS := float64(n) / directElapsed.Seconds()
	schedRPS := float64(n) / schedElapsed.Seconds()
	t.Logf("direct: %v (%.0f req/s)  scheduled: %v (%.0f req/s)  speedup %.1fx  batches %d (avg size %.1f)",
		directElapsed, directRPS, schedElapsed, schedRPS, schedRPS/directRPS, st.Batches, float64(n)/float64(st.Batches))
	if schedRPS < 2*directRPS {
		t.Errorf("scheduled throughput %.0f req/s is not 2x the direct %.0f req/s", schedRPS, directRPS)
	}
}

// BenchmarkSchedulerBatched measures scheduled throughput at 64-way
// concurrency; compare against BenchmarkSchedulerDirect.
func BenchmarkSchedulerBatched(b *testing.B) {
	paced, _ := benchModel(2000)
	s := New(Config{MaxBatch: 32, MaxWait: 2 * time.Millisecond, Obs: obs.NewRegistry()}, paced)
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runClients(b, 64, 4, func(ctx context.Context, req llm.Request) (llm.Response, error) {
			return s.Submit(ctx, "bench", req)
		})
	}
}

// BenchmarkSchedulerDirect is the unbatched baseline on the same paced
// model.
func BenchmarkSchedulerDirect(b *testing.B) {
	paced, _ := benchModel(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runClients(b, 64, 4, paced.Complete)
	}
}
