// Package sched implements the adaptive micro-batching request scheduler
// that sits between the serving path (proxy → cascade) and the model
// family. It is the batching/admission layer of a heavy-traffic LLM
// deployment:
//
//   - Per-tier batch queues. Each model tier has its own dispatcher and
//     pair of priority queues; requests submitted for a tier are grouped
//     into batches and fed through llm.BatchModel.GenerateBatch, whose
//     latency is sub-linear in the batch size. At high concurrency this
//     multiplies the requests/sec a tier sustains (see bench_test.go and
//     `make bench-sched`).
//
//   - Adaptive flush window. A batch flushes when it reaches MaxBatch or
//     when the dispatcher has waited out the current window. The window
//     retunes itself after every flush: deadline flushes with a near-empty
//     batch mean light load, so the window shrinks toward MinWait (keeping
//     p50 latency close to the unbatched path); size-triggered flushes
//     mean heavy load, so the window grows toward MaxWait (so the next
//     lull still accumulates a batch).
//
//   - Priority classes with weighted-fair dequeueing. Interactive traffic
//     (default) and bulk batch/experiment traffic are queued separately
//     and drained by a credit-based weighted round robin (default 4:1),
//     so a sustained bulk backlog cannot starve interactive requests, and
//     bulk work still gets its weighted share instead of being starved
//     behind strict priority. A third class, Streaming, has no queue at
//     all: token-stream traffic bypasses batching entirely (see Class).
//
// Every signal — submissions, queue depth, queue wait, batch size, flush
// cause, window width — is metered into an obs.Registry, and the proxy
// surfaces them at /metrics and /v1/stats.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

// Class is a request priority class.
type Class int

const (
	// Interactive is latency-sensitive user traffic — the default class.
	Interactive Class = iota
	// Batch is bulk throughput traffic (experiment runs, backfills); it is
	// dequeued at a lower weighted share and must never starve Interactive.
	Batch
	// Streaming is token-stream traffic. A stream's time-to-first-token is
	// exactly the queueing delay batching would add, and a batched cohort
	// cannot be aborted early for one member — so Streaming submissions
	// bypass the batch queues entirely and go straight to the model.
	Streaming

	// numQueueClasses counts the classes with batch queues; Streaming has
	// none — it never enqueues.
	numQueueClasses = 2
)

// String returns the wire name of the class.
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Streaming:
		return "streaming"
	}
	return "interactive"
}

// ParseClass maps the wire names ("interactive", "batch", "streaming";
// "" means interactive) to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "streaming":
		return Streaming, nil
	}
	return Interactive, fmt.Errorf("sched: unknown priority class %q", s)
}

type classKey struct{}

// WithClass tags ctx with a priority class. The scheduler reads it back
// with ClassFrom at Submit time, so the class set at the front door (HTTP
// handler, experiment harness) travels through the cascade unchanged —
// including across the proxy's detached upstream context, since values
// survive context.WithoutCancel.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassFrom returns the class tagged on ctx, defaulting to Interactive.
func ClassFrom(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return Interactive
}

// Errors returned by Submit.
var (
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrUnknownModel is returned when the named tier is not registered.
	ErrUnknownModel = errors.New("sched: model not registered")
)

// DefaultMaxBatch is the batch size that triggers an immediate flush
// when Config.MaxBatch is zero.
const DefaultMaxBatch = 16

// Config parameterizes a Scheduler. The zero value selects the defaults
// documented per field.
type Config struct {
	// MaxBatch is the batch size that triggers an immediate flush.
	// Defaults to DefaultMaxBatch.
	MaxBatch int
	// MaxWait is the ceiling of the adaptive flush window — the longest a
	// queued request waits for cohort-mates under heavy load. Defaults to
	// 4ms.
	MaxWait time.Duration
	// MinWait is the floor the window shrinks to under light load, keeping
	// the batched path's p50 close to the unbatched path. Defaults to
	// 100µs.
	MinWait time.Duration
	// QueueDepth bounds each (tier, class) queue; submitters block (with
	// context cancellation) when their queue is full, providing
	// backpressure. Defaults to 1024.
	QueueDepth int
	// InteractiveWeight and BatchWeight set the weighted-fair dequeue
	// ratio between the classes when both are backlogged. Defaults 4:1.
	InteractiveWeight int
	BatchWeight       int
	// BatchTimeout bounds one batched upstream call. The batch runs
	// detached from every submitter's context (a canceled submitter must
	// not fail its cohort), so this deadline is what reaps a hung batch.
	// Defaults to 30s.
	BatchTimeout time.Duration
	// Obs receives the scheduler's metrics. Nil means obs.Default.
	Obs *obs.Registry
	// Log receives sched_batch_flush lifecycle events. Nil means
	// obs.DefaultLogger.
	Log *obs.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 4 * time.Millisecond
	}
	if cfg.MinWait <= 0 {
		cfg.MinWait = 100 * time.Microsecond
	}
	if cfg.MinWait > cfg.MaxWait {
		cfg.MinWait = cfg.MaxWait
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.InteractiveWeight <= 0 {
		cfg.InteractiveWeight = 4
	}
	if cfg.BatchWeight <= 0 {
		cfg.BatchWeight = 1
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 30 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default
	}
	if cfg.Log == nil {
		cfg.Log = obs.DefaultLogger
	}
	return cfg
}

// item is one queued request awaiting its batch.
type item struct {
	ctx   context.Context
	req   llm.Request
	class Class
	enq   time.Time
	out   chan result // buffered 1; written exactly once
}

type result struct {
	resp llm.Response
	err  error
}

// tier is one model's queues and dispatcher state. The credits and the
// batch buffer are touched only by the tier's dispatcher goroutine.
type tier struct {
	model  llm.BatchModel
	queues [numQueueClasses]chan *item
	window atomic.Int64 // current adaptive flush window, ns

	// credits is the weighted-round-robin state: refilled to the class
	// weights whenever no class can spend (empty queue or spent credit).
	credits [numQueueClasses]int

	gWindow                    *obs.Gauge
	gDepth                     [numQueueClasses]*obs.Gauge
	hBatch                     *obs.Histogram
	mFlushSize, mFlushDeadline *obs.Counter
}

// BatchSizeBuckets are the histogram buckets for flushed batch sizes.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Scheduler groups submitted requests into per-tier micro-batches.
// Scheduler is safe for concurrent use.
type Scheduler struct {
	cfg   Config
	tiers map[string]*tier
	order []string

	// mu gates Submit against Close: no item can be enqueued after the
	// closed flag is set, so the dispatchers' final drain observes every
	// queued item.
	mu     sync.RWMutex
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup

	submitted, batches, batchedItems, canceled, failed, bypassed atomic.Int64

	mSubmitted [numQueueClasses]*obs.Counter
	hWait      [numQueueClasses]*obs.Histogram
	mCanceled  *obs.Counter
	mFailed    *obs.Counter
	mBypass    *obs.Counter
}

// New builds a Scheduler over the given model tiers and starts one
// dispatcher goroutine per tier. Close must be called to stop them.
func New(cfg Config, models ...llm.BatchModel) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:       cfg,
		tiers:     make(map[string]*tier, len(models)),
		stop:      make(chan struct{}),
		mCanceled: cfg.Obs.Counter("sched_canceled_total"),
		mFailed:   cfg.Obs.Counter("sched_batch_errors_total"),
		mBypass:   cfg.Obs.Counter("sched_stream_bypass_total"),
	}
	for c := Class(0); c < numQueueClasses; c++ {
		s.mSubmitted[c] = cfg.Obs.Counter("sched_submitted_total", "class", c.String())
		s.hWait[c] = cfg.Obs.Histogram("sched_queue_wait_seconds", obs.LatencyBuckets, "class", c.String())
	}
	for _, m := range models {
		if _, dup := s.tiers[m.Name()]; dup {
			continue
		}
		t := &tier{
			model:          m,
			gWindow:        cfg.Obs.Gauge("sched_window_seconds", "model", m.Name()),
			hBatch:         cfg.Obs.Histogram("sched_batch_size", BatchSizeBuckets, "model", m.Name()),
			mFlushSize:     cfg.Obs.Counter("sched_flushes_total", "model", m.Name(), "cause", "size"),
			mFlushDeadline: cfg.Obs.Counter("sched_flushes_total", "model", m.Name(), "cause", "deadline"),
		}
		for c := Class(0); c < numQueueClasses; c++ {
			t.queues[c] = make(chan *item, cfg.QueueDepth)
			t.gDepth[c] = cfg.Obs.Gauge("sched_queue_depth", "model", m.Name(), "class", c.String())
		}
		// Start at the ceiling — a conservative batching posture that the
		// adaptive loop shrinks within a few flushes when load is light.
		t.window.Store(int64(cfg.MaxWait))
		t.gWindow.Set(cfg.MaxWait.Seconds())
		s.tiers[m.Name()] = t
		s.order = append(s.order, m.Name())
		s.wg.Add(1)
		obs.Go(cfg.Obs, "sched_run", func() { s.run(t) })
	}
	return s
}

// Has reports whether the named tier is scheduled (callers fall back to
// direct model calls otherwise). A closed scheduler reports false for
// every tier, so serving paths degrade to direct calls after Close.
func (s *Scheduler) Has(model string) bool {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return false
	}
	_, ok := s.tiers[model]
	return ok
}

// Submit queues one request for the named tier and blocks until its batch
// completes. The priority class is read from ctx (see WithClass). A
// submitter whose context dies while queued or waiting stops waiting, but
// its batch still runs for the rest of the cohort.
func (s *Scheduler) Submit(ctx context.Context, model string, req llm.Request) (llm.Response, error) {
	t, ok := s.tiers[model]
	if !ok {
		return llm.Response{}, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	if req.Prompt == "" {
		return llm.Response{}, llm.ErrEmptyPrompt
	}
	class := ClassFrom(ctx)
	if class == Streaming {
		// Streaming traffic never queues: batching's cohort wait is pure
		// time-to-first-token loss, and a shared batch cannot be aborted
		// when one stream early-exits. Go straight to the model. The
		// closed-gate check still applies so serving paths degrade to
		// their own direct call after Close.
		s.mu.RLock()
		closed := s.closed
		s.mu.RUnlock()
		if closed {
			return llm.Response{}, ErrClosed
		}
		_, sp := obs.StartSpan(ctx, "sched.bypass")
		sp.SetAttr("model", model)
		sp.SetAttr("class", class.String())
		defer sp.End()
		s.bypassed.Add(1)
		s.mBypass.Inc()
		return t.model.Complete(ctx, req)
	}
	it := &item{ctx: ctx, req: req, class: class, enq: time.Now(), out: make(chan result, 1)}

	_, sp := obs.StartSpan(ctx, "sched.submit")
	sp.SetAttr("model", model)
	sp.SetAttr("class", class.String())
	defer sp.End()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return llm.Response{}, ErrClosed
	}
	// The enqueue happens under the read lock so Close (write lock) cannot
	// interleave: every enqueued item is visible to the final drain. The
	// send can park when the queue is full — that backpressure under the
	// close-gate RLock is deliberate (Close's write lock waits out the
	// enqueue, never a batch), so both comm ops carry lockscope waivers.
	select {
	case t.queues[class] <- it: //llmdm:allow lockscope bounded enqueue under the close gate is the design
		s.submitted.Add(1)
		s.mSubmitted[class].Inc()
		t.gDepth[class].Add(1)
		s.mu.RUnlock()
	case <-ctx.Done(): //llmdm:allow lockscope cancellation arm of the gated enqueue
		s.mu.RUnlock()
		sp.SetAttr("outcome", "canceled")
		return llm.Response{}, ctx.Err()
	}

	select {
	case r := <-it.out:
		if r.err != nil {
			sp.SetAttr("outcome", "error")
		}
		return r.resp, r.err
	case <-ctx.Done():
		// The batch keeps running for the rest of the cohort; this caller
		// just stops waiting (its spend already accrued to the meters).
		sp.SetAttr("outcome", "canceled")
		return llm.Response{}, ctx.Err()
	}
}

// Stats is a snapshot of the scheduler's lifetime counters.
type Stats struct {
	// Submitted counts requests accepted by Submit.
	Submitted int64
	// Batches and BatchedItems count successful flushes and the items they
	// served; BatchedItems/Batches is the achieved mean batch size.
	Batches      int64
	BatchedItems int64
	// Canceled counts items dropped from a batch because their submitter's
	// context died while queued.
	Canceled int64
	// Failed counts batches whose upstream call errored.
	Failed int64
	// Bypassed counts Streaming-class submissions that skipped the batch
	// queues and went straight to the model.
	Bypassed int64
	// Windows maps each tier to its current adaptive flush window.
	Windows map[string]time.Duration
}

// Stats snapshots the counters and per-tier windows.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Submitted:    s.submitted.Load(),
		Batches:      s.batches.Load(),
		BatchedItems: s.batchedItems.Load(),
		Canceled:     s.canceled.Load(),
		Failed:       s.failed.Load(),
		Bypassed:     s.bypassed.Load(),
		Windows:      make(map[string]time.Duration, len(s.order)),
	}
	for _, name := range s.order {
		st.Windows[name] = time.Duration(s.tiers[name].window.Load())
	}
	return st
}

// Close stops accepting submissions, flushes everything already queued,
// and waits for the dispatchers to exit. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// run is one tier's dispatcher loop: await the first item, fill a batch
// under the adaptive window with weighted-fair dequeueing, flush, repeat.
func (s *Scheduler) run(t *tier) {
	defer s.wg.Done()
	for {
		first, ok := s.awaitFirst(t)
		if !ok {
			s.finalFlush(t)
			return
		}
		batch, timedOut := s.fill(t, first)
		s.adapt(t, len(batch), timedOut)
		s.flush(t, batch)
	}
}

// awaitFirst blocks for the next item, draining any backlog fairly first.
// It returns false when the scheduler is closing.
func (s *Scheduler) awaitFirst(t *tier) (*item, bool) {
	if it := t.pickFair(s.cfg); it != nil {
		return it, true
	}
	select {
	case it := <-t.queues[Interactive]:
		t.gDepth[Interactive].Add(-1)
		return it, true
	case it := <-t.queues[Batch]:
		t.gDepth[Batch].Add(-1)
		return it, true
	case <-s.stop:
		return nil, false
	}
}

// fill grows the batch until MaxBatch or the adaptive window expires.
// Backlogged queues are drained through the weighted-fair picker; when
// both are empty it waits for arrivals up to the window deadline.
func (s *Scheduler) fill(t *tier, first *item) (batch []*item, timedOut bool) {
	batch = make([]*item, 1, s.cfg.MaxBatch)
	batch[0] = first
	window := time.Duration(t.window.Load())
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		if it := t.pickFair(s.cfg); it != nil {
			batch = append(batch, it)
			continue
		}
		select {
		case it := <-t.queues[Interactive]:
			t.gDepth[Interactive].Add(-1)
			batch = append(batch, it)
		case it := <-t.queues[Batch]:
			t.gDepth[Batch].Add(-1)
			batch = append(batch, it)
		case <-timer.C:
			return batch, true
		case <-s.stop:
			return batch, false
		}
	}
	return batch, false
}

// pickFair takes one backlogged item by credit-based weighted round
// robin: a class spends one credit per dequeue; when no class can spend
// (queue empty or credit exhausted), credits refill to the configured
// weights. Under a two-class backlog the long-run dequeue ratio is
// InteractiveWeight:BatchWeight; when only one class has work it gets
// every slot (work conserving).
func (t *tier) pickFair(cfg Config) *item {
	for pass := 0; pass < 2; pass++ {
		if t.credits[Interactive] > 0 {
			if it := t.tryTake(Interactive); it != nil {
				return it
			}
		}
		if t.credits[Batch] > 0 {
			if it := t.tryTake(Batch); it != nil {
				return it
			}
		}
		t.credits[Interactive] = cfg.InteractiveWeight
		t.credits[Batch] = cfg.BatchWeight
	}
	return nil
}

func (t *tier) tryTake(c Class) *item {
	select {
	case it := <-t.queues[c]:
		t.gDepth[c].Add(-1)
		t.credits[c]--
		return it
	default:
		return nil
	}
}

// adapt retunes the tier's flush window from how the last batch closed.
func (s *Scheduler) adapt(t *tier, n int, timedOut bool) {
	w := time.Duration(t.window.Load())
	switch {
	case timedOut && n <= 1:
		// Deadline fired for a lone request: light load — halve toward the
		// floor so p50 latency tracks the unbatched path.
		w /= 2
	case timedOut && n < s.cfg.MaxBatch/2:
		w = w * 3 / 4
	case !timedOut:
		// Size-triggered flush: heavy load — widen toward the ceiling so
		// the next lull still accumulates a batch.
		w *= 2
	}
	if w < s.cfg.MinWait {
		w = s.cfg.MinWait
	}
	if w > s.cfg.MaxWait {
		w = s.cfg.MaxWait
	}
	t.window.Store(int64(w))
	t.gWindow.Set(w.Seconds())
}

// flush runs one batch through the tier's model and delivers the
// per-item results. Items whose submitter already gave up are dropped
// before the upstream call. The call itself is detached from every
// submitter's context and bounded by BatchTimeout.
func (s *Scheduler) flush(t *tier, batch []*item) {
	if len(batch) == 0 {
		return
	}
	now := time.Now()
	live := batch[:0]
	tenants := make(map[string]struct{})
	for _, it := range batch {
		// The wait exemplar ties a fat queue-wait bucket back to one
		// concrete request's trace; tenant fan-in is reported per flush.
		s.hWait[it.class].ObserveWithExemplar(now.Sub(it.enq).Seconds(), obs.TraceIDFromContext(it.ctx))
		tenants[obs.TenantFrom(it.ctx)] = struct{}{}
		if err := it.ctx.Err(); err != nil {
			s.canceled.Add(1)
			s.mCanceled.Inc()
			it.out <- result{err: err}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	cause := "deadline"
	if len(live) == s.cfg.MaxBatch {
		t.mFlushSize.Inc()
		cause = "size"
	} else {
		t.mFlushDeadline.Inc()
	}
	// A flush serves many traces at once, so the event is uncorrelated;
	// "tenants" reports how many distinct tenants shared the batch.
	s.cfg.Log.Emit(obs.Debug, "sched_batch_flush",
		"model", t.model.Name(), "size", len(live), "dropped", len(batch)-len(live), "cause", cause, "tenants", len(tenants))
	reqs := make([]llm.Request, len(live))
	for i, it := range live {
		reqs[i] = it.req
	}
	// The flush deliberately detaches from every submitter's context: the
	// batch runs to completion for the whole cohort even when individual
	// callers cancel, bounded only by the scheduler's own BatchTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.BatchTimeout) //llmdm:detached batch flush outlives any single submitter
	defer cancel()
	resps, err := t.model.GenerateBatch(ctx, reqs)
	if err == nil && len(resps) != len(live) {
		err = fmt.Errorf("sched: model %s returned %d responses for %d requests",
			t.model.Name(), len(resps), len(live))
	}
	if err != nil {
		s.failed.Add(1)
		s.mFailed.Inc()
		for _, it := range live {
			it.out <- result{err: err}
		}
		return
	}
	s.batches.Add(1)
	s.batchedItems.Add(int64(len(live)))
	t.hBatch.Observe(float64(len(live)))
	for i, it := range live {
		it.out <- result{resp: resps[i]}
	}
}

// finalFlush drains and serves everything still queued after Close.
func (s *Scheduler) finalFlush(t *tier) {
	for {
		first := t.pickFair(s.cfg)
		if first == nil {
			return
		}
		batch := make([]*item, 1, s.cfg.MaxBatch)
		batch[0] = first
		for len(batch) < s.cfg.MaxBatch {
			it := t.pickFair(s.cfg)
			if it == nil {
				break
			}
			batch = append(batch, it)
		}
		s.flush(t, batch)
	}
}
