// Package resilience provides the failure-containment primitives of the
// serving path: per-model circuit breakers that stop hammering a failing
// tier, and a concurrency limiter that sheds load instead of queueing
// without bound. Both are metered through internal/obs, so breaker states,
// transitions, rejections and queue depth are visible at GET /metrics.
//
// The pieces are deliberately independent of the LLM layer — they gate any
// named resource — and deterministic under test: the breaker takes an
// injectable clock, so open→half-open→closed walks need no real sleeping.
package resilience

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes traffic and watches the failure window.
	Closed State = iota
	// Open rejects traffic until the cooldown elapses.
	Open
	// HalfOpen admits probe calls one at a time; success closes the
	// breaker, failure reopens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker (and every breaker of a
// BreakerSet). The zero value selects production-ish defaults.
type BreakerConfig struct {
	// Window is the sliding outcome window size. Defaults to 20.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip. Defaults to 8.
	MinSamples int
	// FailureThreshold trips the breaker when the window's failure
	// fraction reaches it. Defaults to 0.5.
	FailureThreshold float64
	// Cooldown is how long an open breaker rejects before probing.
	// Defaults to 250ms.
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker. Defaults to 1.
	HalfOpenProbes int
	// Now is the clock; tests inject a fake one to walk transitions
	// deterministically. Nil means time.Now.
	Now func() time.Time
	// Obs receives breaker_state / breaker_transitions_total /
	// breaker_rejections_total. Nil means obs.Default.
	Obs *obs.Registry
	// Log receives breaker_transition lifecycle events. Nil means
	// obs.DefaultLogger.
	Log *obs.Logger
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Log == nil {
		c.Log = obs.DefaultLogger
	}
	return c
}

// Breaker is a three-state circuit breaker over one named resource, driven
// by a sliding window of call outcomes. Breaker is safe for concurrent use.
type Breaker struct {
	cfg  BreakerConfig
	name string

	mu       sync.Mutex
	state    State
	window   []bool // ring of outcomes, true = failure
	idx      int    // next write position
	filled   int    // outcomes recorded (≤ len(window))
	fails    int    // failures currently in the window
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeOK  int  // consecutive half-open successes

	gState                          *obs.Gauge
	mToOpen, mToHalfOpen, mToClosed *obs.Counter
	mRejects                        *obs.Counter
}

// NewBreaker returns a closed breaker for the named resource.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{
		cfg:    cfg,
		name:   name,
		window: make([]bool, cfg.Window),

		gState:      cfg.Obs.Gauge("breaker_state", "name", name),
		mToOpen:     cfg.Obs.Counter("breaker_transitions_total", "name", name, "to", "open"),
		mToHalfOpen: cfg.Obs.Counter("breaker_transitions_total", "name", name, "to", "half-open"),
		mToClosed:   cfg.Obs.Counter("breaker_transitions_total", "name", name, "to", "closed"),
		mRejects:    cfg.Obs.Counter("breaker_rejections_total", "name", name),
	}
	b.gState.Set(float64(Closed))
	return b
}

// Name returns the resource this breaker guards.
func (b *Breaker) Name() string { return b.name }

// State returns the current state (advancing open → half-open when the
// cooldown has elapsed, so observers see the effective state).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed. In half-open it admits one
// probe at a time; callers that were admitted must Record the outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mRejects.Inc()
			return false
		}
		b.transitionLocked(HalfOpen)
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			b.mRejects.Inc()
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one call outcome back into the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if !ok {
			b.openedAt = b.cfg.Now()
			b.transitionLocked(Open)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.transitionLocked(Closed)
		}
	case Closed:
		if b.filled == len(b.window) {
			// Overwrite the oldest outcome.
			if b.window[b.idx] {
				b.fails--
			}
		} else {
			b.filled++
		}
		b.window[b.idx] = !ok
		if !ok {
			b.fails++
		}
		b.idx = (b.idx + 1) % len(b.window)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.filled) >= b.cfg.FailureThreshold {
			b.openedAt = b.cfg.Now()
			b.transitionLocked(Open)
		}
	case Open:
		// Late results from calls admitted before the trip carry no new
		// information; the probe cycle decides recovery.
	}
}

// transitionLocked moves to next, resetting the bookkeeping the new state
// starts from and metering the edge. Caller holds b.mu. Transitions have
// no request context (the tripping call is incidental), so the event is
// emitted uncorrelated.
func (b *Breaker) transitionLocked(next State) {
	prev := b.state
	b.state = next
	b.gState.Set(float64(next))
	b.cfg.Log.Emit(obs.Warn, "breaker_transition", "name", b.name, "from", prev.String(), "to", next.String())
	switch next {
	case Open:
		b.resetWindowLocked()
		b.probing = false
		b.probeOK = 0
		b.mToOpen.Inc()
	case HalfOpen:
		b.probeOK = 0
		b.mToHalfOpen.Inc()
	case Closed:
		b.resetWindowLocked()
		b.probing = false
		b.probeOK = 0
		b.mToClosed.Inc()
	}
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
}

// BreakerSet is a lazily-populated family of breakers sharing one config —
// the cascade keeps one per model tier. BreakerSet is safe for concurrent
// use.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns an empty set minting breakers with cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns the breaker for name, creating it closed on first use.
func (s *BreakerSet) For(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(name, s.cfg)
		s.m[name] = b
	}
	return b
}

// Allow reports whether a call to name may proceed.
func (s *BreakerSet) Allow(name string) bool { return s.For(name).Allow() }

// Record feeds one call outcome for name back into its breaker.
func (s *BreakerSet) Record(name string, ok bool) { s.For(name).Record(ok) }

// States snapshots every breaker's effective state.
func (s *BreakerSet) States() map[string]State {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make(map[string]State, len(breakers))
	for _, b := range breakers {
		out[b.Name()] = b.State()
	}
	return out
}
