package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLimiterAdmitsUpToCap(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 3, Obs: obs.NewRegistry()})
	for i := 0; i < 3; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap acquire = %v, want ErrOverloaded", err)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterQueueThenShed(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 1, Obs: reg})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One caller fits in the queue and blocks.
	queued := make(chan error, 1)
	go func() {
		queued <- l.Acquire(context.Background())
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Queued() != 1 {
		t.Fatal("waiter never queued")
	}
	// The next caller finds the queue full and is shed.
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire = %v, want ErrOverloaded", err)
	}
	// Releasing the slot admits the queued waiter.
	l.Release()
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
	l.Release()
	snap := reg.Snapshot()
	if snap["limiter_shed_total"] != 1 {
		t.Errorf("shed = %v", snap["limiter_shed_total"])
	}
	if snap["limiter_admitted_total"] != 2 {
		t.Errorf("admitted = %v", snap["limiter_admitted_total"])
	}
	if snap["limiter_inflight"] != 0 || snap["limiter_queue_depth"] != 0 {
		t.Errorf("gauges not drained: %v", snap)
	}
}

func TestLimiterQueuedCallerHonorsContext(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, MaxQueue: 4, Obs: obs.NewRegistry()})
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for l.Queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter stuck in queue")
	}
	if l.Queued() != 0 {
		t.Errorf("queue not drained: %d", l.Queued())
	}
	l.Release()
}

func TestLimiterConcurrencyNeverExceedsCap(t *testing.T) {
	const limit = 4
	l := NewLimiter(LimiterConfig{MaxConcurrent: limit, MaxQueue: 64, Obs: obs.NewRegistry()})
	var mu sync.Mutex
	running, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if peak > limit {
		t.Errorf("peak concurrency %d exceeded cap %d", peak, limit)
	}
}

func TestLimiterPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for MaxConcurrent = 0")
		}
	}()
	NewLimiter(LimiterConfig{})
}
