package resilience

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// ErrOverloaded is returned by Limiter.Acquire when both the concurrency
// slots and the wait queue are full — the request is shed rather than
// queued without bound (load shedding beats collapse under overload).
var ErrOverloaded = errors.New("resilience: overloaded, request shed")

// LimiterConfig parameterizes a Limiter.
type LimiterConfig struct {
	// MaxConcurrent is the number of requests served at once; required > 0.
	MaxConcurrent int
	// MaxQueue is how many callers may wait for a slot; a request arriving
	// with the queue full is shed with ErrOverloaded. 0 sheds immediately
	// whenever every slot is busy.
	MaxQueue int
	// Obs receives limiter_inflight / limiter_queue_depth gauges and
	// limiter_admitted_total / limiter_shed_total counters. Nil means
	// obs.Default.
	Obs *obs.Registry
	// Log receives limiter_shed lifecycle events. Nil means
	// obs.DefaultLogger.
	Log *obs.Logger
}

// Limiter is a concurrency gate with a bounded wait queue. Limiter is safe
// for concurrent use.
type Limiter struct {
	slots    chan struct{}
	queue    chan struct{} // buffered; holding a token = waiting in line
	gRunning *obs.Gauge
	gQueued  *obs.Gauge
	mAdmit   *obs.Counter
	mShed    *obs.Counter
	hWait    *obs.Histogram
	log      *obs.Logger
}

// NewLimiter builds a Limiter. It panics when MaxConcurrent <= 0 (an
// unlimited limiter is spelled "no limiter").
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.MaxConcurrent <= 0 {
		panic("resilience: limiter needs MaxConcurrent > 0")
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	log := cfg.Log
	if log == nil {
		log = obs.DefaultLogger
	}
	return &Limiter{
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		queue:    make(chan struct{}, cfg.MaxQueue),
		gRunning: reg.Gauge("limiter_inflight"),
		gQueued:  reg.Gauge("limiter_queue_depth"),
		mAdmit:   reg.Counter("limiter_admitted_total"),
		mShed:    reg.Counter("limiter_shed_total"),
		hWait:    reg.Histogram("limiter_queue_wait_seconds", obs.LatencyBuckets),
		log:      log,
	}
}

// Acquire takes a slot, waiting in the bounded queue when all slots are
// busy. It returns ErrOverloaded when the queue is also full, or ctx.Err()
// if the caller's context dies while queued. A nil return must be paired
// with Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.gRunning.Add(1)
		l.mAdmit.Inc()
		return nil
	default:
	}
	// All slots busy: take a queue token or shed.
	select {
	case l.queue <- struct{}{}:
	default:
		l.mShed.Inc()
		l.log.Event(ctx, obs.Warn, "limiter_shed", "running", len(l.slots), "queued", len(l.queue))
		return ErrOverloaded
	}
	l.gQueued.Add(1)
	enq := time.Now()
	defer func() {
		<-l.queue
		l.gQueued.Add(-1)
		// Queue-wait exemplars let a fat wait bucket resolve to the trace
		// that sat in line (only queued requests observe; fast-path admits
		// never waited).
		l.hWait.ObserveWithExemplar(time.Since(enq).Seconds(), obs.TraceIDFromContext(ctx))
	}()
	select {
	case l.slots <- struct{}{}:
		l.gRunning.Add(1)
		l.mAdmit.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *Limiter) Release() {
	<-l.slots
	l.gRunning.Add(-1)
}

// Running reports how many slots are currently held.
func (l *Limiter) Running() int { return len(l.slots) }

// Queued reports how many callers are currently waiting.
func (l *Limiter) Queued() int { return len(l.queue) }
