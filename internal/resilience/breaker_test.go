package resilience

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is an injectable clock for deterministic cooldown walks.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1000, 0)} }
func cfg(c *fakeClock, reg *obs.Registry) BreakerConfig {
	return BreakerConfig{
		Window: 10, MinSamples: 4, FailureThreshold: 0.5,
		Cooldown: time.Second, HalfOpenProbes: 2, Now: c.now, Obs: reg,
	}
}

func TestBreakerStaysClosedUnderSuccess(t *testing.T) {
	b := NewBreaker("m", cfg(newClock(), obs.NewRegistry()))
	for i := 0; i < 50; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Record(true)
	}
	if b.State() != Closed {
		t.Errorf("state = %v", b.State())
	}
}

func TestBreakerTripsOnFailureWindow(t *testing.T) {
	clock := newClock()
	reg := obs.NewRegistry()
	b := NewBreaker("m", cfg(clock, reg))
	// Below MinSamples nothing trips, even at 100% failure.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatal("tripped below MinSamples")
	}
	b.Allow()
	b.Record(false) // 4th failure: window is 4/4 failing ≥ 0.5
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker admitted a call")
	}
	snap := reg.Snapshot()
	if snap[`breaker_transitions_total{name="m",to="open"}`] != 1 {
		t.Errorf("transition counter: %v", snap)
	}
	if snap[`breaker_rejections_total{name="m"}`] == 0 {
		t.Error("rejection not counted")
	}
	if snap[`breaker_state{name="m"}`] != float64(Open) {
		t.Errorf("state gauge: %v", snap[`breaker_state{name="m"}`])
	}
}

func tripped(t *testing.T, clock *fakeClock, reg *obs.Registry) *Breaker {
	t.Helper()
	b := NewBreaker("m", cfg(clock, reg))
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	return b
}

func TestBreakerHalfOpenRecovers(t *testing.T) {
	clock := newClock()
	b := tripped(t, clock, obs.NewRegistry())
	clock.advance(2 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	// One probe at a time: a second concurrent call is rejected.
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Error("half-open breaker admitted two concurrent probes")
	}
	b.Record(true)
	if b.State() != HalfOpen {
		t.Fatalf("closed after 1/%d probe successes", 2)
	}
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Errorf("state = %v after enough probe successes", b.State())
	}
	// The window restarts clean: one failure must not re-trip.
	b.Allow()
	b.Record(false)
	if b.State() != Closed {
		t.Error("re-tripped from a stale window")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newClock()
	b := tripped(t, clock, obs.NewRegistry())
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want Open after failed probe", b.State())
	}
	if b.Allow() {
		t.Error("reopened breaker admitted a call before the next cooldown")
	}
	// The cooldown restarts from the failed probe.
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Error("probe rejected after second cooldown")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	// 10-slot window at 50%: old outcomes age out, and the trip fires
	// exactly when the live window crosses the threshold.
	b := NewBreaker("m", cfg(newClock(), obs.NewRegistry()))
	for i := 0; i < 10; i++ {
		b.Record(true)
	}
	for i := 0; i < 4; i++ {
		b.Record(false) // window now 6 successes + 4 failures = 0.4
	}
	if b.State() != Closed {
		t.Fatalf("state = %v below threshold", b.State())
	}
	b.Record(false) // 5 failures / 10 = 0.5: trip
	if b.State() != Open {
		t.Errorf("state = %v at the threshold edge", b.State())
	}
}

func TestBreakerSetIsPerName(t *testing.T) {
	clock := newClock()
	s := NewBreakerSet(cfg(clock, obs.NewRegistry()))
	for i := 0; i < 4; i++ {
		s.Record("sick", false)
	}
	if s.Allow("sick") {
		t.Error("tripped breaker allowed")
	}
	if !s.Allow("healthy") {
		t.Error("independent breaker rejected")
	}
	states := s.States()
	if states["sick"] != Open || states["healthy"] != Closed {
		t.Errorf("states = %v", states)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
