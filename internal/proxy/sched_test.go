package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/sched"
)

func schedProxy(t *testing.T) (*Proxy, llm.Family, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	fam := llm.DefaultFamilyObs(reg)
	models := make([]llm.Model, len(fam))
	for i, m := range fam {
		models[i] = m
	}
	p := New(Config{
		Models:       models,
		DisableCache: true, // every request must reach the scheduler
		Scheduler:    &sched.Config{MaxBatch: 8, MaxWait: time.Millisecond},
		Obs:          reg,
		Tracer:       obs.NewTracer(16),
	})
	t.Cleanup(p.Close)
	return p, fam, reg
}

// Concurrent proxy traffic flows through the scheduler, bills exactly
// what the models meter, and shows up in the scheduler stats.
func TestProxySchedulerBatchesConcurrentTraffic(t *testing.T) {
	p, fam, _ := schedProxy(t)
	if p.Scheduler() == nil {
		t.Fatal("scheduler not built")
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := p.Complete(context.Background(), llm.Request{
				Prompt:     fmt.Sprintf("question %d", i),
				Gold:       "g",
				Wrong:      "w",
				Difficulty: 0.3,
			})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	st, ok := p.SchedStats()
	if !ok || st.Submitted == 0 {
		t.Fatalf("scheduler saw no traffic: %+v (ok=%v)", st, ok)
	}
	if st.Batches >= st.BatchedItems {
		t.Errorf("no batching: %d batches for %d items", st.Batches, st.BatchedItems)
	}
	// Proxy spend must equal the family meters exactly — per-item batch
	// billing, no skew through the scheduler.
	if spend := p.Stats().Spend; spend != fam.TotalSpend() {
		t.Errorf("proxy spend %v, family meters %v", spend, fam.TotalSpend())
	}
}

// The HTTP surface: priority is parsed into the scheduler class,
// /v1/stats grows a scheduler section, and /metrics exposes sched_*.
func TestProxySchedulerHTTP(t *testing.T) {
	p, _, _ := schedProxy(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/complete", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"prompt":"hello there","gold":"hi","priority":"batch"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch-priority request: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(`{"prompt":"hello again","gold":"hi","priority":"turbo"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()

	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	schedSec, ok := stats["scheduler"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats have no scheduler section: %v", stats)
	}
	if schedSec["submitted"].(float64) < 1 {
		t.Errorf("scheduler section: %v", schedSec)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{"sched_submitted_total", "sched_batch_size", "sched_window_seconds"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// Without a Scheduler config (or with no batchable model) the proxy has
// no scheduler and /v1/stats stays scheduler-free.
func TestProxyWithoutScheduler(t *testing.T) {
	p := New(Config{DisableCache: true, Obs: obs.NewRegistry(), Tracer: obs.NewTracer(4)})
	if p.Scheduler() != nil {
		t.Error("scheduler built without config")
	}
	if _, ok := p.SchedStats(); ok {
		t.Error("SchedStats ok without scheduler")
	}
	p.Close() // must be a safe no-op
	if _, err := p.Complete(context.Background(), llm.Request{Prompt: "q", Gold: "g"}); err != nil {
		t.Fatal(err)
	}
}
