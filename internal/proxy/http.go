package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/llm"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// CompletionRequest is the JSON body accepted by POST /v1/complete.
// Gold/Wrong/WrongAlts/Difficulty parameterize the simulated upstream (see
// internal/llm); a deployment backed by a real API would drop them.
type CompletionRequest struct {
	Task   string `json:"task,omitempty"`
	Prompt string `json:"prompt"`
	Gold   string `json:"gold,omitempty"`
	Wrong  string `json:"wrong,omitempty"`
	// WrongAlts are additional plausible wrong completions; with them the
	// HTTP surface can express self-consistency-style requests whose
	// hallucinations disperse (see llm.Request.WrongAlts).
	WrongAlts  []string `json:"wrong_alts,omitempty"`
	Difficulty float64  `json:"difficulty,omitempty"`
	// NoiseKey keys the correctness noise by the semantic core of the
	// request instead of the full prompt (see llm.Request.NoiseKey).
	NoiseKey string `json:"noise_key,omitempty"`
	// Priority selects the batching scheduler's class: "interactive"
	// (default) or "batch" for bulk traffic that must not crowd out
	// interactive requests. Ignored when the scheduler is off.
	Priority string `json:"priority,omitempty"`
}

// CompletionResponse is the JSON reply of POST /v1/complete.
type CompletionResponse struct {
	Text       string  `json:"text"`
	Model      string  `json:"model"`
	Source     string  `json:"source"`
	Confidence float64 `json:"confidence"`
	CostMicro  int64   `json:"cost_micro_usd"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// Handler returns the proxy's HTTP mux:
//
//	POST /v1/complete   — serve one completion
//	GET  /v1/stats      — lifetime counters
//	GET  /metrics       — Prometheus text exposition of the full registry
//	GET  /debug/traces  — recent request span trees, JSON (?n= limits)
//	GET  /healthz       — liveness
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req CompletionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Prompt == "" {
			http.Error(w, "prompt is required", http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if req.Priority != "" {
			class, err := sched.ParseClass(req.Priority)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			ctx = sched.WithClass(ctx, class)
		}
		start := time.Now()
		ans, err := p.Complete(ctx, toLLMRequest(req))
		if err != nil {
			switch {
			case errors.Is(err, resilience.ErrOverloaded):
				// Shed by the limiter: tell well-behaved clients to retry.
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, context.DeadlineExceeded):
				http.Error(w, err.Error(), http.StatusGatewayTimeout)
			default:
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(CompletionResponse{
			Text:       ans.Text,
			Model:      ans.Model,
			Source:     ans.Source,
			Confidence: ans.Confidence,
			CostMicro:  int64(ans.Cost),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		out := map[string]interface{}{
			"requests":        st.Requests,
			"cache_hits":      st.CacheHits,
			"coalesced":       st.Coalesced,
			"model_calls":     st.ModelCalls,
			"stale_serves":    st.StaleServes,
			"shed":            st.Shed,
			"spend_micro_usd": int64(st.Spend),
		}
		if states := p.BreakerStates(); states != nil {
			breakers := make(map[string]string, len(states))
			for name, s := range states {
				breakers[name] = s.String()
			}
			out["breakers"] = breakers
		}
		if ss, ok := p.SchedStats(); ok {
			windows := make(map[string]float64, len(ss.Windows))
			for model, w := range ss.Windows {
				windows[model] = w.Seconds() * 1000
			}
			out["scheduler"] = map[string]interface{}{
				"submitted":     ss.Submitted,
				"batches":       ss.Batches,
				"batched_items": ss.BatchedItems,
				"canceled":      ss.Canceled,
				"failed":        ss.Failed,
				"window_ms":     windows,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		// ?format=json selects the JSON exposition; default is Prometheus
		// text.
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			p.reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"traces": p.tracer.Recent(n),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	return mux
}

func toLLMRequest(req CompletionRequest) llm.Request {
	return llm.Request{
		Task:       llm.Task(req.Task),
		Prompt:     req.Prompt,
		Gold:       req.Gold,
		Wrong:      req.Wrong,
		WrongAlts:  req.WrongAlts,
		Difficulty: req.Difficulty,
		NoiseKey:   req.NoiseKey,
	}
}
