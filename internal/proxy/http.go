package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// CompletionRequest is the JSON body accepted by POST /v1/complete.
// Gold/Wrong/WrongAlts/Difficulty parameterize the simulated upstream (see
// internal/llm); a deployment backed by a real API would drop them.
type CompletionRequest struct {
	Task   string `json:"task,omitempty"`
	Prompt string `json:"prompt"`
	Gold   string `json:"gold,omitempty"`
	Wrong  string `json:"wrong,omitempty"`
	// WrongAlts are additional plausible wrong completions; with them the
	// HTTP surface can express self-consistency-style requests whose
	// hallucinations disperse (see llm.Request.WrongAlts).
	WrongAlts  []string `json:"wrong_alts,omitempty"`
	Difficulty float64  `json:"difficulty,omitempty"`
	// NoiseKey keys the correctness noise by the semantic core of the
	// request instead of the full prompt (see llm.Request.NoiseKey).
	NoiseKey string `json:"noise_key,omitempty"`
	// Priority selects the batching scheduler's class: "interactive"
	// (default), "batch" for bulk traffic that must not crowd out
	// interactive requests, or "streaming" (implied by Stream). Ignored
	// when the scheduler is off.
	Priority string `json:"priority,omitempty"`
	// Stream selects the server-sent-events response: chunk events as
	// tokens arrive, then a terminal done event (see Handler docs).
	Stream bool `json:"stream,omitempty"`
}

// ErrorBody is the typed error detail inside ErrorEnvelope.
type ErrorBody struct {
	// Code is a stable machine-readable error class: "bad_request",
	// "method_not_allowed", "overloaded", "upstream_timeout",
	// "upstream_error", "disabled" or "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
	// Retryable tells well-behaved clients whether retrying (after any
	// Retry-After) can succeed.
	Retryable bool `json:"retryable"`
}

// ErrorEnvelope is the uniform JSON shape of every non-200 response
// from the proxy's HTTP surface.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg, Retryable: retryable}})
}

// completionError maps a serving-path error to its envelope.
func completionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, resilience.ErrOverloaded):
		// Shed by the limiter: tell well-behaved clients to retry.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "overloaded", err.Error(), true)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "upstream_timeout", err.Error(), true)
	default:
		writeError(w, http.StatusBadGateway, "upstream_error", err.Error(), false)
	}
}

// CompletionResponse is the JSON reply of POST /v1/complete. TraceID
// keys into /debug/traces?trace= and /debug/events?trace= to replay the
// request's lifecycle.
type CompletionResponse struct {
	Text       string  `json:"text"`
	Model      string  `json:"model"`
	Source     string  `json:"source"`
	Confidence float64 `json:"confidence"`
	CostMicro  int64   `json:"cost_micro_usd"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	TraceID    string  `json:"trace_id,omitempty"`
}

// TenantHeader is the HTTP header carrying the caller's tenant
// identity. Absent or empty, the request is attributed to
// obs.DefaultTenant.
const TenantHeader = "X-LLMDM-Tenant"

// Handler returns the proxy's HTTP mux:
//
//	POST /v1/complete   — serve one completion (X-LLMDM-Tenant attributes it);
//	                      with "stream": true the reply is Server-Sent Events:
//	                      one "chunk" event per token group (data: Chunk JSON),
//	                      then a terminal "done" event carrying the full text,
//	                      cost, tier and trace id — or an "error" event with
//	                      the same ErrorBody JSON the non-streamed surface
//	                      returns. Every non-200 response on every endpoint
//	                      is an ErrorEnvelope.
//	GET  /v1/stats      — lifetime counters (+ latency percentiles, tenants, alerts)
//	GET  /v1/slo        — per-class SLO scorecard with burn rates
//	GET  /v1/tenants    — per-tenant attribution table (?n= caps to top spenders)
//	GET  /v1/alerts     — alert rule states, evaluated on demand
//	GET  /metrics       — Prometheus text exposition (?format=json for JSON)
//	GET  /debug/traces  — recent request span trees, JSON (?n=, ?trace=)
//	GET  /debug/events  — recent lifecycle events (?trace=, ?level=, ?name=,
//	                      ?tenant=, ?n=, ?since= cursor)
//	GET  /debug/pprof/* — net/http/pprof, only with Config.EnablePprof
//	GET  /healthz       — liveness + alert summary
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", false)
			return
		}
		var req CompletionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad JSON: "+err.Error(), false)
			return
		}
		if req.Prompt == "" {
			writeError(w, http.StatusBadRequest, "bad_request", "prompt is required", false)
			return
		}
		ctx := r.Context()
		tenant := strings.TrimSpace(r.Header.Get(TenantHeader))
		if len(tenant) > obs.MaxTenantLen {
			writeError(w, http.StatusBadRequest, "bad_request", "tenant identifier too long", false)
			return
		}
		if tenant == "" {
			tenant = obs.DefaultTenant
		}
		ctx = obs.WithTenant(ctx, tenant)
		if req.Priority != "" {
			class, err := sched.ParseClass(req.Priority)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", err.Error(), false)
				return
			}
			ctx = sched.WithClass(ctx, class)
		}
		start := time.Now()
		if req.Stream {
			p.serveStream(w, r, ctx, start, toLLMRequest(req))
			return
		}
		ans, err := p.Complete(ctx, toLLMRequest(req))
		if err != nil {
			completionError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(CompletionResponse{
			Text:       ans.Text,
			Model:      ans.Model,
			Source:     ans.Source,
			Confidence: ans.Confidence,
			CostMicro:  int64(ans.Cost),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
			TraceID:    ans.Trace,
		})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		st := p.Stats()
		out := map[string]interface{}{
			"requests":        st.Requests,
			"cache_hits":      st.CacheHits,
			"coalesced":       st.Coalesced,
			"model_calls":     st.ModelCalls,
			"stale_serves":    st.StaleServes,
			"shed":            st.Shed,
			"streams":         st.Streams,
			"spend_micro_usd": int64(st.Spend),
		}
		if states := p.BreakerStates(); states != nil {
			breakers := make(map[string]string, len(states))
			for name, s := range states {
				breakers[name] = s.String()
			}
			out["breakers"] = breakers
		}
		// Latency percentiles per source, estimated from the histograms,
		// so operators read p99s without scraping raw buckets; p99_trace
		// is the exemplar nearest that quantile — the key into
		// /debug/traces for "what does a slow one look like".
		latency := make(map[string]map[string]interface{})
		for source, h := range map[string]*obs.Histogram{
			"cache": p.hLatCache, "coalesced": p.hLatCoalesced,
			"cascade": p.hLatCascade, "stale": p.hLatStale,
		} {
			if h.Count() == 0 {
				continue
			}
			entry := map[string]interface{}{
				"p50_ms": h.Quantile(0.50) * 1000,
				"p95_ms": h.Quantile(0.95) * 1000,
				"p99_ms": h.Quantile(0.99) * 1000,
			}
			if ex, ok := h.ExemplarNear(0.99); ok {
				entry["p99_trace"] = ex.Trace
			}
			latency[source] = entry
		}
		if len(latency) > 0 {
			out["latency"] = latency
		}
		if p.tenants != nil {
			ts := p.tenants.Snapshot(5)
			out["tenants"] = map[string]interface{}{
				"capacity": ts.Capacity,
				"tracked":  ts.Tracked,
				"evicted":  ts.Evicted,
				"top":      ts.Tenants,
			}
		}
		if p.alerts != nil {
			as := p.alerts.Evaluate()
			out["alerts"] = map[string]interface{}{
				"firing":  as.Firing,
				"pending": as.Pending,
			}
		}
		if ss, ok := p.SchedStats(); ok {
			windows := make(map[string]float64, len(ss.Windows))
			for model, w := range ss.Windows {
				windows[model] = w.Seconds() * 1000
			}
			out["scheduler"] = map[string]interface{}{
				"submitted":     ss.Submitted,
				"batches":       ss.Batches,
				"batched_items": ss.BatchedItems,
				"canceled":      ss.Canceled,
				"failed":        ss.Failed,
				"bypassed":      ss.Bypassed,
				"window_ms":     windows,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		if p.slo == nil {
			writeError(w, http.StatusNotFound, "disabled", "SLO tracking disabled", false)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.slo.Snapshot())
	})
	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		if p.tenants == nil {
			writeError(w, http.StatusNotFound, "disabled", "tenant attribution disabled", false)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "bad_request", "n must be a non-negative integer", false)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.tenants.Snapshot(n))
	})
	mux.HandleFunc("/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		if p.alerts == nil {
			writeError(w, http.StatusNotFound, "disabled", "alerting disabled", false)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.alerts.Evaluate())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		// Refresh the slo_* gauges so every scrape sees current burn rates.
		if p.slo != nil {
			p.slo.Snapshot()
		}
		// ?format=json selects the JSON exposition; default is Prometheus
		// text.
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			p.reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			w.Header().Set("Content-Type", "application/json")
			if td, ok := p.tracer.ByID(id); ok {
				json.NewEncoder(w).Encode(map[string]interface{}{"traces": []obs.SpanData{td}})
			} else {
				json.NewEncoder(w).Encode(map[string]interface{}{"traces": []obs.SpanData{}})
			}
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "bad_request", "n must be a non-negative integer", false)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"traces": p.tracer.Recent(n),
		})
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
			return
		}
		q := r.URL.Query()
		f := obs.EventFilter{Trace: q.Get("trace"), Name: q.Get("name"), Tenant: q.Get("tenant")}
		if s := q.Get("level"); s != "" {
			min, ok := obs.ParseLevel(s)
			if !ok {
				writeError(w, http.StatusBadRequest, "bad_request", "level must be debug, info, warn or error", false)
				return
			}
			f.Min = min
		}
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "bad_request", "n must be a non-negative integer", false)
				return
			}
			f.Max = v
		}
		// ?since=<seq> resumes from a cursor: only events with a higher
		// seq return, "next" is the cursor for the following call, and
		// "missing" counts events the ring evicted before this read.
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request", "since must be a non-negative integer", false)
				return
			}
			since = v
		}
		events, missing, next := p.events.EventsSince(since, f)
		if events == nil {
			events = []obs.Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"events":      events,
			"capacity":    p.events.Cap(),
			"overwritten": p.events.Overwritten(),
			"next":        next,
			"missing":     missing,
		})
	})
	if p.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness stays HTTP 200 even while alerting — a firing SLO alert
		// means "page somebody", not "restart the process" — but the body
		// summarizes the alert engine so one curl answers "is it healthy".
		status := "ok"
		firing, pending := 0, 0
		if p.alerts != nil {
			as := p.alerts.Evaluate()
			firing, pending = as.Firing, as.Pending
			if firing > 0 {
				status = "alerting"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(map[string]interface{}{
			"status":  status,
			"firing":  firing,
			"pending": pending,
		})
	})
	return mux
}

func toLLMRequest(req CompletionRequest) llm.Request {
	return llm.Request{
		Task:       llm.Task(req.Task),
		Prompt:     req.Prompt,
		Gold:       req.Gold,
		Wrong:      req.Wrong,
		WrongAlts:  req.WrongAlts,
		Difficulty: req.Difficulty,
		NoiseKey:   req.NoiseKey,
	}
}
