package proxy

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/llm"
)

// CompletionRequest is the JSON body accepted by POST /v1/complete.
// Gold/Wrong/Difficulty parameterize the simulated upstream (see
// internal/llm); a deployment backed by a real API would drop them.
type CompletionRequest struct {
	Task       string  `json:"task,omitempty"`
	Prompt     string  `json:"prompt"`
	Gold       string  `json:"gold,omitempty"`
	Wrong      string  `json:"wrong,omitempty"`
	Difficulty float64 `json:"difficulty,omitempty"`
}

// CompletionResponse is the JSON reply of POST /v1/complete.
type CompletionResponse struct {
	Text       string  `json:"text"`
	Model      string  `json:"model"`
	Source     string  `json:"source"`
	Confidence float64 `json:"confidence"`
	CostMicro  int64   `json:"cost_micro_usd"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// Handler returns the proxy's HTTP mux:
//
//	POST /v1/complete  — serve one completion
//	GET  /v1/stats     — lifetime counters
//	GET  /healthz      — liveness
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req CompletionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Prompt == "" {
			http.Error(w, "prompt is required", http.StatusBadRequest)
			return
		}
		start := time.Now()
		ans, err := p.Complete(r.Context(), toLLMRequest(req))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(CompletionResponse{
			Text:       ans.Text,
			Model:      ans.Model,
			Source:     ans.Source,
			Confidence: ans.Confidence,
			CostMicro:  int64(ans.Cost),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		st := p.Stats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"requests":        st.Requests,
			"cache_hits":      st.CacheHits,
			"coalesced":       st.Coalesced,
			"model_calls":     st.ModelCalls,
			"spend_micro_usd": int64(st.Spend),
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	return mux
}

func toLLMRequest(req CompletionRequest) llm.Request {
	return llm.Request{
		Task:       llm.Task(req.Task),
		Prompt:     req.Prompt,
		Gold:       req.Gold,
		Wrong:      req.Wrong,
		Difficulty: req.Difficulty,
	}
}
