// Package proxy implements the LLM serving proxy of the paper's Section
// III-B: "a proxy connected to popular LLMs ... often receives multiple
// simultaneous queries. Many of these queries may be similar, presenting an
// opportunity to reduce LLM usage costs."
//
// The proxy stacks the paper's optimizations in front of the model family:
//
//  1. a semantic cache (Section III-C) answers repeated or near-duplicate
//     queries without any model call;
//  2. in-flight deduplication coalesces concurrent identical queries into
//     one upstream call (the singleflight pattern);
//  3. the LLM cascade (Section III-B1) routes what remains, starting cheap
//     and escalating on low confidence.
//
// It is exposed over HTTP by cmd/llmdm-proxy and exercised with httptest in
// the package tests.
package proxy

import (
	"context"
	"sync"

	"repro/internal/core/cascade"
	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
)

// Answer is the proxy's response to one query.
type Answer struct {
	Text       string
	Model      string  // "cache" when served from cache
	Confidence float64 // 1.0 for cache hits
	// Source explains how the answer was produced: "cache", "coalesced",
	// or "cascade".
	Source string
	Cost   token.Cost
}

// Stats are the proxy's lifetime counters.
type Stats struct {
	Requests   int64
	CacheHits  int64
	Coalesced  int64
	ModelCalls int64
	Spend      token.Cost
}

// Config parameterizes a Proxy.
type Config struct {
	// Models is the cascade chain, cheapest first. Defaults to the standard
	// family.
	Models []llm.Model
	// Threshold is the cascade decision threshold. Defaults to 0.62.
	Threshold float64
	// CacheCapacity bounds the semantic cache (0 = unbounded).
	CacheCapacity int
	// CacheThreshold is the semantic-hit similarity bound. Defaults to 0.97.
	CacheThreshold float64
	// DisableCache turns the cache off (for ablations).
	DisableCache bool
}

// Proxy is the serving front end. Proxy is safe for concurrent use.
type Proxy struct {
	casc  *cascade.Cascade
	cache *semcache.Cache

	mu       sync.Mutex
	stats    Stats
	inflight map[string]*call
}

// call is one in-flight upstream request being awaited by >= 1 clients.
type call struct {
	done chan struct{}
	ans  Answer
	err  error
}

// New builds a Proxy.
func New(cfg Config) *Proxy {
	models := cfg.Models
	if len(models) == 0 {
		fam := llm.DefaultFamily()
		models = make([]llm.Model, len(fam))
		for i, m := range fam {
			models[i] = m
		}
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.62
	}
	p := &Proxy{
		casc:     cascade.New(cascade.Threshold{Tau: cfg.Threshold}, models...),
		inflight: make(map[string]*call),
	}
	if !cfg.DisableCache {
		th := cfg.CacheThreshold
		if th == 0 {
			th = 0.97
		}
		p.cache = semcache.New(semcache.Config{
			Embedder:  embed.New(embed.DefaultDim),
			Capacity:  cfg.CacheCapacity,
			Threshold: th,
			Policy:    semcache.Weighted,
		})
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Complete serves one request through cache → coalescing → cascade.
func (p *Proxy) Complete(ctx context.Context, req llm.Request) (Answer, error) {
	p.mu.Lock()
	p.stats.Requests++

	// 1. Cache.
	if p.cache != nil {
		if hit, ok := p.cache.Lookup(req.Prompt); ok {
			p.stats.CacheHits++
			p.mu.Unlock()
			return Answer{Text: hit.Entry.Response, Model: "cache", Confidence: 1, Source: "cache"}, nil
		}
	}

	// 2. In-flight dedup: join an identical pending request.
	key := req.Prompt
	if c, ok := p.inflight[key]; ok {
		p.stats.Coalesced++
		p.mu.Unlock()
		select {
		case <-c.done:
			ans := c.ans
			if c.err == nil {
				ans.Source = "coalesced"
				ans.Cost = 0 // the first caller paid
			}
			return ans, c.err
		case <-ctx.Done():
			return Answer{}, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	p.inflight[key] = c
	p.mu.Unlock()

	// 3. Cascade (outside the lock).
	resp, trace, err := p.casc.Complete(ctx, req)

	p.mu.Lock()
	delete(p.inflight, key)
	if err == nil {
		p.stats.ModelCalls += int64(len(trace.Steps))
		p.stats.Spend += trace.TotalCost
		if p.cache != nil {
			p.cache.Put(req.Prompt, resp.Text, semcache.Original, semcache.Reuse)
		}
	}
	p.mu.Unlock()

	c.ans = Answer{Text: resp.Text, Model: resp.Model, Confidence: resp.Confidence, Source: "cascade", Cost: trace.TotalCost}
	c.err = err
	close(c.done)
	return c.ans, c.err
}
