// Package proxy implements the LLM serving proxy of the paper's Section
// III-B: "a proxy connected to popular LLMs ... often receives multiple
// simultaneous queries. Many of these queries may be similar, presenting an
// opportunity to reduce LLM usage costs."
//
// The proxy stacks the paper's optimizations in front of the model family:
//
//  1. a semantic cache (Section III-C) answers repeated or near-duplicate
//     queries without any model call;
//  2. in-flight deduplication coalesces concurrent identical queries into
//     one upstream call (the singleflight pattern);
//  3. the LLM cascade (Section III-B1) routes what remains, starting cheap
//     and escalating on low confidence.
//
// Around that stack sits a resilience layer for heavy-traffic serving:
//
//   - a concurrency limiter at the front door sheds load instead of
//     queueing without bound (internal/resilience.Limiter);
//   - the upstream cascade call is detached from the leader's context, so
//     one client's cancellation never fails its coalesced cohort, and is
//     bounded by its own deadline;
//   - per-model circuit breakers (internal/resilience.Breaker) let the
//     cascade skip tiers that are actively failing;
//   - when the whole cascade still fails, the proxy degrades to the best
//     below-threshold semantic-cache entry, marked Source "stale", instead
//     of erroring.
//
// Every request is traced (a root span with cache-lookup and per-cascade-
// step children, kept in a bounded ring) and metered into an obs.Registry;
// the HTTP layer exposes both at GET /metrics and GET /debug/traces.
//
// Concurrency design: the only lock is the in-flight table's. The semantic
// cache lookup — which computes a query embedding and is the most expensive
// non-model step — runs outside any proxy lock, and the lifetime counters
// are atomics, so concurrent requests never serialize behind each other's
// embeddings.
//
// It is exposed over HTTP by cmd/llmdm-proxy and exercised with httptest in
// the package tests.
package proxy

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/cascade"
	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/token"
)

// Answer is the proxy's response to one query.
type Answer struct {
	Text       string
	Model      string  // "cache" when served from cache (fresh or stale)
	Confidence float64 // 1.0 for cache hits; the hit similarity for stale serves
	// Source explains how the answer was produced: "cache", "coalesced",
	// "cascade", "stale" (degraded cache serve after upstream failure) or
	// "error".
	Source string
	Cost   token.Cost
	// Trace is the request's trace ID — the key into /debug/traces and
	// /debug/events, set even on errors so failures stay explainable.
	Trace string
}

// Stats are the proxy's lifetime counters.
type Stats struct {
	Requests   int64
	CacheHits  int64
	Coalesced  int64
	ModelCalls int64
	// StaleServes counts degraded answers served from the cache after the
	// cascade failed.
	StaleServes int64
	// Shed counts requests rejected by the concurrency limiter.
	Shed  int64
	Spend token.Cost
	// Streams counts requests served through CompleteStream (they also
	// count in Requests).
	Streams int64
}

// Config parameterizes a Proxy.
type Config struct {
	// Models is the cascade chain, cheapest first. Defaults to the standard
	// family.
	Models []llm.Model
	// Threshold is the cascade decision threshold. Defaults to 0.62.
	Threshold float64
	// ExitThreshold arms mid-generation early exit on streamed requests:
	// a non-final tier whose chunk confidence drops below it is aborted
	// and escalated, billing only the chunks already emitted. Defaults
	// to 0.35 (collapse, well under the accept threshold); set
	// DisableEarlyExit to turn it off.
	ExitThreshold    float64
	DisableEarlyExit bool
	// CacheCapacity bounds the semantic cache (0 = unbounded).
	CacheCapacity int
	// CacheThreshold is the semantic-hit similarity bound. Defaults to 0.97.
	CacheThreshold float64
	// DisableCache turns the cache off (for ablations).
	DisableCache bool

	// UpstreamTimeout bounds each cascade run. Because the upstream call is
	// detached from the requesting client's context (so a canceled leader
	// cannot poison its coalesced cohort), this deadline is what ultimately
	// reaps a hung upstream. Defaults to 30s.
	UpstreamTimeout time.Duration
	// MaxConcurrent caps requests served at once; 0 disables the limiter.
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot when MaxConcurrent is hit;
	// beyond it requests are shed with resilience.ErrOverloaded.
	MaxQueue int
	// Breaker parameterizes the per-model circuit breakers consulted by the
	// cascade. The zero value selects defaults; DisableBreaker turns them
	// off.
	Breaker        resilience.BreakerConfig
	DisableBreaker bool
	// StaleFloor is the minimum cache similarity for a degraded stale
	// serve after the cascade fails. Defaults to 0.55; DisableStale turns
	// stale serving off.
	StaleFloor   float64
	DisableStale bool

	// Scheduler, when non-nil, places an adaptive micro-batching
	// scheduler between the cascade and every model that supports
	// batched generation (llm.BatchModel): concurrent cascades then
	// share batches per tier instead of calling models one request at a
	// time. Models without batch support keep their direct path. The
	// zero sched.Config value selects the scheduler's defaults; its Obs
	// defaults to the proxy's registry. Call Close to drain it.
	Scheduler *sched.Config

	// Obs receives the proxy's metrics (and is what GET /metrics serves).
	// Nil means obs.Default.
	Obs *obs.Registry
	// Tracer retains recent request traces (served by GET /debug/traces).
	// Nil means obs.DefaultTracer.
	Tracer *obs.Tracer
	// Events retains recent structured lifecycle events (served by GET
	// /debug/events). Nil means obs.DefaultEvents — unless Log is set, in
	// which case the logger's own sink is served.
	Events *obs.EventLog
	// Log emits the serving stack's lifecycle events. Nil builds a logger
	// over Events at Debug level, counting into Obs.
	Log *obs.Logger
	// SLO parameterizes per-class latency/availability objectives served
	// at GET /v1/slo (its Obs and Now default from the proxy). The zero
	// value selects defaults; DisableSLO turns tracking off.
	SLO        obs.SLOConfig
	DisableSLO bool
	// TenantCapacity bounds the per-tenant attribution table served at
	// GET /v1/tenants (0 selects obs.DefaultTenantCapacity); beyond it
	// the accountant degrades to a space-saving heavy-hitter sketch.
	// DisableTenants turns attribution off.
	TenantCapacity int
	DisableTenants bool
	// Alerts parameterizes the alert engine served at GET /v1/alerts.
	// Its Source/Obs/Log/SLO/Tenants default from the proxy's own wiring;
	// the engine starts with the default rule pack unless
	// Alerts.DisableDefaultRules is set. DisableAlerts turns the engine
	// off entirely.
	Alerts        obs.AlertConfig
	DisableAlerts bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// proxy's HTTP mux. Off by default: profiling endpoints can stall the
	// world and belong behind an operator's explicit choice.
	EnablePprof bool
}

// Proxy is the serving front end. Proxy is safe for concurrent use.
type Proxy struct {
	casc     *cascade.Cascade
	cache    *semcache.Cache
	reg      *obs.Registry
	tracer   *obs.Tracer
	log      *obs.Logger
	events   *obs.EventLog
	slo      *obs.SLOTracker
	tenants  *obs.TenantAccountant
	alerts   *obs.AlertEngine
	pprof    bool
	limiter  *resilience.Limiter
	breakers *resilience.BreakerSet
	sched    *sched.Scheduler

	upstreamTimeout time.Duration
	staleFloor      float64
	disableStale    bool

	// mu guards only the in-flight table; stats are atomics and the cache
	// locks itself.
	mu       sync.Mutex
	inflight map[string]*call

	requests, cacheHits, coalesced, modelCalls, staleServes, shed, spend, streams atomic.Int64

	// Metric handles, resolved once at construction.
	mReqCache, mReqCoalesced, mReqCascade, mReqStale, mReqShed, mReqError *obs.Counter
	mSpend                                                                *obs.Counter
	gInflight                                                             *obs.Gauge
	hLatCache, hLatCoalesced, hLatCascade, hLatStale                      *obs.Histogram
}

// call is one in-flight upstream request being awaited by >= 1 clients.
// The upstream run is detached from every awaiting client, so the fields
// are written exactly once (before done closes) no matter which clients
// are still listening.
type call struct {
	done  chan struct{}
	ans   Answer
	err   error
	steps int
	// log is the call's chunk replay log: streamed leaders pump cascade
	// chunks into it live; request/response leaders append one final
	// chunk on completion. Streamed followers replay it either way.
	log *chunkLog
}

// New builds a Proxy.
func New(cfg Config) *Proxy {
	models := cfg.Models
	if len(models) == 0 {
		fam := llm.DefaultFamily()
		models = make([]llm.Model, len(fam))
		for i, m := range fam {
			models[i] = m
		}
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.62
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer
	}
	log := cfg.Log
	if log == nil {
		log = obs.NewLogger(cfg.Events, obs.Debug, reg)
	}
	events := log.Sink()
	if cfg.UpstreamTimeout == 0 {
		cfg.UpstreamTimeout = 30 * time.Second
	}
	if cfg.StaleFloor == 0 {
		cfg.StaleFloor = 0.55
	}
	var breakers *resilience.BreakerSet
	if !cfg.DisableBreaker {
		bcfg := cfg.Breaker
		if bcfg.Obs == nil {
			bcfg.Obs = reg
		}
		if bcfg.Log == nil {
			bcfg.Log = log
		}
		breakers = resilience.NewBreakerSet(bcfg)
	}
	var scheduler *sched.Scheduler
	if cfg.Scheduler != nil {
		scfg := *cfg.Scheduler
		if scfg.Obs == nil {
			scfg.Obs = reg
		}
		if scfg.Log == nil {
			scfg.Log = log
		}
		var batchables []llm.BatchModel
		for _, m := range models {
			if bm, ok := m.(llm.BatchModel); ok {
				batchables = append(batchables, bm)
			}
		}
		if len(batchables) > 0 {
			scheduler = sched.New(scfg, batchables...)
		}
	}
	if cfg.ExitThreshold == 0 && !cfg.DisableEarlyExit {
		cfg.ExitThreshold = 0.35
	}
	exit := cfg.ExitThreshold
	if cfg.DisableEarlyExit {
		exit = 0
	}
	casc := &cascade.Cascade{Models: models, Decide: cascade.Threshold{Tau: cfg.Threshold}, Breakers: breakers, ExitThreshold: exit, Obs: reg, Log: log}
	if scheduler != nil {
		casc.Sched = scheduler
	}
	var slo *obs.SLOTracker
	if !cfg.DisableSLO {
		scfg := cfg.SLO
		if scfg.Obs == nil {
			scfg.Obs = reg
		}
		slo = obs.NewSLOTracker(scfg)
	}
	var tenants *obs.TenantAccountant
	if !cfg.DisableTenants {
		tenants = obs.NewTenantAccountant(obs.TenantConfig{Capacity: cfg.TenantCapacity, Obs: reg})
	}
	var alerts *obs.AlertEngine
	if !cfg.DisableAlerts {
		acfg := cfg.Alerts
		if acfg.Source == nil {
			acfg.Source = reg
		}
		if acfg.Obs == nil {
			acfg.Obs = reg
		}
		if acfg.Log == nil {
			acfg.Log = log
		}
		if acfg.SLO == nil {
			acfg.SLO = slo
		}
		if acfg.Tenants == nil {
			acfg.Tenants = tenants
		}
		alerts = obs.NewAlertEngine(acfg)
		if !acfg.DisableDefaultRules {
			alerts.AddDefaultRules()
		}
	}
	p := &Proxy{
		casc:     casc,
		sched:    scheduler,
		reg:      reg,
		tracer:   tracer,
		log:      log,
		events:   events,
		slo:      slo,
		tenants:  tenants,
		alerts:   alerts,
		pprof:    cfg.EnablePprof,
		breakers: breakers,
		inflight: make(map[string]*call),

		upstreamTimeout: cfg.UpstreamTimeout,
		staleFloor:      cfg.StaleFloor,
		disableStale:    cfg.DisableStale,

		mReqCache:     reg.Counter("proxy_requests_total", "source", "cache"),
		mReqCoalesced: reg.Counter("proxy_requests_total", "source", "coalesced"),
		mReqCascade:   reg.Counter("proxy_requests_total", "source", "cascade"),
		mReqStale:     reg.Counter("proxy_requests_total", "source", "stale"),
		mReqShed:      reg.Counter("proxy_requests_total", "source", "shed"),
		mReqError:     reg.Counter("proxy_requests_total", "source", "error"),
		mSpend:        reg.Counter("proxy_spend_microusd_total"),
		gInflight:     reg.Gauge("proxy_inflight"),
		hLatCache:     reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "cache"),
		hLatCoalesced: reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "coalesced"),
		hLatCascade:   reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "cascade"),
		hLatStale:     reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "stale"),
	}
	if cfg.MaxConcurrent > 0 {
		p.limiter = resilience.NewLimiter(resilience.LimiterConfig{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxQueue,
			Obs:           reg,
			Log:           log,
		})
	}
	if !cfg.DisableCache {
		th := cfg.CacheThreshold
		if th == 0 {
			th = 0.97
		}
		p.cache = semcache.New(semcache.Config{
			Embedder:  embed.New(embed.DefaultDim),
			Capacity:  cfg.CacheCapacity,
			Threshold: th,
			Policy:    semcache.Weighted,
			Obs:       reg,
			Log:       log,
		})
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:    p.requests.Load(),
		CacheHits:   p.cacheHits.Load(),
		Coalesced:   p.coalesced.Load(),
		ModelCalls:  p.modelCalls.Load(),
		StaleServes: p.staleServes.Load(),
		Shed:        p.shed.Load(),
		Spend:       token.Cost(p.spend.Load()),
		Streams:     p.streams.Load(),
	}
}

// Metrics returns the proxy's metrics registry (what GET /metrics serves).
func (p *Proxy) Metrics() *obs.Registry { return p.reg }

// Tracer returns the proxy's trace ring (what GET /debug/traces serves).
func (p *Proxy) Tracer() *obs.Tracer { return p.tracer }

// Events returns the proxy's event ring (what GET /debug/events serves).
func (p *Proxy) Events() *obs.EventLog { return p.events }

// SLO returns the proxy's SLO tracker, or nil when disabled.
func (p *Proxy) SLO() *obs.SLOTracker { return p.slo }

// Tenants returns the proxy's per-tenant accountant (what GET
// /v1/tenants serves), or nil when disabled.
func (p *Proxy) Tenants() *obs.TenantAccountant { return p.tenants }

// Alerts returns the proxy's alert engine (what GET /v1/alerts
// serves), or nil when disabled.
func (p *Proxy) Alerts() *obs.AlertEngine { return p.alerts }

// Scheduler returns the proxy's batching scheduler, or nil when
// batching is not configured (or no model supports it).
func (p *Proxy) Scheduler() *sched.Scheduler { return p.sched }

// SchedStats snapshots the batching scheduler's counters; ok is false
// when no scheduler is configured.
func (p *Proxy) SchedStats() (st sched.Stats, ok bool) {
	if p.sched == nil {
		return sched.Stats{}, false
	}
	return p.sched.Stats(), true
}

// Close drains and stops the batching scheduler (if any). Queued
// requests are flushed before it returns; the proxy itself keeps
// serving, falling back to direct model calls.
func (p *Proxy) Close() {
	if p.sched != nil {
		p.sched.Close()
	}
}

// BreakerStates snapshots the per-model circuit breaker states (nil when
// breakers are disabled).
func (p *Proxy) BreakerStates() map[string]resilience.State {
	if p.breakers == nil {
		return nil
	}
	return p.breakers.States()
}

// Complete serves one request through limiter → cache → coalescing →
// cascade, degrading to a stale cache entry when the cascade fails. The
// root span starts before admission so even shed requests leave a trace
// and an event trail; the returned Answer carries the trace ID either
// way.
func (p *Proxy) Complete(ctx context.Context, req llm.Request) (Answer, error) {
	start := time.Now()
	p.requests.Add(1)
	ctx, root := p.tracer.Start(ctx, "proxy.complete")
	defer root.End()
	if tenant, ok := obs.ExplicitTenant(ctx); ok {
		root.SetAttr("tenant", tenant)
	}

	ans, err := p.serve(ctx, root, start, req)
	ans.Trace = root.TraceID()

	elapsed := time.Since(start)
	if p.slo != nil {
		p.slo.Record(sched.ClassFrom(ctx).String(), elapsed, err == nil)
	}
	p.tenants.Record(obs.TenantFrom(ctx), obs.TenantSample{
		Latency:  elapsed,
		CacheHit: ans.Source == "cache",
		Shed:     errors.Is(err, resilience.ErrOverloaded),
		Error:    err != nil,
	})
	if err == nil {
		p.log.Event(ctx, obs.Info, "proxy_complete",
			"source", ans.Source, "model", ans.Model, "cost_microusd", int64(ans.Cost), "elapsed", elapsed)
	} else {
		p.log.Event(ctx, obs.Error, "proxy_error", "error", err.Error(), "elapsed", elapsed)
	}
	return ans, err
}

// serve is Complete minus the bookkeeping that wraps every outcome
// (trace ID, SLO accounting, terminal event).
func (p *Proxy) serve(ctx context.Context, root *obs.Span, start time.Time, req llm.Request) (Answer, error) {
	// 0. Admission: shed rather than queue without bound.
	if p.limiter != nil {
		if err := p.limiter.Acquire(ctx); err != nil {
			if errors.Is(err, resilience.ErrOverloaded) {
				p.shed.Add(1)
				p.mReqShed.Inc()
				root.SetAttr("source", "shed")
			} else {
				p.mReqError.Inc()
			}
			return Answer{Source: "error"}, err
		}
		defer p.limiter.Release()
	}
	p.log.Event(ctx, obs.Debug, "proxy_admit", "class", sched.ClassFrom(ctx).String())

	// 1. Cache. The lookup embeds the query — deliberately outside every
	// proxy lock so concurrent requests don't serialize on the embedder.
	if p.cache != nil {
		_, csp := obs.StartSpan(ctx, "cache.lookup")
		hit, ok := p.cache.LookupTraced(req.Prompt, root.TraceID())
		csp.SetAttr("hit", ok)
		if ok {
			csp.SetAttr("similarity", hit.Similarity)
			csp.SetAttr("exact", hit.Exact)
		}
		csp.End()
		if ok {
			p.cacheHits.Add(1)
			p.mReqCache.Inc()
			p.hLatCache.ObserveWithExemplar(time.Since(start).Seconds(), root.TraceID())
			root.SetAttr("source", "cache")
			p.log.Event(ctx, obs.Info, "proxy_cache_hit", "similarity", hit.Similarity, "exact", hit.Exact)
			return Answer{Text: hit.Entry.Response, Model: "cache", Confidence: 1, Source: "cache"}, nil
		}
		p.log.Event(ctx, obs.Debug, "proxy_cache_miss")
	}

	// 2. In-flight dedup: join an identical pending request.
	key := req.Prompt
	p.mu.Lock()
	if c, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.coalesced.Add(1)
		root.SetAttr("source", "coalesced")
		p.log.Event(ctx, obs.Info, "proxy_coalesce_join")
		_, wsp := obs.StartSpan(ctx, "coalesce.wait")
		select {
		case <-c.done:
			wsp.End()
			if c.err == nil {
				ans := c.ans
				ans.Source = "coalesced"
				ans.Cost = 0 // the first caller paid
				p.mReqCoalesced.Inc()
				p.hLatCoalesced.ObserveWithExemplar(time.Since(start).Seconds(), root.TraceID())
				return ans, nil
			}
			return p.degrade(ctx, root, start, req, c)
		case <-ctx.Done():
			wsp.SetAttr("outcome", "canceled")
			wsp.End()
			p.mReqError.Inc()
			return Answer{}, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{}), log: newChunkLog()}
	p.inflight[key] = c
	p.gInflight.Add(1)
	p.mu.Unlock()

	// 3. Cascade, detached from this caller's context: the leader merely
	// awaits the result like any coalesced waiter, so a canceled leader
	// never fails the cohort. The detached context still carries the root
	// span (values survive WithoutCancel), so the cascade's per-step spans
	// land under this request's trace; the upstream deadline is the proxy's
	// own, not the client's.
	upCtx, cancelUp := context.WithTimeout(context.WithoutCancel(ctx), p.upstreamTimeout)
	obs.Go(p.reg, "proxy_upstream", func() {
		defer cancelUp()
		resp, trace, err := p.casc.Complete(upCtx, req)
		// Accounting happens here — success or not — because the failed
		// run already paid for every attempted tier; dropping that spend
		// would understate cost under failure injection.
		p.modelCalls.Add(int64(len(trace.Steps)))
		p.spend.Add(int64(trace.TotalCost))
		p.mSpend.Add(int64(trace.TotalCost))
		// Per-tenant attribution rides the same once-per-run spot, so the
		// sum across tenants stays meter-exact with the spend counter:
		// coalesced waiters pay 0 and the leader's tenant pays the run.
		// upCtx still carries the tenant — values survive WithoutCancel.
		p.tenants.AddSpend(obs.TenantFrom(upCtx), int64(trace.TotalCost), trace.Escalations())
		if err == nil {
			if p.cache != nil {
				p.cache.Put(req.Prompt, resp.Text, semcache.Original, semcache.Reuse)
			}
			c.ans = Answer{Text: resp.Text, Model: resp.Model, Confidence: resp.Confidence, Source: "cascade", Cost: trace.TotalCost}
		} else {
			// Error-shaped, not success-shaped: no model, no text — just
			// the money already burned.
			c.ans = Answer{Source: "error", Cost: trace.TotalCost}
			c.err = err
			p.log.Event(upCtx, obs.Warn, "proxy_upstream_error", "error", err.Error(), "steps", len(trace.Steps))
		}
		c.steps = len(trace.Steps)
		p.mu.Lock()
		delete(p.inflight, key)
		p.gInflight.Add(-1)
		p.mu.Unlock()
		// Streamed followers coalesced onto this request/response call
		// replay it as one final chunk (cost zeroed on their side).
		if c.err == nil {
			c.log.append(Chunk{Text: c.ans.Text, Model: c.ans.Model, Confidence: c.ans.Confidence, Cost: c.ans.Cost, Final: true})
		}
		c.log.finish(c.ans, c.err)
		close(c.done)
	})

	select {
	case <-c.done:
		if c.err == nil {
			p.mReqCascade.Inc()
			p.hLatCascade.ObserveWithExemplar(time.Since(start).Seconds(), root.TraceID())
			root.SetAttr("source", "cascade")
			root.SetAttr("model", c.ans.Model)
			root.SetAttr("steps", c.steps)
			root.SetAttr("cost_microusd", int64(c.ans.Cost))
			return c.ans, nil
		}
		root.SetAttr("error", c.err.Error())
		return p.degrade(ctx, root, start, req, c)
	case <-ctx.Done():
		// The upstream keeps running for any coalesced waiters (and to
		// populate the cache); only this caller gives up.
		p.mReqError.Inc()
		root.SetAttr("source", "canceled")
		return Answer{}, ctx.Err()
	}
}

// degrade handles a failed upstream call for one awaiting client: serve
// the best below-threshold cache entry as a stale answer when allowed,
// otherwise surface the error-shaped answer.
func (p *Proxy) degrade(ctx context.Context, root *obs.Span, start time.Time, req llm.Request, c *call) (Answer, error) {
	if p.cache != nil && !p.disableStale {
		_, ssp := obs.StartSpan(ctx, "stale.lookup")
		hit, ok := p.cache.LookupStale(req.Prompt, p.staleFloor)
		ssp.SetAttr("hit", ok)
		if ok {
			ssp.SetAttr("similarity", hit.Similarity)
		}
		ssp.End()
		if ok {
			p.staleServes.Add(1)
			p.mReqStale.Inc()
			p.hLatStale.ObserveWithExemplar(time.Since(start).Seconds(), root.TraceID())
			root.SetAttr("source", "stale")
			p.log.Event(ctx, obs.Warn, "proxy_stale_serve", "similarity", hit.Similarity)
			return Answer{Text: hit.Entry.Response, Model: "cache", Confidence: hit.Similarity, Source: "stale"}, nil
		}
	}
	p.mReqError.Inc()
	root.SetAttr("source", "error")
	return c.ans, c.err
}
