// Package proxy implements the LLM serving proxy of the paper's Section
// III-B: "a proxy connected to popular LLMs ... often receives multiple
// simultaneous queries. Many of these queries may be similar, presenting an
// opportunity to reduce LLM usage costs."
//
// The proxy stacks the paper's optimizations in front of the model family:
//
//  1. a semantic cache (Section III-C) answers repeated or near-duplicate
//     queries without any model call;
//  2. in-flight deduplication coalesces concurrent identical queries into
//     one upstream call (the singleflight pattern);
//  3. the LLM cascade (Section III-B1) routes what remains, starting cheap
//     and escalating on low confidence.
//
// Every request is traced (a root span with cache-lookup and per-cascade-
// step children, kept in a bounded ring) and metered into an obs.Registry;
// the HTTP layer exposes both at GET /metrics and GET /debug/traces.
//
// Concurrency design: the only lock is the in-flight table's. The semantic
// cache lookup — which computes a query embedding and is the most expensive
// non-model step — runs outside any proxy lock, and the lifetime counters
// are atomics, so concurrent requests never serialize behind each other's
// embeddings.
//
// It is exposed over HTTP by cmd/llmdm-proxy and exercised with httptest in
// the package tests.
package proxy

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/cascade"
	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
)

// Answer is the proxy's response to one query.
type Answer struct {
	Text       string
	Model      string  // "cache" when served from cache
	Confidence float64 // 1.0 for cache hits
	// Source explains how the answer was produced: "cache", "coalesced",
	// or "cascade".
	Source string
	Cost   token.Cost
}

// Stats are the proxy's lifetime counters.
type Stats struct {
	Requests   int64
	CacheHits  int64
	Coalesced  int64
	ModelCalls int64
	Spend      token.Cost
}

// Config parameterizes a Proxy.
type Config struct {
	// Models is the cascade chain, cheapest first. Defaults to the standard
	// family.
	Models []llm.Model
	// Threshold is the cascade decision threshold. Defaults to 0.62.
	Threshold float64
	// CacheCapacity bounds the semantic cache (0 = unbounded).
	CacheCapacity int
	// CacheThreshold is the semantic-hit similarity bound. Defaults to 0.97.
	CacheThreshold float64
	// DisableCache turns the cache off (for ablations).
	DisableCache bool
	// Obs receives the proxy's metrics (and is what GET /metrics serves).
	// Nil means obs.Default.
	Obs *obs.Registry
	// Tracer retains recent request traces (served by GET /debug/traces).
	// Nil means obs.DefaultTracer.
	Tracer *obs.Tracer
}

// Proxy is the serving front end. Proxy is safe for concurrent use.
type Proxy struct {
	casc   *cascade.Cascade
	cache  *semcache.Cache
	reg    *obs.Registry
	tracer *obs.Tracer

	// mu guards only the in-flight table; stats are atomics and the cache
	// locks itself.
	mu       sync.Mutex
	inflight map[string]*call

	requests, cacheHits, coalesced, modelCalls, spend atomic.Int64

	// Metric handles, resolved once at construction.
	mReqCache, mReqCoalesced, mReqCascade, mReqError *obs.Counter
	mSpend                                           *obs.Counter
	gInflight                                        *obs.Gauge
	hLatCache, hLatCoalesced, hLatCascade            *obs.Histogram
}

// call is one in-flight upstream request being awaited by >= 1 clients.
type call struct {
	done chan struct{}
	ans  Answer
	err  error
}

// New builds a Proxy.
func New(cfg Config) *Proxy {
	models := cfg.Models
	if len(models) == 0 {
		fam := llm.DefaultFamily()
		models = make([]llm.Model, len(fam))
		for i, m := range fam {
			models[i] = m
		}
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.62
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer
	}
	p := &Proxy{
		casc:     &cascade.Cascade{Models: models, Decide: cascade.Threshold{Tau: cfg.Threshold}, Obs: reg},
		reg:      reg,
		tracer:   tracer,
		inflight: make(map[string]*call),

		mReqCache:     reg.Counter("proxy_requests_total", "source", "cache"),
		mReqCoalesced: reg.Counter("proxy_requests_total", "source", "coalesced"),
		mReqCascade:   reg.Counter("proxy_requests_total", "source", "cascade"),
		mReqError:     reg.Counter("proxy_requests_total", "source", "error"),
		mSpend:        reg.Counter("proxy_spend_microusd_total"),
		gInflight:     reg.Gauge("proxy_inflight"),
		hLatCache:     reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "cache"),
		hLatCoalesced: reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "coalesced"),
		hLatCascade:   reg.Histogram("proxy_latency_seconds", obs.LatencyBuckets, "source", "cascade"),
	}
	if !cfg.DisableCache {
		th := cfg.CacheThreshold
		if th == 0 {
			th = 0.97
		}
		p.cache = semcache.New(semcache.Config{
			Embedder:  embed.New(embed.DefaultDim),
			Capacity:  cfg.CacheCapacity,
			Threshold: th,
			Policy:    semcache.Weighted,
			Obs:       reg,
		})
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:   p.requests.Load(),
		CacheHits:  p.cacheHits.Load(),
		Coalesced:  p.coalesced.Load(),
		ModelCalls: p.modelCalls.Load(),
		Spend:      token.Cost(p.spend.Load()),
	}
}

// Metrics returns the proxy's metrics registry (what GET /metrics serves).
func (p *Proxy) Metrics() *obs.Registry { return p.reg }

// Tracer returns the proxy's trace ring (what GET /debug/traces serves).
func (p *Proxy) Tracer() *obs.Tracer { return p.tracer }

// Complete serves one request through cache → coalescing → cascade.
func (p *Proxy) Complete(ctx context.Context, req llm.Request) (Answer, error) {
	start := time.Now()
	p.requests.Add(1)
	ctx, root := p.tracer.Start(ctx, "proxy.complete")
	defer root.End()

	// 1. Cache. The lookup embeds the query — deliberately outside every
	// proxy lock so concurrent requests don't serialize on the embedder.
	if p.cache != nil {
		_, csp := obs.StartSpan(ctx, "cache.lookup")
		hit, ok := p.cache.Lookup(req.Prompt)
		csp.SetAttr("hit", ok)
		if ok {
			csp.SetAttr("similarity", hit.Similarity)
			csp.SetAttr("exact", hit.Exact)
		}
		csp.End()
		if ok {
			p.cacheHits.Add(1)
			p.mReqCache.Inc()
			p.hLatCache.Observe(time.Since(start).Seconds())
			root.SetAttr("source", "cache")
			return Answer{Text: hit.Entry.Response, Model: "cache", Confidence: 1, Source: "cache"}, nil
		}
	}

	// 2. In-flight dedup: join an identical pending request.
	key := req.Prompt
	p.mu.Lock()
	if c, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.coalesced.Add(1)
		root.SetAttr("source", "coalesced")
		_, wsp := obs.StartSpan(ctx, "coalesce.wait")
		select {
		case <-c.done:
			wsp.End()
			ans := c.ans
			if c.err == nil {
				ans.Source = "coalesced"
				ans.Cost = 0 // the first caller paid
				p.mReqCoalesced.Inc()
				p.hLatCoalesced.Observe(time.Since(start).Seconds())
			} else {
				p.mReqError.Inc()
			}
			return ans, c.err
		case <-ctx.Done():
			wsp.SetAttr("outcome", "canceled")
			wsp.End()
			p.mReqError.Inc()
			return Answer{}, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	p.inflight[key] = c
	p.gInflight.Add(1)
	p.mu.Unlock()

	// 3. Cascade (outside the lock). The context carries the root span, so
	// the cascade's per-step spans land under this request's trace.
	resp, trace, err := p.casc.Complete(ctx, req)

	p.mu.Lock()
	delete(p.inflight, key)
	p.gInflight.Add(-1)
	p.mu.Unlock()

	if err == nil {
		p.modelCalls.Add(int64(len(trace.Steps)))
		p.spend.Add(int64(trace.TotalCost))
		p.mSpend.Add(int64(trace.TotalCost))
		if p.cache != nil {
			p.cache.Put(req.Prompt, resp.Text, semcache.Original, semcache.Reuse)
		}
		p.mReqCascade.Inc()
		p.hLatCascade.Observe(time.Since(start).Seconds())
		root.SetAttr("source", "cascade")
		root.SetAttr("model", resp.Model)
		root.SetAttr("steps", len(trace.Steps))
		root.SetAttr("cost_microusd", int64(trace.TotalCost))
	} else {
		p.mReqError.Inc()
		root.SetAttr("source", "error")
		root.SetAttr("error", err.Error())
	}

	c.ans = Answer{Text: resp.Text, Model: resp.Model, Confidence: resp.Confidence, Source: "cascade", Cost: trace.TotalCost}
	c.err = err
	close(c.done)
	return c.ans, c.err
}
