package proxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// telemetryProxy builds a proxy on private obs plumbing so event/trace
// assertions never race with other tests' traffic.
func telemetryProxy(cfg Config) *Proxy {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(64)
	}
	if cfg.Events == nil {
		cfg.Events = obs.NewEventLog(256)
	}
	return newTestProxy(cfg)
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out interface{}) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp
}

// TestLifecycleReconstructedFromEvents is the tentpole's acceptance
// test: a request's full story — admission, cache miss, tier attempts,
// escalation, completion — is reconstructable from /debug/events
// keyed by the trace_id the response returned.
func TestLifecycleReconstructedFromEvents(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// A hard question: the small tier lacks confidence, so the cascade
	// escalates to the large model.
	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{
		Prompt: "prove the Riemann hypothesis", Gold: "answer", Difficulty: 0.95,
	})
	var cr CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.TraceID == "" {
		t.Fatal("response carries no trace_id")
	}

	var ev struct {
		Events []obs.Event `json:"events"`
	}
	getJSON(t, srv, "/debug/events?trace="+cr.TraceID, &ev)
	if len(ev.Events) == 0 {
		t.Fatalf("no events for trace %s", cr.TraceID)
	}
	var names []string
	for _, e := range ev.Events {
		names = append(names, e.Name)
		if e.Trace != cr.TraceID {
			t.Errorf("event %s carries trace %q, want %q", e.Name, e.Trace, cr.TraceID)
		}
	}
	story := strings.Join(names, " ")
	// The lifecycle in order; tier attempts happen twice (small then
	// large) with an escalation between them.
	wantOrder := []string{"proxy_admit", "proxy_cache_miss", "cascade_tier_attempt", "cascade_escalate", "cascade_tier_attempt", "proxy_complete"}
	idx := 0
	for _, n := range names {
		if idx < len(wantOrder) && n == wantOrder[idx] {
			idx++
		}
	}
	if idx != len(wantOrder) {
		t.Errorf("lifecycle %q missing ordered subsequence %v (matched %d)", story, wantOrder, idx)
	}
	// Events are seq-ordered.
	for i := 1; i < len(ev.Events); i++ {
		if ev.Events[i].Seq <= ev.Events[i-1].Seq {
			t.Errorf("events out of order: seq %d then %d", ev.Events[i-1].Seq, ev.Events[i].Seq)
		}
	}

	// The same trace id keys into /debug/traces.
	var tr struct {
		Traces []obs.SpanData `json:"traces"`
	}
	getJSON(t, srv, "/debug/traces?trace="+cr.TraceID, &tr)
	if len(tr.Traces) != 1 || tr.Traces[0].TraceID != cr.TraceID {
		t.Errorf("/debug/traces?trace= returned %+v", tr.Traces)
	}

	// A cache hit on the same prompt emits proxy_cache_hit on a new trace.
	resp = postJSON(t, srv, "/v1/complete", CompletionRequest{
		Prompt: "prove the Riemann hypothesis", Gold: "answer", Difficulty: 0.95,
	})
	var second CompletionResponse
	json.NewDecoder(resp.Body).Decode(&second)
	resp.Body.Close()
	if second.TraceID == "" || second.TraceID == cr.TraceID {
		t.Fatalf("second trace id %q (first %q)", second.TraceID, cr.TraceID)
	}
	getJSON(t, srv, "/debug/events?trace="+second.TraceID+"&name=proxy_cache_hit", &ev)
	if len(ev.Events) != 1 {
		t.Errorf("cache hit trace: got %d proxy_cache_hit events, want 1", len(ev.Events))
	}
}

func TestDebugEventsFiltersAndValidation(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "q1", Gold: "a", Difficulty: 0.1}).Body.Close()
	postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "q2", Gold: "a", Difficulty: 0.1}).Body.Close()

	var ev struct {
		Events      []obs.Event `json:"events"`
		Capacity    int         `json:"capacity"`
		Overwritten uint64      `json:"overwritten"`
	}
	getJSON(t, srv, "/debug/events", &ev)
	if len(ev.Events) == 0 || ev.Capacity != 256 {
		t.Fatalf("events = %d, capacity = %d", len(ev.Events), ev.Capacity)
	}
	// n caps to the newest n.
	getJSON(t, srv, "/debug/events?n=1", &ev)
	if len(ev.Events) != 1 {
		t.Errorf("n=1 returned %d events", len(ev.Events))
	}
	// level filters.
	getJSON(t, srv, "/debug/events?level=info", &ev)
	for _, e := range ev.Events {
		if e.Level == "debug" {
			t.Errorf("level=info returned a debug event %q", e.Name)
		}
	}
	// Unknown level and bad n are 400s.
	if resp := getJSON(t, srv, "/debug/events?level=loud", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad level: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/debug/events?n=-2", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
	// Unmatched trace returns an empty (non-null) array.
	body, err := srv.Client().Get(srv.URL + "/debug/events?trace=t_none")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(body.Body)
	body.Body.Close()
	if !strings.Contains(string(raw), `"events":[]`) && !strings.Contains(string(raw), `"events": []`) {
		t.Errorf("unmatched trace body = %s, want empty events array", raw)
	}
}

func TestDebugEventsRingWraparoundOverHTTP(t *testing.T) {
	p := telemetryProxy(Config{Events: obs.NewEventLog(8)})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	for i := 0; i < 10; i++ {
		postJSON(t, srv, "/v1/complete", CompletionRequest{
			Prompt: fmt.Sprintf("unique question %d", i), Gold: "a", Difficulty: 0.1,
		}).Body.Close()
	}
	var ev struct {
		Events      []obs.Event `json:"events"`
		Capacity    int         `json:"capacity"`
		Overwritten uint64      `json:"overwritten"`
	}
	getJSON(t, srv, "/debug/events", &ev)
	if ev.Capacity != 8 {
		t.Errorf("capacity = %d, want 8", ev.Capacity)
	}
	if len(ev.Events) != 8 {
		t.Errorf("ring served %d events, want 8", len(ev.Events))
	}
	if ev.Overwritten == 0 {
		t.Error("overwritten = 0, want > 0 after wraparound — truncation must be visible")
	}
}

// TestDebugEndpointsConcurrent hammers /debug/events and /debug/traces
// while traffic flows — the race gate for the telemetry read paths.
func TestDebugEndpointsConcurrent(t *testing.T) {
	p := telemetryProxy(Config{Events: obs.NewEventLog(32)})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				postJSON(t, srv, "/v1/complete", CompletionRequest{
					Prompt: fmt.Sprintf("worker %d q %d", w, i), Gold: "a", Difficulty: 0.1,
				}).Body.Close()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				getJSON(t, srv, "/debug/events?n=10", nil).Body.Close()
				getJSON(t, srv, "/debug/traces?n=5", nil).Body.Close()
				getJSON(t, srv, "/metrics", nil).Body.Close()
			}
		}()
	}
	wg.Wait()
}

func TestMetricsContentTypeAndJSONEscapeHatch(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "q", Gold: "a", Difficulty: 0.1}).Body.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the Prometheus 0.0.4 text type", ct)
	}
	if !strings.Contains(string(body), "proxy_requests_total") {
		t.Errorf("text exposition missing proxy_requests_total:\n%.400s", body)
	}
	if !strings.Contains(string(body), "slo_burn_rate") {
		t.Errorf("text exposition missing slo_burn_rate (scrape must refresh SLO gauges):\n%.400s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("?format=json Content-Type = %q, want application/json", ct)
	}
	var doc map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("?format=json is not JSON: %v", err)
	}
	if _, ok := doc["proxy_requests_total"]; !ok {
		t.Error("json exposition missing proxy_requests_total")
	}
}

func TestSLOEndpoint(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "q", Gold: "a", Difficulty: 0.1}).Body.Close()

	var snap obs.SLOSnapshot
	resp := getJSON(t, srv, "/v1/slo", &snap)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	cls, ok := snap.Classes["interactive"]
	if !ok {
		t.Fatalf("snapshot classes = %v, want interactive", snap.Classes)
	}
	w5 := cls.Windows["5m"]
	if w5.Requests != 1 || w5.Availability != 1 {
		t.Errorf("5m window = %+v, want 1 request fully available", w5)
	}
	if _, ok := cls.Windows["1h"]; !ok {
		t.Error("1h window missing")
	}

	// Disabled tracking 404s.
	p2 := telemetryProxy(Config{DisableSLO: true})
	defer p2.Close()
	srv2 := httptest.NewServer(p2.Handler())
	defer srv2.Close()
	if resp := getJSON(t, srv2, "/v1/slo", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled SLO: status %d, want 404", resp.StatusCode)
	}
}

func TestStatsLatencyPercentiles(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "same q", Gold: "a", Difficulty: 0.1}).Body.Close()
	}

	var st struct {
		Latency map[string]map[string]interface{} `json:"latency"`
	}
	getJSON(t, srv, "/v1/stats", &st)
	casc, ok := st.Latency["cascade"]
	if !ok {
		t.Fatalf("stats latency = %v, want a cascade entry", st.Latency)
	}
	quantile := func(name string) float64 {
		v, ok := casc[name].(float64)
		if !ok {
			t.Fatalf("%s = %v (%T), want float64", name, casc[name], casc[name])
		}
		return v
	}
	for _, q := range []string{"p50_ms", "p95_ms", "p99_ms"} {
		if quantile(q) < 0 {
			t.Errorf("%s = %g, want >= 0", q, quantile(q))
		}
	}
	if quantile("p50_ms") > quantile("p99_ms") {
		t.Errorf("p50 %g > p99 %g", quantile("p50_ms"), quantile("p99_ms"))
	}
	// The p99 bucket links to a concrete request's trace.
	if tr, ok := casc["p99_trace"].(string); !ok || tr == "" {
		t.Errorf("p99_trace = %v, want a trace ID", casc["p99_trace"])
	}
	if _, ok := st.Latency["cache"]; !ok {
		t.Errorf("stats latency = %v, want a cache entry after repeat hits", st.Latency)
	}
}

func TestPprofGating(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	if resp := getJSON(t, srv, "/debug/pprof/", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	p2 := telemetryProxy(Config{EnablePprof: true})
	defer p2.Close()
	srv2 := httptest.NewServer(p2.Handler())
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
