package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

// waitFor polls cond up to ~2s; the deterministic-coalescing tests use it
// to sequence goroutines on observable proxy state instead of sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// TestConcurrentIdenticalExactlyOneUpstream proves the coalescing
// invariant deterministically: the upstream is gated shut until all N
// requests have either become the leader or registered as waiters, so the
// upstream must be called exactly once and every other caller must be
// served a coalesced answer.
func TestConcurrentIdenticalExactlyOneUpstream(t *testing.T) {
	var upstreamCalls atomic.Int64
	gate := make(chan struct{})
	gated := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		upstreamCalls.Add(1)
		<-gate
		return llm.Response{Text: "g", Confidence: 0.99, Model: "gated"}, nil
	})
	p := New(Config{Models: []llm.Model{gated}, DisableCache: true,
		Obs: obs.NewRegistry(), Tracer: obs.NewTracer(4)})

	const n = 12
	req := llm.Request{Prompt: "identical concurrent question", Gold: "g"}
	var wg sync.WaitGroup
	answers := make([]Answer, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = p.Complete(context.Background(), req)
		}(i)
	}
	// All N are in: one leader blocked in the upstream, n-1 coalesced.
	waitFor(t, func() bool { return p.Stats().Coalesced == n-1 && upstreamCalls.Load() == 1 })
	close(gate)
	wg.Wait()

	if got := upstreamCalls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want exactly 1", got)
	}
	var cascadeN, coalescedN int
	for i := range answers {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if answers[i].Text != "g" {
			t.Fatalf("request %d answer = %q", i, answers[i].Text)
		}
		switch answers[i].Source {
		case "cascade":
			cascadeN++
		case "coalesced":
			coalescedN++
			if answers[i].Cost != 0 {
				t.Errorf("coalesced answer %d billed cost %v", i, answers[i].Cost)
			}
		default:
			t.Errorf("request %d has source %q", i, answers[i].Source)
		}
	}
	if cascadeN != 1 || coalescedN != n-1 {
		t.Errorf("sources: cascade=%d coalesced=%d, want 1 and %d", cascadeN, coalescedN, n-1)
	}
}

// TestCoalescedWaiterCancelDeterministic joins a waiter onto a gated
// in-flight call, cancels the waiter's context, and requires it to return
// ctx.Err() while the leader is still blocked upstream.
func TestCoalescedWaiterCancelDeterministic(t *testing.T) {
	gate := make(chan struct{})
	gated := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		<-gate
		return llm.Response{Text: "late", Confidence: 0.99}, nil
	})
	p := New(Config{Models: []llm.Model{gated}, DisableCache: true,
		Obs: obs.NewRegistry(), Tracer: obs.NewTracer(4)})

	req := llm.Request{Prompt: "shared", Gold: "g"}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		p.Complete(context.Background(), req)
	}()
	// The leader is registered once the in-flight table is non-empty.
	waitFor(t, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return len(p.inflight) == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := p.Complete(ctx, req)
		waiterErr <- err
	}()
	// The waiter has joined once the coalesced counter ticks.
	waitFor(t, func() bool { return p.Stats().Coalesced == 1 })
	cancel()
	select {
	case err := <-waiterErr:
		if err != context.Canceled {
			t.Errorf("waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return while leader was in flight")
	}
	close(gate)
	<-leaderDone
}

// TestHTTPCompleteWrongAltsNoiseKey verifies the HTTP surface plumbs
// WrongAlts and NoiseKey through to the llm.Request (they were previously
// dropped, so self-consistency-style requests could not be expressed).
func TestHTTPCompleteWrongAltsNoiseKey(t *testing.T) {
	var mu sync.Mutex
	var got llm.Request
	capture := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		mu.Lock()
		got = req
		mu.Unlock()
		return llm.Response{Text: req.Gold, Confidence: 0.99, Model: "capture"}, nil
	})
	p := New(Config{Models: []llm.Model{capture}, DisableCache: true,
		Obs: obs.NewRegistry(), Tracer: obs.NewTracer(4)})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{
		Prompt:    "vote on this",
		Gold:      "a",
		Wrong:     "b",
		WrongAlts: []string{"c", "d"},
		NoiseKey:  "core-question",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got.WrongAlts) != 2 || got.WrongAlts[0] != "c" || got.WrongAlts[1] != "d" {
		t.Errorf("WrongAlts = %v, want [c d]", got.WrongAlts)
	}
	if got.NoiseKey != "core-question" {
		t.Errorf("NoiseKey = %q, want core-question", got.NoiseKey)
	}
}

// TestMetricsEndpoint drives a workload through the proxy and checks the
// Prometheus exposition covers every layer: per-model counters, proxy
// latency, cache counters, cascade counters.
func TestMetricsEndpoint(t *testing.T) {
	p := newTestProxy(Config{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(8)})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	req := llm.Request{Prompt: "metrics workload question", Gold: "a", Difficulty: 0.2}
	if _, err := p.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Complete(context.Background(), req); err != nil { // cache hit
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`llm_calls_total{model="small"}`,
		`llm_tokens_total{direction="input",model="small"}`,
		`llm_cost_microusd_total{model="small"}`,
		"# TYPE llm_latency_seconds histogram",
		"# TYPE proxy_latency_seconds histogram",
		`proxy_requests_total{source="cascade"} 1`,
		`proxy_requests_total{source="cache"} 1`,
		"semcache_lookups_total 2",
		`semcache_hits_total{kind="exact"} 1`,
		"semcache_misses_total 1",
		"semcache_puts_total 1",
		"# TYPE cascade_steps_total counter",
		"# TYPE cascade_escalations_total counter",
		"cascade_requests_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The JSON exposition serves the same registry.
	jr, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var parsed map[string]json.RawMessage
	if err := json.NewDecoder(jr.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["proxy_requests_total"]; !ok {
		t.Error("json exposition missing proxy_requests_total")
	}
}

// TestDebugTracesEndpoint completes a request and checks /debug/traces
// returns its span tree: a proxy.complete root with cache-lookup and
// cascade-step children carrying durations and model attrs.
func TestDebugTracesEndpoint(t *testing.T) {
	p := newTestProxy(Config{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(8)})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Difficulty 0.9 forces the cascade to escalate past the small model,
	// so the trace must contain at least two cascade.step children.
	if _, err := p.Complete(context.Background(), llm.Request{
		Prompt: "trace me", Gold: "g", Difficulty: 0.9,
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.SpanData `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(out.Traces))
	}
	root := out.Traces[0]
	if root.Name != "proxy.complete" || root.Attrs["source"] != "cascade" {
		t.Errorf("root = %+v", root)
	}
	var sawLookup bool
	var steps []obs.SpanData
	for _, c := range root.Children {
		switch c.Name {
		case "cache.lookup":
			sawLookup = true
			if c.Attrs["hit"] != "false" {
				t.Errorf("cache.lookup attrs = %v", c.Attrs)
			}
		case "cascade.step":
			steps = append(steps, c)
		}
	}
	if !sawLookup {
		t.Error("trace has no cache.lookup child")
	}
	if len(steps) < 2 {
		t.Fatalf("trace has %d cascade.step children, want >= 2 (escalation)", len(steps))
	}
	if steps[0].Attrs["model"] != "small" || steps[0].Attrs["outcome"] != "reject" {
		t.Errorf("step 0 = %+v", steps[0])
	}
	last := steps[len(steps)-1]
	if last.Attrs["outcome"] != "accept" {
		t.Errorf("last step = %+v", last)
	}
	if len(last.Children) != 1 || last.Children[0].Name != "llm.complete" {
		t.Errorf("step children = %+v", last.Children)
	}

	// ?n=0 and ?n=1 both work; garbage n is a 400.
	if r2, _ := http.Get(srv.URL + "/debug/traces?n=1"); r2 != nil {
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("?n=1 status = %d", r2.StatusCode)
		}
	}
	if r3, _ := http.Get(srv.URL + "/debug/traces?n=x"); r3 != nil {
		r3.Body.Close()
		if r3.StatusCode != http.StatusBadRequest {
			t.Errorf("?n=x status = %d", r3.StatusCode)
		}
	}
}

// BenchmarkProxyComplete is the throughput baseline for future perf PRs:
// a parallel mixed workload (80% repeated prompts that hit the semantic
// cache after warmup, 20% unique prompts that run the cascade). Run with
// -race in CI to prove the serving path is race-clean under parallelism.
func BenchmarkProxyComplete(b *testing.B) {
	p := newTestProxy(Config{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(obs.DefaultTraceCapacity)})
	// Warm the cache with the repeated prompts.
	for i := 0; i < 8; i++ {
		req := llm.Request{Prompt: fmt.Sprintf("hot question %d", i), Gold: "g", Difficulty: 0.2}
		if _, err := p.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			var req llm.Request
			if i%5 == 4 {
				req = llm.Request{Prompt: fmt.Sprintf("cold question %d-%d", i, time.Now().UnixNano()), Gold: "g", Difficulty: 0.2}
			} else {
				req = llm.Request{Prompt: fmt.Sprintf("hot question %d", i%8), Gold: "g", Difficulty: 0.2}
			}
			if _, err := p.Complete(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
