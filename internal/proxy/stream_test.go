package proxy

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

// drainStream reads a proxy stream to io.EOF, returning the chunks.
func drainStream(t *testing.T, s Stream) []Chunk {
	t.Helper()
	var chunks []Chunk
	for {
		ch, err := s.Recv()
		if err == io.EOF {
			return chunks
		}
		if err != nil {
			t.Fatalf("Recv after %d chunks: %v", len(chunks), err)
		}
		chunks = append(chunks, ch)
	}
}

// assembleText replays a chunk sequence the way a client would: Restart
// discards previously buffered text.
func assembleText(chunks []Chunk) string {
	var b strings.Builder
	for _, ch := range chunks {
		if ch.Restart {
			b.Reset()
		}
		b.WriteString(ch.Text)
	}
	return b.String()
}

// A streamed completion must be the request/response answer, chunked:
// ordered indexes, byte-identical assembled text, and a chunk-cost sum
// that equals both the settled Answer's cost and what an identical
// non-streamed proxy would have charged.
func TestStreamMatchesComplete(t *testing.T) {
	req := llm.Request{Prompt: "an easy streaming question about the catalog", Gold: "the catalog holds twelve tables", Difficulty: 0.05}

	nonStream := newTestProxy(Config{})
	want, err := nonStream.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	p := newTestProxy(Config{})
	s, err := p.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chunks := drainStream(t, s)
	if len(chunks) < 2 {
		t.Fatalf("expected a multi-chunk stream, got %d chunks", len(chunks))
	}
	var sum token.Cost
	for i, ch := range chunks {
		if ch.Index != i {
			t.Fatalf("chunk %d has index %d", i, ch.Index)
		}
		if ch.Final != (i == len(chunks)-1) {
			t.Fatalf("chunk %d Final = %v", i, ch.Final)
		}
		sum += ch.Cost
	}
	ans, err := s.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if got := assembleText(chunks); got != ans.Text || got != want.Text {
		t.Fatalf("assembled %q, answer %q, non-streamed %q", got, ans.Text, want.Text)
	}
	if ans.Source != "cascade" || ans.Trace == "" {
		t.Fatalf("answer = %+v", ans)
	}
	if sum != ans.Cost {
		t.Fatalf("chunk costs sum to %v, answer cost %v", sum, ans.Cost)
	}
	if ans.Cost != want.Cost {
		t.Fatalf("streamed cost %v != non-streamed cost %v", ans.Cost, want.Cost)
	}
	st := p.Stats()
	if st.Streams != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Spend != ans.Cost {
		t.Fatalf("proxy spend %v != answer cost %v", st.Spend, ans.Cost)
	}
}

// End to end through the proxy: a hard request early-exits the cheap
// tier mid-generation, the stream restarts on the strong tier, and the
// cheap model's meter shows strictly less than a full cheap-tier run —
// billing only the chunks that were actually emitted.
func TestStreamEarlyExitBillsLessE2E(t *testing.T) {
	hard := llm.Request{
		Prompt:     "derive the asymptotic join selectivity bound from the histogram",
		Gold:       "the bound follows",
		Wrong:      "the answer could not be determined from the available statistics in the catalog",
		Difficulty: 0.9,
	}
	cheap := llm.NewSim(llm.SimConfig{Name: "cheap", Capability: 0.2, Price: token.Price{InputPer1K: 400, OutputPer1K: 400}})
	strong := llm.NewSim(llm.SimConfig{Name: "strong", Capability: 0.95, Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}})
	p := New(Config{Models: []llm.Model{cheap, strong}, DisableCache: true}) // ExitThreshold defaults on

	s, err := p.CompleteStream(context.Background(), hard)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chunks := drainStream(t, s)
	restarts := 0
	var sum token.Cost
	for _, ch := range chunks {
		if ch.Restart {
			restarts++
			if ch.Model != "strong" || ch.Tier != 1 {
				t.Fatalf("restart chunk from %q tier %d", ch.Model, ch.Tier)
			}
		}
		sum += ch.Cost
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (early exit + escalation)", restarts)
	}
	ans, err := s.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Model != "strong" || ans.Text != hard.Gold {
		t.Fatalf("answer = %+v", ans)
	}
	if sum != ans.Cost {
		t.Fatalf("chunk costs sum to %v, answer cost %v", sum, ans.Cost)
	}

	// The abandoned cheap run must have billed strictly less than a full
	// cheap-tier completion of the same request.
	full := llm.NewSim(llm.SimConfig{Name: "cheap", Capability: 0.2, Price: token.Price{InputPer1K: 400, OutputPer1K: 400}})
	fullResp, err := full.Complete(context.Background(), hard)
	if err != nil {
		t.Fatal(err)
	}
	spent := cheap.Meter().Spend
	if spent == 0 || spent >= fullResp.Cost {
		t.Fatalf("aborted cheap tier billed %v, full run costs %v", spent, fullResp.Cost)
	}
}

// A leader that closes its stream mid-generation must not disturb the
// coalesced cohort: the follower still receives the full answer, at
// cost 0 because the leader's run paid.
func TestStreamCanceledClientDoesNotPoisonCohort(t *testing.T) {
	gate := make(chan struct{})
	slow := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
		return llm.Response{Text: "late answer", Model: "func", Confidence: 0.9, Cost: 7}, nil
	})
	p := New(Config{Models: []llm.Model{slow}, DisableCache: true})

	req := llm.Request{Prompt: "shared streamed question", Gold: "g"}
	leader, err := p.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the leader's call to register as in-flight so the second
	// stream joins it instead of racing to lead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.inflight)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never registered in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	follower, err := p.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if p.Stats().Coalesced != 1 {
		t.Fatalf("stats = %+v, follower did not coalesce", p.Stats())
	}

	// The leader walks away before a single chunk arrived.
	leader.Close()
	if _, err := leader.Recv(); err != llm.ErrStreamClosed {
		t.Fatalf("Recv after Close = %v", err)
	}
	close(gate)

	chunks := drainStream(t, follower)
	if len(chunks) == 0 {
		t.Fatal("follower starved by leader cancellation")
	}
	for _, ch := range chunks {
		if ch.Cost != 0 {
			t.Fatalf("follower chunk billed: %+v", ch)
		}
	}
	if got := assembleText(chunks); got != "late answer" {
		t.Fatalf("follower assembled %q", got)
	}
	ans, err := follower.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "coalesced" || ans.Cost != 0 {
		t.Fatalf("follower answer = %+v", ans)
	}
}

// Semantic-cache hits stream instantly: one pre-paid Final chunk at
// cost 0.
func TestStreamCacheHitSingleChunk(t *testing.T) {
	p := newTestProxy(Config{})
	req := llm.Request{Prompt: "a cached streaming question", Gold: "cached answer text", Difficulty: 0.1}
	if _, err := p.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	s, err := p.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chunks := drainStream(t, s)
	if len(chunks) != 1 || !chunks[0].Final || chunks[0].Model != "cache" || chunks[0].Cost != 0 {
		t.Fatalf("cache stream chunks = %+v", chunks)
	}
	ans, err := s.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "cache" || ans.Cost != 0 || ans.Text != chunks[0].Text {
		t.Fatalf("answer = %+v", ans)
	}
	if p.Stats().CacheHits != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

// --- SSE surface ---

type sseEvent struct {
	name string
	data string
}

// readSSE parses a text/event-stream body into (event, data) pairs.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE body: %v", err)
	}
	return events
}

// POST /v1/complete with "stream": true serves ordered chunk events and
// a terminal done event whose cost equals the non-streamed response for
// the same request.
func TestHTTPStreamSSE(t *testing.T) {
	req := CompletionRequest{Prompt: "an SSE question about partition pruning", Gold: "prune by range metadata first", Difficulty: 0.1}

	nonStream := newTestProxy(Config{})
	nsrv := httptest.NewServer(nonStream.Handler())
	defer nsrv.Close()
	nresp := postJSON(t, nsrv, "/v1/complete", req)
	defer nresp.Body.Close()
	var want CompletionResponse
	if err := json.NewDecoder(nresp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}

	p := newTestProxy(Config{})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	req.Stream = true
	resp := postJSON(t, srv, "/v1/complete", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("events = %+v", events)
	}
	var (
		chunks []Chunk
		done   StreamDone
	)
	for i, ev := range events {
		switch ev.name {
		case "chunk":
			var ch Chunk
			if err := json.Unmarshal([]byte(ev.data), &ch); err != nil {
				t.Fatalf("chunk %d: %v", i, err)
			}
			chunks = append(chunks, ch)
		case "done":
			if i != len(events)-1 {
				t.Fatalf("done event at %d of %d", i, len(events))
			}
			if err := json.Unmarshal([]byte(ev.data), &done); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected event %q", ev.name)
		}
	}
	for i, ch := range chunks {
		if ch.Index != i {
			t.Fatalf("chunk %d has index %d", i, ch.Index)
		}
	}
	if got := assembleText(chunks); got != done.Text || got != want.Text {
		t.Fatalf("assembled %q, done %q, non-streamed %q", got, done.Text, want.Text)
	}
	if done.CostMicro != want.CostMicro {
		t.Fatalf("streamed cost %d != non-streamed cost %d", done.CostMicro, want.CostMicro)
	}
	if done.Chunks != len(chunks) || done.Source != "cascade" || done.TraceID == "" {
		t.Fatalf("done = %+v", done)
	}
}

// An SSE client that disconnects mid-stream must not fail a coalesced
// non-streamed waiter on the same prompt.
func TestHTTPStreamClientDisconnect(t *testing.T) {
	gate := make(chan struct{})
	slow := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
		return llm.Response{Text: "survived", Model: "func", Confidence: 0.9}, nil
	})
	p := New(Config{Models: []llm.Model{slow}, DisableCache: true})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body, _ := json.Marshal(CompletionRequest{Prompt: "shared disconnect prompt", Gold: "g", Stream: true})
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/complete", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(context.Background())
	hreq = hreq.WithContext(ctx)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the streamed leader is in flight, then join it with a
	// non-streamed request and kill the SSE client.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.inflight)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never registered in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	type result struct {
		ans Answer
		err error
	}
	res := make(chan result, 1)
	go func() {
		ans, err := p.Complete(context.Background(), llm.Request{Prompt: "shared disconnect prompt", Gold: "g"})
		res <- result{ans, err}
	}()
	cancel()
	resp.Body.Close()
	close(gate)
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("coalesced waiter failed after SSE disconnect: %v", r.err)
		}
		if r.ans.Text != "survived" {
			t.Fatalf("coalesced waiter answer = %+v", r.ans)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced waiter hung after SSE disconnect")
	}
}

// --- unified error envelope ---

// Every non-200 response is an ErrorEnvelope with a stable code; the
// envelope's schema is locked by a golden file like the other payloads.
func TestHTTPErrorEnvelope(t *testing.T) {
	p := newTestProxy(Config{DisableSLO: true})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
		code   string
	}{
		{"method", func() (*http.Response, error) { return http.Get(srv.URL + "/v1/complete") }, http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad_json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/complete", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest, "bad_request"},
		{"empty_prompt", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/complete", "application/json", strings.NewReader("{}"))
		}, http.StatusBadRequest, "bad_request"},
		{"bad_priority", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/complete", "application/json",
				strings.NewReader(`{"prompt":"p","priority":"warp"}`))
		}, http.StatusBadRequest, "bad_request"},
		{"disabled", func() (*http.Response, error) { return http.Get(srv.URL + "/v1/slo") }, http.StatusNotFound, "disabled"},
		{"bad_query", func() (*http.Response, error) { return http.Get(srv.URL + "/v1/tenants?n=-1") }, http.StatusBadRequest, "bad_request"},
		{"stats_method", func() (*http.Response, error) {
			return http.Post(srv.URL+"/v1/stats", "application/json", strings.NewReader("{}"))
		}, http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	var sample interface{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			var env ErrorEnvelope
			var raw json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.code || env.Error.Message == "" {
				t.Fatalf("envelope = %+v", env)
			}
			if sample == nil {
				json.Unmarshal(raw, &sample)
			}
		})
	}

	// Golden: the envelope shape is API, like the /v1/* payloads.
	got := strings.Join(schemaPaths(sample), "\n") + "\n"
	golden := filepath.Join("testdata", "golden", "error.schema")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("error envelope schema drifted\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// A shed streamed request surfaces through CompleteStream as an error,
// and over SSE as a plain HTTP 503 envelope (the stream never opened).
func TestHTTPStreamShedEnvelope(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	slow := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return llm.Response{Text: "g"}, nil
	})
	p := New(Config{Models: []llm.Model{slow}, DisableCache: true, MaxConcurrent: 1, MaxQueue: 0})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	s, err := p.CompleteStream(context.Background(), llm.Request{Prompt: "hold the slot", Gold: "g"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "shed me", Gold: "g", Stream: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After on shed")
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "overloaded" || !env.Error.Retryable {
		t.Fatalf("envelope = %+v", env)
	}
}
