package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/llm"
	"repro/internal/resilience"
)

// StreamDone is the payload of the terminal "done" SSE event: the fully
// assembled answer plus the accounting a non-streamed call would return,
// so a streaming client needs no second request to learn what it paid.
type StreamDone struct {
	Text       string  `json:"text"`
	Model      string  `json:"model"`
	Source     string  `json:"source"`
	Tier       int     `json:"tier"`
	Confidence float64 `json:"confidence"`
	CostMicro  int64   `json:"cost_micro_usd"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	TraceID    string  `json:"trace_id,omitempty"`
	Chunks     int     `json:"chunks"`
}

// streamErrorBody maps a streaming-path error to the same ErrorBody the
// non-streamed surface would have put in its envelope, so SSE "error"
// events and HTTP error responses share one vocabulary.
func streamErrorBody(err error) ErrorBody {
	switch {
	case errors.Is(err, resilience.ErrOverloaded):
		return ErrorBody{Code: "overloaded", Message: err.Error(), Retryable: true}
	case errors.Is(err, context.DeadlineExceeded):
		return ErrorBody{Code: "upstream_timeout", Message: err.Error(), Retryable: true}
	default:
		return ErrorBody{Code: "upstream_error", Message: err.Error(), Retryable: false}
	}
}

// serveStream handles POST /v1/complete with "stream": true. Events:
//
//	event: chunk   data: Chunk            (repeated, in order)
//	event: done    data: StreamDone       (terminal, success)
//	event: error   data: ErrorBody        (terminal, failure after headers)
//
// Errors before the first chunk (shed, bad upstream) are still reported
// as ordinary HTTP error envelopes; once the 200 + text/event-stream
// header is out, failures become "error" events.
func (p *Proxy) serveStream(w http.ResponseWriter, r *http.Request, ctx context.Context, start time.Time, req llm.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported: response writer cannot flush", false)
		return
	}
	s, err := p.CompleteStream(ctx, req)
	if err != nil {
		completionError(w, err)
		return
	}
	defer s.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	writeEvent := func(event string, v interface{}) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := io.WriteString(w, "event: "+event+"\ndata: "+string(data)+"\n\n"); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	chunks, lastTier := 0, 0
	for {
		ch, rerr := s.Recv()
		if rerr == nil {
			chunks++
			lastTier = ch.Tier
			if !writeEvent("chunk", ch) {
				// Client went away mid-write; Close (deferred) accounts
				// the cancel without touching the coalesced cohort.
				return
			}
			continue
		}
		if rerr == io.EOF {
			break
		}
		writeEvent("error", streamErrorBody(rerr))
		return
	}
	ans, aerr := s.Answer()
	if aerr != nil {
		writeEvent("error", streamErrorBody(aerr))
		return
	}
	writeEvent("done", StreamDone{
		Text:       ans.Text,
		Model:      ans.Model,
		Source:     ans.Source,
		Tier:       lastTier,
		Confidence: ans.Confidence,
		CostMicro:  int64(ans.Cost),
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		TraceID:    ans.Trace,
		Chunks:     chunks,
	})
}
