package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
)

// fakeClock is a hand-advanced clock shared by the SLO tracker and the
// alert engine, so the test can move through burn windows and alert
// for-durations without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// slowModel injects real wall-clock latency in front of a SimModel —
// SimModel.Complete never sleeps (latency is simulated in the response),
// but the SLO tracker scores measured latency, so degrading the upstream
// for the alert-lifecycle phase needs an actual delay.
type slowModel struct {
	*llm.SimModel
	delay *atomic.Int64 // nanoseconds added to every call
}

func (s slowModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if d := time.Duration(s.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	return s.SimModel.Complete(ctx, req)
}

// postAsTenant drives POST /v1/complete with an X-LLMDM-Tenant header and
// returns the decoded response.
func postAsTenant(t *testing.T, srv *httptest.Server, tenant string, body map[string]interface{}) CompletionResponse {
	t.Helper()
	buf, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/complete", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/complete as %q: status %d", tenant, resp.StatusCode)
	}
	var out CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func findTenant(t *testing.T, snap obs.TenantSnapshot, name string) obs.TenantStat {
	t.Helper()
	for _, ts := range snap.Tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("tenant %q not in snapshot %+v", name, snap.Tenants)
	return obs.TenantStat{}
}

func findRule(t *testing.T, snap obs.AlertsSnapshot, name string) obs.AlertStatus {
	t.Helper()
	for _, r := range snap.Rules {
		if r.Rule == name {
			return r
		}
	}
	t.Fatalf("rule %q not in alerts snapshot %+v", name, snap.Rules)
	return obs.AlertStatus{}
}

// TestTenancyExemplarsAndAlertLifecycle is the PR's acceptance test: two
// tenants with distinct workload shapes are attributed exactly (spend
// matches the model family's billing meter to the micro-dollar), the p99
// latency bucket's exemplar resolves to a retained trace, and the default
// SLO-burn alert walks pending → firing under injected upstream latency,
// then resolves after the burn window drains — with every transition
// visible in /debug/events.
func TestTenancyExemplarsAndAlertLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	delay := new(atomic.Int64)
	reg := obs.NewRegistry()
	ring := obs.NewEventLog(4096)
	small := llm.NewSim(llm.SimConfig{Name: "small", Capability: 0.3, Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "large", Capability: 0.95, Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: reg})
	p := New(Config{
		Obs:    reg,
		Tracer: obs.NewTracer(256),
		Events: ring,
		Models: []llm.Model{
			slowModel{small, delay},
			slowModel{large, delay},
		},
		SLO: obs.SLOConfig{
			// Generous enough that undelayed in-process calls never trip
			// it, tight enough that the injected 75ms delay always does.
			Objectives: map[string]obs.SLOObjective{
				"interactive": {LatencyTarget: 50 * time.Millisecond},
			},
			Now: clk.Now,
		},
		Alerts: obs.AlertConfig{Now: clk.Now},
	})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	meterSpend := func() int64 {
		return int64(small.Meter().Spend + large.Meter().Spend)
	}

	// --- Phase A: attribution. "acme" is cache-heavy (one repeated
	// prompt), "umbrella" is escalation-heavy (unique hard prompts the
	// small tier can't answer). Traffic is serialized so each phase's
	// family-meter delta is that tenant's exact bill.
	before := meterSpend()
	for i := 0; i < 6; i++ {
		postAsTenant(t, srv, "acme", map[string]interface{}{
			"prompt": "what is the capital of Florin", "gold": "Esbjerg", "difficulty": 0.2,
		})
	}
	acmeBill := meterSpend() - before

	before = meterSpend()
	for i := 0; i < 4; i++ {
		postAsTenant(t, srv, "umbrella", map[string]interface{}{
			"prompt": fmt.Sprintf("prove the unique factorization theorem, variant %d", i),
			"gold":   fmt.Sprintf("proof-%d", i), "difficulty": 0.9,
		})
	}
	umbrellaBill := meterSpend() - before

	var tenants obs.TenantSnapshot
	getJSON(t, srv, "/v1/tenants", &tenants)
	acme := findTenant(t, tenants, "acme")
	if acme.Requests != 6 || acme.CacheHits != 5 {
		t.Errorf("acme = %+v, want 6 requests with 5 cache hits", acme)
	}
	if acme.SpendMicroUSD != acmeBill {
		t.Errorf("acme attributed spend %d µ$, billing meter says %d µ$", acme.SpendMicroUSD, acmeBill)
	}
	umbrella := findTenant(t, tenants, "umbrella")
	if umbrella.Requests != 4 || umbrella.Escalations != 4 {
		t.Errorf("umbrella = %+v, want 4 requests each escalating once", umbrella)
	}
	if umbrella.SpendMicroUSD != umbrellaBill {
		t.Errorf("umbrella attributed spend %d µ$, billing meter says %d µ$", umbrella.SpendMicroUSD, umbrellaBill)
	}
	if acmeBill <= 0 || umbrellaBill <= acmeBill {
		t.Errorf("bills acme=%d umbrella=%d: want 0 < acme < umbrella (escalations hit the large tier)", acmeBill, umbrellaBill)
	}
	if got := acme.SpendMicroUSD + umbrella.SpendMicroUSD; got != meterSpend() {
		t.Errorf("tenant spend sum %d != family meter %d", got, meterSpend())
	}

	// --- Phase B: the p99 cascade bucket's exemplar links to a trace the
	// tracer still holds.
	var stats map[string]json.RawMessage
	getJSON(t, srv, "/v1/stats", &stats)
	var latency map[string]map[string]interface{}
	if err := json.Unmarshal(stats["latency"], &latency); err != nil {
		t.Fatalf("stats latency: %v", err)
	}
	traceID, _ := latency["cascade"]["p99_trace"].(string)
	if traceID == "" {
		t.Fatal("cascade latency histogram has no p99 exemplar")
	}
	var traces struct {
		Traces []obs.SpanData `json:"traces"`
	}
	getJSON(t, srv, "/debug/traces?trace="+traceID, &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("p99 exemplar trace %q did not resolve via /debug/traces", traceID)
	}

	// --- Phase C: alert lifecycle. Degrade the upstream past the latency
	// target; the 5m burn rate blows the default threshold and
	// slo_latency_burn_high goes pending, fires once the 30s for-duration
	// elapses on the shared fake clock, and resolves after the slow
	// events age out of the burn window.
	const rule = "slo_latency_burn_high"
	delay.Store(int64(75 * time.Millisecond))
	for i := 0; i < 8; i++ {
		postAsTenant(t, srv, "acme", map[string]interface{}{
			"prompt": fmt.Sprintf("slow question %d", i), "gold": "g", "difficulty": 0.1,
		})
	}
	delay.Store(0)

	var alerts obs.AlertsSnapshot
	getJSON(t, srv, "/v1/alerts", &alerts)
	if st := findRule(t, alerts, rule).State; st != "pending" {
		t.Fatalf("after slow burst: %s state %q, want pending", rule, st)
	}

	clk.Advance(31 * time.Second) // past the rule's 30s for-duration
	getJSON(t, srv, "/v1/alerts", &alerts)
	if st := findRule(t, alerts, rule).State; st != "firing" {
		t.Fatalf("after for-duration: %s state %q, want firing", rule, st)
	}
	if alerts.Firing < 1 {
		t.Errorf("alerts snapshot firing = %d, want >= 1", alerts.Firing)
	}

	clk.Advance(6 * time.Minute) // slow events age out of the 5m window
	getJSON(t, srv, "/v1/alerts", &alerts)
	if st := findRule(t, alerts, rule).State; st != "inactive" {
		t.Fatalf("after recovery: %s state %q, want inactive (resolved)", rule, st)
	}

	// Every transition is on the event log.
	var envelope struct {
		Events []obs.Event `json:"events"`
	}
	getJSON(t, srv, "/debug/events?name=alert_transition", &envelope)
	var seq []string
	for _, ev := range envelope.Events {
		if ev.Attrs["rule"] == rule {
			seq = append(seq, ev.Attrs["to"])
		}
	}
	want := []string{"pending", "firing", "resolved"}
	if len(seq) != len(want) {
		t.Fatalf("alert_transition events for %s: got %v, want %v", rule, seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("alert_transition events for %s: got %v, want %v", rule, seq, want)
		}
	}
}

// TestTenantAlertEndpointsConcurrent hammers /v1/tenants and /v1/alerts
// while mixed-tenant traffic flows — the race gate's proof that the
// accountant's lock-light aggregation and the alert engine's evaluation
// (which snapshots SLO, tenants and the whole metrics registry) are safe
// against concurrent writers.
func TestTenantAlertEndpointsConcurrent(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const writers, readers, rounds = 4, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				postAsTenant(t, srv, fmt.Sprintf("tenant-%d", (w+i)%6), map[string]interface{}{
					"prompt": fmt.Sprintf("hammer %d-%d", w, i), "gold": "g", "difficulty": 0.2,
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var tenants obs.TenantSnapshot
				getJSON(t, srv, "/v1/tenants?n=3", &tenants)
				var alerts obs.AlertsSnapshot
				getJSON(t, srv, "/v1/alerts", &alerts)
				var stats map[string]interface{}
				getJSON(t, srv, "/v1/stats", &stats)
			}
		}(r)
	}
	wg.Wait()

	var tenants obs.TenantSnapshot
	getJSON(t, srv, "/v1/tenants", &tenants)
	var total int64
	for _, ts := range tenants.Tenants {
		total += ts.Requests
	}
	if total != writers*rounds {
		t.Errorf("attributed %d requests across tenants, want %d", total, writers*rounds)
	}
}
