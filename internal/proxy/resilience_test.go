package proxy

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/token"
	"repro/internal/workload"
)

// namedModel gives a test double a distinct model name (modelFunc is fixed
// at "func"), so per-model breakers and metrics are addressable.
type namedModel struct {
	name string
	fn   modelFunc
}

func (m namedModel) Name() string        { return m.name }
func (m namedModel) Capability() float64 { return 1 }
func (m namedModel) Price() token.Price  { return token.Price{} }
func (m namedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return m.fn(ctx, req)
}

// TestLeaderCancelDoesNotPoisonCohort is the headline regression test for
// the coalescing bug: the first caller of a prompt (the leader, whose
// context used to drive the upstream call) cancels mid-cascade, and every
// coalesced waiter must still receive the real answer because the upstream
// run is detached from the leader.
func TestLeaderCancelDoesNotPoisonCohort(t *testing.T) {
	gate := make(chan struct{})
	gated := namedModel{name: "gated", fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-gate:
			return llm.Response{Text: "g", Model: "gated", Confidence: 0.9}, nil
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}}
	p := New(Config{Models: []llm.Model{gated}, DisableCache: true,
		Obs: obs.NewRegistry(), Tracer: obs.NewTracer(8)})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := p.Complete(leaderCtx, llm.Request{Prompt: "shared", Gold: "g"})
		leaderDone <- err
	}()
	waitFor(t, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return len(p.inflight) == 1
	})

	const n = 8
	type result struct {
		ans Answer
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			ans, err := p.Complete(context.Background(), llm.Request{Prompt: "shared", Gold: "g"})
			results <- result{ans, err}
		}()
	}
	waitFor(t, func() bool { return p.Stats().Coalesced == n })

	// Cancel the leader while the model is still blocked. The leader must
	// return promptly with its own context error...
	cancelLeader()
	select {
	case err := <-leaderDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("leader error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled leader did not return")
	}

	// ...and the upstream call must still be alive for the cohort.
	close(gate)
	for i := 0; i < n; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("waiter failed after leader cancel: %v", r.err)
			}
			if r.ans.Text != "g" || r.ans.Source != "coalesced" {
				t.Errorf("waiter answer = %+v", r.ans)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never received the answer")
		}
	}
}

// TestErrorPathAccountingAndShape pins the two error-path satellites: a
// failed cascade still bills the attempted tiers into the proxy's spend,
// and the returned Answer is error-shaped (no model, no text) rather than
// a success-shaped zero value.
func TestErrorPathAccountingAndShape(t *testing.T) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "small", Capability: 0.2,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	dead := namedModel{name: "dead", fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{}, llm.ErrTransient
	}}
	p := New(Config{Models: []llm.Model{small, dead}, Obs: reg, Tracer: obs.NewTracer(4),
		DisableCache: true, DisableBreaker: true})

	ans, err := p.Complete(context.Background(), llm.Request{
		Prompt: "a hard question the small tier rejects", Gold: "g", Wrong: "w", Difficulty: 0.6,
	})
	if err == nil {
		t.Fatal("cascade failure swallowed")
	}
	if ans.Source != "error" || ans.Model != "" || ans.Text != "" {
		t.Errorf("error answer not error-shaped: %+v", ans)
	}

	want := small.Meter().Spend
	if want == 0 {
		t.Fatal("small tier was never consulted; the scenario is broken")
	}
	st := p.Stats()
	if st.Spend != want {
		t.Errorf("proxy spend = %v, want the attempted tier's %v", st.Spend, want)
	}
	if ans.Cost != want {
		t.Errorf("answer cost = %v, want %v", ans.Cost, want)
	}
	if st.ModelCalls != 1 {
		t.Errorf("model calls = %d, want 1 attempted step", st.ModelCalls)
	}
	if got := reg.Snapshot()["proxy_spend_microusd_total"]; got != float64(want) {
		t.Errorf("proxy_spend_microusd_total = %v, want %v", got, want)
	}
}

// TestBreakerSkipsDeadTier drives a cascade whose first tier always fails:
// after the breaker trips, later requests skip the dead tier and succeed
// on the healthy one.
func TestBreakerSkipsDeadTier(t *testing.T) {
	reg := obs.NewRegistry()
	var deadCalls atomic.Int64
	dead := namedModel{name: "dead", fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		deadCalls.Add(1)
		return llm.Response{}, fmt.Errorf("%w: tier down", llm.ErrTransient)
	}}
	healthy := llm.NewSim(llm.SimConfig{Name: "healthy", Capability: 0.95,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 1000}, Obs: reg})
	p := New(Config{
		Models: []llm.Model{dead, healthy},
		Obs:    reg, Tracer: obs.NewTracer(4),
		DisableCache: true, DisableStale: true,
		Breaker: resilience.BreakerConfig{
			Window: 8, MinSamples: 3, FailureThreshold: 0.5, Cooldown: time.Hour,
		},
	})

	failures := 0
	for i := 0; i < 20; i++ {
		_, err := p.Complete(context.Background(), llm.Request{
			Prompt: fmt.Sprintf("question %d", i), Gold: "g", Difficulty: 0.3,
		})
		if err != nil {
			failures++
		}
	}
	// Exactly MinSamples requests fail while the breaker gathers evidence;
	// everything after rides the healthy tier.
	if failures != 3 {
		t.Errorf("failures = %d, want 3 (breaker evidence-gathering)", failures)
	}
	if got := deadCalls.Load(); got != 3 {
		t.Errorf("dead tier called %d times, want 3", got)
	}
	if st := p.BreakerStates(); st["dead"] != resilience.Open {
		t.Errorf("dead tier breaker = %v, want open", st["dead"])
	}
	if got := reg.Snapshot()[`cascade_tier_skipped_total{model="dead"}`]; got != 17 {
		t.Errorf("skipped = %v, want 17", got)
	}
}

// TestStaleServeAfterUpstreamFailure: once the cascade is down, a query
// similar to a previously served one is answered from the cache below the
// normal hit threshold, marked Source "stale"; a query with no near
// neighbor still surfaces the error.
func TestStaleServeAfterUpstreamFailure(t *testing.T) {
	reg := obs.NewRegistry()
	var failing atomic.Bool
	toggle := namedModel{name: "toggle", fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		if failing.Load() {
			return llm.Response{}, llm.ErrTransient
		}
		return llm.Response{Text: req.Gold, Model: "toggle", Confidence: 0.99}, nil
	}}
	p := New(Config{Models: []llm.Model{toggle}, Obs: reg, Tracer: obs.NewTracer(4),
		CacheThreshold: 0.995, StaleFloor: 0.3, DisableBreaker: true})

	if _, err := p.Complete(context.Background(), llm.Request{
		Prompt: "how many concerts were held in the stadium this year", Gold: "twelve",
	}); err != nil {
		t.Fatal(err)
	}

	failing.Store(true)
	// Similar but not identical: misses the strict fresh threshold, and the
	// upstream is down — the stale path serves the near answer.
	ans, err := p.Complete(context.Background(), llm.Request{
		Prompt: "how many concerts were held in the stadium last year", Gold: "?",
	})
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if ans.Source != "stale" || ans.Text != "twelve" || ans.Model != "cache" {
		t.Errorf("degraded answer = %+v", ans)
	}
	if ans.Confidence <= 0 || ans.Confidence >= 1 {
		t.Errorf("stale confidence should be the hit similarity, got %v", ans.Confidence)
	}
	if p.Stats().StaleServes != 1 {
		t.Errorf("stale serves = %d", p.Stats().StaleServes)
	}

	// Nothing similar cached: the error must still propagate.
	if _, err := p.Complete(context.Background(), llm.Request{
		Prompt: "unrelated zebra migration trivia", Gold: "?",
	}); !errors.Is(err, llm.ErrTransient) {
		t.Errorf("unservable degraded request = %v, want the upstream error", err)
	}
}

// TestFaultInjectionAvailabilityAndAccounting is the acceptance experiment
// in miniature: 30% per-attempt upstream failure, full resilience stack,
// availability >= 99%, and the proxy's spend matching the simulated
// models' own meters exactly — error paths included.
func TestFaultInjectionAvailabilityAndAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "small", Capability: 0.55,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "large", Capability: 0.97,
		Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: reg})
	wrap := func(m llm.Model) llm.Model {
		return &llm.Retry{Inner: llm.NewFlaky(m, 0.3), Attempts: 6,
			BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Obs: reg}
	}
	p := New(Config{Models: []llm.Model{wrap(small), wrap(large)},
		Obs: reg, Tracer: obs.NewTracer(16), StaleFloor: 0.5})

	set := workload.GenQA(7, 40)
	total, ok := 0, 0
	for round := 0; round < 3; round++ {
		for _, it := range set.Items {
			_, err := p.Complete(context.Background(), llm.Request{
				Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:   it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			})
			total++
			if err == nil {
				ok++
			}
		}
	}
	avail := float64(ok) / float64(total)
	if avail < 0.99 {
		t.Errorf("availability = %.4f (%d/%d), want >= 0.99", avail, ok, total)
	}
	st := p.Stats()
	want := small.Meter().Spend + large.Meter().Spend
	if st.Spend != want {
		t.Errorf("proxy spend %v != models' metered spend %v (error-path accounting leak)", st.Spend, want)
	}
	if st.Requests != int64(total) {
		t.Errorf("requests = %d, want %d", st.Requests, total)
	}
}

// TestParallelFlakyTrafficIsRaceFree drives Flaky through Proxy.Complete
// from many goroutines (run under -race, this exercises the Flaky attempt
// map and the detached-upstream accounting) and checks the spend invariant
// holds under concurrency.
func TestParallelFlakyTrafficIsRaceFree(t *testing.T) {
	reg := obs.NewRegistry()
	sim := llm.NewSim(llm.SimConfig{Name: "par", Capability: 0.9,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 1000}, Obs: reg})
	p := New(Config{
		Models: []llm.Model{&llm.Retry{Inner: llm.NewFlaky(sim, 0.3), Attempts: 8, Obs: reg}},
		Obs:    reg, Tracer: obs.NewTracer(8),
		DisableCache: true, MaxConcurrent: 8, MaxQueue: 64,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.Complete(context.Background(), llm.Request{
					Prompt: fmt.Sprintf("shared prompt %d", (g+i)%10), Gold: "g", Difficulty: 0.2,
				})
			}
		}(g)
	}
	wg.Wait()
	if got, want := p.Stats().Spend, sim.Meter().Spend; got != want {
		t.Errorf("proxy spend %v diverged from the model meter %v under concurrency", got, want)
	}
}

// TestOverloadShedsWith503: with one slot and no queue, a second
// simultaneous request is shed with ErrOverloaded, and the HTTP layer maps
// it to 503 + Retry-After.
func TestOverloadShedsWith503(t *testing.T) {
	gate := make(chan struct{})
	slow := namedModel{name: "slow", fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		select {
		case <-gate:
			return llm.Response{Text: "g", Model: "slow", Confidence: 0.9}, nil
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}}
	p := New(Config{Models: []llm.Model{slow}, DisableCache: true,
		Obs: obs.NewRegistry(), Tracer: obs.NewTracer(4), MaxConcurrent: 1})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	go p.Complete(context.Background(), llm.Request{Prompt: "hold the slot", Gold: "g"})
	waitFor(t, func() bool { return p.limiter.Running() == 1 })

	if _, err := p.Complete(context.Background(), llm.Request{Prompt: "direct", Gold: "g"}); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("over-capacity Complete = %v, want ErrOverloaded", err)
	}
	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "via http", Gold: "g"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := p.Stats().Shed; got != 2 {
		t.Errorf("shed = %d, want 2", got)
	}
	close(gate)
}
