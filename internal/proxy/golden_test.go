package proxy

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The golden tests lock the *shape* of the observability payloads —
// every key path and its JSON type — without pinning values, which are
// timing- and load-dependent. Adding a field is a deliberate act: run
//
//	go test ./internal/proxy/ -run TestGoldenSchema -update-golden
//
// and review the diff; removing or renaming one fails the test, which is
// the point — these four endpoints are scraped by dashboards and the
// bench harness, so their schemas are API.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden schema files under testdata/golden")

// schemaPaths flattens decoded JSON into sorted "path: type" lines.
// Arrays union the schema of all elements (heterogeneous entries — e.g.
// alert rules with and without optional fields — widen the schema rather
// than flapping on ordering).
func schemaPaths(v interface{}) []string {
	set := make(map[string]struct{})
	var walk func(prefix string, v interface{})
	walk = func(prefix string, v interface{}) {
		switch x := v.(type) {
		case map[string]interface{}:
			if len(x) == 0 {
				set[prefix+": object"] = struct{}{}
				return
			}
			for k, vv := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, vv)
			}
		case []interface{}:
			if len(x) == 0 {
				set[prefix+"[]"] = struct{}{}
				return
			}
			for _, vv := range x {
				walk(prefix+"[]", vv)
			}
		case string:
			set[prefix+": string"] = struct{}{}
		case float64:
			set[prefix+": number"] = struct{}{}
		case bool:
			set[prefix+": bool"] = struct{}{}
		case nil:
			set[prefix+": null"] = struct{}{}
		default:
			set[fmt.Sprintf("%s: %T", prefix, v)] = struct{}{}
		}
	}
	walk("", v)
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func TestGoldenSchemas(t *testing.T) {
	p := telemetryProxy(Config{
		SLO: obs.SLOConfig{
			Objectives: map[string]obs.SLOObjective{"interactive": {LatencyTarget: 500 * time.Millisecond}},
		},
	})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Deterministic traffic so every schema branch is populated the same
	// way on every run: one cascade miss, one cache hit, one escalation.
	postAsTenant(t, srv, "acme", map[string]interface{}{
		"prompt": "golden cache prompt", "gold": "g", "difficulty": 0.2,
	})
	postAsTenant(t, srv, "acme", map[string]interface{}{
		"prompt": "golden cache prompt", "gold": "g", "difficulty": 0.2,
	})
	postAsTenant(t, srv, "umbrella", map[string]interface{}{
		"prompt": "golden escalation prompt", "gold": "g", "difficulty": 0.9,
	})

	for _, tc := range []struct {
		name string
		path string
	}{
		{"slo", "/v1/slo"},
		{"stats", "/v1/stats"},
		{"tenants", "/v1/tenants"},
		{"alerts", "/v1/alerts"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var payload interface{}
			getJSON(t, srv, tc.path, &payload)
			got := strings.Join(schemaPaths(payload), "\n") + "\n"

			golden := filepath.Join("testdata", "golden", tc.name+".schema")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("GET %s schema drifted from %s\n--- got ---\n%s--- want ---\n%s",
					tc.path, golden, got, want)
			}
		})
	}
}

// TestGoldenSchemaStability re-reads /v1/stats after more traffic and
// checks the schema is a superset of the first read — fields must never
// disappear between scrapes of a live process.
func TestGoldenSchemaStability(t *testing.T) {
	p := telemetryProxy(Config{})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	postAsTenant(t, srv, "acme", map[string]interface{}{
		"prompt": "stability prompt", "gold": "g", "difficulty": 0.2,
	})
	var first interface{}
	getJSON(t, srv, "/v1/stats", &first)
	firstPaths := schemaPaths(first)

	postAsTenant(t, srv, "acme", map[string]interface{}{
		"prompt": "stability prompt", "gold": "g", "difficulty": 0.2,
	})
	var second interface{}
	getJSON(t, srv, "/v1/stats", &second)
	have := make(map[string]struct{})
	for _, p := range schemaPaths(second) {
		have[p] = struct{}{}
	}
	for _, p := range firstPaths {
		if _, ok := have[p]; !ok {
			t.Errorf("stats field %q disappeared between scrapes", p)
		}
	}
}
