package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func newTestProxy(cfg Config) *Proxy {
	if len(cfg.Models) == 0 {
		// The models meter into the same registry as the proxy so tests
		// with a private registry see the whole stack's metrics.
		cfg.Models = []llm.Model{
			llm.NewSim(llm.SimConfig{Name: "small", Capability: 0.3, Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: cfg.Obs}),
			llm.NewSim(llm.SimConfig{Name: "large", Capability: 0.95, Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: cfg.Obs}),
		}
	}
	return New(cfg)
}

func TestCompleteBasic(t *testing.T) {
	p := newTestProxy(Config{})
	ans, err := p.Complete(context.Background(), llm.Request{
		Prompt: "an easy labeling question", Gold: "yes", Difficulty: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "yes" || ans.Source != "cascade" {
		t.Errorf("answer = %+v", ans)
	}
	st := p.Stats()
	if st.Requests != 1 || st.ModelCalls == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheHitSecondTime(t *testing.T) {
	p := newTestProxy(Config{})
	req := llm.Request{Prompt: "what is the capital of Florin", Gold: "Esbjerg", Difficulty: 0.2}
	first, err := p.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "cache" || second.Text != first.Text || second.Cost != 0 {
		t.Errorf("second = %+v", second)
	}
	if p.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d", p.Stats().CacheHits)
	}
}

func TestDisableCache(t *testing.T) {
	p := newTestProxy(Config{DisableCache: true})
	req := llm.Request{Prompt: "repeatable", Gold: "g", Difficulty: 0.2}
	p.Complete(context.Background(), req)
	second, _ := p.Complete(context.Background(), req)
	if second.Source == "cache" {
		t.Error("cache served despite being disabled")
	}
}

func TestConcurrentIdenticalCoalesce(t *testing.T) {
	p := newTestProxy(Config{DisableCache: true}) // isolate coalescing
	req := llm.Request{Prompt: "identical concurrent question", Gold: "g", Difficulty: 0.2}
	const n = 16
	var wg sync.WaitGroup
	answers := make([]Answer, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := p.Complete(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			answers[i] = ans
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if answers[i].Text != answers[0].Text {
			t.Fatal("coalesced answers differ")
		}
	}
	st := p.Stats()
	// At least some goroutines must have joined an in-flight call, and the
	// upstream must have been called far fewer than n times.
	if st.Coalesced == 0 {
		t.Skip("no overlap achieved on this run (scheduling)")
	}
	if st.ModelCalls >= n*2 {
		t.Errorf("model calls %d too high for %d coalescible requests", st.ModelCalls, n)
	}
}

func TestProxySavesMoneyOnRepeatedWorkload(t *testing.T) {
	// The headline claim: cache + cascade beats always-call-the-big-model.
	set := workload.GenQA(5, 30)
	p := newTestProxy(Config{})
	for round := 0; round < 2; round++ {
		for _, it := range set.Items {
			_, err := p.Complete(context.Background(), llm.Request{
				Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:   it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	st := p.Stats()
	if st.CacheHits < 25 {
		t.Errorf("round 2 should hit cache: %d hits", st.CacheHits)
	}

	// Baseline: big model for every occurrence.
	big := llm.NewSim(llm.SimConfig{Name: "big-base", Capability: 0.95, Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}})
	var baseline token.Cost
	for round := 0; round < 2; round++ {
		for _, it := range set.Items {
			r, _ := big.Complete(context.Background(), llm.Request{
				Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:   it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			})
			baseline += r.Cost
		}
	}
	if st.Spend >= baseline/2 {
		t.Errorf("proxy spend %v not well below big-model baseline %v", st.Spend, baseline)
	}
}

// --- HTTP layer ---

func postJSON(t *testing.T, srv *httptest.Server, path string, body interface{}) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPComplete(t *testing.T) {
	p := newTestProxy(Config{})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{
		Prompt: "label this row", Gold: "retail", Difficulty: 0.1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "retail" || out.Source != "cascade" {
		t.Errorf("response = %+v", out)
	}
}

func TestHTTPValidation(t *testing.T) {
	p := newTestProxy(Config{})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Missing prompt.
	resp := postJSON(t, srv, "/v1/complete", CompletionRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty prompt status = %d", resp.StatusCode)
	}
	// Bad JSON.
	r2, err := http.Post(srv.URL+"/v1/complete", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d", r2.StatusCode)
	}
	// Wrong method.
	r3, err := http.Get(srv.URL + "/v1/complete")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", r3.StatusCode)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	p := newTestProxy(Config{})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	postJSON(t, srv, "/v1/complete", CompletionRequest{Prompt: "q", Gold: "a"}).Body.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["requests"].(float64) != 1 {
		t.Errorf("stats = %v", st)
	}

	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("health = %d", h.StatusCode)
	}
}

func BenchmarkProxyCached(b *testing.B) {
	p := newTestProxy(Config{})
	req := llm.Request{Prompt: "a frequently repeated analytics question", Gold: "g", Difficulty: 0.2}
	p.Complete(context.Background(), req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProxyUncached(b *testing.B) {
	p := newTestProxy(Config{DisableCache: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := llm.Request{Prompt: fmt.Sprintf("unique question %d", i), Gold: "g", Difficulty: 0.2}
		if _, err := p.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUpstreamErrorPropagatesAndClearsInflight(t *testing.T) {
	// An always-failing upstream: errors must reach callers and must not
	// wedge the in-flight table.
	fail := llm.NewFlaky(llm.NewSim(llm.SimConfig{Name: "f", Capability: 0.9,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 1000}}), 1.0)
	p := New(Config{Models: []llm.Model{fail}})
	if _, err := p.Complete(context.Background(), llm.Request{Prompt: "doomed", Gold: "g"}); err == nil {
		t.Fatal("upstream failure swallowed")
	}
	// The same prompt must be retryable (not stuck as in-flight).
	if _, err := p.Complete(context.Background(), llm.Request{Prompt: "doomed", Gold: "g"}); err == nil {
		t.Fatal("second attempt swallowed")
	}
	st := p.Stats()
	if st.Requests != 2 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.Spend != 0 {
		t.Errorf("failed calls were billed: %v", st.Spend)
	}
}

func TestProxyWithRetryLayerRecovers(t *testing.T) {
	// Production stack: proxy -> retry -> flaky upstream.
	flaky := llm.NewFlaky(llm.NewSim(llm.SimConfig{Name: "r", Capability: 0.9,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 1000}}), 0.5)
	p := New(Config{Models: []llm.Model{llm.NewRetry(flaky, 10)}})
	ok := 0
	for i := 0; i < 50; i++ {
		ans, err := p.Complete(context.Background(), llm.Request{
			Prompt: fmt.Sprintf("flaky question %d", i), Gold: "g", Difficulty: 0.2,
		})
		if err == nil && ans.Text == "g" {
			ok++
		}
	}
	if ok < 48 {
		t.Errorf("only %d/50 recovered through the retry layer", ok)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	// A waiter whose context dies while coalesced must return promptly.
	slowGate := make(chan struct{})
	slow := modelFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		<-slowGate
		return llm.Response{Text: "late"}, nil
	})
	p := New(Config{Models: []llm.Model{slow}, DisableCache: true})

	started := make(chan struct{})
	go func() {
		close(started)
		p.Complete(context.Background(), llm.Request{Prompt: "shared", Gold: "g"})
	}()
	<-started
	// Give the first caller a moment to register as in-flight.
	for i := 0; i < 100; i++ {
		p.mu.Lock()
		n := len(p.inflight)
		p.mu.Unlock()
		if n == 1 {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Complete(ctx, llm.Request{Prompt: "shared", Gold: "g"})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		// Either the waiter was coalesced and returned ctx.Err(), or it won
		// the race and became a (blocked) first caller — in that case the
		// gate below unblocks it and err is nil. Both are acceptable; what
		// is not acceptable is hanging.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	close(slowGate)
}

// modelFunc adapts a function to llm.Model for test doubles.
type modelFunc func(ctx context.Context, req llm.Request) (llm.Response, error)

func (f modelFunc) Name() string        { return "func" }
func (f modelFunc) Capability() float64 { return 1 }
func (f modelFunc) Price() token.Price  { return token.Price{} }
func (f modelFunc) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return f(ctx, req)
}
