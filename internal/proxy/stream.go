// Token-streaming serving path. CompleteStream serves the same
// limiter → cache → coalesce → cascade pipeline as Complete, but as an
// incremental chunk stream:
//
//   - semantic-cache hits stream instantly as a single pre-paid chunk;
//   - the upstream cascade runs detached and *streams* (with
//     mid-generation early exit when configured), appending every chunk
//     to a per-call chunk log;
//   - coalesced followers replay the leader's chunk log live — they see
//     the same chunks with costs zeroed, because the leader's tenant
//     paid for the run — and a follower (or the leader) disconnecting
//     mid-stream never disturbs the rest of the cohort, since every
//     client is just a reader of the log;
//   - a failed upstream degrades per client to a stale cache chunk,
//     exactly like the request/response path.
//
// Billing stays meter-exact: the sum of a leader stream's chunk costs
// equals the cascade trace's TotalCost, which is what the spend counter
// and the tenant accountant record — once, on the leader's run.
package proxy

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/core/cascade"
	"repro/internal/core/semcache"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/token"
)

// Chunk is one server-sent piece of a streamed completion.
type Chunk struct {
	Text string `json:"text"`
	// Index orders chunks within the stream (0-based).
	Index int `json:"index"`
	// Model and Tier identify the cascade tier that produced the chunk
	// ("cache" for cache-served chunks).
	Model string `json:"model"`
	Tier  int    `json:"tier"`
	// Confidence is the producing model's running confidence after this
	// chunk.
	Confidence float64 `json:"confidence"`
	// Cost is the incremental cost of this chunk in micro-dollars. Zero
	// for followers and cache hits — the leader's tenant paid.
	Cost token.Cost `json:"cost_micro_usd"`
	// Restart marks the first chunk of a new attempt (tier escalation or
	// stale degrade): discard previously buffered text.
	Restart bool `json:"restart,omitempty"`
	// Final marks the last chunk of the stream.
	Final bool `json:"final,omitempty"`
}

// Stream is one client's view of a streamed completion.
type Stream interface {
	// Recv returns the next chunk, blocking until one is available. It
	// returns io.EOF after the Final chunk, llm.ErrStreamClosed after
	// Close, or the terminal error (context or upstream).
	Recv() (Chunk, error)
	// Close abandons the stream. The upstream keeps running for any
	// coalesced cohort; only this client stops reading. Idempotent.
	Close() error
	// Answer returns the settled Answer once the stream finished —
	// ErrStreamActive before that. Its Cost is the client's cost: the
	// full run for the leader, zero for followers and cache hits.
	Answer() (Answer, error)
}

// ErrStreamActive is returned by Stream.Answer before the stream has
// finished.
var ErrStreamActive = errors.New("proxy: stream still active")

// chunkLog is the shared replay log of one in-flight streamed call: the
// leader's upstream pump appends, every client (leader included) reads.
// notify is closed and replaced on every append so readers at the tail
// can block without polling.
type chunkLog struct {
	mu     sync.Mutex
	chunks []Chunk
	done   bool
	ans    Answer
	err    error
	notify chan struct{}
}

func newChunkLog() *chunkLog {
	return &chunkLog{notify: make(chan struct{})}
}

// append adds one chunk, stamping its stream-order index, and wakes
// blocked readers.
func (l *chunkLog) append(ch Chunk) {
	l.mu.Lock()
	ch.Index = len(l.chunks)
	l.chunks = append(l.chunks, ch)
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// finish seals the log with the call's outcome and wakes blocked
// readers for the last time.
func (l *chunkLog) finish(ans Answer, err error) {
	l.mu.Lock()
	l.done = true
	l.ans, l.err = ans, err
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// CompleteStream serves one request as a chunk stream through the same
// pipeline as Complete. The caller must drain or Close the returned
// stream; the limiter slot is held until it does. Streamed requests run
// in the sched.Streaming priority class: their upstream calls bypass
// micro-batching, and their SLO/admission records carry the "streaming"
// class.
func (p *Proxy) CompleteStream(ctx context.Context, req llm.Request) (Stream, error) {
	start := time.Now()
	p.requests.Add(1)
	p.streams.Add(1)
	ctx = sched.WithClass(ctx, sched.Streaming)
	ctx, root := p.tracer.Start(ctx, "proxy.stream")
	if tenant, ok := obs.ExplicitTenant(ctx); ok {
		root.SetAttr("tenant", tenant)
	}
	s, err := p.openStream(ctx, root, start, req)
	if err != nil {
		elapsed := time.Since(start)
		src := "error"
		if errors.Is(err, resilience.ErrOverloaded) {
			src = "shed"
		}
		p.reg.Counter("proxy_stream_requests_total", "source", src).Inc()
		if p.slo != nil {
			p.slo.Record(sched.ClassFrom(ctx).String(), elapsed, false)
		}
		p.tenants.Record(obs.TenantFrom(ctx), obs.TenantSample{
			Latency: elapsed,
			Shed:    errors.Is(err, resilience.ErrOverloaded),
			Error:   true,
		})
		p.log.Event(ctx, obs.Error, "proxy_error", "error", err.Error(), "elapsed", elapsed)
		root.End()
		return nil, err
	}
	return s, nil
}

// openStream is the admission + routing half of CompleteStream: it
// either returns a live client stream or the error that shed the
// request.
func (p *Proxy) openStream(ctx context.Context, root *obs.Span, start time.Time, req llm.Request) (*clientStream, error) {
	var release func()
	if p.limiter != nil {
		if err := p.limiter.Acquire(ctx); err != nil {
			if errors.Is(err, resilience.ErrOverloaded) {
				p.shed.Add(1)
				p.mReqShed.Inc()
				root.SetAttr("source", "shed")
			} else {
				p.mReqError.Inc()
			}
			return nil, err
		}
		release = p.limiter.Release
	}
	p.log.Event(ctx, obs.Debug, "stream_start", "class", sched.ClassFrom(ctx).String())

	// Cache hits stream instantly: one pre-paid chunk, cost 0.
	if p.cache != nil {
		_, csp := obs.StartSpan(ctx, "cache.lookup")
		hit, ok := p.cache.LookupTraced(req.Prompt, root.TraceID())
		csp.SetAttr("hit", ok)
		if ok {
			csp.SetAttr("similarity", hit.Similarity)
			csp.SetAttr("exact", hit.Exact)
		}
		csp.End()
		if ok {
			p.cacheHits.Add(1)
			p.mReqCache.Inc()
			p.hLatCache.ObserveWithExemplar(time.Since(start).Seconds(), root.TraceID())
			root.SetAttr("source", "cache")
			p.log.Event(ctx, obs.Info, "proxy_cache_hit", "similarity", hit.Similarity, "exact", hit.Exact)
			log := newChunkLog()
			log.append(Chunk{Text: hit.Entry.Response, Model: "cache", Confidence: 1, Final: true})
			log.finish(Answer{Text: hit.Entry.Response, Model: "cache", Confidence: 1, Source: "cache"}, nil)
			return p.newClientStream(ctx, root, start, req, nil, log, "cache", false, release), nil
		}
		p.log.Event(ctx, obs.Debug, "proxy_cache_miss")
	}

	// In-flight dedup: join an identical pending call as a follower —
	// streamed or not, every call carries a chunk log to replay.
	key := req.Prompt
	p.mu.Lock()
	if c, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.coalesced.Add(1)
		root.SetAttr("source", "coalesced")
		p.log.Event(ctx, obs.Info, "proxy_coalesce_join")
		return p.newClientStream(ctx, root, start, req, c, c.log, "coalesced", true, release), nil
	}
	c := &call{done: make(chan struct{}), log: newChunkLog()}
	p.inflight[key] = c
	p.gInflight.Add(1)
	p.mu.Unlock()

	p.pumpStreamUpstream(ctx, req, key, c)
	return p.newClientStream(ctx, root, start, req, c, c.log, "cascade", false, release), nil
}

// pumpStreamUpstream starts the detached upstream run for a streamed
// leader: the cascade streams (early-exiting when configured) into the
// call's chunk log, and spend is accounted exactly once, mirroring the
// request/response upstream.
func (p *Proxy) pumpStreamUpstream(ctx context.Context, req llm.Request, key string, c *call) {
	// Detached like the Complete upstream: a canceled leader must not
	// starve its coalesced cohort, and the run is bounded by the proxy's
	// own deadline. Values (trace, tenant, streaming class) survive
	// WithoutCancel.
	upCtx, cancelUp := context.WithTimeout(context.WithoutCancel(ctx), p.upstreamTimeout)
	obs.Go(p.reg, "proxy_stream_upstream", func() {
		defer cancelUp()
		var (
			resp  llm.Response
			trace cascade.Trace
		)
		rs, err := p.casc.CompleteStream(upCtx, req)
		if err == nil {
			// Idempotent; the run normally settles via Result below, but a
			// panic in the chunk loop must not leave the tier stream open.
			defer rs.Close()
			for {
				sc, rerr := rs.Recv()
				if rerr != nil {
					// io.EOF or the terminal error — both are surfaced
					// (with the trace) by Result below.
					break
				}
				c.log.append(Chunk{
					Text:       sc.Text,
					Model:      sc.Model,
					Tier:       sc.Tier,
					Confidence: sc.Confidence,
					Cost:       sc.Cost,
					Restart:    sc.Restart,
					Final:      sc.Final,
				})
			}
			resp, trace, err = rs.Result()
		}
		// Spend accounting happens here — success or not — because a
		// failed or early-exited run already paid for every emitted
		// chunk; per-tenant attribution rides the same once-per-run spot.
		p.modelCalls.Add(int64(len(trace.Steps)))
		p.spend.Add(int64(trace.TotalCost))
		p.mSpend.Add(int64(trace.TotalCost))
		p.tenants.AddSpend(obs.TenantFrom(upCtx), int64(trace.TotalCost), trace.Escalations())
		if err == nil {
			if p.cache != nil {
				p.cache.Put(req.Prompt, resp.Text, semcache.Original, semcache.Reuse)
			}
			c.ans = Answer{Text: resp.Text, Model: resp.Model, Confidence: resp.Confidence, Source: "cascade", Cost: trace.TotalCost}
		} else {
			c.ans = Answer{Source: "error", Cost: trace.TotalCost}
			c.err = err
			p.log.Event(upCtx, obs.Warn, "proxy_upstream_error", "error", err.Error(), "steps", len(trace.Steps))
		}
		c.steps = len(trace.Steps)
		p.mu.Lock()
		delete(p.inflight, key)
		p.gInflight.Add(-1)
		p.mu.Unlock()
		c.log.finish(c.ans, c.err)
		close(c.done)
	})
}

// clientStream is one client's reader over a call's chunk log. All
// clients — the leader and every coalesced follower — read the same
// log; a follower's chunks are delivered with cost zeroed. The mutex
// makes Close safe to race with Recv (the HTTP layer closes from a
// defer while the pump loop reads).
type clientStream struct {
	p       *Proxy
	ctx     context.Context
	root    *obs.Span
	start   time.Time
	req     llm.Request
	c       *call // nil for cache-hit streams
	log     *chunkLog
	source  string // provisional: "cache", "cascade" (leader), "coalesced"
	follow  bool
	release func()

	mu        sync.Mutex
	closeCh   chan struct{}
	next      int // read position in the log
	delivered int
	gotFirst  bool
	pending   *Chunk // stale-degrade chunk awaiting delivery
	done      bool
	finished  bool // terminal bookkeeping ran
	closed    bool
	ans       Answer
	err       error
}

func (p *Proxy) newClientStream(ctx context.Context, root *obs.Span, start time.Time, req llm.Request, c *call, log *chunkLog, source string, follow bool, release func()) *clientStream {
	return &clientStream{
		p: p, ctx: ctx, root: root, start: start, req: req,
		c: c, log: log, source: source, follow: follow, release: release,
		closeCh: make(chan struct{}),
	}
}

// Recv implements Stream.
func (s *clientStream) Recv() (Chunk, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Chunk{}, llm.ErrStreamClosed
		}
		if s.pending != nil {
			ch := *s.pending
			s.pending = nil
			s.deliverLocked(&ch)
			s.mu.Unlock()
			return ch, nil
		}
		if s.done {
			err := s.err
			s.mu.Unlock()
			if err != nil {
				return Chunk{}, err
			}
			return Chunk{}, io.EOF
		}
		l := s.log
		l.mu.Lock()
		if s.next < len(l.chunks) {
			ch := l.chunks[s.next]
			s.next++
			l.mu.Unlock()
			s.deliverLocked(&ch)
			s.mu.Unlock()
			return ch, nil
		}
		if l.done {
			ans, lerr := l.ans, l.err
			l.mu.Unlock()
			s.settleLocked(ans, lerr)
			s.mu.Unlock()
			continue
		}
		wait := l.notify
		l.mu.Unlock()
		s.mu.Unlock()
		select {
		case <-wait:
		case <-s.closeCh:
			return Chunk{}, llm.ErrStreamClosed
		case <-s.ctx.Done():
			err := s.ctx.Err()
			s.mu.Lock()
			s.cancelLocked(err)
			s.mu.Unlock()
			return Chunk{}, err
		}
	}
}

// deliverLocked adjusts one chunk for this client and records
// time-to-first-token on the first one. Called with s.mu held.
func (s *clientStream) deliverLocked(ch *Chunk) {
	if s.follow {
		ch.Cost = 0 // the leader's tenant paid
	}
	s.delivered++
	if !s.gotFirst {
		s.gotFirst = true
		ttft := time.Since(s.start)
		s.p.reg.Histogram("proxy_stream_ttft_seconds", obs.LatencyBuckets, "source", s.source).
			ObserveWithExemplar(ttft.Seconds(), s.root.TraceID())
		s.p.log.Event(s.ctx, obs.Debug, "stream_first_chunk", "source", s.source, "ttft", ttft)
	}
}

// settleLocked resolves the stream once the shared log finished: the
// client's answer on success, a per-client stale degrade (or the error)
// on failure. Called with s.mu held.
func (s *clientStream) settleLocked(ans Answer, err error) {
	p := s.p
	if err == nil {
		if s.follow {
			ans.Source = "coalesced"
			ans.Cost = 0 // the first caller paid
		}
		ans.Trace = s.root.TraceID()
		s.ans = ans
		s.done = true
		switch s.source {
		case "cache":
			// Counted at lookup time, like the request/response path.
		case "coalesced":
			p.mReqCoalesced.Inc()
			p.hLatCoalesced.ObserveWithExemplar(time.Since(s.start).Seconds(), s.root.TraceID())
		default:
			p.mReqCascade.Inc()
			p.hLatCascade.ObserveWithExemplar(time.Since(s.start).Seconds(), s.root.TraceID())
			root := s.root
			root.SetAttr("model", ans.Model)
			root.SetAttr("steps", stepsOf(s.c))
			root.SetAttr("cost_microusd", int64(ans.Cost))
		}
		s.finishLocked(ans.Source, nil)
		return
	}
	s.root.SetAttr("error", err.Error())
	dans, derr := p.degrade(s.ctx, s.root, s.start, s.req, s.c)
	if derr == nil {
		// Stale degrade: one replacement chunk, marked Restart when this
		// client already saw partial output from the failed run.
		ch := Chunk{
			Text:       dans.Text,
			Model:      dans.Model,
			Confidence: dans.Confidence,
			Restart:    s.delivered > 0,
			Final:      true,
			Index:      s.next,
		}
		s.pending = &ch
		dans.Trace = s.root.TraceID()
		s.ans = dans
		s.done = true
		s.finishLocked("stale", nil)
		return
	}
	dans.Trace = s.root.TraceID()
	s.ans = dans
	s.err = derr
	s.done = true
	s.finishLocked("error", derr)
}

func stepsOf(c *call) int {
	if c == nil {
		return 0
	}
	return c.steps
}

// cancelLocked terminates the stream for a dead client context. Called
// with s.mu held.
func (s *clientStream) cancelLocked(err error) {
	if s.done {
		return
	}
	s.p.mReqError.Inc()
	s.root.SetAttr("source", "canceled")
	s.done = true
	s.err = err
	s.finishLocked("canceled", err)
}

// finishLocked runs the once-per-stream terminal bookkeeping: limiter
// release, stream counters/histograms, SLO and tenant records, the
// terminal event, and the root span. Called with s.mu held.
func (s *clientStream) finishLocked(outcome string, err error) {
	if s.finished {
		return
	}
	s.finished = true
	p := s.p
	if s.release != nil {
		s.release()
		s.release = nil
	}
	elapsed := time.Since(s.start)
	p.reg.Counter("proxy_stream_requests_total", "source", outcome).Inc()
	p.reg.Histogram("proxy_stream_duration_seconds", obs.LatencyBuckets, "source", outcome).
		ObserveWithExemplar(elapsed.Seconds(), s.root.TraceID())
	if p.slo != nil {
		p.slo.Record(sched.ClassFrom(s.ctx).String(), elapsed, err == nil)
	}
	p.tenants.Record(obs.TenantFrom(s.ctx), obs.TenantSample{
		Latency:  elapsed,
		CacheHit: outcome == "cache",
		Error:    err != nil,
	})
	if err == nil {
		p.log.Event(s.ctx, obs.Info, "stream_done",
			"source", outcome, "model", s.ans.Model, "cost_microusd", int64(s.ans.Cost),
			"chunks", s.delivered, "elapsed", elapsed)
	} else if errors.Is(err, llm.ErrStreamClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		p.log.Event(s.ctx, obs.Info, "stream_cancel",
			"source", outcome, "chunks", s.delivered, "elapsed", elapsed)
	} else {
		p.log.Event(s.ctx, obs.Error, "stream_error",
			"source", outcome, "error", err.Error(), "chunks", s.delivered, "elapsed", elapsed)
	}
	s.root.SetAttr("chunks", s.delivered)
	if outcome != "canceled" {
		s.root.SetAttr("source", outcome)
	}
	s.root.End()
}

// Close implements Stream.
func (s *clientStream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.closeCh)
	if !s.finished {
		// Abandoned before the stream settled: account it like a client
		// cancellation. The shared upstream (if any) keeps running for
		// the rest of the cohort.
		s.p.mReqError.Inc()
		s.root.SetAttr("source", "canceled")
		s.done = true
		s.err = llm.ErrStreamClosed
		s.finishLocked("canceled", llm.ErrStreamClosed)
	}
	return nil
}

// Answer implements Stream.
func (s *clientStream) Answer() (Answer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return Answer{}, ErrStreamActive
	}
	return s.ans, s.err
}
