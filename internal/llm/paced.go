package llm

import (
	"context"
	"time"

	"repro/internal/token"
)

// Paced wraps a BatchModel in real wall-clock pacing: every call holds the
// model's single execution lane (one simulated GPU) and sleeps the
// simulated latency divided by Scale before returning. The wrapped family
// thereby exhibits the timing behavior a real inference server has —
// sequential calls serialize on the lane, while one batched call pays the
// sub-linear batch latency once for all its items — which is exactly the
// property the micro-batching scheduler exploits and the bench-sched
// benchmark measures.
//
// Billing and adjudication are delegated unchanged to the inner model, so
// usage meters stay exact. Paced is safe for concurrent use.
type Paced struct {
	inner BatchModel
	scale float64
	lane  chan struct{}
}

// NewPaced wraps inner. scale divides the simulated latency to get the
// real sleep (e.g. 1000 turns a simulated 125ms call into 125µs of wall
// clock); scale <= 0 means 1 (real time).
func NewPaced(inner BatchModel, scale float64) *Paced {
	if scale <= 0 {
		scale = 1
	}
	return &Paced{inner: inner, scale: scale, lane: make(chan struct{}, 1)}
}

// Name implements Model.
func (p *Paced) Name() string { return p.inner.Name() }

// Capability implements Model.
func (p *Paced) Capability() float64 { return p.inner.Capability() }

// Price implements Model.
func (p *Paced) Price() token.Price { return p.inner.Price() }

// Unwrap returns the wrapped model (for meter access in tests).
func (p *Paced) Unwrap() BatchModel { return p.inner }

func (p *Paced) acquire(ctx context.Context) error {
	select {
	case p.lane <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Paced) release() { <-p.lane }

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Complete implements Model: one item, one lane hold, one scaled sleep.
func (p *Paced) Complete(ctx context.Context, req Request) (Response, error) {
	if err := p.acquire(ctx); err != nil {
		return Response{}, err
	}
	defer p.release()
	resp, err := p.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if err := sleepCtx(ctx, p.scaled(resp.Latency)); err != nil {
		// The call was already billed; the caller just stopped waiting.
		return Response{}, err
	}
	return resp, nil
}

// GenerateBatch implements BatchModel: the whole batch holds the lane once
// and sleeps the sub-linear batch latency once.
func (p *Paced) GenerateBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := p.acquire(ctx); err != nil {
		return nil, err
	}
	defer p.release()
	resps, err := p.inner.GenerateBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	if err := sleepCtx(ctx, p.scaled(resps[0].Latency)); err != nil {
		return nil, err
	}
	return resps, nil
}

func (p *Paced) scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) / p.scale)
}
