package llm

import (
	"repro/internal/obs"
	"repro/internal/token"
)

// The default model family mirrors the three tiers the paper's Table I
// evaluates, with prices from its Section III-B1 ("the latest price of
// GPT-3.5 Turbo is $0.001/1k input tokens, and GPT-4 is $0.03/1k input
// tokens"). Capabilities are calibrated so that on the uniform-difficulty
// QA workload each model's accuracy lands near the paper's measured
// accuracy (27.5% / ~80% / 92.5%).
const (
	NameSmall  = "babbage-002"
	NameMedium = "gpt-3.5-turbo"
	NameLarge  = "gpt-4"
)

// Family is an ordered set of models, cheapest first.
type Family []*SimModel

// DefaultFamily returns the paper's three-tier model family.
func DefaultFamily() Family { return DefaultFamilyObs(nil) }

// DefaultFamilyObs returns the default family metering into reg (nil
// means obs.Default).
func DefaultFamilyObs(reg *obs.Registry) Family {
	return Family{
		NewSim(SimConfig{
			Name:         NameSmall,
			Capability:   0.29,
			Price:        token.Price{InputPer1K: 400, OutputPer1K: 400}, // $0.0004/1k
			TokensPerSec: 250,
			Obs:          reg,
		}),
		NewSim(SimConfig{
			Name:         NameMedium,
			Capability:   0.80,
			Price:        token.Price{InputPer1K: 1000, OutputPer1K: 2000}, // $0.001/$0.002 per 1k
			TokensPerSec: 120,
			Obs:          reg,
		}),
		NewSim(SimConfig{
			Name:         NameLarge,
			Capability:   0.95,
			Price:        token.Price{InputPer1K: 30000, OutputPer1K: 60000}, // $0.03/$0.06 per 1k
			TokensPerSec: 40,
			Obs:          reg,
		}),
	}
}

// ByName returns the family member with the given name, or nil.
func (f Family) ByName(name string) *SimModel {
	for _, m := range f {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// Largest returns the most capable model in the family.
func (f Family) Largest() *SimModel {
	if len(f) == 0 {
		return nil
	}
	best := f[0]
	for _, m := range f[1:] {
		if m.Capability() > best.Capability() {
			best = m
		}
	}
	return best
}

// TotalSpend sums spend across the family's meters.
func (f Family) TotalSpend() token.Cost {
	var total token.Cost
	for _, m := range f {
		total += m.Meter().Spend
	}
	return total
}

// ResetMeters zeroes every member's meter.
func (f Family) ResetMeters() {
	for _, m := range f {
		m.ResetMeter()
	}
}
