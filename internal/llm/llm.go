// Package llm provides the simulated large-language-model family this
// reproduction substitutes for the GPT-family APIs used in the paper.
//
// # Substitution contract
//
// The paper's experiments (Tables I-III) measure *relative* accuracy and
// *relative* dollar cost across model tiers and across the optimizations
// built on top of them. This package reproduces exactly those observables:
//
//   - Each model has a capability in [0,1] and a per-token price schedule
//     mirroring the paper's quoted OpenAI prices.
//   - Each request carries a task difficulty in [0,1] and the correct
//     ("gold") output, produced by the real algorithmic engines in the
//     application packages (rule-based NL2SQL, pattern miners, extractors).
//   - A model answers correctly iff difficulty < capability + noise, where
//     the noise is a deterministic hash of (model, prompt) — so every run is
//     bit-for-bit reproducible while still behaving stochastically across
//     queries.
//   - The model reports a confidence correlated with (capability −
//     difficulty), which is exactly the signal an LLM-cascade decision model
//     consumes (paper Figure 6).
//
// Billing is real: prompts and outputs are tokenized by internal/token and
// priced per 1k tokens.
package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// Task labels what kind of work a request asks for. It is carried for
// metering and routing; the adjudication mechanics are task-independent.
type Task string

// Well-known tasks across the repository.
const (
	TaskQA        Task = "qa"
	TaskNL2SQL    Task = "nl2sql"
	TaskLabel     Task = "label"
	TaskExtract   Task = "extract"
	TaskPattern   Task = "pattern"
	TaskGenerate  Task = "generate"
	TaskTransform Task = "transform"
)

// Request is one LLM call.
type Request struct {
	Task   Task
	Prompt string
	// Gold is the correct completion, computed by the caller's task engine.
	Gold string
	// Wrong is the completion returned when the model errs. Empty means a
	// generic hedge answer.
	Wrong string
	// WrongAlts are additional plausible wrong completions. When set, an
	// erring model picks deterministically (per prompt) among Wrong and
	// WrongAlts — modelling how real sampled hallucinations disperse while
	// correct answers coincide, the property self-consistency voting
	// exploits (Section III-E).
	WrongAlts []string
	// Difficulty in [0,1]: how hard this query is. Zero means trivial
	// (generation-style calls that cannot be "wrong" bill tokens but always
	// return Gold).
	Difficulty float64
	// NoiseKey, when non-empty, keys the correctness noise instead of the
	// full prompt. Callers set it to the semantic core of the request (the
	// bare question) so that re-phrasings of the same ask — e.g. a prompt
	// whose few-shot examples were deduplicated by query combination —
	// succeed or fail together. Billing always uses the real prompt.
	NoiseKey string
}

// Response is the result of one LLM call.
type Response struct {
	Text string
	// Correct reports whether Text equals the gold output. Experiment
	// harnesses use it for grading; decision models must not (they only see
	// Confidence).
	Correct bool
	// Confidence in [0,1], correlated with correctness — the signal cascade
	// decision models threshold on.
	Confidence   float64
	Model        string
	InputTokens  int
	OutputTokens int
	Cost         token.Cost
	// Latency is the simulated wall-clock the call would have taken.
	Latency time.Duration
}

// Model is one simulated LLM.
type Model interface {
	// Name identifies the model (mirrors the paper's model names).
	Name() string
	// Capability is the model's skill level in [0,1].
	Capability() float64
	// Price is the model's token price schedule.
	Price() token.Price
	// Complete runs one call. It never sleeps; latency is simulated in the
	// response. The context is honored for cancellation.
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrEmptyPrompt is returned for requests with no prompt text.
var ErrEmptyPrompt = errors.New("llm: empty prompt")

// SimModel is the standard simulated model implementation.
// SimModel is safe for concurrent use.
type SimModel struct {
	name       string
	capability float64
	price      token.Price
	// tokensPerSec drives the simulated latency.
	tokensPerSec float64
	// noiseAmp is the half-width of the capability noise band.
	noiseAmp float64
	// batchOverhead is the marginal latency of each extra item in a batch,
	// as a fraction of the longest item (see BatchLatency).
	batchOverhead float64

	mu    sync.Mutex
	meter token.Meter

	// Metric handles, resolved once at construction (per-model labels).
	mCalls, mErrors, mTokensIn, mTokensOut, mCost *obs.Counter
	mLatency, mCallCost                           *obs.Histogram
}

// SimConfig parameterizes a simulated model.
type SimConfig struct {
	Name         string
	Capability   float64
	Price        token.Price
	TokensPerSec float64
	NoiseAmp     float64
	// BatchOverhead is the marginal cost of each extra item in a batched
	// call, as a fraction of the longest item's latency. Defaults to
	// DefaultBatchOverhead; see BatchLatency.
	BatchOverhead float64
	// Obs receives the model's call/token/cost/latency/error metrics.
	// Nil means obs.Default.
	Obs *obs.Registry
}

// NewSim returns a simulated model.
func NewSim(cfg SimConfig) *SimModel {
	if cfg.TokensPerSec <= 0 {
		cfg.TokensPerSec = 50
	}
	if cfg.NoiseAmp == 0 {
		cfg.NoiseAmp = 0.08
	}
	if cfg.BatchOverhead <= 0 {
		cfg.BatchOverhead = DefaultBatchOverhead
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	return &SimModel{
		name:          cfg.Name,
		capability:    cfg.Capability,
		price:         cfg.Price,
		tokensPerSec:  cfg.TokensPerSec,
		noiseAmp:      cfg.NoiseAmp,
		batchOverhead: cfg.BatchOverhead,
		mCalls:        reg.Counter("llm_calls_total", "model", cfg.Name),
		mErrors:       reg.Counter("llm_errors_total", "model", cfg.Name),
		mTokensIn:     reg.Counter("llm_tokens_total", "model", cfg.Name, "direction", "input"),
		mTokensOut:    reg.Counter("llm_tokens_total", "model", cfg.Name, "direction", "output"),
		mCost:         reg.Counter("llm_cost_microusd_total", "model", cfg.Name),
		mLatency:      reg.Histogram("llm_latency_seconds", obs.LatencyBuckets, "model", cfg.Name),
		mCallCost:     reg.Histogram("llm_call_cost_microusd", obs.CostBuckets, "model", cfg.Name),
	}
}

// Name implements Model.
func (m *SimModel) Name() string { return m.name }

// Capability implements Model.
func (m *SimModel) Capability() float64 { return m.capability }

// Price implements Model.
func (m *SimModel) Price() token.Price { return m.price }

// Meter returns a snapshot of the model's usage meter.
func (m *SimModel) Meter() token.Meter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.meter
}

// ResetMeter zeroes the usage meter.
func (m *SimModel) ResetMeter() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.meter.Reset()
}

// Complete implements Model.
func (m *SimModel) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		m.mErrors.Inc()
		return Response{}, err
	}
	if req.Prompt == "" {
		m.mErrors.Inc()
		return Response{}, ErrEmptyPrompt
	}
	_, sp := obs.StartSpan(ctx, "llm.complete")
	sp.SetAttr("model", m.name)
	defer sp.End()

	resp := m.answer(req, obs.TraceIDFromContext(ctx))
	sp.SetAttr("tokens_in", resp.InputTokens)
	sp.SetAttr("tokens_out", resp.OutputTokens)
	sp.SetAttr("cost_microusd", int64(resp.Cost))
	sp.SetAttr("confidence", resp.Confidence)
	return resp, nil
}

// answer adjudicates, bills and meters one request — the per-item core
// shared by Complete and GenerateBatch. The request must be valid (non-
// empty prompt). trace, when non-empty, becomes the latency and cost
// histograms' exemplar for the buckets this call lands in.
func (m *SimModel) answer(req Request, trace string) Response {
	resp := m.adjudicate(req)

	m.mu.Lock()
	m.meter.Add(resp.InputTokens, resp.OutputTokens, resp.Cost)
	m.mu.Unlock()

	m.mCalls.Inc()
	m.mTokensIn.Add(int64(resp.InputTokens))
	m.mTokensOut.Add(int64(resp.OutputTokens))
	m.mCost.Add(int64(resp.Cost))
	m.mLatency.ObserveWithExemplar(resp.Latency.Seconds(), trace)
	m.mCallCost.ObserveWithExemplar(float64(resp.Cost), trace)
	return resp
}

// adjudicate decides one request — text, correctness, confidence, token
// counts, cost and simulated latency — with no side effects on the meter
// or metrics. It is the shared core of answer (which bills the whole call
// at once) and GenerateStream (which bills chunk by chunk as the text is
// emitted).
func (m *SimModel) adjudicate(req Request) Response {
	// Deterministic per-(model, key) noise streams: one for correctness,
	// one for confidence. Distinct salts keep them independent.
	key := req.NoiseKey
	if key == "" {
		key = req.Prompt
	}
	nCorrect := noiseUnit(m.name, key, "correct")
	nConf := noiseUnit(m.name, key, "conf")

	eff := m.capability + (nCorrect-0.5)*2*m.noiseAmp
	correct := req.Difficulty <= 0 || req.Difficulty < eff

	text := req.Gold
	if !correct {
		cands := make([]string, 0, 1+len(req.WrongAlts))
		if req.Wrong != "" {
			cands = append(cands, req.Wrong)
		}
		cands = append(cands, req.WrongAlts...)
		if len(cands) == 0 {
			text = "I am not certain."
		} else {
			pick := int(noiseUnit(m.name, key, "wrongpick") * float64(len(cands)))
			if pick >= len(cands) {
				pick = len(cands) - 1
			}
			text = cands[pick]
		}
	}

	conf := 0.5 + (m.capability-req.Difficulty)*0.9 + (nConf-0.5)*2*m.noiseAmp
	conf = clamp(conf, 0.02, 0.98)
	if req.Difficulty <= 0 {
		conf = 0.95
	}

	in := token.Count(req.Prompt)
	out := token.Count(text)
	if out == 0 {
		out = 1
	}
	cost := m.price.ForTokens(in, out)
	latency := time.Duration(float64(in+out) / m.tokensPerSec * float64(time.Second))

	return Response{
		Text:         text,
		Correct:      correct,
		Confidence:   conf,
		Model:        m.name,
		InputTokens:  in,
		OutputTokens: out,
		Cost:         cost,
		Latency:      latency,
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String implements fmt.Stringer.
func (m *SimModel) String() string {
	return fmt.Sprintf("%s(capability=%.2f)", m.name, m.capability)
}
