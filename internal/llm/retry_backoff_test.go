package llm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// fnModel adapts a function to Model for retry-layer test doubles.
type fnModel struct {
	f func(ctx context.Context, req Request) (Response, error)
}

func (m fnModel) Name() string        { return "fn" }
func (m fnModel) Capability() float64 { return 0.9 }
func (m fnModel) Price() token.Price  { return token.Price{} }
func (m fnModel) Complete(ctx context.Context, req Request) (Response, error) {
	return m.f(ctx, req)
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	r := &Retry{Inner: flakyBase(), Attempts: 8,
		BaseDelay: 4 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	for i := 0; i < 8; i++ {
		d1, d2 := r.backoff("prompt", i), r.backoff("prompt", i)
		if d1 != d2 {
			t.Fatalf("backoff(%d) not deterministic: %v vs %v", i, d1, d2)
		}
		ideal := r.BaseDelay << uint(i)
		if ideal > r.MaxDelay {
			ideal = r.MaxDelay
		}
		if d1 < ideal/2 || d1 >= ideal+ideal/2 {
			t.Errorf("backoff(%d) = %v outside jitter band around %v", i, d1, ideal)
		}
	}
	// Different prompts decorrelate (no synchronized retry storms).
	if r.backoff("prompt a", 0) == r.backoff("prompt b", 0) {
		t.Error("identical jitter across prompts")
	}
}

func TestRetryRoutesMetricsThroughConfiguredRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	r := &Retry{Inner: NewFlaky(flakyBase(), 1.0), Attempts: 3, Obs: reg}
	if _, err := r.Complete(context.Background(), Request{Prompt: "doomed", Gold: "g"}); err == nil {
		t.Fatal("always-failing inner succeeded")
	}
	snap := reg.Snapshot()
	if snap[`llm_retries_total{model="base"}`] != 3 {
		t.Errorf("retries = %v, want 3", snap[`llm_retries_total{model="base"}`])
	}
	if snap[`llm_retry_exhausted_total{model="base"}`] != 1 {
		t.Errorf("exhausted = %v, want 1", snap[`llm_retry_exhausted_total{model="base"}`])
	}
}

func TestRetryAttemptTimeoutRetriesSlowAttempt(t *testing.T) {
	var calls atomic.Int32
	slowThenFast := fnModel{f: func(ctx context.Context, req Request) (Response, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the per-attempt deadline reaps us
			return Response{}, ctx.Err()
		}
		return Response{Text: "ok"}, nil
	}}
	r := &Retry{Inner: slowThenFast, Attempts: 3, AttemptTimeout: 5 * time.Millisecond}
	resp, err := r.Complete(context.Background(), Request{Prompt: "p", Gold: "g"})
	if err != nil {
		t.Fatalf("slow first attempt not retried: %v", err)
	}
	if resp.Text != "ok" || calls.Load() != 2 {
		t.Errorf("resp = %+v after %d calls", resp, calls.Load())
	}
}

func TestRetryAttemptTimeoutRespectsCallerDeadline(t *testing.T) {
	var calls atomic.Int32
	block := fnModel{f: func(ctx context.Context, req Request) (Response, error) {
		calls.Add(1)
		<-ctx.Done()
		return Response{}, ctx.Err()
	}}
	r := &Retry{Inner: block, Attempts: 5, AttemptTimeout: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := r.Complete(ctx, Request{Prompt: "p"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's deadline", err)
	}
	if calls.Load() != 1 {
		t.Errorf("caller-expired call retried %d times", calls.Load())
	}
}
