package llm

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/token"
	"repro/internal/workload"
)

func testModel(cap float64) *SimModel {
	return NewSim(SimConfig{
		Name:       "test",
		Capability: cap,
		Price:      token.Price{InputPer1K: 1000, OutputPer1K: 2000},
	})
}

func TestCompleteDeterministic(t *testing.T) {
	m := testModel(0.6)
	req := Request{Task: TaskQA, Prompt: "Q: where was X born?", Gold: "Lyon", Wrong: "Riga", Difficulty: 0.55}
	a, err := m.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Complete(context.Background(), req)
	if a.Text != b.Text || a.Confidence != b.Confidence || a.Cost != b.Cost {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCompleteEmptyPrompt(t *testing.T) {
	m := testModel(0.5)
	if _, err := m.Complete(context.Background(), Request{}); err != ErrEmptyPrompt {
		t.Errorf("err = %v, want ErrEmptyPrompt", err)
	}
}

func TestCompleteCanceledContext(t *testing.T) {
	m := testModel(0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Complete(ctx, Request{Prompt: "x"}); err == nil {
		t.Error("canceled context succeeded")
	}
}

func TestEasyAlwaysCorrect(t *testing.T) {
	m := testModel(0.5)
	r, err := m.Complete(context.Background(), Request{Prompt: "generate rows", Gold: "row1", Difficulty: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Correct || r.Text != "row1" {
		t.Errorf("trivial request failed: %+v", r)
	}
}

func TestHardQueryBeyondCapabilityFails(t *testing.T) {
	m := testModel(0.2)
	// Far above capability + max noise.
	r, _ := m.Complete(context.Background(), Request{Prompt: "hard", Gold: "g", Wrong: "w", Difficulty: 0.95})
	if r.Correct {
		t.Error("impossible query answered correctly")
	}
	if r.Text != "w" {
		t.Errorf("wrong answer text = %q", r.Text)
	}
}

func TestAccuracyTracksCapability(t *testing.T) {
	// Over a uniform-difficulty workload, accuracy ≈ capability. This is the
	// calibration Table I depends on.
	set := workload.GenQA(99, 400)
	for _, cap := range []float64{0.3, 0.6, 0.9} {
		m := testModel(cap)
		correct := 0
		for _, it := range set.Items {
			r, err := m.Complete(context.Background(), Request{
				Task: TaskQA, Prompt: it.Question, Gold: it.Answer, Wrong: it.Distractor,
				Difficulty: it.Difficulty,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Correct {
				correct++
			}
		}
		acc := float64(correct) / float64(len(set.Items))
		if math.Abs(acc-cap) > 0.12 {
			t.Errorf("capability %.2f produced accuracy %.2f", cap, acc)
		}
	}
}

func TestConfidenceCorrelatesWithCorrectness(t *testing.T) {
	set := workload.GenQA(123, 400)
	m := testModel(0.6)
	var sumC, sumW float64
	var nC, nW int
	for _, it := range set.Items {
		r, _ := m.Complete(context.Background(), Request{
			Prompt: it.Question, Gold: it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
		})
		if r.Correct {
			sumC += r.Confidence
			nC++
		} else {
			sumW += r.Confidence
			nW++
		}
	}
	if nC == 0 || nW == 0 {
		t.Fatal("degenerate outcome split")
	}
	if sumC/float64(nC) <= sumW/float64(nW)+0.1 {
		t.Errorf("confidence not separating: correct %.3f vs wrong %.3f", sumC/float64(nC), sumW/float64(nW))
	}
}

func TestBillingMatchesTokens(t *testing.T) {
	m := testModel(0.9)
	prompt := "one two three four five"
	r, _ := m.Complete(context.Background(), Request{Prompt: prompt, Gold: "six seven"})
	if r.InputTokens != token.Count(prompt) {
		t.Errorf("input tokens = %d, want %d", r.InputTokens, token.Count(prompt))
	}
	want := m.Price().ForTokens(r.InputTokens, r.OutputTokens)
	if r.Cost != want {
		t.Errorf("cost = %v, want %v", r.Cost, want)
	}
	meter := m.Meter()
	if meter.Calls != 1 || meter.Spend != r.Cost {
		t.Errorf("meter = %+v", meter)
	}
	m.ResetMeter()
	if m.Meter().Calls != 0 {
		t.Error("reset failed")
	}
}

func TestConfidenceBounds(t *testing.T) {
	m := testModel(0.5)
	f := func(prompt string, d8 uint8) bool {
		if prompt == "" {
			return true
		}
		d := float64(d8) / 255
		r, err := m.Complete(context.Background(), Request{Prompt: prompt, Gold: "g", Difficulty: d})
		if err != nil {
			return false
		}
		return r.Confidence >= 0.02 && r.Confidence <= 0.98
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoiseUnitUniformish(t *testing.T) {
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		u := noiseUnit("m", string(rune('a'+i%26))+string(rune(i)), "s")
		if u < 0 || u >= 1 {
			t.Fatalf("noise %v out of range", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
		t.Errorf("noise mean %.3f, want ~0.5", mean)
	}
}

func TestDefaultFamily(t *testing.T) {
	fam := DefaultFamily()
	if len(fam) != 3 {
		t.Fatalf("family size = %d", len(fam))
	}
	for i := 1; i < len(fam); i++ {
		if fam[i].Capability() <= fam[i-1].Capability() {
			t.Error("family not ordered by capability")
		}
		if fam[i].Price().InputPer1K <= fam[i-1].Price().InputPer1K {
			t.Error("family not ordered by price")
		}
	}
	if fam.ByName(NameLarge) == nil || fam.ByName("nope") != nil {
		t.Error("ByName broken")
	}
	if fam.Largest().Name() != NameLarge {
		t.Error("Largest wrong")
	}
}

func TestFamilyAccuraciesMatchPaperShape(t *testing.T) {
	// Table I shape: small ~27.5%, large ~92.5%, strictly increasing.
	set := workload.GenQA(1, 40)
	fam := DefaultFamily()
	accs := make([]float64, len(fam))
	for i, m := range fam {
		correct := 0
		for _, it := range set.Items {
			r, _ := m.Complete(context.Background(), Request{
				Prompt: "Context: " + it.ContextFor() + "\nQ: " + it.Question,
				Gold:   it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			})
			if r.Correct {
				correct++
			}
		}
		accs[i] = float64(correct) / float64(len(set.Items))
	}
	if !(accs[0] < accs[1] && accs[1] < accs[2]) {
		t.Errorf("accuracies not increasing: %v", accs)
	}
	if accs[0] > 0.5 {
		t.Errorf("small model too strong: %.3f", accs[0])
	}
	if accs[2] < 0.85 {
		t.Errorf("large model too weak: %.3f", accs[2])
	}
}

func TestLatencyOrdering(t *testing.T) {
	fam := DefaultFamily()
	req := Request{Prompt: "a reasonably long prompt with several words in it", Gold: "answer"}
	rs, _ := fam[0].Complete(context.Background(), req)
	rl, _ := fam[2].Complete(context.Background(), req)
	if rs.Latency >= rl.Latency {
		t.Errorf("small model latency %v >= large %v", rs.Latency, rl.Latency)
	}
}

func BenchmarkComplete(b *testing.B) {
	m := testModel(0.8)
	req := Request{Prompt: "What are the names of stadiums that had concerts in 2014?", Gold: "x", Wrong: "y", Difficulty: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNoiseKeyUnifiesRephrasings(t *testing.T) {
	// Two prompts asking the same thing (different few-shot boilerplate)
	// share a NoiseKey and must succeed or fail together; without the key
	// they draw independently.
	m := testModel(0.6)
	mk := func(prompt, key string) Response {
		r, err := m.Complete(context.Background(), Request{
			Prompt: prompt, Gold: "g", Wrong: "w", Difficulty: 0.58, NoiseKey: key,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	agree := true
	for i := 0; i < 40; i++ {
		key := "q" + string(rune('a'+i%26)) + string(rune(i))
		a := mk("header A\n"+key, key)
		b := mk("much longer header with examples B\n"+key, key)
		if a.Correct != b.Correct || a.Text != b.Text {
			agree = false
		}
	}
	if !agree {
		t.Error("NoiseKey did not unify outcomes across prompt re-phrasings")
	}
	// Billing still follows the real prompt.
	short := mk("x", "samekey")
	long := mk("a much longer prompt with many more words in it", "samekey")
	if long.InputTokens <= short.InputTokens {
		t.Error("NoiseKey leaked into billing")
	}
}
