package llm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

func batchTestModel() *SimModel {
	return NewSim(SimConfig{
		Name:       "batch-test",
		Capability: 0.85,
		Price:      token.Price{InputPer1K: 1000, OutputPer1K: 2000},
		Obs:        obs.NewRegistry(),
	})
}

func batchReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Task:       TaskQA,
			Prompt:     fmt.Sprintf("question number %d about stadium capacities", i),
			Gold:       fmt.Sprintf("answer %d", i),
			Wrong:      "not sure",
			Difficulty: 0.3,
		}
	}
	return reqs
}

// A batched call must bill exactly like the same requests served one at a
// time, and must answer each item identically (same noise streams).
func TestGenerateBatchMatchesSequentialBillingAndAnswers(t *testing.T) {
	ctx := context.Background()
	reqs := batchReqs(12)

	seq := batchTestModel()
	var seqResps []Response
	for _, r := range reqs {
		resp, err := seq.Complete(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		seqResps = append(seqResps, resp)
	}

	bat := batchTestModel()
	batResps, err := bat.GenerateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batResps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(batResps), len(reqs))
	}
	var sum token.Cost
	for i := range reqs {
		if batResps[i].Text != seqResps[i].Text || batResps[i].Correct != seqResps[i].Correct {
			t.Errorf("item %d: batch answer %q/%v, sequential %q/%v",
				i, batResps[i].Text, batResps[i].Correct, seqResps[i].Text, seqResps[i].Correct)
		}
		if batResps[i].Cost != seqResps[i].Cost {
			t.Errorf("item %d: batch cost %v, sequential %v", i, batResps[i].Cost, seqResps[i].Cost)
		}
		sum += batResps[i].Cost
	}
	if got := bat.Meter().Spend; got != sum {
		t.Errorf("meter spend %v, sum of per-item costs %v", got, sum)
	}
	if seqSpend := seq.Meter().Spend; bat.Meter().Spend != seqSpend {
		t.Errorf("batch meter %v, sequential meter %v", bat.Meter().Spend, seqSpend)
	}
}

// Batched latency must be sub-linear: far below the sequential sum, and
// equal across all items of the batch.
func TestGenerateBatchLatencySubLinear(t *testing.T) {
	ctx := context.Background()
	m := batchTestModel()
	reqs := batchReqs(16)

	var seqSum time.Duration
	var maxItem time.Duration
	for _, r := range reqs {
		resp, err := m.Complete(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		seqSum += resp.Latency
		if resp.Latency > maxItem {
			maxItem = resp.Latency
		}
	}
	resps, err := m.GenerateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	lat := resps[0].Latency
	for i, r := range resps {
		if r.Latency != lat {
			t.Errorf("item %d latency %v differs from batch latency %v", i, r.Latency, lat)
		}
	}
	if lat < maxItem {
		t.Errorf("batch latency %v below longest item %v", lat, maxItem)
	}
	if lat*2 >= seqSum {
		t.Errorf("batch latency %v not sub-linear vs sequential sum %v", lat, seqSum)
	}
	want := BatchLatency(maxItem, len(reqs), DefaultBatchOverhead)
	if lat != want {
		t.Errorf("batch latency %v, want %v", lat, want)
	}
}

func TestGenerateBatchValidation(t *testing.T) {
	m := batchTestModel()
	if resps, err := m.GenerateBatch(context.Background(), nil); err != nil || resps != nil {
		t.Errorf("empty batch: %v %v", resps, err)
	}
	if _, err := m.GenerateBatch(context.Background(), []Request{{Prompt: ""}}); !errors.Is(err, ErrEmptyPrompt) {
		t.Errorf("empty prompt accepted: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.GenerateBatch(ctx, batchReqs(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx accepted: %v", err)
	}
}

// The paced wrapper must serialize calls on its lane and actually spend
// wall clock, with a batched call far cheaper than sequential calls.
func TestPacedWallClock(t *testing.T) {
	ctx := context.Background()
	m := batchTestModel()
	reqs := batchReqs(8)

	// Calibrate: simulated latencies are deterministic.
	sim, err := m.GenerateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	batchSim := sim[0].Latency

	const scale = 500
	p := NewPaced(m, scale)
	if p.Name() != m.Name() || p.Unwrap() != BatchModel(m) {
		t.Fatal("paced does not delegate identity")
	}

	start := time.Now()
	resps, err := p.GenerateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses", len(resps))
	}
	if elapsed := time.Since(start); elapsed < batchSim/scale {
		t.Errorf("paced batch returned in %v, below scaled simulated %v", elapsed, batchSim/scale)
	}

	// A canceled context interrupts the paced sleep.
	cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	slow := NewPaced(m, 1) // real time: seconds of simulated latency
	if _, err := slow.Complete(cctx, reqs[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("paced ignored deadline: %v", err)
	}
}
