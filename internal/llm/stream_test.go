package llm

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/token"
)

func newStreamTestModel(t *testing.T, capability float64) *SimModel {
	t.Helper()
	return NewSim(SimConfig{
		Name:       "stream-test",
		Capability: capability,
		Price:      token.Price{InputPer1K: 1000, OutputPer1K: 2000},
		Obs:        obs.NewRegistry(),
	})
}

func drain(t *testing.T, s Stream) []Chunk {
	t.Helper()
	var chunks []Chunk
	for {
		ch, err := s.Recv()
		if errors.Is(err, io.EOF) {
			return chunks
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		chunks = append(chunks, ch)
	}
}

// The headline invariant: a drained stream reproduces Complete exactly —
// same text, same confidence, and meter-exact billing (sum of chunk
// costs equals Response.Cost, token counts identical).
func TestStreamMatchesCompleteExactly(t *testing.T) {
	req := Request{
		Task:       TaskQA,
		Prompt:     "what is the average monthly revenue per region over the last fiscal year",
		Gold:       "the average monthly revenue per region was 4.2 million dollars across all regions last year",
		Wrong:      "insufficient data",
		Difficulty: 0.4,
	}

	mComplete := newStreamTestModel(t, 0.8)
	resp, err := mComplete.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}

	mStream := newStreamTestModel(t, 0.8)
	s, err := mStream.GenerateStream(context.Background(), req)
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	chunks := drain(t, s)

	if len(chunks) < 2 {
		t.Fatalf("expected a multi-chunk stream, got %d chunks", len(chunks))
	}
	var text string
	var sum token.Cost
	for i, ch := range chunks {
		if ch.Index != i {
			t.Fatalf("chunk %d has Index %d", i, ch.Index)
		}
		if ch.Final != (i == len(chunks)-1) {
			t.Fatalf("chunk %d Final=%v", i, ch.Final)
		}
		if ch.Cost < 0 {
			t.Fatalf("chunk %d has negative cost %d", i, ch.Cost)
		}
		text += ch.Text
		sum += ch.Cost
	}
	if text != resp.Text {
		t.Fatalf("concatenated chunks = %q, Complete text = %q", text, resp.Text)
	}
	if sum != resp.Cost {
		t.Fatalf("sum of chunk costs = %d, Complete cost = %d", sum, resp.Cost)
	}
	last := chunks[len(chunks)-1]
	if last.Confidence != resp.Confidence {
		t.Fatalf("final chunk confidence %v != Complete confidence %v", last.Confidence, resp.Confidence)
	}
	if last.Latency != resp.Latency {
		t.Fatalf("final chunk latency %v != Complete latency %v", last.Latency, resp.Latency)
	}

	final, ok := s.Final()
	if !ok {
		t.Fatal("Final() not available after drain")
	}
	if final.Text != resp.Text || final.Cost != resp.Cost || final.Confidence != resp.Confidence {
		t.Fatalf("Final() = %+v, Complete = %+v", final, resp)
	}

	// Meter-exactness: the streamed model's meter must equal the
	// non-streamed model's meter field for field.
	if got, want := mStream.Meter(), mComplete.Meter(); got != want {
		t.Fatalf("stream meter %+v != complete meter %+v", got, want)
	}

	if _, err := s.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("Recv after drain: %v, want io.EOF", err)
	}
}

// Abandoning a stream early bills exactly the chunks that were emitted —
// the remainder is never charged.
func TestStreamEarlyCloseBillsOnlyEmittedChunks(t *testing.T) {
	req := Request{
		Task:       TaskQA,
		Prompt:     "list the top five customers by total order volume in the west region",
		Gold:       "acme corp globex initech umbrella and stark are the top five customers by volume",
		Difficulty: 0.3,
	}
	m := newStreamTestModel(t, 0.8)
	s, err := m.GenerateStream(context.Background(), req)
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}

	var sum token.Cost
	for i := 0; i < 3; i++ {
		ch, err := s.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		sum += ch.Cost
		if ch.Final {
			t.Fatalf("stream finished in %d chunks; test needs a longer gold answer", i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Recv after Close: %v, want ErrStreamClosed", err)
	}
	if _, ok := s.Final(); ok {
		t.Fatal("Final() reported completion for an aborted stream")
	}

	meter := m.Meter()
	if meter.Spend != sum {
		t.Fatalf("meter spend %d != sum of emitted chunk costs %d", meter.Spend, sum)
	}
	full := newStreamTestModel(t, 0.8)
	resp, err := full.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if meter.Spend >= resp.Cost {
		t.Fatalf("aborted stream billed %d, full call costs %d — no refund", meter.Spend, resp.Cost)
	}
}

// A canceled context stops both delivery and billing.
func TestStreamContextCancel(t *testing.T) {
	req := Request{
		Prompt:     "describe the schema of the orders table including all column types",
		Gold:       "orders has id integer customer integer total numeric and created timestamp columns",
		Difficulty: 0.2,
	}
	m := newStreamTestModel(t, 0.9)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := m.GenerateStream(ctx, req)
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	ch, err := s.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	cancel()
	if _, err := s.Recv(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Recv after cancel: %v, want context.Canceled", err)
	}
	if got := m.Meter().Spend; got != ch.Cost {
		t.Fatalf("meter spend %d after cancel, want only first chunk's %d", got, ch.Cost)
	}
}

// Streams are deterministic: two runs of the same request produce
// identical chunk sequences.
func TestStreamDeterministic(t *testing.T) {
	req := Request{
		Prompt:     "summarize weekly active user growth for the analytics dashboard",
		Gold:       "weekly active users grew eleven percent quarter over quarter",
		Difficulty: 0.5,
	}
	a := drain(t, mustStream(t, newStreamTestModel(t, 0.7), req))
	b := drain(t, mustStream(t, newStreamTestModel(t, 0.7), req))
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func mustStream(t *testing.T, m *SimModel, req Request) Stream {
	t.Helper()
	s, err := m.GenerateStream(context.Background(), req)
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	return s
}

// Mid-stream confidence converges toward the final value: for a
// confident answer the trajectory's last pre-final chunk is closer to
// the final confidence than the first chunk is.
func TestStreamConfidenceConverges(t *testing.T) {
	req := Request{
		Prompt:     "what table stores customer billing addresses in the warehouse schema",
		Gold:       "customer billing addresses live in the dim customer address table of the warehouse",
		Difficulty: 0.1,
	}
	m := newStreamTestModel(t, 0.95)
	chunks := drain(t, mustStream(t, m, req))
	if len(chunks) < 3 {
		t.Fatalf("need >=3 chunks, got %d", len(chunks))
	}
	final := chunks[len(chunks)-1].Confidence
	first := chunks[0].Confidence
	preFinal := chunks[len(chunks)-2].Confidence
	if abs(preFinal-final) > abs(first-final) {
		t.Fatalf("confidence diverged: first %.3f, pre-final %.3f, final %.3f", first, preFinal, final)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// GenerateStream validates like Complete.
func TestStreamValidation(t *testing.T) {
	m := newStreamTestModel(t, 0.5)
	if _, err := m.GenerateStream(context.Background(), Request{}); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt: %v, want ErrEmptyPrompt", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.GenerateStream(ctx, Request{Prompt: "p", Gold: "g"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: %v, want context.Canceled", err)
	}
}

// StaticStream replays a pre-billed response as one final chunk and
// never touches any meter.
func TestStaticStream(t *testing.T) {
	resp := Response{Text: "cached answer", Confidence: 0.9, Model: "m", Cost: 123}
	s := StaticStream(resp)
	ch, err := s.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !ch.Final || ch.Text != resp.Text || ch.Cost != resp.Cost || ch.Confidence != resp.Confidence {
		t.Fatalf("chunk %+v does not mirror response %+v", ch, resp)
	}
	if _, err := s.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("second Recv: %v, want io.EOF", err)
	}
	got, ok := s.Final()
	if !ok || got.Text != resp.Text {
		t.Fatalf("Final() = %+v, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
