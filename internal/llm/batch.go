package llm

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// BatchModel is a Model that can additionally serve many requests in one
// upstream call. Batched inference is the core serving optimization of
// GPU-backed LLM deployments: the marginal latency of an extra request in
// a batch is a small fraction of a standalone call, while billing stays
// per item. internal/sched groups queued requests into batches and feeds
// them through this interface.
type BatchModel interface {
	Model
	// GenerateBatch runs every request in one batched call. On success it
	// returns exactly one Response per request, in order; each response
	// carries its own per-item token billing, and every response reports
	// the same Latency — the wall-clock of the whole batch (sub-linear in
	// the batch size, see BatchLatency). A single error fails the whole
	// batch, as with a real batched API call.
	GenerateBatch(ctx context.Context, reqs []Request) ([]Response, error)
}

// DefaultBatchOverhead is the default marginal latency of each extra
// batched item, as a fraction of the longest item's standalone latency.
// The value models a GPU server whose batched forward pass is dominated
// by the longest sequence, with a small per-item increment.
const DefaultBatchOverhead = 0.08

// BatchLatency is the simulated wall-clock of a batched call: the longest
// item's standalone latency plus `overhead` of it per additional item —
// sub-linear in n, versus n·latency for sequential calls.
func BatchLatency(maxItem time.Duration, n int, overhead float64) time.Duration {
	if n <= 1 {
		return maxItem
	}
	if overhead <= 0 {
		overhead = DefaultBatchOverhead
	}
	return time.Duration(float64(maxItem) * (1 + overhead*float64(n-1)))
}

// GenerateBatch implements BatchModel. Each item is adjudicated, billed
// and metered exactly as an individual Complete call would be (so usage
// meters match the sum of per-item costs), but the reported latency is
// the batch's sub-linear wall-clock.
func (m *SimModel) GenerateBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		m.mErrors.Inc()
		return nil, err
	}
	for _, r := range reqs {
		if r.Prompt == "" {
			m.mErrors.Inc()
			return nil, ErrEmptyPrompt
		}
	}
	_, sp := obs.StartSpan(ctx, "llm.generate_batch")
	sp.SetAttr("model", m.name)
	sp.SetAttr("batch_size", len(reqs))
	defer sp.End()

	resps := make([]Response, len(reqs))
	var maxLat time.Duration
	var cost token.Cost
	for i := range reqs {
		// The batch context is the scheduler's detached one, not any single
		// submitter's, so per-item exemplars would mislink; items stay
		// exemplar-free here.
		resps[i] = m.answer(reqs[i], "")
		if resps[i].Latency > maxLat {
			maxLat = resps[i].Latency
		}
		cost += resps[i].Cost
	}
	lat := BatchLatency(maxLat, len(reqs), m.batchOverhead)
	for i := range resps {
		resps[i].Latency = lat
	}
	sp.SetAttr("cost_microusd", int64(cost))
	sp.SetAttr("latency_ms", lat.Milliseconds())
	return resps, nil
}
