package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// ErrTransient marks a retryable upstream failure (rate limit, overload,
// connection reset — the failures real LLM APIs surface routinely).
var ErrTransient = errors.New("llm: transient upstream failure")

// Flaky wraps a model and injects deterministic transient failures: the
// call for (prompt, attempt) fails iff its hash-noise draw falls below
// FailureRate. Retrying the same prompt draws fresh noise per attempt, so
// persistence pays off — exactly the failure model a retry layer is built
// against. Flaky is the repository's failure-injection harness and is safe
// for concurrent use (the proxy drives it from many goroutines).
type Flaky struct {
	Inner Model
	// FailureRate in [0,1] is the per-attempt failure probability.
	FailureRate float64

	// attempt counts calls per prompt so consecutive retries of the same
	// request see independent draws.
	mu      sync.Mutex
	attempt map[string]int
}

// NewFlaky wraps a model with the given failure rate.
func NewFlaky(inner Model, rate float64) *Flaky {
	return &Flaky{Inner: inner, FailureRate: rate, attempt: make(map[string]int)}
}

// Name implements Model.
func (f *Flaky) Name() string { return f.Inner.Name() }

// Capability implements Model.
func (f *Flaky) Capability() float64 { return f.Inner.Capability() }

// Price implements Model.
func (f *Flaky) Price() token.Price { return f.Inner.Price() }

// Complete implements Model, failing transiently per the configured rate.
func (f *Flaky) Complete(ctx context.Context, req Request) (Response, error) {
	f.mu.Lock()
	n := f.attempt[req.Prompt]
	f.attempt[req.Prompt] = n + 1
	f.mu.Unlock()
	u := noiseUnit(f.Inner.Name(), fmt.Sprintf("%s|attempt=%d", req.Prompt, n), "flaky")
	if u < f.FailureRate {
		return Response{}, fmt.Errorf("%w (attempt %d)", ErrTransient, n+1)
	}
	return f.Inner.Complete(ctx, req)
}

// Retry wraps a model with bounded, context-aware retries on transient
// failures — the client-side persistence layer every production LLM
// integration carries. Between attempts it backs off exponentially from
// BaseDelay up to MaxDelay, scaled by deterministic jitter (a hash of
// model, prompt and attempt), so retry storms decorrelate across prompts
// while every run stays reproducible. Each attempt can carry its own
// deadline via AttemptTimeout; an attempt that times out while the
// caller's context is still live is retried like any transient failure.
// Non-transient errors propagate immediately.
type Retry struct {
	Inner Model
	// Attempts is the total number of tries (>= 1). 0 means 3.
	Attempts int
	// BaseDelay is the pause before the first retry; each further retry
	// doubles it. 0 means no backoff (retry immediately).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. 0 means uncapped.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt. 0 means no per-call
	// deadline beyond the caller's context.
	AttemptTimeout time.Duration
	// Obs receives llm_retries_total / llm_retry_exhausted_total. Nil
	// means obs.Default.
	Obs *obs.Registry
}

// NewRetry wraps a model with the given attempt budget and the default
// backoff schedule (2ms base doubling to a 250ms cap).
func NewRetry(inner Model, attempts int) *Retry {
	if attempts <= 0 {
		attempts = 3
	}
	return &Retry{
		Inner:     inner,
		Attempts:  attempts,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  250 * time.Millisecond,
	}
}

// Name implements Model.
func (r *Retry) Name() string { return r.Inner.Name() }

// Capability implements Model.
func (r *Retry) Capability() float64 { return r.Inner.Capability() }

// Price implements Model.
func (r *Retry) Price() token.Price { return r.Inner.Price() }

// reg returns the effective metrics registry.
func (r *Retry) reg() *obs.Registry {
	if r.Obs != nil {
		return r.Obs
	}
	return obs.Default
}

// backoff returns the jittered pause before retry i (0-based): the
// exponential schedule scaled by a deterministic factor in [0.5, 1.5).
func (r *Retry) backoff(prompt string, i int) time.Duration {
	d := r.BaseDelay << uint(i)
	if d < r.BaseDelay {
		d = r.MaxDelay // shift overflow
	}
	if r.MaxDelay > 0 && d > r.MaxDelay {
		d = r.MaxDelay
	}
	jitter := 0.5 + noiseUnit(r.Inner.Name(), prompt, fmt.Sprintf("backoff|%d", i))
	return time.Duration(float64(d) * jitter)
}

// Complete implements Model.
func (r *Retry) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	reg := r.reg()
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
		}
		resp, err := r.Inner.Complete(actx, req)
		cancel()
		if err == nil {
			return resp, nil
		}
		// A per-attempt deadline expiring while the caller's context is
		// still live is a slow upstream — retryable, like ErrTransient.
		attemptTimedOut := errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		if !errors.Is(err, ErrTransient) && !attemptTimedOut {
			return Response{}, err
		}
		reg.Counter("llm_retries_total", "model", r.Inner.Name()).Inc()
		last = err
		if i == attempts-1 || r.BaseDelay <= 0 {
			continue
		}
		timer := time.NewTimer(r.backoff(req.Prompt, i))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return Response{}, ctx.Err()
		}
	}
	reg.Counter("llm_retry_exhausted_total", "model", r.Inner.Name()).Inc()
	return Response{}, fmt.Errorf("llm: %d attempts exhausted: %w", attempts, last)
}
