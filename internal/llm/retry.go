package llm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/token"
)

// ErrTransient marks a retryable upstream failure (rate limit, overload,
// connection reset — the failures real LLM APIs surface routinely).
var ErrTransient = errors.New("llm: transient upstream failure")

// Flaky wraps a model and injects deterministic transient failures: the
// call for (prompt, attempt) fails iff its hash-noise draw falls below
// FailureRate. Retrying the same prompt draws fresh noise per attempt, so
// persistence pays off — exactly the failure model a retry layer is built
// against. Flaky is the repository's failure-injection harness.
type Flaky struct {
	Inner Model
	// FailureRate in [0,1] is the per-attempt failure probability.
	FailureRate float64

	// attempt counts calls per prompt so consecutive retries of the same
	// request see independent draws. Access is unsynchronized by design:
	// tests drive Flaky from one goroutine; wrap it for concurrent use.
	attempt map[string]int
}

// NewFlaky wraps a model with the given failure rate.
func NewFlaky(inner Model, rate float64) *Flaky {
	return &Flaky{Inner: inner, FailureRate: rate, attempt: make(map[string]int)}
}

// Name implements Model.
func (f *Flaky) Name() string { return f.Inner.Name() }

// Capability implements Model.
func (f *Flaky) Capability() float64 { return f.Inner.Capability() }

// Price implements Model.
func (f *Flaky) Price() token.Price { return f.Inner.Price() }

// Complete implements Model, failing transiently per the configured rate.
func (f *Flaky) Complete(ctx context.Context, req Request) (Response, error) {
	n := f.attempt[req.Prompt]
	f.attempt[req.Prompt] = n + 1
	u := noiseUnit(f.Inner.Name(), fmt.Sprintf("%s|attempt=%d", req.Prompt, n), "flaky")
	if u < f.FailureRate {
		return Response{}, fmt.Errorf("%w (attempt %d)", ErrTransient, n+1)
	}
	return f.Inner.Complete(ctx, req)
}

// Retry wraps a model with bounded retries on transient failures —
// the client-side persistence layer every production LLM integration
// carries. Non-transient errors propagate immediately.
type Retry struct {
	Inner Model
	// Attempts is the total number of tries (>= 1). 0 means 3.
	Attempts int
}

// NewRetry wraps a model with the given attempt budget.
func NewRetry(inner Model, attempts int) *Retry {
	if attempts <= 0 {
		attempts = 3
	}
	return &Retry{Inner: inner, Attempts: attempts}
}

// Name implements Model.
func (r *Retry) Name() string { return r.Inner.Name() }

// Capability implements Model.
func (r *Retry) Capability() float64 { return r.Inner.Capability() }

// Price implements Model.
func (r *Retry) Price() token.Price { return r.Inner.Price() }

// Complete implements Model.
func (r *Retry) Complete(ctx context.Context, req Request) (Response, error) {
	var last error
	for i := 0; i < r.Attempts; i++ {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		resp, err := r.Inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransient) {
			return Response{}, err
		}
		obs.Default.Counter("llm_retries_total", "model", r.Inner.Name()).Inc()
		last = err
	}
	obs.Default.Counter("llm_retry_exhausted_total", "model", r.Inner.Name()).Inc()
	return Response{}, fmt.Errorf("llm: %d attempts exhausted: %w", r.Attempts, last)
}
