package llm

import "hash/fnv"

// noiseUnit maps (model, prompt, salt) to a deterministic uniform value in
// [0, 1). It is the reproduction's replacement for API nondeterminism:
// stable across runs, uncorrelated across prompts and models.
func noiseUnit(model, prompt, salt string) float64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(prompt))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	// A splitmix64 finalizer avalanches the FNV state — FNV alone mixes the
	// high bits of short, suffix-varying inputs poorly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// 53 bits give a uniform float in [0,1).
	return float64(x>>11) / float64(1<<53)
}
