package llm

import (
	"context"
	"errors"
	"testing"

	"repro/internal/token"
)

func flakyBase() *SimModel {
	return NewSim(SimConfig{Name: "base", Capability: 0.9,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func TestFlakyFailsAtConfiguredRate(t *testing.T) {
	f := NewFlaky(flakyBase(), 0.3)
	fails := 0
	const n = 1000
	for i := 0; i < n; i++ {
		_, err := f.Complete(context.Background(), Request{
			Prompt: "question " + string(rune('a'+i%26)) + string(rune(i)), Gold: "g",
		})
		if err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("non-transient failure: %v", err)
			}
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("failure rate %.3f, want ~0.30", rate)
	}
}

func TestFlakyRetrySeesFreshDraws(t *testing.T) {
	// A 50%-flaky model must eventually succeed for every prompt when
	// retried — attempts draw independent noise.
	f := NewFlaky(flakyBase(), 0.5)
	for q := 0; q < 50; q++ {
		prompt := "retryable question " + string(rune('a'+q))
		ok := false
		for attempt := 0; attempt < 20; attempt++ {
			if _, err := f.Complete(context.Background(), Request{Prompt: prompt, Gold: "g"}); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("prompt %q never succeeded in 20 attempts", prompt)
		}
	}
}

func TestRetryRecovers(t *testing.T) {
	f := NewFlaky(flakyBase(), 0.5)
	r := NewRetry(f, 10)
	okCount := 0
	for i := 0; i < 100; i++ {
		resp, err := r.Complete(context.Background(), Request{
			Prompt: "resilient question number " + string(rune('a'+i%26)) + string(rune(i)),
			Gold:   "answer",
		})
		if err == nil {
			okCount++
			if resp.Text != "answer" {
				t.Errorf("recovered with wrong text %q", resp.Text)
			}
		}
	}
	// P(10 consecutive failures) = 2^-10; 100 prompts should essentially
	// all recover.
	if okCount < 98 {
		t.Errorf("only %d/100 recovered with 10 attempts", okCount)
	}
}

func TestRetryExhaustsAndReportsTransient(t *testing.T) {
	alwaysFail := NewFlaky(flakyBase(), 1.0)
	r := NewRetry(alwaysFail, 3)
	_, err := r.Complete(context.Background(), Request{Prompt: "doomed", Gold: "g"})
	if !errors.Is(err, ErrTransient) {
		t.Errorf("exhausted err = %v, want wrapped ErrTransient", err)
	}
}

func TestRetryPropagatesPermanentErrors(t *testing.T) {
	r := NewRetry(flakyBase(), 5)
	// Empty prompt is a permanent error: no retries, immediate propagation.
	_, err := r.Complete(context.Background(), Request{})
	if !errors.Is(err, ErrEmptyPrompt) {
		t.Errorf("err = %v, want ErrEmptyPrompt", err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	alwaysFail := NewFlaky(flakyBase(), 1.0)
	r := NewRetry(alwaysFail, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Complete(ctx, Request{Prompt: "x", Gold: "g"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestWrappersPreserveIdentity(t *testing.T) {
	base := flakyBase()
	f := NewFlaky(base, 0.1)
	r := NewRetry(f, 2)
	if r.Name() != base.Name() || r.Capability() != base.Capability() || r.Price() != base.Price() {
		t.Error("wrappers changed model identity")
	}
}

func TestRetryDefaultAttempts(t *testing.T) {
	r := NewRetry(flakyBase(), 0)
	if r.Attempts != 3 {
		t.Errorf("default attempts = %d", r.Attempts)
	}
}
