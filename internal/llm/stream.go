package llm

import (
	"context"
	"errors"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// Chunk is one incremental piece of a streamed generation.
type Chunk struct {
	// Text is this chunk's piece of the completion; concatenating every
	// chunk's Text reproduces the full Response.Text exactly.
	Text string
	// Index is the 0-based position of this chunk within its stream.
	Index int
	// Confidence is the model's running confidence estimate after emitting
	// this chunk. It starts near an uninformed prior and converges to the
	// final Response.Confidence — the signal an early-exit cascade watches
	// for mid-generation collapse.
	Confidence float64
	// Cost is the incremental cost of this chunk alone. The first chunk
	// absorbs the prompt-token cost; summed over a full stream the chunk
	// costs equal the Response.Cost of the equivalent Complete call exactly
	// (meter-exact), and an aborted stream has billed only the chunks it
	// emitted.
	Cost token.Cost
	// Latency is the cumulative simulated wall-clock through this chunk;
	// the final chunk's Latency equals the Complete call's Response.Latency.
	Latency time.Duration
	// Final marks the last chunk of the stream.
	Final bool
}

// Stream is a token stream from one model call. Streams are not safe for
// concurrent Recv; Close may be called concurrently with Recv.
type Stream interface {
	// Recv returns the next chunk. After the Final chunk it returns io.EOF;
	// after Close it returns ErrStreamClosed; a dead context surfaces the
	// context's error. Billing happens per delivered chunk, so abandoning a
	// stream early leaves the undelivered remainder unbilled.
	Recv() (Chunk, error)
	// Close aborts the stream. Chunks already delivered stay billed; the
	// remainder is never billed (the "refund" of an early exit). Close is
	// idempotent.
	Close() error
	// Final returns the completed response once the stream has delivered
	// its Final chunk. The bool is false while streaming or after an abort.
	Final() (Response, bool)
}

// StreamModel is a Model that can emit its completion incrementally.
type StreamModel interface {
	Model
	// GenerateStream starts one streamed call. The returned stream emits
	// deterministic token chunks whose costs sum to exactly the Complete
	// cost of the same request; billing accrues chunk by chunk.
	GenerateStream(ctx context.Context, req Request) (Stream, error)
}

// ErrStreamClosed is returned by Recv after the consumer closed the
// stream.
var ErrStreamClosed = errors.New("llm: stream closed")

// streamPrior is the uninformed confidence a stream starts from before
// the generation has produced enough signal to converge on the final
// confidence.
const streamPrior = 0.55

// GenerateStream implements StreamModel. The stream is deterministic for
// a given (model, request): same chunks, same confidences, same costs on
// every run. Each delivered chunk bills its incremental cost into the
// model's meter and metrics, so an aborted stream has paid for exactly
// the chunks it emitted.
func (m *SimModel) GenerateStream(ctx context.Context, req Request) (Stream, error) {
	if err := ctx.Err(); err != nil {
		m.mErrors.Inc()
		return nil, err
	}
	if req.Prompt == "" {
		m.mErrors.Inc()
		return nil, ErrEmptyPrompt
	}
	_, sp := obs.StartSpan(ctx, "llm.generate_stream")
	sp.SetAttr("model", m.name)
	defer sp.End()

	resp := m.adjudicate(req)
	key := req.NoiseKey
	if key == "" {
		key = req.Prompt
	}
	chunks := planChunks(m, resp, key)
	sp.SetAttr("chunks", len(chunks))

	// The call itself is counted when the stream opens; tokens and spend
	// accrue per chunk.
	m.mCalls.Inc()
	return &simStream{m: m, ctx: ctx, resp: resp, chunks: chunks, trace: obs.TraceIDFromContext(ctx)}, nil
}

// planChunks splits an adjudicated response into word-boundary chunks
// with telescoped incremental costs: chunk k's cost is the difference
// between the call cost at its cumulative output-token count and the
// previous chunk's, so the sum over all chunks is exactly resp.Cost. The
// confidence trajectory moves from an uninformed prior toward the final
// confidence on a square-root schedule (fast early movement — collapse
// is visible within the first quarter of the generation) with small
// deterministic per-chunk jitter.
func planChunks(m *SimModel, resp Response, key string) []Chunk {
	pieces := splitStream(resp.Text)
	n := len(pieces)
	chunks := make([]Chunk, n)
	prevCum := 0
	var prevCost token.Cost
	prefixLen := 0
	for i, piece := range pieces {
		prefixLen += len(piece)
		cum := token.Count(resp.Text[:prefixLen])
		if i == n-1 {
			// The final chunk trues the stream up to the billed counts
			// (Complete clamps empty outputs to one billable token).
			cum = resp.OutputTokens
		}
		if cum < prevCum {
			cum = prevCum
		}
		cost := m.price.ForTokens(resp.InputTokens, cum)
		conf := streamConfidence(m, key, i, n, resp.Confidence)
		chunks[i] = Chunk{
			Text:       piece,
			Index:      i,
			Confidence: conf,
			Cost:       cost - prevCost,
			Latency:    time.Duration(float64(resp.InputTokens+cum) / m.tokensPerSec * float64(time.Second)),
			Final:      i == n-1,
		}
		prevCum, prevCost = cum, cost
	}
	chunks[n-1].Latency = resp.Latency
	return chunks
}

// streamConfidence is the deterministic mid-generation confidence after
// chunk i of n: the prior pulled toward the final confidence by
// sqrt((i+1)/n), plus a ±0.03 jitter keyed like the model's other noise
// streams. The last chunk reports the final confidence exactly.
func streamConfidence(m *SimModel, key string, i, n int, final float64) float64 {
	if i == n-1 {
		return final
	}
	ratio := float64(i+1) / float64(n)
	conf := streamPrior + (final-streamPrior)*sqrt(ratio)
	conf += (noiseUnit(m.name, key, "stream"+strconv.Itoa(i)) - 0.5) * 2 * 0.03
	return clamp(conf, 0.02, 0.98)
}

// sqrt is a dependency-free Newton square root for the [0,1] ratios the
// confidence schedule uses (avoids importing math for one call).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// splitStream cuts text into chunks at word boundaries, whitespace
// attached to the following word so the concatenation reproduces text
// byte for byte. Empty text yields one empty chunk (the stream still
// emits a Final chunk carrying the minimum billable token).
func splitStream(text string) []string {
	if text == "" {
		return []string{""}
	}
	var out []string
	start := 0
	inSpace := false
	for i := 0; i < len(text); i++ {
		switch c := text[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			inSpace = true
		default:
			if inSpace && i > start {
				out = append(out, text[start:i])
				start = i
			}
			inSpace = false
		}
	}
	out = append(out, text[start:])
	return out
}

// simStream is SimModel's deterministic stream. The mutex serializes
// Recv against Close; billing happens under the model's own meter lock.
type simStream struct {
	m      *SimModel
	ctx    context.Context
	resp   Response
	chunks []Chunk
	trace  string

	mu     sync.Mutex
	next   int
	closed bool
	done   bool
}

// Recv implements Stream. Each delivered chunk bills its incremental
// tokens and cost; the prompt tokens ride the first chunk.
func (s *simStream) Recv() (Chunk, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Chunk{}, ErrStreamClosed
	}
	if err := s.ctx.Err(); err != nil {
		s.closed = true
		s.mu.Unlock()
		return Chunk{}, err
	}
	if s.next >= len(s.chunks) {
		s.mu.Unlock()
		return Chunk{}, io.EOF
	}
	ch := s.chunks[s.next]
	s.next++
	if ch.Final {
		s.done = true
	}
	s.mu.Unlock()

	s.bill(ch)
	return ch, nil
}

// bill accrues one chunk into the meter and metrics. Output tokens are
// derived from the chunk's own text except for the final true-up chunk,
// which settles the stream at the full billed count.
func (s *simStream) bill(ch Chunk) {
	m := s.m
	in := 0
	if ch.Index == 0 {
		in = s.resp.InputTokens
	}
	out := token.Count(ch.Text)
	if ch.Final {
		// Re-derive from the billed total so the stream's token sum always
		// matches Complete's, even when the text's last pieces straddle a
		// chunk boundary or the output clamps to one token.
		billed := 0
		for _, prev := range s.chunks[:ch.Index] {
			billed += token.Count(prev.Text)
		}
		out = s.resp.OutputTokens - billed
		if out < 0 {
			out = 0
		}
	}
	m.mu.Lock()
	if ch.Index == 0 {
		m.meter.Calls++
	}
	m.meter.InputTokens += in
	m.meter.OutputTokens += out
	m.meter.Spend += ch.Cost
	m.mu.Unlock()

	if in > 0 {
		m.mTokensIn.Add(int64(in))
	}
	if out > 0 {
		m.mTokensOut.Add(int64(out))
	}
	m.mCost.Add(int64(ch.Cost))
	if ch.Final {
		m.mLatency.ObserveWithExemplar(ch.Latency.Seconds(), s.trace)
		m.mCallCost.ObserveWithExemplar(float64(s.resp.Cost), s.trace)
	}
}

// Close implements Stream.
func (s *simStream) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Final implements Stream.
func (s *simStream) Final() (Response, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return Response{}, false
	}
	return s.resp, true
}

// StaticStream wraps an already-produced (and already-billed) response
// as a single-chunk stream: the chunk carries the whole text and the
// response's cost for display, but delivers no additional billing. It is
// how non-streaming tiers, cache hits and coalesced replays join a
// streamed serving path.
func StaticStream(resp Response) Stream {
	return &staticStream{resp: resp}
}

type staticStream struct {
	mu     sync.Mutex
	resp   Response
	sent   bool
	closed bool
}

// Recv implements Stream.
func (s *staticStream) Recv() (Chunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Chunk{}, ErrStreamClosed
	}
	if s.sent {
		return Chunk{}, io.EOF
	}
	s.sent = true
	return Chunk{
		Text:       s.resp.Text,
		Confidence: s.resp.Confidence,
		Cost:       s.resp.Cost,
		Latency:    s.resp.Latency,
		Final:      true,
	}, nil
}

// Close implements Stream.
func (s *staticStream) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Final implements Stream.
func (s *staticStream) Final() (Response, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resp, s.sent && !s.closed
}
