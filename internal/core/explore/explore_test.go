package explore

import (
	"context"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/vector"
	"repro/internal/workload"
)

func strongModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "strong", Capability: 1.0, NoiseAmp: 0.001,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func buildLake() *Lake {
	l := NewLake(embed.New(embed.DefaultDim))
	// The paper's ambiguity example: an athlete document and a professor
	// table row that share a name.
	l.AddText("mj-bio", "Michael Jordan, the greatest basketball player of all time, found the secret to success",
		map[string]string{"entity_type": "athlete"})
	l.AddTableRow("professors",
		[]string{"name", "department", "university"},
		[]string{"Michael Jordan", "computer science", "Berkeley"},
		map[string]string{"entity_type": "professor"})
	l.AddText("patient-note", "discharge summary for a patient with arrhythmia and elevated lab values",
		map[string]string{"entity_type": "patient"})
	l.AddImage("xray-001", "chest x-ray image of a patient", []float64{0.4, 0.2, 0.9},
		map[string]string{"entity_type": "patient"})
	l.AddTableRow("stadiums",
		[]string{"name", "city", "capacity"},
		[]string{"Camp Nou", "Barcelona", "99000"},
		map[string]string{"entity_type": "venue"})
	return l
}

func TestSemanticSearchCrossModal(t *testing.T) {
	l := buildLake()
	hits := l.Search("x-ray scan of the chest", 2)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Item.Modality != Image {
		t.Errorf("top hit modality = %s, want image: %v", hits[0].Item.Modality, hits[0])
	}
}

func TestMichaelJordanDisambiguation(t *testing.T) {
	l := buildLake()
	query := "Could Prof. Michael Jordan play basketball"

	// Pure vector search surfaces the athlete text (similar but wrong).
	plain := l.Search(query, 1)
	if len(plain) != 1 {
		t.Fatal("no plain hits")
	}

	// Attribute filtering by entity type returns the professor row — the
	// paper's fix.
	filtered := l.HybridSearch(query, 1, vector.AttrEquals("entity_type", "professor"), vector.Adaptive)
	if len(filtered) != 1 {
		t.Fatal("no filtered hits")
	}
	if filtered[0].Item.Attrs["entity_type"] != "professor" {
		t.Errorf("filtered hit = %v", filtered[0])
	}
	if filtered[0].Item.Modality != Table {
		t.Errorf("professor hit modality = %s", filtered[0].Item.Modality)
	}
}

func TestHybridOrdersConsistent(t *testing.T) {
	l := buildLake()
	pred := vector.AttrEquals("entity_type", "patient")
	q := "patient medical records"
	a := l.HybridSearch(q, 5, pred, vector.AttributeFirst)
	b := l.HybridSearch(q, 5, pred, vector.VectorFirst)
	if len(a) != len(b) {
		t.Fatalf("orders disagree on count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Item.ID != b[i].Item.ID {
			t.Errorf("rank %d differs: %v vs %v", i, a[i].Item.ID, b[i].Item.ID)
		}
	}
}

func TestModalityAttrInjected(t *testing.T) {
	l := buildLake()
	hits := l.HybridSearch("anything at all", 10, vector.AttrEquals("modality", "image"), vector.AttributeFirst)
	if len(hits) != 1 || hits[0].Item.Modality != Image {
		t.Errorf("modality filter hits = %v", hits)
	}
}

func TestGetAndLen(t *testing.T) {
	l := buildLake()
	if l.Len() != 5 {
		t.Errorf("len = %d", l.Len())
	}
	if _, ok := l.Get(0); !ok {
		t.Error("Get(0) missed")
	}
	if _, ok := l.Get(999); ok {
		t.Error("Get(999) hit")
	}
}

func TestLLMDBSelect(t *testing.T) {
	kb := workload.GenKB(3)
	d := NewLLMDB(strongModel(), kb)
	r, err := d.Query(context.Background(), "SELECT name, born_country FROM people WHERE field = 'databases' ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	// Verify against the KB directly.
	want := 0
	for _, p := range kb.People {
		if p.Field == "databases" {
			want++
		}
	}
	if r.NumRows() != want {
		t.Errorf("rows = %d, want %d", r.NumRows(), want)
	}
	for _, row := range r.Rows {
		name := row[0].Display()
		for _, p := range kb.People {
			if p.Name == name && row[1].Display() != kb.Cities[p.BornIn].Country {
				t.Errorf("%s country = %s, want %s", name, row[1].Display(), kb.Cities[p.BornIn].Country)
			}
		}
	}
}

func TestLLMDBMaterializesOnlyNeededColumns(t *testing.T) {
	kb := workload.GenKB(3)
	d1 := NewLLMDB(strongModel(), kb)
	if _, err := d1.Query(context.Background(), "SELECT name FROM people"); err != nil {
		t.Fatal(err)
	}
	calls1, _ := d1.Usage()

	d2 := NewLLMDB(strongModel(), kb)
	if _, err := d2.Query(context.Background(), "SELECT * FROM people"); err != nil {
		t.Fatal(err)
	}
	calls2, _ := d2.Usage()

	if calls1 != len(kb.People) {
		t.Errorf("single-column query made %d calls, want %d", calls1, len(kb.People))
	}
	if calls2 != len(kb.People)*len(peopleColumns) {
		t.Errorf("star query made %d calls, want %d", calls2, len(kb.People)*len(peopleColumns))
	}
}

func TestLLMDBAggregates(t *testing.T) {
	kb := workload.GenKB(3)
	d := NewLLMDB(strongModel(), kb)
	r, err := d.Query(context.Background(), "SELECT born_country, COUNT(*) AS n FROM people GROUP BY born_country ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, row := range r.Rows {
		total += row[1].Int
	}
	if total != int64(len(kb.People)) {
		t.Errorf("group counts sum to %d, want %d", total, len(kb.People))
	}
}

func TestLLMDBErrors(t *testing.T) {
	d := NewLLMDB(strongModel(), workload.GenKB(3))
	if _, err := d.Query(context.Background(), "DELETE FROM people"); err == nil {
		t.Error("non-SELECT accepted")
	}
	if _, err := d.Query(context.Background(), "SELECT * FROM stadiums"); err == nil {
		t.Error("unknown virtual table accepted")
	}
	if _, err := d.Query(context.Background(), "not sql"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLLMDBWeakModelIntroducesErrors(t *testing.T) {
	kb := workload.GenKB(3)
	weak := llm.NewSim(llm.SimConfig{Name: "weak-db", Capability: 0.35,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}})
	d := NewLLMDB(weak, kb)
	r, err := d.Query(context.Background(), "SELECT name, born_country FROM people")
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for _, row := range r.Rows {
		name := row[0].Display()
		for _, p := range kb.People {
			if p.Name == name && row[1].Display() != kb.Cities[p.BornIn].Country {
				wrong++
			}
		}
	}
	if wrong == 0 {
		t.Error("weak model materialized a perfect table; tier effect missing")
	}
	if !strings.Contains(r.Cols[1], "born_country") {
		t.Errorf("cols = %v", r.Cols)
	}
}

func BenchmarkLakeSearch(b *testing.B) {
	l := NewLake(embed.New(embed.DefaultDim))
	kb := workload.GenKB(5)
	for i, f := range kb.Facts() {
		l.AddText("fact", f, map[string]string{"n": string(rune('a' + i%26))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search("which organization is headquartered in Kyoto", 5)
	}
}

func TestLLMDBJoinAcrossVirtualTables(t *testing.T) {
	kb := workload.GenKB(3)
	d := NewLLMDB(strongModel(), kb)
	// Join people to their birth city's table — a query that needs two
	// LLM-backed tables materialized and joined by the engine.
	r, err := d.Query(context.Background(),
		"SELECT p.name, c.country FROM people AS p JOIN cities AS c ON p.born_city = c.city ORDER BY p.name")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != len(kb.People) {
		t.Errorf("rows = %d, want %d", r.NumRows(), len(kb.People))
	}
	// Spot-check against the KB.
	for _, row := range r.Rows {
		name, country := row[0].Display(), row[1].Display()
		for _, p := range kb.People {
			if p.Name == name && kb.Cities[p.BornIn].Country != country {
				t.Errorf("%s joined to country %s, want %s", name, country, kb.Cities[p.BornIn].Country)
			}
		}
	}
}

func TestLLMDBOrganizationsTable(t *testing.T) {
	kb := workload.GenKB(3)
	d := NewLLMDB(strongModel(), kb)
	r, err := d.Query(context.Background(),
		"SELECT organization, founded FROM organizations ORDER BY organization LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 {
		t.Errorf("rows = %d", r.NumRows())
	}
}

func TestLLMDBUnknownVirtualTableInJoin(t *testing.T) {
	d := NewLLMDB(strongModel(), workload.GenKB(3))
	if _, err := d.Query(context.Background(),
		"SELECT * FROM people AS p JOIN stadiums AS s ON p.name = s.name"); err == nil {
		t.Error("join to unknown virtual table accepted")
	}
	if _, err := d.Query(context.Background(),
		"SELECT t.name FROM (SELECT name FROM people) AS t"); err == nil {
		t.Error("derived table accepted")
	}
}

func TestLogAndTripleModalities(t *testing.T) {
	l := NewLake(embed.New(embed.DefaultDim))
	l.AddLogLine("db-01.log", "ERROR", "query-planner", "join order enumeration exceeded budget", nil)
	l.AddLogLine("db-01.log", "INFO", "storage", "checkpoint completed in 120ms", nil)
	l.AddTriple("Mei Tanaka", "born_in", "Kyoto", nil)
	l.AddTriple("Kyoto", "located_in", "Hyrkania", nil)

	// Semantic search finds the error log from a paraphrase.
	hits := l.Search("planner error enumerating join orders", 1)
	if len(hits) != 1 || hits[0].Item.Modality != Log {
		t.Errorf("log search = %v", hits)
	}
	// Severity filtering works over log attributes.
	errs := l.HybridSearch("anything", 5, vector.AttrEquals("severity", "ERROR"), vector.AttributeFirst)
	if len(errs) != 1 {
		t.Errorf("severity filter hits = %v", errs)
	}
	// Triples answer entity questions.
	hits = l.Search("where was Mei Tanaka born", 1)
	if len(hits) != 1 || hits[0].Item.Modality != Triple {
		t.Errorf("triple search = %v", hits)
	}
	// Subject filtering isolates one entity's edges.
	edges := l.HybridSearch("anything", 5, vector.AttrEquals("subject", "Kyoto"), vector.AttributeFirst)
	if len(edges) != 1 || edges[0].Item.Content != "Kyoto located in Hyrkania" {
		t.Errorf("subject filter = %v", edges)
	}
}
