// Package explore implements the paper's Section II-D applications:
// multi-modal data lake management (items of every modality embedded into
// one space, queried semantically with optional attribute filtering) and
// "LLM as databases" (SQL over virtual tables whose cells are fetched from
// an LLM).
package explore

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/embed"
	"repro/internal/vector"
)

// Modality tags a lake item.
type Modality string

const (
	Text  Modality = "text"
	Table Modality = "table"
	Image Modality = "image"
	// Log and Triple round out the paper's data-lake inventory
	// ("relational databases, documentation, log files, knowledge graphs").
	Log    Modality = "log"
	Triple Modality = "triple"
)

// Item is one object in the data lake.
type Item struct {
	ID       vector.ID
	Modality Modality
	// Title is a short label (document title, table name, image file name).
	Title string
	// Content is the indexable body (text, serialized row, caption).
	Content string
	// Attrs are filterable attributes (entity type, tenant, source, ...).
	Attrs map[string]string
}

// Hit is one search result.
type Hit struct {
	Item  Item
	Score float64
}

// Lake is a multi-modal data lake over a shared embedding space.
// Lake is safe for concurrent use.
type Lake struct {
	mu     sync.Mutex
	emb    *embed.Embedder
	store  *vector.Flat
	hybrid *vector.Hybrid
	items  map[vector.ID]Item
	nextID vector.ID
}

// NewLake returns an empty lake.
func NewLake(emb *embed.Embedder) *Lake {
	store := vector.NewFlat(emb.Dim(), vector.Cosine)
	return &Lake{
		emb:    emb,
		store:  store,
		hybrid: vector.NewHybrid(store),
		items:  make(map[vector.ID]Item),
	}
}

// Len reports the number of stored items.
func (l *Lake) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

func (l *Lake) add(it Item, vec embed.Vector) vector.ID {
	l.mu.Lock()
	defer l.mu.Unlock()
	it.ID = l.nextID
	l.nextID++
	if it.Attrs == nil {
		it.Attrs = map[string]string{}
	}
	it.Attrs["modality"] = string(it.Modality)
	l.items[it.ID] = it
	if err := l.store.Add(vector.Item{ID: it.ID, Vec: vec, Attrs: it.Attrs}); err != nil {
		panic(err) // IDs are unique by construction
	}
	return it.ID
}

// AddText indexes a text document.
func (l *Lake) AddText(title, content string, attrs map[string]string) vector.ID {
	return l.add(Item{Modality: Text, Title: title, Content: content, Attrs: cloneAttrs(attrs)},
		l.emb.Text(title+" "+content))
}

// AddTableRow indexes one relational row.
func (l *Lake) AddTableRow(table string, cols, vals []string, attrs map[string]string) vector.ID {
	content := serializeRow(cols, vals)
	return l.add(Item{Modality: Table, Title: table, Content: content, Attrs: cloneAttrs(attrs)},
		l.emb.Row(cols, vals))
}

// AddImage indexes an image by caption and feature descriptor.
func (l *Lake) AddImage(name, caption string, features []float64, attrs map[string]string) vector.ID {
	return l.add(Item{Modality: Image, Title: name, Content: caption, Attrs: cloneAttrs(attrs)},
		l.emb.Image(caption, features))
}

// AddLogLine indexes one log record. The severity and component become
// filterable attributes on top of the caller's.
func (l *Lake) AddLogLine(source, severity, component, message string, attrs map[string]string) vector.ID {
	a := cloneAttrs(attrs)
	a["severity"] = severity
	a["component"] = component
	return l.add(Item{Modality: Log, Title: source, Content: severity + " " + component + " " + message, Attrs: a},
		l.emb.Text(component+" "+message))
}

// AddTriple indexes one knowledge-graph edge as a natural sentence
// ("<subject> <predicate> <object>"), with the subject and predicate as
// filterable attributes.
func (l *Lake) AddTriple(subject, predicate, object string, attrs map[string]string) vector.ID {
	a := cloneAttrs(attrs)
	a["subject"] = subject
	a["predicate"] = predicate
	sentence := subject + " " + strings.ReplaceAll(predicate, "_", " ") + " " + object
	return l.add(Item{Modality: Triple, Title: subject, Content: sentence, Attrs: a},
		l.emb.Text(sentence))
}

func cloneAttrs(attrs map[string]string) map[string]string {
	out := make(map[string]string, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	return out
}

func serializeRow(cols, vals []string) string {
	parts := make([]string, 0, len(cols))
	for i, c := range cols {
		if i < len(vals) && vals[i] != "" {
			parts = append(parts, c+" is "+vals[i])
		}
	}
	return strings.Join(parts, ", ")
}

// Search returns the k most semantically similar items to the query across
// all modalities.
func (l *Lake) Search(query string, k int) []Hit {
	return l.HybridSearch(query, k, nil, vector.Adaptive)
}

// HybridSearch is Search with an attribute predicate and an execution-order
// strategy — the Section III-B2 attribute-filtering mechanism that fixes
// the paper's "Prof. Michael Jordan" ambiguity (filter by entity type
// before trusting vector similarity).
func (l *Lake) HybridSearch(query string, k int, pred vector.Predicate, order vector.FilterOrder) []Hit {
	q := l.emb.Text(query)
	res, _ := l.hybrid.Search(q, k, pred, order)
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Hit, 0, len(res))
	for _, r := range res {
		out = append(out, Hit{Item: l.items[r.ID], Score: r.Score})
	}
	return out
}

// Get returns a stored item.
func (l *Lake) Get(id vector.ID) (Item, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	it, ok := l.items[id]
	return it, ok
}

// String implements fmt.Stringer for Hit, used by the CLI tools.
func (h Hit) String() string {
	return fmt.Sprintf("[%s] %s (%.3f): %s", h.Item.Modality, h.Item.Title, h.Score, h.Item.Content)
}
