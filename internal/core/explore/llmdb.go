package explore

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/llm"
	"repro/internal/sqlkit"
	"repro/internal/token"
	"repro/internal/workload"
)

// LLMDB realizes the paper's "LLM as databases" vision (Section II-D2,
// citing Saeed et al.): SQL queries run against *virtual tables* whose
// cells are not stored anywhere but fetched from an LLM on demand. A query
// is decomposed, the referenced columns are materialized entity-by-entity
// with one LLM call per cell (each call "extracts multi-modal information
// from corresponding LLMs, just like searching from tables"), and the
// assembled table is handed to the relational engine.
type LLMDB struct {
	Model llm.Model
	KB    *workload.KnowledgeBase

	// usage tracks materialization spend.
	calls int
	cost  token.Cost
}

// NewLLMDB returns an LLM-backed database over the given knowledge base
// (the knowledge the "LLM" was pre-trained on).
func NewLLMDB(m llm.Model, kb *workload.KnowledgeBase) *LLMDB {
	return &LLMDB{Model: m, KB: kb}
}

// Usage reports the LLM calls and spend so far.
func (d *LLMDB) Usage() (calls int, cost token.Cost) { return d.calls, d.cost }

// Virtual table schemas. Each table's cells are fetched from the LLM on
// demand; joins across virtual tables run on the relational engine after
// only the referenced columns are materialized.
var (
	peopleColumns = []string{"name", "born_city", "born_country", "organization", "field"}
	cityColumns   = []string{"city", "country"}
	orgColumns    = []string{"organization", "hq_city", "founded"}
)

// virtualTables maps table name to its column list.
var virtualTables = map[string][]string{
	"people":        peopleColumns,
	"cities":        cityColumns,
	"organizations": orgColumns,
}

// fetchCell answers one (entity, attribute) lookup from the KB. It returns
// the gold value and a plausible wrong value.
func (d *LLMDB) fetchCell(p workload.Person, col string) (gold, wrong string, difficulty float64) {
	born := d.KB.Cities[p.BornIn]
	org := d.KB.Orgs[p.WorksFor]
	switch col {
	case "name":
		return p.Name, p.Name, 0
	case "born_city":
		return born.Name, d.KB.Cities[(p.BornIn+1)%len(d.KB.Cities)].Name, 0.25
	case "born_country":
		// Two-hop attribute: harder, like the QA workload's 2-hop items.
		return born.Country, otherCountryName(born.Country), 0.55
	case "organization":
		return org.Name, d.KB.Orgs[(p.WorksFor+1)%len(d.KB.Orgs)].Name, 0.25
	case "field":
		return p.Field, "economics", 0.3
	default:
		return "", "", 0
	}
}

func otherCountryName(not string) string {
	for _, c := range []string{"Atlantia", "Borduria", "Carpathia", "Dalmatia"} {
		if c != not {
			return c
		}
	}
	return "Atlantia"
}

// Query parses and executes SQL against the virtual tables (people,
// cities, organizations), including joins between them. For single-table
// queries only the referenced columns are materialized — the
// query-decomposition cost optimization; multi-table queries materialize
// all columns of the referenced tables (joins need their keys anyway).
func (d *LLMDB) Query(ctx context.Context, sql string) (*sqlkit.Result, error) {
	st, err := sqlkit.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlkit.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("explore: LLM database supports SELECT only")
	}

	// Collect referenced virtual tables (FROM plus JOINs).
	var tables []string
	addTable := func(name string) error {
		lower := strings.ToLower(name)
		if _, ok := virtualTables[lower]; !ok {
			return fmt.Errorf("explore: unknown virtual table %q (have: people, cities, organizations)", name)
		}
		for _, t := range tables {
			if t == lower {
				return nil
			}
		}
		tables = append(tables, lower)
		return nil
	}
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("explore: query references no table")
	}
	for _, tr := range sel.From {
		if tr.Name == "" {
			return nil, fmt.Errorf("explore: derived tables are not supported over virtual tables")
		}
		if err := addTable(tr.Name); err != nil {
			return nil, err
		}
	}
	for _, j := range sel.Joins {
		if err := addTable(j.Table.Name); err != nil {
			return nil, err
		}
	}

	db := sqlkit.NewDB()
	for _, table := range tables {
		fetch := virtualTables[table]
		if len(tables) == 1 {
			needed := neededColumns(sel)
			var pruned []string
			for _, c := range fetch {
				if needed["*"] || needed[c] {
					pruned = append(pruned, c)
				}
			}
			if len(pruned) == 0 {
				return nil, fmt.Errorf("explore: query references no known column of %s(%s)", table, strings.Join(fetch, ", "))
			}
			fetch = pruned
		}
		if err := d.materialize(ctx, db, table, fetch); err != nil {
			return nil, err
		}
	}
	return db.ExecStmt(sel)
}

// materialize builds one virtual table in db, fetching every cell from the
// model.
func (d *LLMDB) materialize(ctx context.Context, db *sqlkit.DB, table string, fetch []string) error {
	cols := make([]sqlkit.Column, len(fetch))
	for i, c := range fetch {
		cols[i] = sqlkit.Column{Name: c, Type: sqlkit.TText}
	}
	if err := db.CreateTable(table, cols); err != nil {
		return err
	}
	entities := d.entityCount(table)
	for e := 0; e < entities; e++ {
		row := make([]sqlkit.Value, len(fetch))
		for i, c := range fetch {
			subject, gold, wrong, difficulty := d.cellSpec(table, e, c)
			resp, err := d.Model.Complete(ctx, llm.Request{
				Task:       llm.TaskQA,
				Prompt:     fmt.Sprintf("What is the %s of %s?", c, subject),
				Gold:       gold,
				Wrong:      wrong,
				Difficulty: difficulty,
			})
			if err != nil {
				return err
			}
			d.calls++
			d.cost += resp.Cost
			row[i] = sqlkit.StringVal(resp.Text)
		}
		if err := db.InsertRow(table, row); err != nil {
			return err
		}
	}
	return nil
}

func (d *LLMDB) entityCount(table string) int {
	switch table {
	case "people":
		return len(d.KB.People)
	case "cities":
		return len(d.KB.Cities)
	case "organizations":
		return len(d.KB.Orgs)
	default:
		return 0
	}
}

// cellSpec returns the prompt subject, gold value, plausible wrong value
// and difficulty for one (table, entity, column) cell.
func (d *LLMDB) cellSpec(table string, e int, col string) (subject, gold, wrong string, difficulty float64) {
	switch table {
	case "people":
		p := d.KB.People[e]
		g, w, diff := d.fetchCell(p, col)
		return p.Name, g, w, diff
	case "cities":
		c := d.KB.Cities[e]
		switch col {
		case "city":
			return c.Name, c.Name, c.Name, 0
		case "country":
			return c.Name, c.Country, otherCountryName(c.Country), 0.2
		}
	case "organizations":
		o := d.KB.Orgs[e]
		switch col {
		case "organization":
			return o.Name, o.Name, o.Name, 0
		case "hq_city":
			hq := d.KB.Cities[o.HQ].Name
			other := d.KB.Cities[(o.HQ+1)%len(d.KB.Cities)].Name
			return o.Name, hq, other, 0.25
		case "founded":
			return o.Name, fmt.Sprintf("%d", o.Founded), fmt.Sprintf("%d", o.Founded+7), 0.3
		}
	}
	return "", "", "", 0
}

// neededColumns walks the select to find referenced column names.
func neededColumns(sel *sqlkit.SelectStmt) map[string]bool {
	out := map[string]bool{}
	if len(sel.Exprs) == 0 {
		out["*"] = true
	}
	var walkExpr func(e sqlkit.Expr)
	walkExpr = func(e sqlkit.Expr) {
		switch x := e.(type) {
		case *sqlkit.ColRef:
			out[strings.ToLower(x.Name)] = true
		case *sqlkit.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *sqlkit.Unary:
			walkExpr(x.X)
		case *sqlkit.FuncCall:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *sqlkit.InExpr:
			walkExpr(x.X)
			for _, v := range x.List {
				walkExpr(v)
			}
		case *sqlkit.IsNullExpr:
			walkExpr(x.X)
		case *sqlkit.BetweenExpr:
			walkExpr(x.X)
			walkExpr(x.Lo)
			walkExpr(x.Hi)
		}
	}
	for _, se := range sel.Exprs {
		walkExpr(se.Expr)
	}
	if sel.Where != nil {
		walkExpr(sel.Where)
	}
	for _, g := range sel.GroupBy {
		walkExpr(g)
	}
	if sel.Having != nil {
		walkExpr(sel.Having)
	}
	for _, k := range sel.OrderBy {
		walkExpr(k.Expr)
	}
	return out
}
