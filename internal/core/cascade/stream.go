// Streamed cascade runs: the cascade consumes model token streams,
// watches per-chunk confidence, and aborts a cheap tier mid-generation
// the moment its confidence collapses — escalating to the next tier
// while having billed only the chunks actually emitted. The unstreamed
// remainder of the aborted tier is never charged (the "refund" relative
// to a request/response cascade, which always pays failed tiers in
// full).
package cascade

import (
	"context"
	"errors"
	"io"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
)

// DefaultExitMinChunks is how many chunks a tier must emit before the
// early-exit rule may abort it — the first chunks of a stream carry
// mostly prior, not signal.
const DefaultExitMinChunks = 2

// ErrStreamActive is returned by RunStream.Result while the stream has
// not yet finished.
var ErrStreamActive = errors.New("cascade: stream still active")

// StreamChunk is one chunk of a streamed cascade run: the model chunk
// plus which tier produced it. A cascade stream may switch tiers
// mid-flight (early exit or rejection), signalled by Restart — consumers
// rendering text should discard what they buffered from earlier tiers.
type StreamChunk struct {
	llm.Chunk
	// Model names the tier that produced this chunk.
	Model string
	// Tier is the model's index in the cascade (0 = cheapest).
	Tier int
	// Restart marks the first chunk of a new tier after an escalation:
	// everything streamed before it belongs to an abandoned attempt.
	Restart bool
}

// CompleteStream runs the request through the cascade as a chunk
// stream. Chunks carry incremental cost; billing accrues only for
// delivered chunks, so an early-exited tier bills exactly what it
// emitted. The chunk marked Final belongs to the accepted tier; a
// rejected tier's last chunk arrives with Final false, followed by the
// next tier's Restart chunk. Tiers whose model does not implement
// llm.StreamModel degrade to a single-chunk stream around the regular
// call (billed in full, as before).
func (c *Cascade) CompleteStream(ctx context.Context, req llm.Request) (*RunStream, error) {
	if len(c.Models) == 0 {
		return nil, ErrNoModels
	}
	minChunks := c.ExitMinChunks
	if minChunks <= 0 {
		minChunks = DefaultExitMinChunks
	}
	_, sp := obs.StartSpan(ctx, "cascade.complete_stream")
	return &RunStream{c: c, ctx: ctx, req: req, sp: sp, minChunks: minChunks, tier: -1}, nil
}

// RunStream is one in-flight streamed cascade run. It is a synchronous
// pull state machine: Recv advances tiers, applies the early-exit rule
// and the accept decision, and surfaces exactly the chunks that were
// billed. Not safe for concurrent Recv.
type RunStream struct {
	c         *Cascade
	ctx       context.Context
	req       llm.Request
	sp        *obs.Span
	minChunks int

	// tier iteration state.
	tier        int
	cur         llm.Stream
	curModel    llm.Model
	tierChunks  int
	tierCost    token.Cost
	tierRestart bool

	tr     Trace
	last   llm.Response
	hasAns bool
	forced bool

	done   bool
	result llm.Response
	err    error
	closed bool
}

// Recv returns the next chunk of the run. After the accepted tier's
// Final chunk it returns io.EOF; a tier error or exhausted cascade
// surfaces as the terminal error.
func (r *RunStream) Recv() (StreamChunk, error) {
	if r.closed {
		return StreamChunk{}, llm.ErrStreamClosed
	}
	if r.done {
		if r.err != nil {
			return StreamChunk{}, r.err
		}
		return StreamChunk{}, io.EOF
	}
	for {
		if r.cur == nil {
			if err := r.openNextTier(); err != nil {
				return StreamChunk{}, err
			}
		}
		ch, err := r.cur.Recv()
		if errors.Is(err, io.EOF) {
			// Defensive: sim streams end on a Final chunk, which we
			// finalize below; a bare EOF means the tier produced nothing
			// more — move on.
			r.cur = nil
			continue
		}
		if err != nil {
			return StreamChunk{}, r.tierError(err)
		}
		r.tierChunks++
		r.tierCost += ch.Cost
		out := StreamChunk{Chunk: ch, Model: r.curModel.Name(), Tier: r.tier, Restart: r.tierRestart}
		r.tierRestart = false
		if ch.Final {
			out.Final = r.finalizeTier()
			return out, nil
		}
		if r.shouldExit(ch) {
			r.earlyExit(ch)
		}
		return out, nil
	}
}

// openNextTier advances past open breakers to the next usable tier and
// starts its stream. When every remaining tier is skipped it terminates
// the run: forced-accept of the last completed answer if one exists,
// ErrAllTiersOpen otherwise.
func (r *RunStream) openNextTier() error {
	c := r.c
	reg := c.reg()
	lg := c.logger()
	for i := r.tier + 1; i < len(c.Models); i++ {
		m := c.Models[i]
		if c.Breakers != nil && !c.Breakers.Allow(m.Name()) {
			reg.Counter("cascade_tier_skipped_total", "model", m.Name()).Inc()
			lg.Event(r.ctx, obs.Warn, "cascade_tier_skip", "model", m.Name(), "tier", i)
			continue
		}
		lg.Event(r.ctx, obs.Debug, "cascade_tier_attempt", "model", m.Name(), "tier", i)
		stream, err := r.openStream(m)
		if err != nil {
			r.tier, r.curModel = i, m
			return r.tierError(err)
		}
		r.tier, r.curModel, r.cur = i, m, stream
		r.tierChunks, r.tierCost = 0, 0
		r.tierRestart = len(r.tr.Steps) > 0
		return nil
	}
	// No usable tier left.
	if r.hasAns {
		// The escalation target was skipped: serve the answer we already
		// paid for (mirrors Complete's forced accept). The consumer saw
		// its chunks already; finish() leaves the result readable.
		r.tr.Steps[len(r.tr.Steps)-1].Accepted = true
		reg.Counter("cascade_forced_accept_total").Inc()
		r.forced = true
		r.finish(r.last, nil)
		return io.EOF
	}
	if len(r.tr.Steps) == 0 {
		reg.Counter("cascade_errors_total", "model", "none").Inc()
	}
	r.finish(llm.Response{}, ErrAllTiersOpen)
	return ErrAllTiersOpen
}

// openStream starts a tier's token stream, degrading tiers without
// stream support to a single pre-billed chunk around the regular
// (possibly scheduler-batched) call path.
func (r *RunStream) openStream(m llm.Model) (llm.Stream, error) {
	if sm, ok := m.(llm.StreamModel); ok {
		return sm.GenerateStream(r.ctx, r.req)
	}
	resp, err := r.c.step(r.ctx, m, r.req)
	if err != nil {
		return nil, err
	}
	return llm.StaticStream(resp), nil
}

// shouldExit applies the early-exit rule to a non-final chunk:
// confidence collapsed below the exit threshold, the tier has emitted
// enough chunks to trust the signal, and a later tier is actually
// available to escalate to.
func (r *RunStream) shouldExit(ch llm.Chunk) bool {
	if r.c.ExitThreshold <= 0 || r.tier >= len(r.c.Models)-1 {
		return false
	}
	if r.tierChunks < r.minChunks || ch.Confidence >= r.c.ExitThreshold {
		return false
	}
	return r.escalationAvailable()
}

// escalationAvailable reports whether any tier after the current one
// would be admitted by its breaker right now.
func (r *RunStream) escalationAvailable() bool {
	if r.c.Breakers == nil {
		return r.tier < len(r.c.Models)-1
	}
	for i := r.tier + 1; i < len(r.c.Models); i++ {
		if r.c.Breakers.Allow(r.c.Models[i].Name()) {
			return true
		}
	}
	return false
}

// earlyExit aborts the current tier mid-generation: the stream is
// closed (unstreamed remainder never billed), the tier is recorded as a
// rejected step costing only its emitted chunks, and the next Recv
// opens the escalation target.
func (r *RunStream) earlyExit(ch llm.Chunk) {
	c := r.c
	r.cur.Close()
	if c.Breakers != nil {
		// An abort for quality is not a tier failure.
		c.Breakers.Record(r.curModel.Name(), true)
	}
	r.tr.Steps = append(r.tr.Steps, Step{
		Model:      r.curModel.Name(),
		Confidence: ch.Confidence,
		Accepted:   false,
		Cost:       r.tierCost,
	})
	r.tr.TotalCost += r.tierCost
	reg := c.reg()
	reg.Counter("cascade_steps_total", "model", r.curModel.Name(), "outcome", "early_exit").Inc()
	reg.Counter("cascade_early_exit_total", "model", r.curModel.Name()).Inc()
	c.logger().Event(r.ctx, obs.Info, "stream_early_exit",
		"model", r.curModel.Name(), "tier", r.tier,
		"confidence", ch.Confidence, "chunks", r.tierChunks,
		"billed_microusd", int64(r.tierCost))
	r.cur = nil
	r.hasAns = false
}

// finalizeTier runs the accept decision once a tier's stream completed,
// and reports whether the tier's last chunk should be marked Final for
// the consumer (i.e. the run is over).
func (r *RunStream) finalizeTier() bool {
	c := r.c
	reg := c.reg()
	resp, ok := r.cur.Final()
	if !ok {
		// A stream that ended without a final response degrades to what
		// we observed; should not happen with sim streams.
		resp = llm.Response{Model: r.curModel.Name(), Cost: r.tierCost}
	}
	if c.Breakers != nil {
		c.Breakers.Record(r.curModel.Name(), true)
	}
	r.cur = nil
	r.last, r.hasAns = resp, true
	r.tr.TotalCost += resp.Cost

	final := r.tier == len(c.Models)-1
	accepted := final || c.Decide.Accept(resp)
	if !accepted && !r.escalationAvailable() {
		// Nowhere to escalate: forced accept of the answer we just paid
		// for, decided now so the consumer still gets a Final chunk.
		accepted = true
		r.forced = true
		reg.Counter("cascade_forced_accept_total").Inc()
	}
	outcome := "reject"
	if accepted {
		outcome = "accept"
	}
	reg.Counter("cascade_steps_total", "model", r.curModel.Name(), "outcome", outcome).Inc()
	r.tr.Steps = append(r.tr.Steps, Step{
		Model:      r.curModel.Name(),
		Confidence: resp.Confidence,
		Accepted:   accepted,
		Cost:       resp.Cost,
	})
	if accepted {
		r.finish(resp, nil)
		return true
	}
	c.logger().Event(r.ctx, obs.Info, "cascade_escalate",
		"from", r.curModel.Name(), "tier", r.tier, "confidence", resp.Confidence)
	return false
}

// tierError terminates the run on a tier failure, mirroring Complete's
// error accounting.
func (r *RunStream) tierError(err error) error {
	c := r.c
	if c.Breakers != nil && !errors.Is(err, context.Canceled) {
		c.Breakers.Record(r.curModel.Name(), false)
	}
	c.reg().Counter("cascade_errors_total", "model", r.curModel.Name()).Inc()
	c.reg().Counter("cascade_escalations_total").Add(int64(r.tr.Escalations()))
	c.logger().Event(r.ctx, obs.Warn, "cascade_tier_error",
		"model", r.curModel.Name(), "tier", r.tier, "error", err.Error())
	// Close, don't just drop: a mid-stream tier error leaves the
	// underlying stream open, and its remainder would keep billing.
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	r.finish(llm.Response{}, err)
	return err
}

// finish seals the run and settles the success counters.
func (r *RunStream) finish(resp llm.Response, err error) {
	if r.done {
		return
	}
	r.done = true
	r.result, r.err = resp, err
	if err == nil {
		reg := r.c.reg()
		reg.Counter("cascade_requests_total").Inc()
		reg.Counter("cascade_escalations_total").Add(int64(r.tr.Escalations()))
		reg.Counter("cascade_final_model_total", "model", resp.Model).Inc()
	}
	r.sp.SetAttr("tiers", len(r.tr.Steps))
	r.sp.SetAttr("cost_microusd", int64(r.tr.TotalCost))
	r.sp.SetAttr("forced", r.forced)
	if err != nil {
		r.sp.SetAttr("error", err.Error())
	}
	r.sp.End()
}

// Close aborts the run. Chunks already delivered stay billed; an open
// tier stream is closed so its remainder never bills. Idempotent.
func (r *RunStream) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	if !r.done {
		r.done = true
		r.err = llm.ErrStreamClosed
		r.sp.SetAttr("aborted", true)
		r.sp.End()
	}
	return nil
}

// Result returns the accepted response and the run trace once the
// stream has finished (Recv returned io.EOF or a terminal error).
// Trace.TotalCost is exactly the sum of delivered chunk costs.
func (r *RunStream) Result() (llm.Response, Trace, error) {
	if !r.done {
		return llm.Response{}, r.tr, ErrStreamActive
	}
	return r.result, r.tr, r.err
}
