package cascade

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/token"
)

// errModel always fails with a fixed error.
type errModel struct {
	name string
	err  error
}

func (m errModel) Name() string        { return m.name }
func (m errModel) Capability() float64 { return 0.9 }
func (m errModel) Price() token.Price  { return token.Price{} }
func (m errModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{}, m.err
}

// TestEscalationCounterCountsEscalationsNotSteps pins the metric fix: both
// the success and the error path feed cascade_escalations_total from
// Trace.Escalations(), not from the raw step count.
func TestEscalationCounterCountsEscalationsNotSteps(t *testing.T) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "s", Capability: 0.1,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "l", Capability: 0.95,
		Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: reg})
	hard := llm.Request{Prompt: "a hard question", Gold: "g", Wrong: "w", Difficulty: 0.6}

	// Success path: small rejected, large accepted — one escalation.
	c := &Cascade{Models: []llm.Model{small, large}, Decide: Threshold{Tau: 0.62}, Obs: reg}
	_, tr, err := c.Complete(context.Background(), hard)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 2 || tr.Escalations() != 1 {
		t.Fatalf("trace = %+v, want 2 steps / 1 escalation", tr)
	}
	if got := reg.Snapshot()["cascade_escalations_total"]; got != 1 {
		t.Errorf("after success path: escalations counter = %v, want 1", got)
	}

	// Error path: small is consulted and rejected (one step, zero
	// escalations so far), then the next tier errors. The counter must add
	// Escalations() == 0, not len(Steps) == 1 — the old bug double-counted
	// here.
	c2 := &Cascade{Models: []llm.Model{small, errModel{"dead", llm.ErrTransient}},
		Decide: Threshold{Tau: 0.62}, Obs: reg}
	_, tr2, err := c2.Complete(context.Background(), hard)
	if err == nil {
		t.Fatal("error path did not error")
	}
	if len(tr2.Steps) != 1 || tr2.Escalations() != 0 {
		t.Fatalf("error trace = %+v, want 1 step / 0 escalations", tr2)
	}
	if got := reg.Snapshot()["cascade_escalations_total"]; got != 1 {
		t.Errorf("after error path: escalations counter = %v, want still 1", got)
	}
}

func trippedSet(t *testing.T, reg *obs.Registry, names ...string) *resilience.BreakerSet {
	t.Helper()
	bs := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window: 4, MinSamples: 2, FailureThreshold: 0.5, Cooldown: time.Hour, Obs: reg,
	})
	for _, n := range names {
		bs.Record(n, false)
		bs.Record(n, false)
		if bs.States()[n] != resilience.Open {
			t.Fatalf("breaker %q did not trip", n)
		}
	}
	return bs
}

// TestSkippedEscalationServesBestEffort: when the escalation target's
// breaker is open, the cascade serves the already-paid-for rejected answer
// instead of failing.
func TestSkippedEscalationServesBestEffort(t *testing.T) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "s", Capability: 0.3,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "l", Capability: 0.95,
		Price: token.Price{InputPer1K: 30000, OutputPer1K: 60000}, Obs: reg})
	c := &Cascade{Models: []llm.Model{small, large}, Decide: Threshold{Tau: 0.99},
		Breakers: trippedSet(t, reg, "l"), Obs: reg}

	resp, tr, err := c.Complete(context.Background(), llm.Request{
		Prompt: "q", Gold: "g", Wrong: "w", Difficulty: 0.3,
	})
	if err != nil {
		t.Fatalf("best-effort serve failed: %v", err)
	}
	if resp.Model != "s" {
		t.Errorf("served by %q, want the surviving small tier", resp.Model)
	}
	if len(tr.Steps) != 1 || !tr.Steps[0].Accepted {
		t.Errorf("trace = %+v, want the rejected step force-accepted", tr)
	}
	snap := reg.Snapshot()
	if snap["cascade_forced_accept_total"] != 1 {
		t.Errorf("forced accepts = %v", snap["cascade_forced_accept_total"])
	}
	if snap[`cascade_tier_skipped_total{model="l"}`] != 1 {
		t.Errorf("skips = %v", snap[`cascade_tier_skipped_total{model="l"}`])
	}
}

// TestAllTiersOpenErrors: when every tier's breaker rejects, the cascade
// returns ErrAllTiersOpen without attempting any model.
func TestAllTiersOpenErrors(t *testing.T) {
	reg := obs.NewRegistry()
	small := llm.NewSim(llm.SimConfig{Name: "s", Capability: 0.3, Obs: reg})
	large := llm.NewSim(llm.SimConfig{Name: "l", Capability: 0.95, Obs: reg})
	c := &Cascade{Models: []llm.Model{small, large}, Decide: Threshold{Tau: 0.62},
		Breakers: trippedSet(t, reg, "s", "l"), Obs: reg}

	_, tr, err := c.Complete(context.Background(), llm.Request{Prompt: "q", Gold: "g"})
	if !errors.Is(err, ErrAllTiersOpen) {
		t.Fatalf("err = %v, want ErrAllTiersOpen", err)
	}
	if len(tr.Steps) != 0 || tr.TotalCost != 0 {
		t.Errorf("trace = %+v, want nothing attempted", tr)
	}
	if got := reg.Snapshot()[`cascade_errors_total{model="none"}`]; got != 1 {
		t.Errorf("errors{none} = %v", got)
	}
}

// TestBreakerIgnoresClientCancellation: a canceled client context must not
// count as tier failure evidence.
func TestBreakerIgnoresClientCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	bs := resilience.NewBreakerSet(resilience.BreakerConfig{
		Window: 4, MinSamples: 1, FailureThreshold: 0.01, Cooldown: time.Hour, Obs: reg,
	})
	c := &Cascade{Models: []llm.Model{errModel{"c", context.Canceled}},
		Decide: Threshold{Tau: 0.5}, Breakers: bs, Obs: reg}
	if _, _, err := c.Complete(context.Background(), llm.Request{Prompt: "q"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st := bs.States()["c"]; st != resilience.Closed {
		t.Errorf("breaker = %v after a client cancellation, want closed", st)
	}
	// A genuinely transient failure does count (MinSamples 1 trips at once).
	c.Models = []llm.Model{errModel{"c", llm.ErrTransient}}
	c.Complete(context.Background(), llm.Request{Prompt: "q"})
	if st := bs.States()["c"]; st != resilience.Open {
		t.Errorf("breaker = %v after a real failure, want open", st)
	}
}
