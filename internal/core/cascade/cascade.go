// Package cascade implements the LLM cascade of the paper's Section III-B1
// and Figure 6: a query is sent to a sequence of models ordered from small
// and cheap to large and expensive, and a decision model determines after
// each attempt whether the answer is acceptable or a larger model is needed.
package cascade

import (
	"context"
	"errors"
	"math"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/token"
)

// Decision judges whether a model's response is acceptable or the cascade
// should escalate.
type Decision interface {
	// Accept reports whether resp is good enough to return.
	Accept(resp llm.Response) bool
}

// Threshold is the simplest decision model: accept when confidence reaches
// Tau.
type Threshold struct{ Tau float64 }

// Accept implements Decision.
func (t Threshold) Accept(resp llm.Response) bool { return resp.Confidence >= t.Tau }

// Logistic is a trained decision model: logistic regression over the
// response confidence, fit on labeled (confidence, correct) pairs collected
// from a calibration run. It realizes the paper's "a decision model can be
// trained to determine whether a more expensive and larger LLM is needed".
type Logistic struct {
	// w and b are the regression parameters over [confidence].
	W, B float64
	// MinP is the acceptance probability cutoff.
	MinP float64
}

// Accept implements Decision.
func (l Logistic) Accept(resp llm.Response) bool {
	p := 1 / (1 + math.Exp(-(l.W*resp.Confidence + l.B)))
	return p >= l.MinP
}

// TrainLogistic fits a one-feature logistic regression with gradient
// descent on (confidence, correct) pairs. It is deliberately tiny — the
// decision model needs to be far cheaper than the models it gates.
func TrainLogistic(confs []float64, correct []bool, epochs int, lr float64) Logistic {
	w, b := 0.0, 0.0
	n := len(confs)
	if n == 0 {
		return Logistic{MinP: 0.5}
	}
	for e := 0; e < epochs; e++ {
		var gw, gb float64
		for i := 0; i < n; i++ {
			y := 0.0
			if correct[i] {
				y = 1
			}
			p := 1 / (1 + math.Exp(-(w*confs[i] + b)))
			gw += (p - y) * confs[i]
			gb += (p - y)
		}
		w -= lr * gw / float64(n)
		b -= lr * gb / float64(n)
	}
	return Logistic{W: w, B: b, MinP: 0.5}
}

// CostAware is an economic decision model: it accepts the current answer
// unless the expected value of escalating exceeds the next model's price.
// Escalation is worth roughly (1 − confidence) · ValueOfCorrect — the
// probability the current answer is wrong times what a correct answer is
// worth — against NextCallCost, the price of trying the next tier. This is
// the decision rule a production cascade with per-query value annotations
// runs, generalizing a fixed confidence threshold.
type CostAware struct {
	// ValueOfCorrect is the worth of a correct answer, in micro-dollars.
	ValueOfCorrect token.Cost
	// NextCallCost estimates the next tier's call price, in micro-dollars.
	NextCallCost token.Cost
}

// Accept implements Decision.
func (c CostAware) Accept(resp llm.Response) bool {
	expectedGain := (1 - resp.Confidence) * float64(c.ValueOfCorrect)
	return expectedGain <= float64(c.NextCallCost)
}

// Step records one attempted model inside a cascade run.
type Step struct {
	Model      string
	Confidence float64
	Accepted   bool
	Cost       token.Cost
}

// Trace describes how one query moved through the cascade.
type Trace struct {
	Steps []Step
	// TotalCost sums the cost of every attempted model (escalation pays for
	// the failed attempts too, as with real APIs).
	TotalCost token.Cost
}

// Submitter routes a model call through a batching scheduler instead of
// invoking the model directly. *sched.Scheduler implements it.
type Submitter interface {
	// Has reports whether the scheduler manages the named model.
	Has(model string) bool
	// Submit enqueues the request for the named model and blocks until
	// its batch is served.
	Submit(ctx context.Context, model string, req llm.Request) (llm.Response, error)
}

// Cascade is an ordered model chain with a decision model.
type Cascade struct {
	Models []llm.Model
	Decide Decision
	// Breakers, when non-nil, holds one circuit breaker per model tier;
	// Complete consults it before each tier and skips tripped ones, so a
	// dying model stops failing whole cascades after its breaker opens.
	Breakers *resilience.BreakerSet
	// Sched, when non-nil, receives each tier's call for models it
	// manages, so concurrent cascades share micro-batches instead of
	// calling tiers one request at a time. Tiers unknown to the
	// scheduler still go direct.
	Sched Submitter
	// ExitThreshold arms mid-generation early exit for streamed runs
	// (CompleteStream): once a non-final tier has emitted ExitMinChunks
	// chunks, a chunk confidence below this threshold aborts the tier and
	// escalates immediately, billing only the chunks already emitted.
	// Zero disables early exit. Choose a value below the accept
	// threshold: collapse, not mere mediocrity, should trigger an abort.
	ExitThreshold float64
	// ExitMinChunks is the minimum chunks a tier streams before the exit
	// rule applies. Zero means DefaultExitMinChunks.
	ExitMinChunks int
	// Obs receives the cascade's step/escalation/error counters. Nil means
	// obs.Default.
	Obs *obs.Registry
	// Log receives tier-attempt/skip/escalation lifecycle events. Nil
	// means obs.DefaultLogger.
	Log *obs.Logger
}

// step invokes one tier, through the scheduler when it manages the
// model and directly otherwise. A scheduler that closed between the Has
// check and the submit degrades to a direct call rather than failing
// the request.
func (c *Cascade) step(ctx context.Context, m llm.Model, req llm.Request) (llm.Response, error) {
	if c.Sched != nil && c.Sched.Has(m.Name()) {
		resp, err := c.Sched.Submit(ctx, m.Name(), req)
		if !errors.Is(err, sched.ErrClosed) {
			return resp, err
		}
	}
	return m.Complete(ctx, req)
}

// reg returns the effective metrics registry.
func (c *Cascade) reg() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default
}

// logger returns the effective event logger.
func (c *Cascade) logger() *obs.Logger {
	if c.Log != nil {
		return c.Log
	}
	return obs.DefaultLogger
}

// ErrNoModels is returned when a cascade has no models.
var ErrNoModels = errors.New("cascade: no models configured")

// ErrAllTiersOpen is returned when every tier's circuit breaker rejected
// the request — nothing was even attempted.
var ErrAllTiersOpen = errors.New("cascade: every tier's circuit breaker is open")

// New builds a cascade over models (cheapest first) with the given decision
// model.
func New(decide Decision, models ...llm.Model) *Cascade {
	return &Cascade{Models: models, Decide: decide}
}

// Complete runs the request through the cascade. The final model's answer
// is always accepted (there is nothing larger to escalate to). Tiers whose
// circuit breaker is open are skipped; when a skipped final tier leaves
// only a rejected answer, that answer is served best-effort rather than
// failing the request.
func (c *Cascade) Complete(ctx context.Context, req llm.Request) (llm.Response, Trace, error) {
	if len(c.Models) == 0 {
		return llm.Response{}, Trace{}, ErrNoModels
	}
	reg := c.reg()
	lg := c.logger()
	var tr Trace
	var last llm.Response
	served := false
	for i, m := range c.Models {
		stepCtx, sp := obs.StartSpan(ctx, "cascade.step")
		sp.SetAttr("model", m.Name())
		sp.SetAttr("tier", i)
		if c.Breakers != nil && !c.Breakers.Allow(m.Name()) {
			sp.SetAttr("outcome", "skipped")
			sp.End()
			reg.Counter("cascade_tier_skipped_total", "model", m.Name()).Inc()
			lg.Event(ctx, obs.Warn, "cascade_tier_skip", "model", m.Name(), "tier", i)
			continue
		}
		lg.Event(ctx, obs.Debug, "cascade_tier_attempt", "model", m.Name(), "tier", i)
		resp, err := c.step(stepCtx, m, req)
		if c.Breakers != nil && !errors.Is(err, context.Canceled) {
			// Client cancellations say nothing about the tier's health.
			c.Breakers.Record(m.Name(), err == nil)
		}
		if err != nil {
			sp.SetAttr("outcome", "error")
			sp.End()
			reg.Counter("cascade_errors_total", "model", m.Name()).Inc()
			reg.Counter("cascade_escalations_total").Add(int64(tr.Escalations()))
			lg.Event(ctx, obs.Warn, "cascade_tier_error", "model", m.Name(), "tier", i, "error", err.Error())
			return llm.Response{}, tr, err
		}
		last = resp
		tr.TotalCost += resp.Cost
		final := i == len(c.Models)-1
		accepted := final || c.Decide.Accept(resp)
		outcome := "reject"
		if accepted {
			outcome = "accept"
		}
		reg.Counter("cascade_steps_total", "model", m.Name(), "outcome", outcome).Inc()
		sp.SetAttr("confidence", resp.Confidence)
		sp.SetAttr("outcome", outcome)
		sp.SetAttr("tokens_in", resp.InputTokens)
		sp.SetAttr("tokens_out", resp.OutputTokens)
		sp.SetAttr("cost_microusd", int64(resp.Cost))
		sp.End()
		tr.Steps = append(tr.Steps, Step{
			Model:      m.Name(),
			Confidence: resp.Confidence,
			Accepted:   accepted,
			Cost:       resp.Cost,
		})
		if accepted {
			served = true
			break
		}
		lg.Event(ctx, obs.Info, "cascade_escalate", "from", m.Name(), "tier", i, "confidence", resp.Confidence)
	}
	if len(tr.Steps) == 0 {
		reg.Counter("cascade_errors_total", "model", "none").Inc()
		return llm.Response{}, tr, ErrAllTiersOpen
	}
	if !served {
		// The escalation target was skipped (breaker open): serve the last
		// rejected answer instead of failing a request we already paid for.
		tr.Steps[len(tr.Steps)-1].Accepted = true
		reg.Counter("cascade_forced_accept_total").Inc()
	}
	reg.Counter("cascade_requests_total").Inc()
	reg.Counter("cascade_escalations_total").Add(int64(tr.Escalations()))
	reg.Counter("cascade_final_model_total", "model", last.Model).Inc()
	return last, tr, nil
}

// Escalations reports how many models beyond the first were consulted.
func (t Trace) Escalations() int {
	if len(t.Steps) == 0 {
		return 0
	}
	return len(t.Steps) - 1
}
