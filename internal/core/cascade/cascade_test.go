package cascade

import (
	"context"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func family() llm.Family { return llm.DefaultFamily() }

func models(f llm.Family) []llm.Model {
	out := make([]llm.Model, len(f))
	for i, m := range f {
		out[i] = m
	}
	return out
}

func qaRequest(it workload.QAItem) llm.Request {
	return llm.Request{
		Task:       llm.TaskQA,
		Prompt:     "Context: " + it.ContextFor() + "\nQ: " + it.Question,
		Gold:       it.Answer,
		Wrong:      it.Distractor,
		Difficulty: it.Difficulty,
	}
}

func TestEmptyCascade(t *testing.T) {
	c := New(Threshold{0.5})
	if _, _, err := c.Complete(context.Background(), llm.Request{Prompt: "x"}); err != ErrNoModels {
		t.Errorf("err = %v, want ErrNoModels", err)
	}
}

func TestEasyQueryStopsEarly(t *testing.T) {
	f := family()
	c := New(Threshold{0.6}, models(f)...)
	resp, tr, err := c.Complete(context.Background(), llm.Request{
		Prompt: "label this obvious case", Gold: "yes", Difficulty: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 1 || tr.Steps[0].Model != llm.NameSmall {
		t.Errorf("easy query used %d steps: %+v", len(tr.Steps), tr.Steps)
	}
	if !resp.Correct {
		t.Error("easy query answered wrong")
	}
}

func TestHardQueryEscalates(t *testing.T) {
	f := family()
	c := New(Threshold{0.6}, models(f)...)
	_, tr, err := c.Complete(context.Background(), llm.Request{
		Prompt: "a very hard multi hop question", Gold: "g", Wrong: "w", Difficulty: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Escalations() == 0 {
		t.Errorf("hard query did not escalate: %+v", tr.Steps)
	}
	// Escalation pays for every attempt.
	var sum token.Cost
	for _, s := range tr.Steps {
		sum += s.Cost
	}
	if sum != tr.TotalCost {
		t.Errorf("trace cost %v != step sum %v", tr.TotalCost, sum)
	}
}

func TestFinalModelAlwaysAccepts(t *testing.T) {
	f := family()
	// Impossible threshold: everything escalates to the top model, which
	// must still answer.
	c := New(Threshold{1.1}, models(f)...)
	resp, tr, err := c.Complete(context.Background(), llm.Request{
		Prompt: "anything", Gold: "g", Wrong: "w", Difficulty: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 3 || !tr.Steps[2].Accepted {
		t.Errorf("trace = %+v", tr.Steps)
	}
	if resp.Model != llm.NameLarge {
		t.Errorf("final answer from %s", resp.Model)
	}
}

// The Table I reproduction shape: cascade accuracy ≈ top-model accuracy at a
// fraction of the cost.
func TestCascadeMatchesLargeModelCheaper(t *testing.T) {
	set := workload.GenQA(1, 200)
	f := family()
	c := New(Threshold{0.62}, models(f)...)

	var cascadeCorrect int
	var cascadeCost token.Cost
	for _, it := range set.Items {
		resp, tr, err := c.Complete(context.Background(), qaRequest(it))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Correct {
			cascadeCorrect++
		}
		cascadeCost += tr.TotalCost
	}

	large := f.Largest()
	var largeCorrect int
	var largeCost token.Cost
	for _, it := range set.Items {
		resp, err := large.Complete(context.Background(), qaRequest(it))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Correct {
			largeCorrect++
		}
		largeCost += resp.Cost
	}

	accC := float64(cascadeCorrect) / float64(len(set.Items))
	accL := float64(largeCorrect) / float64(len(set.Items))
	if accC < accL-0.07 {
		t.Errorf("cascade accuracy %.3f too far below gpt-4 %.3f", accC, accL)
	}
	if cascadeCost >= largeCost/2 {
		t.Errorf("cascade cost %v not well below gpt-4-only %v", cascadeCost, largeCost)
	}
}

func TestTrainLogisticSeparates(t *testing.T) {
	// Synthetic calibration: high confidence mostly correct.
	var confs []float64
	var correct []bool
	for i := 0; i < 200; i++ {
		c := float64(i) / 200
		confs = append(confs, c)
		correct = append(correct, c > 0.55)
	}
	d := TrainLogistic(confs, correct, 500, 0.5)
	if d.Accept(llm.Response{Confidence: 0.9}) != true {
		t.Error("trained model rejects high confidence")
	}
	if d.Accept(llm.Response{Confidence: 0.1}) != false {
		t.Error("trained model accepts low confidence")
	}
}

func TestTrainLogisticEmpty(t *testing.T) {
	d := TrainLogistic(nil, nil, 10, 0.1)
	// Degenerate model must still be usable.
	_ = d.Accept(llm.Response{Confidence: 0.5})
}

func TestLogisticCascadeEndToEnd(t *testing.T) {
	// Calibrate the decision model on one workload slice, evaluate on
	// another, and require the same "matches large model, cheaper" shape.
	f := family()
	calib := workload.GenQA(5, 150)
	small := f[0]
	var confs []float64
	var correct []bool
	for _, it := range calib.Items {
		r, _ := small.Complete(context.Background(), qaRequest(it))
		confs = append(confs, r.Confidence)
		correct = append(correct, r.Correct)
	}
	d := TrainLogistic(confs, correct, 800, 0.8)
	d.MinP = 0.75

	eval := workload.GenQA(6, 150)
	c := New(d, models(f)...)
	var ok int
	for _, it := range eval.Items {
		resp, _, err := c.Complete(context.Background(), qaRequest(it))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Correct {
			ok++
		}
	}
	if acc := float64(ok) / float64(len(eval.Items)); acc < 0.8 {
		t.Errorf("learned-decision cascade accuracy %.3f too low", acc)
	}
}

func BenchmarkCascade(b *testing.B) {
	set := workload.GenQA(2, 64)
	c := New(Threshold{0.62}, models(family())...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := set.Items[i%len(set.Items)]
		if _, _, err := c.Complete(context.Background(), qaRequest(it)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCostAwareDecision(t *testing.T) {
	// Cheap escalation + valuable answers: escalate on any real doubt.
	eager := CostAware{ValueOfCorrect: 1000000, NextCallCost: 100}
	if eager.Accept(llm.Response{Confidence: 0.9}) {
		t.Error("high-value task accepted a 10% wrong-risk answer over a cheap escalation")
	}
	// Expensive escalation + low-value answers: accept even shaky answers.
	frugal := CostAware{ValueOfCorrect: 100, NextCallCost: 100000}
	if !frugal.Accept(llm.Response{Confidence: 0.3}) {
		t.Error("low-value task escalated despite prohibitive cost")
	}
}

func TestCostAwareCascadeTradesAccuracyForValue(t *testing.T) {
	set := workload.GenQA(9, 150)
	run := func(value token.Cost) (acc float64, cost token.Cost) {
		f := family()
		// Approximate next-tier call price from the mid tier at ~700 tokens.
		c := New(CostAware{ValueOfCorrect: value, NextCallCost: f[1].Price().ForTokens(700, 10)}, models(f)...)
		correct := 0
		for _, it := range set.Items {
			resp, tr, err := c.Complete(context.Background(), qaRequest(it))
			if err != nil {
				t.Fatal(err)
			}
			if resp.Correct {
				correct++
			}
			cost += tr.TotalCost
		}
		return float64(correct) / float64(len(set.Items)), cost
	}
	accCheap, costCheap := run(800)     // answers worth ~$0.0008: rarely worth escalating
	accDear, costDear := run(100000000) // answers worth ~$100: escalate on any doubt
	if accDear <= accCheap {
		t.Errorf("valuing answers more did not raise accuracy: %.3f vs %.3f", accDear, accCheap)
	}
	if costDear <= costCheap {
		t.Errorf("valuing answers more did not raise spend: %v vs %v", costDear, costCheap)
	}
}
