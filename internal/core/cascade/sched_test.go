package cascade

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/token"
)

func schedOver(f llm.Family) *sched.Scheduler {
	batchables := make([]llm.BatchModel, len(f))
	for i, m := range f {
		batchables[i] = m
	}
	return sched.New(sched.Config{
		MaxBatch: 8,
		MaxWait:  time.Millisecond,
		Obs:      obs.NewRegistry(),
	}, batchables...)
}

// A cascade routed through the scheduler must behave exactly like the
// direct cascade — same answers, same escalations, same per-trace costs
// — and the summed trace costs must match the family meters.
func TestCascadeThroughSchedulerMatchesDirect(t *testing.T) {
	reqs := []llm.Request{
		{Prompt: "label this obvious case", Gold: "yes", Difficulty: 0.02},
		{Prompt: "a very hard multi hop question", Gold: "g", Wrong: "w", Difficulty: 0.9},
		{Prompt: "a middling question about joins", Gold: "g", Wrong: "w", Difficulty: 0.5},
	}

	direct := New(Threshold{0.6}, models(family())...)
	var wantResp []llm.Response
	var wantCost []token.Cost
	for _, r := range reqs {
		resp, tr, err := direct.Complete(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		wantResp = append(wantResp, resp)
		wantCost = append(wantCost, tr.TotalCost)
	}

	f := family()
	s := schedOver(f)
	defer s.Close()
	c := New(Threshold{0.6}, models(f)...)
	c.Sched = s
	var total token.Cost
	for i, r := range reqs {
		resp, tr, err := c.Complete(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Text != wantResp[i].Text || resp.Model != wantResp[i].Model {
			t.Errorf("req %d: scheduled answer %q from %s, direct %q from %s",
				i, resp.Text, resp.Model, wantResp[i].Text, wantResp[i].Model)
		}
		if tr.TotalCost != wantCost[i] {
			t.Errorf("req %d: scheduled cost %v, direct %v", i, tr.TotalCost, wantCost[i])
		}
		total += tr.TotalCost
	}
	if got := f.TotalSpend(); got != total {
		t.Errorf("family meters %v, trace costs sum to %v", got, total)
	}
	if s.Stats().BatchedItems == 0 {
		t.Error("no cascade step went through the scheduler")
	}
}

// Concurrent cascades share scheduler batches, and a closed scheduler
// degrades to direct model calls instead of failing requests.
func TestConcurrentCascadesShareBatchesAndSurviveClose(t *testing.T) {
	f := family()
	s := schedOver(f)
	c := New(Threshold{0.6}, models(f)...)
	c.Sched = s

	const n = 40
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := c.Complete(context.Background(), llm.Request{
				Prompt: "concurrent question", Gold: "g", Wrong: "w", Difficulty: 0.3,
			})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Batches >= st.BatchedItems {
		t.Errorf("no sharing: %d batches for %d items", st.Batches, st.BatchedItems)
	}

	s.Close()
	resp, _, err := c.Complete(context.Background(), llm.Request{
		Prompt: "after close", Gold: "g", Difficulty: 0.1,
	})
	if err != nil {
		t.Fatalf("cascade failed after scheduler close: %v", err)
	}
	if resp.Text != "g" {
		t.Errorf("post-close answer %q", resp.Text)
	}
	if _, err := s.Submit(context.Background(), llm.NameSmall, llm.Request{Prompt: "x"}); !errors.Is(err, sched.ErrClosed) {
		t.Errorf("closed scheduler submit: %v", err)
	}
}
