package cascade

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/token"
)

// streamTier builds one tier with a private metrics registry so tests
// can compare meters across independent model instances.
func streamTier(name string, capability float64, in, out token.Cost) *llm.SimModel {
	return llm.NewSim(llm.SimConfig{
		Name:       name,
		Capability: capability,
		Price:      token.Price{InputPer1K: in, OutputPer1K: out},
		Obs:        obs.NewRegistry(),
	})
}

func drainRun(t *testing.T, rs *RunStream) []StreamChunk {
	t.Helper()
	var chunks []StreamChunk
	for {
		ch, err := rs.Recv()
		if errors.Is(err, io.EOF) {
			return chunks
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		chunks = append(chunks, ch)
	}
}

// hardReq is a request the cheap tier reliably fails: its wrong answer
// is long enough to stream several chunks before (or after) the exit
// rule can trigger.
func hardReq() llm.Request {
	return llm.Request{
		Task:       llm.TaskQA,
		Prompt:     "which join order minimizes intermediate result size for the ten way star query",
		Gold:       "join the fact table last after filtering every dimension table first",
		Wrong:      "the answer could not be determined from the available statistics in the catalog",
		Difficulty: 0.9,
	}
}

// Without early exit, a streamed run bills exactly what Complete bills
// for the same request, tier for tier.
func TestCascadeStreamMatchesComplete(t *testing.T) {
	req := hardReq()

	mkCascade := func() (*Cascade, *llm.SimModel, *llm.SimModel) {
		cheap := streamTier("cheap", 0.2, 400, 400)
		strong := streamTier("strong", 0.95, 30000, 60000)
		c := New(Threshold{Tau: 0.62}, cheap, strong)
		c.Obs = obs.NewRegistry()
		c.Log = obs.NewLogger(obs.NewEventLog(16), obs.Debug, obs.NewRegistry())
		return c, cheap, strong
	}

	cRef, cheapRef, strongRef := mkCascade()
	respRef, trRef, err := cRef.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}

	cStr, cheapStr, strongStr := mkCascade()
	rs, err := cStr.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatalf("CompleteStream: %v", err)
	}
	chunks := drainRun(t, rs)
	resp, tr, err := rs.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	if resp.Text != respRef.Text || resp.Model != respRef.Model || resp.Cost != respRef.Cost {
		t.Fatalf("streamed result %+v != Complete result %+v", resp, respRef)
	}
	if tr.TotalCost != trRef.TotalCost || len(tr.Steps) != len(trRef.Steps) {
		t.Fatalf("streamed trace %+v != Complete trace %+v", tr, trRef)
	}
	var sum token.Cost
	var finalText string
	for _, ch := range chunks {
		sum += ch.Cost
		if ch.Restart {
			finalText = ""
		}
		finalText += ch.Text
	}
	if sum != tr.TotalCost {
		t.Fatalf("sum of chunk costs %d != trace total %d", sum, tr.TotalCost)
	}
	if finalText != resp.Text {
		t.Fatalf("reassembled final-tier text %q != %q", finalText, resp.Text)
	}
	if got, want := cheapStr.Meter(), cheapRef.Meter(); got != want {
		t.Fatalf("cheap tier meters differ: stream %+v vs complete %+v", got, want)
	}
	if got, want := strongStr.Meter(), strongRef.Meter(); got != want {
		t.Fatalf("strong tier meters differ: stream %+v vs complete %+v", got, want)
	}

	// Protocol shape: exactly one Final chunk, at the end; the strong
	// tier's first chunk is marked Restart.
	for i, ch := range chunks {
		if ch.Final != (i == len(chunks)-1) {
			t.Fatalf("chunk %d Final=%v", i, ch.Final)
		}
	}
	sawRestart := false
	for _, ch := range chunks {
		if ch.Restart {
			if ch.Tier != 1 || ch.Model != "strong" {
				t.Fatalf("restart chunk on wrong tier: %+v", ch)
			}
			sawRestart = true
		}
	}
	if !sawRestart {
		t.Fatal("expected a Restart chunk when the cascade escalated")
	}
}

// The tentpole invariant: early exit aborts the cheap tier
// mid-generation and bills strictly less than the cheap tier's
// full-generation cost, meter-exactly.
func TestCascadeStreamEarlyExitRefundMeterExact(t *testing.T) {
	req := hardReq()

	// Reference: what the cheap tier would bill if allowed to finish.
	refCheap := streamTier("cheap", 0.2, 400, 400)
	fullResp, err := refCheap.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}

	cheap := streamTier("cheap", 0.2, 400, 400)
	strong := streamTier("strong", 0.95, 30000, 60000)
	c := New(Threshold{Tau: 0.62}, cheap, strong)
	c.Obs = obs.NewRegistry()
	c.Log = obs.NewLogger(obs.NewEventLog(16), obs.Debug, obs.NewRegistry())
	c.ExitThreshold = 0.35

	rs, err := c.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatalf("CompleteStream: %v", err)
	}
	chunks := drainRun(t, rs)
	resp, tr, err := rs.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}

	if len(tr.Steps) != 2 {
		t.Fatalf("expected 2 steps (early exit + strong), got %+v", tr.Steps)
	}
	exit := tr.Steps[0]
	if exit.Accepted || exit.Model != "cheap" {
		t.Fatalf("unexpected first step %+v", exit)
	}
	if exit.Confidence >= c.ExitThreshold {
		t.Fatalf("exit step confidence %.3f not below threshold %.3f", exit.Confidence, c.ExitThreshold)
	}
	if exit.Cost >= fullResp.Cost {
		t.Fatalf("early-exited tier billed %d, full generation costs %d — no refund", exit.Cost, fullResp.Cost)
	}
	// Meter-exact: the cheap model's meter holds exactly the emitted
	// chunks, nothing more.
	if got := cheap.Meter().Spend; got != exit.Cost {
		t.Fatalf("cheap meter spend %d != early-exit step cost %d", got, exit.Cost)
	}
	var sum token.Cost
	cheapChunks := 0
	for _, ch := range chunks {
		sum += ch.Cost
		if ch.Model == "cheap" {
			cheapChunks++
			if ch.Final {
				t.Fatal("aborted cheap tier must not emit a Final chunk")
			}
		}
	}
	if sum != tr.TotalCost {
		t.Fatalf("sum of chunk costs %d != trace total %d", sum, tr.TotalCost)
	}
	if cheapChunks == 0 {
		t.Fatal("early exit should still forward the chunks that triggered it")
	}
	if resp.Model != "strong" {
		t.Fatalf("expected escalation to strong, got %q", resp.Model)
	}
	if got := strong.Meter().Spend; got != tr.Steps[1].Cost {
		t.Fatalf("strong meter spend %d != its step cost %d", got, tr.Steps[1].Cost)
	}
	if total := cheap.Meter().Spend + strong.Meter().Spend; total != tr.TotalCost {
		t.Fatalf("meters %d != trace total %d", total, tr.TotalCost)
	}
}

// Closing a run mid-stream stops billing at the delivered chunks.
func TestCascadeStreamCloseMidStream(t *testing.T) {
	cheap := streamTier("cheap", 0.2, 400, 400)
	strong := streamTier("strong", 0.95, 30000, 60000)
	c := New(Threshold{Tau: 0.62}, cheap, strong)
	c.Obs = obs.NewRegistry()
	c.Log = obs.NewLogger(obs.NewEventLog(16), obs.Debug, obs.NewRegistry())

	rs, err := c.CompleteStream(context.Background(), hardReq())
	if err != nil {
		t.Fatalf("CompleteStream: %v", err)
	}
	ch, err := rs.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := rs.Recv(); !errors.Is(err, llm.ErrStreamClosed) {
		t.Fatalf("Recv after Close: %v", err)
	}
	if _, _, err := rs.Result(); !errors.Is(err, llm.ErrStreamClosed) {
		t.Fatalf("Result after Close: %v", err)
	}
	if spent := cheap.Meter().Spend + strong.Meter().Spend; spent != ch.Cost {
		t.Fatalf("billed %d after aborting at one chunk costing %d", spent, ch.Cost)
	}
}

// Non-streaming tiers degrade to a single pre-billed chunk.
func TestCascadeStreamNonStreamTier(t *testing.T) {
	cheap := streamTier("cheap", 0.95, 400, 400)
	c := New(Threshold{Tau: 0.3}, opaqueModel{cheap})
	c.Obs = obs.NewRegistry()
	c.Log = obs.NewLogger(obs.NewEventLog(16), obs.Debug, obs.NewRegistry())

	req := llm.Request{Prompt: "easy question about a table", Gold: "a short answer", Difficulty: 0.1}
	rs, err := c.CompleteStream(context.Background(), req)
	if err != nil {
		t.Fatalf("CompleteStream: %v", err)
	}
	chunks := drainRun(t, rs)
	if len(chunks) != 1 || !chunks[0].Final {
		t.Fatalf("expected one final chunk from a non-stream tier, got %+v", chunks)
	}
	resp, tr, err := rs.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if chunks[0].Cost != resp.Cost || tr.TotalCost != resp.Cost {
		t.Fatalf("pre-billed chunk cost %d, resp %d, trace %d", chunks[0].Cost, resp.Cost, tr.TotalCost)
	}
}

// opaqueModel hides the stream capability of its inner model.
type opaqueModel struct{ inner *llm.SimModel }

func (o opaqueModel) Name() string        { return o.inner.Name() }
func (o opaqueModel) Capability() float64 { return o.inner.Capability() }
func (o opaqueModel) Price() token.Price  { return o.inner.Price() }
func (o opaqueModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return o.inner.Complete(ctx, req)
}

// With every breaker open the stream fails like Complete does.
func TestCascadeStreamAllTiersOpen(t *testing.T) {
	cheap := streamTier("cheap", 0.5, 400, 400)
	c := New(Threshold{Tau: 0.5}, cheap)
	c.Obs = obs.NewRegistry()
	c.Log = obs.NewLogger(obs.NewEventLog(16), obs.Debug, obs.NewRegistry())
	c.Breakers = resilience.NewBreakerSet(resilience.BreakerConfig{FailureThreshold: 1, MinSamples: 1})
	c.Breakers.Record("cheap", false)
	if c.Breakers.Allow("cheap") {
		t.Skip("breaker did not open; config drifted")
	}
	rs, err := c.CompleteStream(context.Background(), hardReq())
	if err != nil {
		t.Fatalf("CompleteStream: %v", err)
	}
	if _, err := rs.Recv(); !errors.Is(err, ErrAllTiersOpen) {
		t.Fatalf("Recv: %v, want ErrAllTiersOpen", err)
	}
	if _, _, err := rs.Result(); !errors.Is(err, ErrAllTiersOpen) {
		t.Fatalf("Result: %v, want ErrAllTiersOpen", err)
	}
}
