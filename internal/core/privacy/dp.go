// Package privacy implements the paper's Section III-D: differential
// privacy mechanisms for protecting training statistics, a federated
// fine-tuning simulation (FedAvg over heterogeneous clients, optionally
// with DP-SGD-style clipped and noised updates), and a membership-inference
// attack harness that quantifies how much the DP defense actually helps.
package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// Laplace draws Laplace(0, scale) noise from rng.
func Laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Gaussian draws N(0, sigma^2) noise from rng.
func Gaussian(rng *rand.Rand, sigma float64) float64 {
	return rng.NormFloat64() * sigma
}

// PrivateCount returns an epsilon-DP count via the Laplace mechanism
// (sensitivity 1).
func PrivateCount(rng *rand.Rand, trueCount int, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: non-positive epsilon")
	}
	return float64(trueCount) + Laplace(rng, 1/epsilon), nil
}

// PrivateMean returns an epsilon-DP mean of values clamped to [lo, hi].
// The sensitivity of a clamped mean over n values is (hi-lo)/n.
func PrivateMean(rng *rand.Rand, values []float64, lo, hi, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: non-positive epsilon")
	}
	if hi <= lo {
		return 0, fmt.Errorf("privacy: empty clamp range [%v, %v]", lo, hi)
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("privacy: no values")
	}
	var sum float64
	for _, v := range values {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		sum += v
	}
	mean := sum / float64(len(values))
	sens := (hi - lo) / float64(len(values))
	return mean + Laplace(rng, sens/epsilon), nil
}

// PrivateHistogram returns an epsilon-DP histogram over the given keys
// (parallel composition: each bin gets Laplace(1/epsilon) noise).
func PrivateHistogram(rng *rand.Rand, counts map[string]int, epsilon float64) (map[string]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("privacy: non-positive epsilon")
	}
	out := make(map[string]float64, len(counts))
	for k, c := range counts {
		out[k] = float64(c) + Laplace(rng, 1/epsilon)
	}
	return out, nil
}
