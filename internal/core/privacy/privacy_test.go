package privacy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestLaplaceZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	var sum, absSum float64
	for i := 0; i < n; i++ {
		v := Laplace(rng, 2.0)
		sum += v
		absSum += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.1 {
		t.Errorf("laplace mean %.3f, want ~0", mean)
	}
	// E|Laplace(b)| = b.
	if meanAbs := absSum / n; math.Abs(meanAbs-2.0) > 0.1 {
		t.Errorf("laplace mean abs %.3f, want ~2", meanAbs)
	}
}

func TestPrivateCountCloseAndNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	exact := 0
	for i := 0; i < 200; i++ {
		v, err := PrivateCount(rng, 100, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-100) > 20 {
			t.Errorf("count %v too far from 100", v)
		}
		if v == 100 {
			exact++
		}
	}
	if exact > 10 {
		t.Errorf("count returned exactly 100 %d times; noise missing", exact)
	}
	if _, err := PrivateCount(rng, 1, 0); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestPrivateMeanAccuracyVsEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 500)
	for i := range values {
		values[i] = 50 + 10*rng.NormFloat64()
	}
	errAt := func(eps float64) float64 {
		var s float64
		for i := 0; i < 100; i++ {
			v, err := PrivateMean(rng, values, 0, 100, eps)
			if err != nil {
				t.Fatal(err)
			}
			s += math.Abs(v - 50)
		}
		return s / 100
	}
	loose := errAt(0.1)
	tight := errAt(10)
	if tight >= loose {
		t.Errorf("higher epsilon not more accurate: eps=10 err %.3f vs eps=0.1 err %.3f", tight, loose)
	}
	if _, err := PrivateMean(rng, nil, 0, 1, 1); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := PrivateMean(rng, values, 1, 1, 1); err == nil {
		t.Error("empty clamp range accepted")
	}
}

func TestPrivateHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, err := PrivateHistogram(rng, map[string]int{"a": 100, "b": 5}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h["a"]-100) > 15 || math.Abs(h["b"]-5) > 15 {
		t.Errorf("histogram too noisy: %v", h)
	}
}

// flData builds a regression dataset from the AI4DB workload:
// features -> log execution time.
func flData(seed int64, n int) ([][]float64, []float64) {
	qs := workload.GenQueryWorkload(seed, n)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i, q := range qs {
		xs[i] = q.Features()
		ys[i] = math.Log1p(q.ExecTimeMS)
	}
	return xs, ys
}

func splitClients(xs [][]float64, ys []float64, sizes []int, epochs []int) []Client {
	var out []Client
	at := 0
	for i, sz := range sizes {
		out = append(out, Client{X: xs[at : at+sz], Y: ys[at : at+sz], LocalEpochs: epochs[i]})
		at += sz
	}
	return out
}

func TestFedAvgLearns(t *testing.T) {
	xs, ys := flData(7, 600)
	// Heterogeneous clients: different shard sizes and local compute.
	clients := splitClients(xs[:500], ys[:500], []int{250, 150, 100}, []int{1, 2, 3})
	global, err := FedAvg(clients, len(xs[0]), FedConfig{Rounds: 30, LR: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := xs[500:], ys[500:]
	mse := global.MSE(testX, testY)
	base := NewLinearModel(len(xs[0])).MSE(testX, testY)
	if mse >= base/2 {
		t.Errorf("FedAvg MSE %.3f not well below zero-model %.3f", mse, base)
	}
}

func TestFedAvgBeatsSmallestClientAlone(t *testing.T) {
	xs, ys := flData(9, 600)
	clients := splitClients(xs[:500], ys[:500], []int{450, 30, 20}, []int{1, 1, 1})
	global, err := FedAvg(clients, len(xs[0]), FedConfig{Rounds: 30, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The smallest client training alone on 20 points.
	solo := NewLinearModel(len(xs[0]))
	solo.SGD(rand.New(rand.NewSource(3)), clients[2].X, clients[2].Y, 0.01, 30)

	testX, testY := xs[500:], ys[500:]
	if global.MSE(testX, testY) >= solo.MSE(testX, testY) {
		t.Errorf("collaboration did not beat solo training: fed %.3f vs solo %.3f",
			global.MSE(testX, testY), solo.MSE(testX, testY))
	}
}

func TestDPNoiseDegradesUtilityMonotonically(t *testing.T) {
	xs, ys := flData(11, 600)
	clients := splitClients(xs[:500], ys[:500], []int{250, 250}, []int{1, 1})
	testX, testY := xs[500:], ys[500:]
	mseAt := func(sigma float64) float64 {
		g, err := FedAvg(clients, len(xs[0]), FedConfig{Rounds: 25, LR: 0.01, ClipNorm: 1, NoiseSigma: sigma, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return g.MSE(testX, testY)
	}
	clean := mseAt(0)
	heavy := mseAt(0.8)
	if heavy <= clean {
		t.Errorf("heavy DP noise did not cost utility: sigma=0.8 MSE %.3f vs clean %.3f", heavy, clean)
	}
}

func TestFedAvgErrors(t *testing.T) {
	if _, err := FedAvg(nil, 3, FedConfig{Rounds: 1}); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := FedAvg([]Client{{}}, 3, FedConfig{Rounds: 1}); err == nil {
		t.Error("empty clients accepted")
	}
}

func TestMembershipAttackAndDPDefense(t *testing.T) {
	xs, ys := flData(13, 400)
	// A member set small enough for the linear model to near-interpolate:
	// overfitting is what the attack exploits.
	memberX, memberY := xs[:6], ys[:6]
	nonX, nonY := xs[200:300], ys[200:300]

	// Undefended: heavy local training on the tiny member set.
	over := NewLinearModel(len(xs[0]))
	over.SGD(rand.New(rand.NewSource(5)), memberX, memberY, 0.05, 3000)
	atk := &MembershipAttack{Model: over}
	advPlain, _ := atk.Advantage(memberX, memberY, nonX, nonY)
	if gap := atk.LossGap(memberX, memberY, nonX, nonY); gap <= 0 {
		t.Fatalf("no overfitting signal (gap %.4f); attack scenario broken", gap)
	}
	if advPlain < 0.15 {
		t.Errorf("undefended attack advantage %.3f too small to study", advPlain)
	}

	// DP-defended federated training on the same members.
	clients := []Client{{X: memberX, Y: memberY, LocalEpochs: 3}}
	defended, err := FedAvg(clients, len(xs[0]), FedConfig{Rounds: 40, LR: 0.05, ClipNorm: 0.5, NoiseSigma: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	atkD := &MembershipAttack{Model: defended}
	advDP, _ := atkD.Advantage(memberX, memberY, nonX, nonY)
	if advDP >= advPlain {
		t.Errorf("DP did not reduce attack advantage: %.3f -> %.3f", advPlain, advDP)
	}
}

func TestAdvantageEdgeCases(t *testing.T) {
	atk := &MembershipAttack{Model: NewLinearModel(2)}
	if adv, _ := atk.Advantage(nil, nil, nil, nil); adv != 0 {
		t.Errorf("empty advantage = %v", adv)
	}
}

func BenchmarkFedAvgRound(b *testing.B) {
	xs, ys := flData(17, 500)
	clients := splitClients(xs, ys, []int{200, 200, 100}, []int{1, 1, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FedAvg(clients, len(xs[0]), FedConfig{Rounds: 1, LR: 0.01, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
