package privacy

import (
	"math"
	"sort"
)

// MembershipAttack is the loss-threshold membership-inference attack
// (Shokri et al., cited by the paper): an example with unusually low model
// loss is predicted to have been in the training set. Advantage is the
// standard TPR − FPR at the attacker's best threshold: 0 means the model
// leaks nothing, 1 means perfect membership recovery.
type MembershipAttack struct {
	Model *LinearModel
}

// lossOf computes the squared error of one example.
func (a *MembershipAttack) lossOf(x []float64, y float64) float64 {
	d := a.Model.Predict(x) - y
	return d * d
}

// Advantage sweeps every threshold over the combined loss distribution and
// returns the maximum TPR − FPR plus the threshold achieving it.
func (a *MembershipAttack) Advantage(memberX [][]float64, memberY []float64, nonX [][]float64, nonY []float64) (adv, threshold float64) {
	type pt struct {
		loss   float64
		member bool
	}
	var pts []pt
	for i, x := range memberX {
		pts = append(pts, pt{a.lossOf(x, memberY[i]), true})
	}
	for i, x := range nonX {
		pts = append(pts, pt{a.lossOf(x, nonY[i]), false})
	}
	if len(memberX) == 0 || len(nonX) == 0 {
		return 0, 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].loss < pts[j].loss })

	nm, nn := float64(len(memberX)), float64(len(nonX))
	tp, fp := 0.0, 0.0
	best, bestT := 0.0, 0.0
	for _, p := range pts {
		// Predicting "member" for loss <= p.loss.
		if p.member {
			tp++
		} else {
			fp++
		}
		if adv := tp/nm - fp/nn; adv > best {
			best = adv
			bestT = p.loss
		}
	}
	return best, bestT
}

// LossGap is the mean non-member loss minus mean member loss — the raw
// overfitting signal the attack exploits.
func (a *MembershipAttack) LossGap(memberX [][]float64, memberY []float64, nonX [][]float64, nonY []float64) float64 {
	mean := func(xs [][]float64, ys []float64) float64 {
		if len(xs) == 0 {
			return math.NaN()
		}
		var s float64
		for i, x := range xs {
			s += a.lossOf(x, ys[i])
		}
		return s / float64(len(xs))
	}
	return mean(nonX, nonY) - mean(memberX, memberY)
}
