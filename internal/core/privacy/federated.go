package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// LinearModel is a linear regressor — the stand-in for the fine-tunable
// model head in the federated LLM fine-tuning scenario (full LLM weights
// never leave this repository's simulation, but the optimization dynamics
// FedAvg must handle — heterogeneous clients, clipped noisy updates — are
// identical for a linear head).
type LinearModel struct {
	W []float64
	B float64
}

// NewLinearModel returns a zero model of the given feature dimension.
func NewLinearModel(dim int) *LinearModel {
	return &LinearModel{W: make([]float64, dim)}
}

// Clone deep-copies the model.
func (m *LinearModel) Clone() *LinearModel {
	w := make([]float64, len(m.W))
	copy(w, m.W)
	return &LinearModel{W: w, B: m.B}
}

// Predict returns the model output for one feature vector.
func (m *LinearModel) Predict(x []float64) float64 {
	out := m.B
	for i, w := range m.W {
		out += w * x[i]
	}
	return out
}

// MSE is the mean squared error over a dataset.
func (m *LinearModel) MSE(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i, x := range xs {
		d := m.Predict(x) - ys[i]
		s += d * d
	}
	return s / float64(len(xs))
}

// SGD runs epochs of stochastic gradient descent in place.
func (m *LinearModel) SGD(rng *rand.Rand, xs [][]float64, ys []float64, lr float64, epochs int) {
	n := len(xs)
	if n == 0 {
		return
	}
	for e := 0; e < epochs; e++ {
		perm := rng.Perm(n)
		for _, i := range perm {
			pred := m.Predict(xs[i])
			g := pred - ys[i]
			for j := range m.W {
				m.W[j] -= lr * g * xs[i][j]
			}
			m.B -= lr * g
		}
	}
}

// Client is one federated participant with a local shard. Heterogeneity —
// differing shard sizes, label noise and compute (local epochs) — is the
// design difficulty the paper highlights.
type Client struct {
	X           [][]float64
	Y           []float64
	LocalEpochs int
}

// FedConfig parameterizes federated training.
type FedConfig struct {
	Rounds int
	LR     float64
	// ClipNorm bounds each client update's L2 norm (0 disables clipping).
	ClipNorm float64
	// NoiseSigma is the DP noise multiplier applied to clipped updates
	// (0 disables noise). Noise std per coordinate = NoiseSigma * ClipNorm.
	NoiseSigma float64
	Seed       int64
}

// FedAvg trains a global model by federated averaging. With ClipNorm and
// NoiseSigma set, updates are clipped and Gaussian-noised — the DP-SGD
// defense evaluated by the membership-inference harness.
func FedAvg(clients []Client, dim int, cfg FedConfig) (*LinearModel, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("privacy: no clients")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	global := NewLinearModel(dim)
	total := 0
	for _, c := range clients {
		total += len(c.X)
	}
	if total == 0 {
		return nil, fmt.Errorf("privacy: clients hold no data")
	}
	for round := 0; round < cfg.Rounds; round++ {
		aggW := make([]float64, dim)
		aggB := 0.0
		for _, c := range clients {
			if len(c.X) == 0 {
				continue
			}
			local := global.Clone()
			epochs := c.LocalEpochs
			if epochs <= 0 {
				epochs = 1
			}
			local.SGD(rng, c.X, c.Y, cfg.LR, epochs)

			// The update is the delta from the global model.
			dw := make([]float64, dim)
			for j := range dw {
				dw[j] = local.W[j] - global.W[j]
			}
			db := local.B - global.B

			if cfg.ClipNorm > 0 {
				norm := db * db
				for _, v := range dw {
					norm += v * v
				}
				norm = math.Sqrt(norm)
				if norm > cfg.ClipNorm {
					scale := cfg.ClipNorm / norm
					for j := range dw {
						dw[j] *= scale
					}
					db *= scale
				}
			}
			if cfg.NoiseSigma > 0 && cfg.ClipNorm > 0 {
				for j := range dw {
					dw[j] += Gaussian(rng, cfg.NoiseSigma*cfg.ClipNorm)
				}
				db += Gaussian(rng, cfg.NoiseSigma*cfg.ClipNorm)
			}

			weight := float64(len(c.X)) / float64(total)
			for j := range dw {
				aggW[j] += weight * dw[j]
			}
			aggB += weight * db
		}
		for j := range global.W {
			global.W[j] += aggW[j]
		}
		global.B += aggB
	}
	return global, nil
}
