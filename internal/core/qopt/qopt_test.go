package qopt

import (
	"context"
	"testing"

	"repro/internal/core/transform"
	"repro/internal/llm"
	"repro/internal/sqlkit"
	"repro/internal/token"
	"repro/internal/workload"
)

func midModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "gpt-3.5-turbo", Capability: 0.80,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

// paperQuestions mirrors the paper's Q1-Q5 from Section III-B1.
func paperQuestions() []string {
	return []string{
		"What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?",
		"What are the names of stadiums that had the most number of concerts in 2014?",
		"Show the names of stadiums that had the most number of sports meetings in 2015?",
		"Show the names of stadiums that had concerts in 2014 and had sports meetings in 2015?",
		"Show the names of stadiums that had concerts in 2014 but did not have sports meetings in 2015?",
	}
}

func TestDecomposePaperQ1(t *testing.T) {
	d, err := Decompose(paperQuestions()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subs) != 2 {
		t.Fatalf("subs = %d", len(d.Subs))
	}
	if d.Subs[0].Key != "had concerts in 2014" || d.Subs[1].Key != "had sports meetings in 2015" {
		t.Errorf("sub keys = %v", d.Subs)
	}
}

func TestSharedSubQueriesAcrossPaperBatch(t *testing.T) {
	// Figure 7: Q1 and Q2 share "concerts in 2014"; Q3 and Q4 share
	// "sports meetings in 2015"; etc. Across Q1..Q5, the unique sub-query
	// count must be well below the total.
	seen := map[string]int{}
	total := 0
	for _, q := range paperQuestions() {
		d, err := Decompose(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range d.Subs {
			seen[s.Key]++
			total++
		}
	}
	if len(seen) >= total {
		t.Errorf("no sharing: %d unique of %d", len(seen), total)
	}
	if seen["had concerts in 2014"] < 3 {
		t.Errorf("expected 'concerts in 2014' shared by Q1/Q4/Q5: %v", seen)
	}
}

func TestComposeConnectives(t *testing.T) {
	subs := []string{"SELECT a", "SELECT b"}
	for conn, want := range map[workload.Connective]string{
		workload.ConnOr:  "SELECT a UNION SELECT b",
		workload.ConnAnd: "SELECT a INTERSECT SELECT b",
		workload.ConnNot: "SELECT a EXCEPT SELECT b",
	} {
		p := transform.ParsedQuestion{Conn: conn, Atoms: make([]workload.Atom, 2)}
		if got := Compose(p, subs); got != want {
			t.Errorf("Compose(%v) = %q, want %q", conn, got, want)
		}
	}
	if Compose(transform.ParsedQuestion{}, nil) != "" {
		t.Error("empty compose not empty")
	}
}

// grade executes translated SQL against the DB and compares with gold.
func grade(t *testing.T, db *sqlkit.DB, res []Translated, golds map[string]string) (correct int) {
	t.Helper()
	for _, r := range res {
		got, err := db.Exec(r.SQL)
		if err != nil {
			t.Errorf("SQL for %q does not execute: %v", r.Question, err)
			continue
		}
		want, err := db.Exec(golds[r.Question])
		if err != nil {
			t.Fatalf("gold SQL broken: %v", err)
		}
		if got.EqualBag(want) {
			correct++
		}
	}
	return correct
}

func TestTableIIShape(t *testing.T) {
	// Decomposition must raise accuracy AND cut cost; combination must cut
	// cost further at equal accuracy — the Table II shape.
	qs := workload.GenNL2SQL(37, 60)
	questions := make([]string, len(qs))
	golds := map[string]string{}
	for i, q := range qs {
		questions[i] = q.Text
		golds[q.Text] = q.GoldSQL
	}
	db := workload.ConcertDB(37)

	run := func(f func(*Planner) ([]Translated, BatchStats, error)) (float64, BatchStats) {
		p := NewPlanner(transform.NewTranslator(midModel()))
		res, st, err := f(p)
		if err != nil {
			t.Fatal(err)
		}
		acc := float64(grade(t, db, res, golds)) / float64(len(res))
		return acc, st
	}

	accO, stO := run(func(p *Planner) ([]Translated, BatchStats, error) {
		return p.RunOrigin(context.Background(), questions)
	})
	accD, stD := run(func(p *Planner) ([]Translated, BatchStats, error) {
		return p.RunDecomposed(context.Background(), questions)
	})
	accC, stC := run(func(p *Planner) ([]Translated, BatchStats, error) {
		return p.RunDecomposedCombined(context.Background(), questions, 5)
	})

	if accD <= accO {
		t.Errorf("decomposition did not improve accuracy: %.3f vs %.3f", accD, accO)
	}
	if stD.Cost >= stO.Cost {
		t.Errorf("decomposition did not cut cost: %v vs %v", stD.Cost, stO.Cost)
	}
	if stC.Cost >= stD.Cost {
		t.Errorf("combination did not cut cost further: %v vs %v", stC.Cost, stD.Cost)
	}
	if accC < accD-0.08 {
		t.Errorf("combination hurt accuracy: %.3f vs %.3f", accC, accD)
	}
}

func TestSharingStats(t *testing.T) {
	p := NewPlanner(transform.NewTranslator(midModel()))
	_, st, err := p.RunDecomposed(context.Background(), paperQuestions())
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalSubQueries != 8 {
		t.Errorf("total subs = %d, want 8 (Q1:2 Q2:1 Q3:1 Q4:2 Q5:2)", st.TotalSubQueries)
	}
	if st.UniqueSubQueries >= st.TotalSubQueries {
		t.Errorf("no sharing: %d unique of %d", st.UniqueSubQueries, st.TotalSubQueries)
	}
	if st.CallsSaved() != st.TotalSubQueries-st.UniqueSubQueries {
		t.Error("CallsSaved inconsistent")
	}
	if st.LLMCalls != st.UniqueSubQueries {
		t.Errorf("calls %d != unique subs %d", st.LLMCalls, st.UniqueSubQueries)
	}
}

func TestCombinedBillingCheaper(t *testing.T) {
	questions := paperQuestions()
	pd := NewPlanner(transform.NewTranslator(midModel()))
	_, stD, err := pd.RunDecomposed(context.Background(), questions)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanner(transform.NewTranslator(midModel()))
	_, stC, err := pc.RunDecomposedCombined(context.Background(), questions, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stC.InputTokens >= stD.InputTokens {
		t.Errorf("combined input tokens %d not below decomposed %d", stC.InputTokens, stD.InputTokens)
	}
}

func TestDecomposedSQLExecutes(t *testing.T) {
	db := workload.ConcertDB(41)
	p := NewPlanner(transform.NewTranslator(midModel()))
	res, _, err := p.RunDecomposed(context.Background(), paperQuestions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if _, err := db.Exec(r.SQL); err != nil {
			t.Errorf("composed SQL fails for %q: %v\n%s", r.Question, err, r.SQL)
		}
	}
}

func TestPlanBatchSharingMakesDecompositionCheap(t *testing.T) {
	tr := transform.NewTranslator(midModel())
	decisions, err := PlanBatch(tr, paperQuestions())
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 5 {
		t.Fatalf("decisions = %d", len(decisions))
	}
	// All compound questions decompose; later questions whose atoms are
	// covered have tiny marginal cost.
	if !decisions[0].Decompose {
		t.Error("Q1 not decomposed")
	}
	if decisions[4].MarginalTokens >= decisions[0].MarginalTokens {
		t.Errorf("Q5 marginal %d should be below Q1 %d (atoms already covered)",
			decisions[4].MarginalTokens, decisions[0].MarginalTokens)
	}
}

func TestDecomposeError(t *testing.T) {
	if _, err := Decompose("nonsense question"); err == nil {
		t.Error("garbage decomposed")
	}
	p := NewPlanner(transform.NewTranslator(midModel()))
	if _, _, err := p.RunOrigin(context.Background(), []string{"nonsense"}); err == nil {
		t.Error("origin run accepted garbage")
	}
	if _, _, err := p.RunDecomposed(context.Background(), []string{"nonsense"}); err == nil {
		t.Error("decomposed run accepted garbage")
	}
}

func BenchmarkRunDecomposed(b *testing.B) {
	questions := paperQuestions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPlanner(transform.NewTranslator(midModel()))
		if _, _, err := p.RunDecomposed(context.Background(), questions); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunPlannedBetweenOriginAndDecomposed(t *testing.T) {
	qs := workload.GenNL2SQL(43, 60)
	questions := make([]string, len(qs))
	golds := map[string]string{}
	for i, q := range qs {
		questions[i] = q.Text
		golds[q.Text] = q.GoldSQL
	}
	db := workload.ConcertDB(43)

	po := NewPlanner(transform.NewTranslator(midModel()))
	_, stO, err := po.RunOrigin(context.Background(), questions)
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPlanner(transform.NewTranslator(midModel()))
	resP, stP, err := pp.RunPlanned(context.Background(), questions)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must be cheaper than always-whole translation and must
	// still produce executable SQL for every question.
	if stP.Cost >= stO.Cost {
		t.Errorf("planned cost %v not below origin %v", stP.Cost, stO.Cost)
	}
	correct := grade(t, db, resP, golds)
	if float64(correct)/float64(len(resP)) < 0.8 {
		t.Errorf("planned accuracy %.3f too low", float64(correct)/float64(len(resP)))
	}
}
