// Package qopt implements LLM query optimization for batched NL2SQL
// workloads — the paper's Section III-B1: query decomposition (compound
// questions split into atomic sub-queries, shared sub-queries translated
// once), query combination (shared prompt headers and few-shot examples
// billed once per batch), and a cost-aware planner that decides which
// queries to decompose so that the chosen (sub-)query set covers the batch
// at minimum token cost.
package qopt

import (
	"context"
	"strings"

	"repro/internal/core/transform"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/token"
	"repro/internal/workload"
)

// SubQuery is one atomic sub-question with its normalized sharing key.
type SubQuery struct {
	Phrase string
	Key    string
}

// Decomposition is a question split into sub-queries plus the composition
// connective — Figure 7's yellow boxes.
type Decomposition struct {
	Question string
	Parsed   transform.ParsedQuestion
	Subs     []SubQuery
}

// Decompose splits a question into its atomic sub-queries.
func Decompose(question string) (Decomposition, error) {
	p, err := transform.ParseQuestion(question)
	if err != nil {
		return Decomposition{}, err
	}
	d := Decomposition{Question: question, Parsed: p}
	for _, a := range p.Atoms {
		phrase := a.Phrase()
		d.Subs = append(d.Subs, SubQuery{Phrase: phrase, Key: strings.ToLower(phrase)})
	}
	return d, nil
}

// Compose reassembles the final SQL from translated sub-query SQL.
func Compose(p transform.ParsedQuestion, subSQL []string) string {
	if len(subSQL) == 0 {
		return ""
	}
	sql := subSQL[0]
	if len(subSQL) == 2 {
		op := map[workload.Connective]string{
			workload.ConnOr:  " UNION ",
			workload.ConnAnd: " INTERSECT ",
			workload.ConnNot: " EXCEPT ",
		}[p.Conn]
		sql += op + subSQL[1]
	}
	return sql
}

// Translated is one question's final SQL plus whether every underlying LLM
// answer was the gold one (used by harnesses for grading without
// re-execution; execution-based grading remains the primary protocol).
type Translated struct {
	Question string
	SQL      string
	AllGold  bool
}

// BatchStats aggregates what a strategy spent.
type BatchStats struct {
	LLMCalls     int
	InputTokens  int
	OutputTokens int
	Cost         token.Cost
	// UniqueSubQueries and TotalSubQueries quantify sharing (Figure 7).
	UniqueSubQueries int
	TotalSubQueries  int
}

// CallsSaved reports LLM calls avoided by sub-query sharing.
func (s BatchStats) CallsSaved() int { return s.TotalSubQueries - s.UniqueSubQueries }

// Planner executes a batch of NL questions under one of the three
// strategies Table II compares.
type Planner struct {
	Translator *transform.Translator
	// Obs receives per-strategy call/token/cost/savings counters. Nil means
	// obs.Default.
	Obs *obs.Registry
}

// NewPlanner wraps a translator.
func NewPlanner(tr *transform.Translator) *Planner { return &Planner{Translator: tr} }

func addResp(st *BatchStats, resp llm.Response) {
	st.LLMCalls++
	st.InputTokens += resp.InputTokens
	st.OutputTokens += resp.OutputTokens
	st.Cost += resp.Cost
}

// observe records a finished (or failed) batch's spend and savings under
// the strategy label and closes its span. Called via defer so partial
// spend on an errored batch is still accounted.
func (p *Planner) observe(strategy string, st *BatchStats, sp *obs.Span) {
	reg := p.Obs
	if reg == nil {
		reg = obs.Default
	}
	reg.Counter("qopt_batches_total", "strategy", strategy).Inc()
	reg.Counter("qopt_llm_calls_total", "strategy", strategy).Add(int64(st.LLMCalls))
	reg.Counter("qopt_tokens_total", "strategy", strategy, "direction", "input").Add(int64(st.InputTokens))
	reg.Counter("qopt_tokens_total", "strategy", strategy, "direction", "output").Add(int64(st.OutputTokens))
	reg.Counter("qopt_cost_microusd_total", "strategy", strategy).Add(int64(st.Cost))
	reg.Counter("qopt_calls_saved_total", "strategy", strategy).Add(int64(st.CallsSaved()))
	sp.SetAttr("llm_calls", st.LLMCalls)
	sp.SetAttr("cost_microusd", int64(st.Cost))
	sp.SetAttr("calls_saved", st.CallsSaved())
	sp.End()
}

// RunOrigin translates each question with one whole-query LLM call — the
// Table II "Origin" column.
func (p *Planner) RunOrigin(ctx context.Context, questions []string) ([]Translated, BatchStats, error) {
	var out []Translated
	var st BatchStats
	ctx, sp := obs.StartSpan(ctx, "qopt.batch")
	sp.SetAttr("strategy", "origin")
	defer p.observe("origin", &st, sp)
	for _, q := range questions {
		sql, resp, err := p.Translator.Translate(ctx, q)
		if err != nil {
			return nil, st, err
		}
		addResp(&st, resp)
		out = append(out, Translated{Question: q, SQL: sql, AllGold: resp.Correct})
	}
	return out, st, nil
}

// RunDecomposed decomposes every question, translates each *unique*
// sub-query once, and composes the final SQL — the Table II
// "Decomposition" column and the Figure 7 sharing mechanism.
func (p *Planner) RunDecomposed(ctx context.Context, questions []string) ([]Translated, BatchStats, error) {
	decomps := make([]Decomposition, len(questions))
	var st BatchStats
	ctx, sp := obs.StartSpan(ctx, "qopt.batch")
	sp.SetAttr("strategy", "decomposed")
	defer p.observe("decomposed", &st, sp)
	for i, q := range questions {
		d, err := Decompose(q)
		if err != nil {
			return nil, st, err
		}
		decomps[i] = d
		st.TotalSubQueries += len(d.Subs)
	}

	type subResult struct {
		sql  string
		gold bool
	}
	cache := map[string]subResult{}
	for _, d := range decomps {
		for _, s := range d.Subs {
			if _, ok := cache[s.Key]; ok {
				continue
			}
			sql, resp, err := p.Translator.TranslateAtomic(ctx, s.Phrase)
			if err != nil {
				return nil, st, err
			}
			addResp(&st, resp)
			st.UniqueSubQueries++
			cache[s.Key] = subResult{sql: sql, gold: resp.Correct}
		}
	}

	var out []Translated
	for _, d := range decomps {
		subSQL := make([]string, len(d.Subs))
		allGold := true
		for i, s := range d.Subs {
			r := cache[s.Key]
			subSQL[i] = r.sql
			allGold = allGold && r.gold
		}
		out = append(out, Translated{Question: d.Question, SQL: Compose(d.Parsed, subSQL), AllGold: allGold})
	}
	return out, st, nil
}

// RunDecomposedCombined is RunDecomposed plus query combination: unique
// sub-queries are grouped into batches that share one prompt header
// (instruction + few-shot examples), so the header's tokens are billed once
// per batch instead of once per sub-query — the Table II
// "Decomposition+Combination" column.
func (p *Planner) RunDecomposedCombined(ctx context.Context, questions []string, batchSize int) ([]Translated, BatchStats, error) {
	if batchSize <= 0 {
		batchSize = 5
	}
	decomps := make([]Decomposition, len(questions))
	var st BatchStats
	ctx, sp := obs.StartSpan(ctx, "qopt.batch")
	sp.SetAttr("strategy", "combined")
	defer p.observe("combined", &st, sp)
	for i, q := range questions {
		d, err := Decompose(q)
		if err != nil {
			return nil, st, err
		}
		decomps[i] = d
		st.TotalSubQueries += len(d.Subs)
	}

	// Collect unique sub-queries in first-seen order.
	var order []SubQuery
	seen := map[string]bool{}
	for _, d := range decomps {
		for _, s := range d.Subs {
			if seen[s.Key] {
				continue
			}
			seen[s.Key] = true
			order = append(order, s)
		}
	}
	st.UniqueSubQueries = len(order)

	type subResult struct {
		sql  string
		gold bool
	}
	cache := map[string]subResult{}
	header := p.Translator.Prompt("") // shared instruction + examples
	for start := 0; start < len(order); start += batchSize {
		end := start + batchSize
		if end > len(order) {
			end = len(order)
		}
		for i := start; i < end; i++ {
			s := order[i]
			// Combination billing: the first sub-query of a batch carries
			// the shared header; the rest pay only their own text.
			promptText := "stadiums that " + s.Phrase
			if i == start {
				promptText = header + "\n" + promptText
			}
			sql, resp, err := p.translateAtomicWithPrompt(ctx, s.Phrase, promptText)
			if err != nil {
				return nil, st, err
			}
			addResp(&st, resp)
			cache[s.Key] = subResult{sql: sql, gold: resp.Correct}
		}
	}

	var out []Translated
	for _, d := range decomps {
		subSQL := make([]string, len(d.Subs))
		allGold := true
		for i, s := range d.Subs {
			r := cache[s.Key]
			subSQL[i] = r.sql
			allGold = allGold && r.gold
		}
		out = append(out, Translated{Question: d.Question, SQL: Compose(d.Parsed, subSQL), AllGold: allGold})
	}
	return out, st, nil
}

// translateAtomicWithPrompt mirrors Translator.TranslateAtomic but with a
// caller-controlled prompt (for combined billing). Accuracy behavior is
// identical: atomic difficulty, atomic corruption.
func (p *Planner) translateAtomicWithPrompt(ctx context.Context, phrase, promptText string) (string, llm.Response, error) {
	// Reuse the translator's atomic gold/wrong computation by delegating to
	// a temporary translator whose prompt we override via the model call.
	d, err := Decompose("What are the names of stadiums that " + phrase + "?")
	if err != nil {
		return "", llm.Response{}, err
	}
	atom := d.Parsed.Atoms[0]
	gold := atom.SQL()
	wrong := atom
	if wrong.Kind == "capacity" {
		if wrong.CapOp == ">" {
			wrong.CapOp = "<"
		} else {
			wrong.CapOp = ">"
		}
	} else {
		wrong.Year++
	}
	resp, err := p.Translator.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskNL2SQL,
		Prompt:     promptText,
		Gold:       gold,
		Wrong:      wrong.SQL(),
		Difficulty: transform.DifficultyAtomic,
		NoiseKey:   "atomic:" + phrase,
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}

// RunPlanned executes a batch under PlanBatch's cost-aware decisions:
// questions marked for decomposition go through shared atomic translation,
// the rest are translated whole. It realizes the paper's "find the set of
// (sub-)queries with minimum costs that can cover all the original
// queries" end to end.
func (p *Planner) RunPlanned(ctx context.Context, questions []string) ([]Translated, BatchStats, error) {
	decisions, err := PlanBatch(p.Translator, questions)
	if err != nil {
		return nil, BatchStats{}, err
	}
	var st BatchStats
	ctx, sp := obs.StartSpan(ctx, "qopt.batch")
	sp.SetAttr("strategy", "planned")
	defer p.observe("planned", &st, sp)
	type subResult struct {
		sql  string
		gold bool
	}
	cache := map[string]subResult{}
	var out []Translated
	for i, q := range questions {
		if !decisions[i].Decompose {
			sql, resp, err := p.Translator.Translate(ctx, q)
			if err != nil {
				return nil, st, err
			}
			addResp(&st, resp)
			out = append(out, Translated{Question: q, SQL: sql, AllGold: resp.Correct})
			continue
		}
		d, err := Decompose(q)
		if err != nil {
			return nil, st, err
		}
		st.TotalSubQueries += len(d.Subs)
		subSQL := make([]string, len(d.Subs))
		allGold := true
		for si, s := range d.Subs {
			r, ok := cache[s.Key]
			if !ok {
				sql, resp, err := p.Translator.TranslateAtomic(ctx, s.Phrase)
				if err != nil {
					return nil, st, err
				}
				addResp(&st, resp)
				st.UniqueSubQueries++
				r = subResult{sql: sql, gold: resp.Correct}
				cache[s.Key] = r
			}
			subSQL[si] = r.sql
			allGold = allGold && r.gold
		}
		out = append(out, Translated{Question: q, SQL: Compose(d.Parsed, subSQL), AllGold: allGold})
	}
	return out, st, nil
}

// PlanDecision records the cost-aware planner's choice for one question.
type PlanDecision struct {
	Question  string
	Decompose bool
	// MarginalTokens is the estimated prompt-token cost of the chosen path
	// at planning time (new sub-queries only, when decomposing).
	MarginalTokens int
}

// PlanBatch is the greedy minimum-cost covering pass the paper calls for:
// walking the batch in order, each question is decomposed when the marginal
// token cost of its *not yet covered* sub-queries is below the cost of
// translating it whole (shared sub-queries are free once chosen). Compound
// questions additionally favor decomposition for accuracy, so ties break
// toward decomposing.
func PlanBatch(tr *transform.Translator, questions []string) ([]PlanDecision, error) {
	chosen := map[string]bool{}
	var out []PlanDecision
	for _, q := range questions {
		d, err := Decompose(q)
		if err != nil {
			return nil, err
		}
		whole := token.Count(tr.Prompt(q))
		marginal := 0
		for _, s := range d.Subs {
			if !chosen[s.Key] {
				marginal += token.Count(tr.Prompt("stadiums that " + s.Phrase))
			}
		}
		dec := PlanDecision{Question: q}
		if marginal <= whole || len(d.Subs) > 1 {
			dec.Decompose = true
			dec.MarginalTokens = marginal
			for _, s := range d.Subs {
				chosen[s.Key] = true
			}
		} else {
			dec.MarginalTokens = whole
		}
		out = append(out, dec)
	}
	return out, nil
}
