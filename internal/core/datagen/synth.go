package datagen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/llm"
	"repro/internal/workload"
)

// Synthesizer generates synthetic tabular datasets that mimic the marginal
// statistics of real data — the paper's "LLMs can generate synthetic
// datasets that mimic the characteristics of real-world tabular data",
// motivated by privacy (footnote 1: synthetic data replaces sensitive
// training data).
//
// The engine fits per-column categorical distributions and samples
// independently — a marginal-preserving baseline whose fidelity is
// measured by total-variation distance.
type Synthesizer struct {
	Model llm.Model
	Rng   *rand.Rand
}

// NewSynthesizer returns a Synthesizer with a seeded RNG.
func NewSynthesizer(m llm.Model, seed int64) *Synthesizer {
	return &Synthesizer{Model: m, Rng: rand.New(rand.NewSource(seed))}
}

// columnDist is a fitted categorical distribution.
type columnDist struct {
	values []string
	cum    []float64
}

func fitColumn(rows []workload.Row, col string) columnDist {
	counts := map[string]int{}
	total := 0
	for _, r := range rows {
		if v := r[col]; v != "" {
			counts[v]++
			total++
		}
	}
	var d columnDist
	for v := range counts {
		d.values = append(d.values, v)
	}
	sort.Strings(d.values)
	acc := 0.0
	for _, v := range d.values {
		acc += float64(counts[v]) / float64(total)
		d.cum = append(d.cum, acc)
	}
	return d
}

func (d columnDist) sample(rng *rand.Rand) string {
	if len(d.values) == 0 {
		return ""
	}
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Generate produces n synthetic rows mimicking the real data's marginals.
// One LLM call is billed for the generation instruction (difficulty 0 —
// generation itself cannot be "wrong"; fidelity is the measured metric).
func (s *Synthesizer) Generate(ctx context.Context, real []workload.Row, cols []string, n int) ([]workload.Row, llm.Response, error) {
	if len(real) == 0 {
		return nil, llm.Response{}, fmt.Errorf("datagen: no real rows to mimic")
	}
	dists := make(map[string]columnDist, len(cols))
	for _, c := range cols {
		dists[c] = fitColumn(real, c)
	}
	out := make([]workload.Row, n)
	for i := range out {
		row := workload.Row{}
		for _, c := range cols {
			row[c] = dists[c].sample(s.Rng)
		}
		out[i] = row
	}
	resp, err := s.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskGenerate,
		Prompt:     fmt.Sprintf("Generate %d synthetic rows mimicking a table with columns %v and %d example rows.", n, cols, len(real)),
		Gold:       fmt.Sprintf("synthetic:%d", n),
		Difficulty: 0,
	})
	if err != nil {
		return nil, llm.Response{}, err
	}
	return out, resp, nil
}

// TVDistance is the total-variation distance between the empirical
// distributions of column col in two datasets: 0 = identical marginals,
// 1 = disjoint.
func TVDistance(a, b []workload.Row, col string) float64 {
	pa := empirical(a, col)
	pb := empirical(b, col)
	keys := map[string]bool{}
	for k := range pa {
		keys[k] = true
	}
	for k := range pb {
		keys[k] = true
	}
	var d float64
	for k := range keys {
		d += math.Abs(pa[k] - pb[k])
	}
	return d / 2
}

func empirical(rows []workload.Row, col string) map[string]float64 {
	counts := map[string]int{}
	total := 0
	for _, r := range rows {
		if v := r[col]; v != "" {
			counts[v]++
			total++
		}
	}
	out := make(map[string]float64, len(counts))
	if total == 0 {
		return out
	}
	for v, n := range counts {
		out[v] = float64(n) / float64(total)
	}
	return out
}
