package datagen

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/llm"
	"repro/internal/workload"
)

// ExecTimeEstimator predicts query execution times from a few labeled
// examples via in-context learning — the paper's Figure 3 scenario ("input
// a set of queries and their corresponding execution times into the LLM and
// instruct it to generate additional examples").
//
// The real inference engine is distance-weighted k-NN over the query
// feature space: exactly the kind of example-interpolation ICL performs.
// The LLM layer adds tier-dependent reliability: a weak model sometimes
// emits a badly scaled estimate.
type ExecTimeEstimator struct {
	Model    llm.Model
	Examples []workload.QueryProfile
	K        int
}

// NewExecTimeEstimator returns an estimator with k=5 neighbors.
func NewExecTimeEstimator(m llm.Model, examples []workload.QueryProfile) *ExecTimeEstimator {
	return &ExecTimeEstimator{Model: m, Examples: examples, K: 5}
}

// knnWeights re-scales the normalized feature vector for neighbor search:
// scan volume dominates execution time, joins amplify it, predicates and
// aggregation matter less. (workload.QueryProfile.Features normalizes each
// component to ~[0,1] for gradient learners; the k-NN distance restores
// task-appropriate importance.)
var knnWeights = []float64{3, 1, 14, 0.5}

// knnPredict is the deterministic ICL engine.
func (e *ExecTimeEstimator) knnPredict(q workload.QueryProfile) float64 {
	type nd struct {
		d float64
		t float64
	}
	qf := q.Features()
	ds := make([]nd, 0, len(e.Examples))
	for _, ex := range e.Examples {
		ef := ex.Features()
		var d float64
		for i := range qf {
			diff := (qf[i] - ef[i]) * knnWeights[i]
			d += diff * diff
		}
		ds = append(ds, nd{d: math.Sqrt(d), t: ex.ExecTimeMS})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	k := e.K
	if k > len(ds) {
		k = len(ds)
	}
	if k == 0 {
		return 0
	}
	var num, den float64
	for _, n := range ds[:k] {
		w := 1 / (n.d + 1e-6)
		num += w * n.t
		den += w
	}
	return num / den
}

// Estimate predicts the execution time of one query profile.
func (e *ExecTimeEstimator) Estimate(ctx context.Context, q workload.QueryProfile) (float64, llm.Response, error) {
	gold := e.knnPredict(q)
	resp, err := e.Model.Complete(ctx, llm.Request{
		Task: llm.TaskLabel,
		Prompt: fmt.Sprintf("Given %d <query, execution_time> examples, predict the execution time of: joins=%d preds=%d rows=%d agg=%t",
			len(e.Examples), q.NumJoins, q.NumPreds, q.ScanRows, q.HasAgg),
		Gold:       formatMS(gold),
		Wrong:      formatMS(gold * 3.2), // badly scaled estimate
		Difficulty: 0.35,
	})
	if err != nil {
		return 0, llm.Response{}, err
	}
	v, err := strconv.ParseFloat(resp.Text[:len(resp.Text)-2], 64)
	if err != nil {
		return 0, resp, fmt.Errorf("datagen: bad estimate %q: %w", resp.Text, err)
	}
	return v, resp, nil
}

func formatMS(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) + "ms" }

// QError is the standard cardinality/cost-estimation error metric:
// max(pred/true, true/pred), >= 1, 1 is perfect.
func QError(pred, truth float64) float64 {
	if pred <= 0 || truth <= 0 {
		return math.Inf(1)
	}
	if pred > truth {
		return pred / truth
	}
	return truth / pred
}

// --- Missing-field imputation (Section II-A2) ---

// Imputer fills missing fields in tabular data by few-shot ICL: rows with
// complete data serve as examples; the engine learns per-determinant
// lookups (e.g. city → country) from them.
type Imputer struct {
	Model llm.Model
	// lookup[col][determinantValue] = most frequent value.
	lookup map[string]map[string]string
	// determinant[col] is the column used to predict col.
	determinant map[string]string
	// mode[col] is the fallback: the column's overall mode.
	mode map[string]string
}

// NewImputer trains the imputation engine from complete example rows. deps
// maps each imputable column to its determinant column (country <- city,
// segment <- name, ...); columns without a useful determinant fall back to
// the mode.
func NewImputer(m llm.Model, examples []workload.Row, deps map[string]string) *Imputer {
	im := &Imputer{
		Model:       m,
		lookup:      map[string]map[string]string{},
		determinant: deps,
		mode:        map[string]string{},
	}
	counts := map[string]map[string]int{}
	pairCounts := map[string]map[string]map[string]int{}
	for _, row := range examples {
		for col, v := range row {
			if v == "" {
				continue
			}
			if counts[col] == nil {
				counts[col] = map[string]int{}
			}
			counts[col][v]++
			if det, ok := deps[col]; ok && row[det] != "" {
				if pairCounts[col] == nil {
					pairCounts[col] = map[string]map[string]int{}
				}
				if pairCounts[col][row[det]] == nil {
					pairCounts[col][row[det]] = map[string]int{}
				}
				pairCounts[col][row[det]][v]++
			}
		}
	}
	for col, cs := range counts {
		im.mode[col] = argmax(cs)
	}
	for col, byDet := range pairCounts {
		im.lookup[col] = map[string]string{}
		for det, cs := range byDet {
			im.lookup[col][det] = argmax(cs)
		}
	}
	return im
}

func argmax(cs map[string]int) string {
	best, bestN := "", -1
	for v, n := range cs {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// Impute predicts the missing value of col in row.
func (im *Imputer) Impute(ctx context.Context, row workload.Row, col string) (string, llm.Response, error) {
	gold := ""
	difficulty := 0.25
	if det, ok := im.determinant[col]; ok {
		if v, ok := im.lookup[col][row[det]]; ok && v != "" {
			gold = v
		}
	}
	if gold == "" {
		gold = im.mode[col]
		difficulty = 0.55 // no determinant evidence: genuinely harder
	}
	wrong := im.wrongValue(col, gold)
	resp, err := im.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskLabel,
		Prompt:     "Infer the missing field " + col + " for row: " + serializeRow(row),
		Gold:       gold,
		Wrong:      wrong,
		Difficulty: difficulty,
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}

func (im *Imputer) wrongValue(col, not string) string {
	// Any other observed value of the column.
	var keys []string
	for _, m := range im.lookup[col] {
		keys = append(keys, m)
	}
	keys = append(keys, im.mode[col])
	sort.Strings(keys)
	for _, k := range keys {
		if k != not && k != "" {
			return k
		}
	}
	return "unknown"
}

// serializeRow renders a row as the natural-language serialization the
// paper describes ("serialize the attribute names and values into a natural
// language string").
func serializeRow(row workload.Row) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		if row[k] == "" {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += k + " is " + row[k]
	}
	return out
}
