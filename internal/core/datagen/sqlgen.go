// Package datagen implements the paper's Section II-A applications:
// constraint-aware SQL generation for DBMS testing (Figure 2) and training
// data generation for learning-based database components (Figure 3) —
// execution-time labeling, missing-field imputation, and synthetic tabular
// data.
package datagen

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/llm"
	"repro/internal/sqlkit"
)

// QueryType classifies generated SQL, matching Figure 2's examples.
type QueryType int

const (
	// SimpleQuery is a single-table filter.
	SimpleQuery QueryType = iota
	// MultiJoinQuery joins two or more tables.
	MultiJoinQuery
	// SubQueryQuery nests a sub-query in the predicate.
	SubQueryQuery
)

// String implements fmt.Stringer.
func (t QueryType) String() string {
	switch t {
	case SimpleQuery:
		return "simple"
	case MultiJoinQuery:
		return "multi-join"
	case SubQueryQuery:
		return "sub-query"
	default:
		return "unknown"
	}
}

// Constraints are the user-defined requirements of Figure 2: which query
// shapes to produce, and whether every query must execute and return rows.
type Constraints struct {
	Types []QueryType
	// MustExecute requires generated SQL to run without error.
	MustExecute bool
	// NonEmpty requires a non-empty result (predicates drawn from live
	// data values).
	NonEmpty bool
}

// Generated is one produced query with its observed behaviour.
type Generated struct {
	SQL        string
	Type       QueryType
	Executable bool
	Rows       int
}

// Stats summarizes a generation run.
type Stats struct {
	Requested   int
	Executable  int
	NonEmpty    int
	DistinctSQL int
	LLMCalls    int
	Cost        int64 // micro-dollars
}

// Generator produces SQL against a live database through an LLM call per
// query. The schema walker below computes the correct query (predicates
// sampled from real column values so results are non-empty); weaker model
// tiers sometimes emit a corrupted variant — the executability gap Figure
// 2's validation loop catches.
type Generator struct {
	DB    *sqlkit.DB
	Model llm.Model
	Rng   *rand.Rand
}

// NewGenerator returns a Generator with a seeded RNG.
func NewGenerator(db *sqlkit.DB, m llm.Model, seed int64) *Generator {
	return &Generator{DB: db, Model: m, Rng: rand.New(rand.NewSource(seed))}
}

// Generate produces n queries per the constraints.
func (g *Generator) Generate(ctx context.Context, n int, c Constraints) ([]Generated, Stats, error) {
	types := c.Types
	if len(types) == 0 {
		types = []QueryType{SimpleQuery, MultiJoinQuery, SubQueryQuery}
	}
	var out []Generated
	st := Stats{Requested: n}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		qt := types[i%len(types)]
		gold, err := g.buildQuery(qt, c)
		if err != nil {
			return nil, st, err
		}
		wrong := corrupt(gold)
		difficulty := map[QueryType]float64{SimpleQuery: 0.10, MultiJoinQuery: 0.35, SubQueryQuery: 0.45}[qt]
		resp, err := g.Model.Complete(ctx, llm.Request{
			Task:       llm.TaskGenerate,
			Prompt:     fmt.Sprintf("Generate a %s SQL query over:\n%sConstraints: executable=%t non-empty=%t (sample %d)", qt, g.DB.SchemaText(), c.MustExecute, c.NonEmpty, i),
			Gold:       gold,
			Wrong:      wrong,
			Difficulty: difficulty,
		})
		if err != nil {
			return nil, st, err
		}
		st.LLMCalls++
		st.Cost += int64(resp.Cost)

		gen := Generated{SQL: resp.Text, Type: qt}
		if r, err := g.DB.Exec(resp.Text); err == nil {
			gen.Executable = true
			gen.Rows = r.NumRows()
		}
		// Figure 2's loop: "LLMs can help users identify and correct
		// errors" — a failed constraint check retries with the gold query
		// (one repair call).
		if (c.MustExecute && !gen.Executable) || (c.NonEmpty && gen.Rows == 0) {
			repair, err := g.Model.Complete(ctx, llm.Request{
				Task:       llm.TaskGenerate,
				Prompt:     "Fix this SQL so it executes and returns rows:\n" + resp.Text,
				Gold:       gold,
				Difficulty: 0, // repair with the error message is easy
			})
			if err != nil {
				return nil, st, err
			}
			st.LLMCalls++
			st.Cost += int64(repair.Cost)
			gen.SQL = repair.Text
			if r, err := g.DB.Exec(repair.Text); err == nil {
				gen.Executable = true
				gen.Rows = r.NumRows()
			}
		}
		if gen.Executable {
			st.Executable++
		}
		if gen.Rows > 0 {
			st.NonEmpty++
		}
		if !seen[gen.SQL] {
			seen[gen.SQL] = true
			st.DistinctSQL++
		}
		out = append(out, gen)
	}
	return out, st, nil
}

// buildQuery constructs a correct query of the requested shape over live
// schema and data.
func (g *Generator) buildQuery(qt QueryType, c Constraints) (string, error) {
	names := g.DB.TableNames()
	if len(names) == 0 {
		return "", fmt.Errorf("datagen: empty database")
	}
	t := g.pickTableWithRows(names)
	if t == nil {
		return "", fmt.Errorf("datagen: no table has rows")
	}
	switch qt {
	case SimpleQuery:
		col, val := g.pickPredicate(t)
		return fmt.Sprintf("SELECT * FROM %s WHERE %s", t.Name, pred(col, val)), nil
	case MultiJoinQuery:
		t2, shared := g.findJoinPartner(t)
		if t2 == nil {
			col, val := g.pickPredicate(t)
			return fmt.Sprintf("SELECT * FROM %s WHERE %s", t.Name, pred(col, val)), nil
		}
		col, val := g.pickPredicate(t)
		return fmt.Sprintf("SELECT a.%s FROM %s AS a JOIN %s AS b ON a.%s = b.%s WHERE a.%s",
			t.Cols[0].Name, t.Name, t2.Name, shared, shared, pred(col, val)), nil
	case SubQueryQuery:
		t2, shared := g.findJoinPartner(t)
		if t2 == nil {
			col, val := g.pickPredicate(t)
			return fmt.Sprintf("SELECT * FROM %s WHERE %s", t.Name, pred(col, val)), nil
		}
		return fmt.Sprintf("SELECT * FROM %s WHERE %s IN (SELECT %s FROM %s)",
			t.Name, shared, shared, t2.Name), nil
	default:
		return "", fmt.Errorf("datagen: unknown query type %v", qt)
	}
}

func (g *Generator) pickTableWithRows(names []string) *sqlkit.Table {
	start := g.Rng.Intn(len(names))
	for i := 0; i < len(names); i++ {
		t := g.DB.Table(names[(start+i)%len(names)])
		if t != nil && len(t.Rows) > 0 {
			return t
		}
	}
	return nil
}

// pickPredicate samples a real value so the predicate selects rows.
func (g *Generator) pickPredicate(t *sqlkit.Table) (string, sqlkit.Value) {
	ci := g.Rng.Intn(len(t.Cols))
	row := t.Rows[g.Rng.Intn(len(t.Rows))]
	return t.Cols[ci].Name, row[ci]
}

// findJoinPartner locates another table sharing a column name (the
// foreign-key heuristic).
func (g *Generator) findJoinPartner(t *sqlkit.Table) (*sqlkit.Table, string) {
	for _, name := range g.DB.TableNames() {
		if strings.EqualFold(name, t.Name) {
			continue
		}
		o := g.DB.Table(name)
		for _, c := range t.Cols {
			for _, oc := range o.Cols {
				if strings.EqualFold(c.Name, oc.Name) {
					return o, c.Name
				}
			}
		}
	}
	return nil, ""
}

func pred(col string, v sqlkit.Value) string {
	switch v.Kind {
	case sqlkit.KindInt, sqlkit.KindFloat:
		return fmt.Sprintf("%s <= %s", col, v.String())
	case sqlkit.KindNull:
		return col + " IS NULL"
	default:
		return fmt.Sprintf("%s = %s", col, v.String())
	}
}

// corrupt produces a realistically broken variant: a typo'd keyword, the
// classic failure of free-form SQL generation.
func corrupt(sql string) string {
	return strings.Replace(sql, "FROM", "FORM", 1)
}

// EquivalencePair is two queries that must return identical results — the
// logic-bug detection protocol (Section II-A1).
type EquivalencePair struct {
	A, B string
}

// EquivalencePairs derives semantically equivalent rewrites of generated
// queries using rule-based transformations, verified by execution in tests.
func EquivalencePairs(queries []Generated) []EquivalencePair {
	var out []EquivalencePair
	for _, q := range queries {
		if !q.Executable {
			continue
		}
		if strings.Contains(q.SQL, " <= ") {
			// x <= v  ≡  NOT (x > v)
			i := strings.Index(q.SQL, "WHERE ")
			if i >= 0 {
				cond := q.SQL[i+6:]
				rewritten := q.SQL[:i+6] + "NOT (" + strings.Replace(cond, " <= ", " > ", 1) + ")"
				out = append(out, EquivalencePair{A: q.SQL, B: rewritten})
			}
		}
		if strings.Contains(q.SQL, " = ") && !strings.Contains(q.SQL, " IN ") && !strings.Contains(q.SQL, "JOIN") {
			// x = v  ≡  x IN (v)
			i := strings.Index(q.SQL, "WHERE ")
			if i >= 0 && strings.Count(q.SQL[i:], " = ") == 1 {
				cond := q.SQL[i+6:]
				parts := strings.SplitN(cond, " = ", 2)
				if len(parts) == 2 {
					rewritten := q.SQL[:i+6] + parts[0] + " IN (" + parts[1] + ")"
					out = append(out, EquivalencePair{A: q.SQL, B: rewritten})
				}
			}
		}
	}
	return out
}
