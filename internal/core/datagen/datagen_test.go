package datagen

import (
	"context"
	"math"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func strongModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "strong", Capability: 1.0, NoiseAmp: 0.001,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func weakModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "weakgen", Capability: 0.25,
		Price: token.Price{InputPer1K: 400, OutputPer1K: 400}})
}

func TestGenerateAllTypesExecutable(t *testing.T) {
	db := workload.ConcertDB(7)
	g := NewGenerator(db, strongModel(), 1)
	out, st, err := g.Generate(context.Background(), 30, Constraints{MustExecute: true, NonEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 30 {
		t.Fatalf("generated %d", len(out))
	}
	types := map[QueryType]int{}
	for _, q := range out {
		types[q.Type]++
		if !q.Executable {
			t.Errorf("non-executable under MustExecute: %s", q.SQL)
		}
		if q.Rows == 0 {
			t.Errorf("empty result under NonEmpty: %s", q.SQL)
		}
	}
	if types[SimpleQuery] == 0 || types[MultiJoinQuery] == 0 || types[SubQueryQuery] == 0 {
		t.Errorf("type mix = %v", types)
	}
	if st.Executable != 30 || st.NonEmpty != 30 {
		t.Errorf("stats = %+v", st)
	}
	if st.DistinctSQL < 10 {
		t.Errorf("low diversity: %d distinct of 30", st.DistinctSQL)
	}
}

func TestWeakModelNeedsRepairs(t *testing.T) {
	db := workload.ConcertDB(7)
	g := NewGenerator(db, weakModel(), 2)
	_, st, err := g.Generate(context.Background(), 30, Constraints{MustExecute: true, NonEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	// Weak model errs on complex shapes, triggering repair calls: more LLM
	// calls than queries.
	if st.LLMCalls <= 30 {
		t.Errorf("weak model made %d calls for 30 queries; repair loop untested", st.LLMCalls)
	}
	// The repair loop must still satisfy the constraints.
	if st.Executable != 30 {
		t.Errorf("repairs left %d/30 executable", st.Executable)
	}
}

func TestWeakModelWithoutConstraintsEmitsBrokenSQL(t *testing.T) {
	db := workload.ConcertDB(7)
	g := NewGenerator(db, weakModel(), 3)
	out, st, err := g.Generate(context.Background(), 30, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	broken := 0
	for _, q := range out {
		if !q.Executable {
			broken++
		}
	}
	if broken == 0 {
		t.Error("weak model produced only valid SQL without constraints")
	}
	if st.Executable+broken != 30 {
		t.Errorf("stats inconsistent: %+v broken=%d", st, broken)
	}
}

func TestEquivalencePairsVerifyByExecution(t *testing.T) {
	db := workload.ConcertDB(7)
	g := NewGenerator(db, strongModel(), 4)
	out, _, err := g.Generate(context.Background(), 24, Constraints{MustExecute: true, NonEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs := EquivalencePairs(out)
	if len(pairs) == 0 {
		t.Fatal("no equivalence pairs derived")
	}
	for _, p := range pairs {
		a, err := db.Exec(p.A)
		if err != nil {
			t.Fatalf("pair A fails: %v\n%s", err, p.A)
		}
		b, err := db.Exec(p.B)
		if err != nil {
			t.Fatalf("pair B fails: %v\n%s", err, p.B)
		}
		if !a.EqualBag(b) {
			t.Errorf("equivalence violated:\n  %s\n  %s", p.A, p.B)
		}
	}
}

func TestExecTimeEstimator(t *testing.T) {
	qs := workload.GenQueryWorkload(9, 300)
	est := NewExecTimeEstimator(strongModel(), qs[:250])
	var sumQ float64
	n := 0
	for _, q := range qs[250:] {
		pred, resp, err := est.Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Correct {
			t.Error("strong model emitted corrupted estimate")
		}
		sumQ += QError(pred, q.ExecTimeMS)
		n++
	}
	mean := sumQ / float64(n)
	if mean > 3.0 {
		t.Errorf("mean q-error %.2f too high for ICL estimator", mean)
	}
}

func TestWeakEstimatorWorse(t *testing.T) {
	qs := workload.GenQueryWorkload(9, 300)
	run := func(m llm.Model) float64 {
		est := NewExecTimeEstimator(m, qs[:250])
		var sumQ float64
		for _, q := range qs[250:] {
			pred, _, err := est.Estimate(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			sumQ += QError(pred, q.ExecTimeMS)
		}
		return sumQ / float64(len(qs)-250)
	}
	strong := run(strongModel())
	weak := run(weakModel())
	if weak <= strong {
		t.Errorf("weak model q-error %.2f not above strong %.2f", weak, strong)
	}
}

func TestQError(t *testing.T) {
	if QError(10, 10) != 1 {
		t.Error("perfect prediction q-error != 1")
	}
	if QError(20, 10) != 2 || QError(5, 10) != 2 {
		t.Error("q-error not symmetric")
	}
	if !math.IsInf(QError(0, 10), 1) {
		t.Error("zero prediction should be infinite error")
	}
}

func TestImputer(t *testing.T) {
	set := workload.GenCustomers(13, 200, 0.15, 0)
	deps := map[string]string{"country": "city", "segment": "name", "city": "name"}
	// Train on rows without missing cells.
	var complete []workload.Row
	missing := map[int]bool{}
	for _, mc := range set.MissingCells {
		missing[mc.Row] = true
	}
	for i, r := range set.Rows {
		if !missing[i] {
			complete = append(complete, r)
		}
	}
	im := NewImputer(strongModel(), complete, deps)

	correct, total := 0, 0
	for _, mc := range set.MissingCells {
		got, _, err := im.Impute(context.Background(), set.Rows[mc.Row], mc.Col)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if got == mc.Gold {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no missing cells")
	}
	acc := float64(correct) / float64(total)
	// Country is functionally determined by city; segment is random, so
	// overall accuracy is bounded but must beat chance handily.
	if acc < 0.4 {
		t.Errorf("imputation accuracy %.3f too low", acc)
	}
	// Country-only accuracy should be near perfect with a strong model.
	cCorrect, cTotal := 0, 0
	for _, mc := range set.MissingCells {
		if mc.Col != "country" {
			continue
		}
		got, _, _ := im.Impute(context.Background(), set.Rows[mc.Row], mc.Col)
		cTotal++
		if got == mc.Gold {
			cCorrect++
		}
	}
	// Not 1.0: rows whose determinant city is also blanked fall back to the
	// column mode.
	if cTotal > 0 && float64(cCorrect)/float64(cTotal) < 0.8 {
		t.Errorf("country imputation %.3f, want >= 0.8 (%d/%d)", float64(cCorrect)/float64(cTotal), cCorrect, cTotal)
	}
}

func TestSerializeRow(t *testing.T) {
	got := serializeRow(workload.Row{"name": "Alice", "city": "Lyon", "country": ""})
	want := "city is Lyon, name is Alice"
	if got != want {
		t.Errorf("serialize = %q, want %q", got, want)
	}
}

func TestSynthesizerPreservesMarginals(t *testing.T) {
	set := workload.GenCustomers(17, 300, 0, 0)
	cols := []string{"city", "country", "segment"}
	s := NewSynthesizer(strongModel(), 5)
	synth, resp, err := s.Generate(context.Background(), set.Rows, cols, 300)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost <= 0 {
		t.Error("generation billed nothing")
	}
	for _, c := range cols {
		if d := TVDistance(set.Rows, synth, c); d > 0.15 {
			t.Errorf("column %s TV distance %.3f too high", c, d)
		}
	}
	// Synthetic rows are not copies: at least some rows differ from all
	// real rows (independence across columns breaks joint copies).
	real := map[string]bool{}
	for _, r := range set.Rows {
		real[r["city"]+"|"+r["country"]+"|"+r["segment"]] = true
	}
	novel := 0
	for _, r := range synth {
		if !real[r["city"]+"|"+r["country"]+"|"+r["segment"]] {
			novel++
		}
	}
	if novel == 0 {
		t.Error("synthesizer only replayed real rows")
	}
}

func TestSynthesizerEmptyInput(t *testing.T) {
	s := NewSynthesizer(strongModel(), 5)
	if _, _, err := s.Generate(context.Background(), nil, []string{"a"}, 10); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTVDistanceBounds(t *testing.T) {
	a := []workload.Row{{"c": "x"}, {"c": "x"}}
	b := []workload.Row{{"c": "y"}}
	if d := TVDistance(a, a, "c"); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := TVDistance(a, b, "c"); d != 1 {
		t.Errorf("disjoint distance = %v", d)
	}
}

func BenchmarkGenerate(b *testing.B) {
	db := workload.ConcertDB(7)
	g := NewGenerator(db, strongModel(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Generate(context.Background(), 10, Constraints{MustExecute: true}); err != nil {
			b.Fatal(err)
		}
	}
}
