package semcache

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/obs"
)

func TestLookupStaleIgnoresThreshold(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Embedder: embed.New(embed.DefaultDim), Threshold: 0.999, Obs: reg})
	c.Put("what is the capital of france", "paris", Original, Reuse)

	// A paraphrase misses the (deliberately strict) fresh threshold...
	if _, ok := c.Lookup("tell me the capital of france"); ok {
		t.Fatal("paraphrase passed the 0.999 threshold; premise broken")
	}
	// ...but the degraded-mode lookup serves it from a far lower floor.
	hit, ok := c.LookupStale("tell me the capital of france", 0.3)
	if !ok {
		t.Fatal("stale lookup missed")
	}
	if hit.Entry.Response != "paris" || hit.Exact {
		t.Errorf("stale hit = %+v", hit)
	}
	if hit.Similarity < 0.3 || hit.Similarity >= 1 {
		t.Errorf("similarity = %v", hit.Similarity)
	}
	snap := reg.Snapshot()
	if snap["semcache_stale_lookups_total"] != 1 || snap["semcache_stale_hits_total"] != 1 {
		t.Errorf("stale counters: lookups=%v hits=%v",
			snap["semcache_stale_lookups_total"], snap["semcache_stale_hits_total"])
	}
	// Stale traffic must not inflate the headline hit-rate stats.
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("stale hit leaked into Stats: %+v", st)
	}
}

func TestLookupStaleHonorsFloor(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Embedder: embed.New(embed.DefaultDim), Obs: reg})
	if _, ok := c.LookupStale("anything", 0.1); ok {
		t.Error("empty cache produced a stale hit")
	}
	c.Put("quarterly revenue by region", "$4M", Original, Reuse)
	if _, ok := c.LookupStale("migratory patterns of arctic terns", 0.6); ok {
		t.Error("unrelated query served above the floor")
	}
	snap := reg.Snapshot()
	if snap["semcache_stale_lookups_total"] != 2 || snap["semcache_stale_hits_total"] != 0 {
		t.Errorf("stale counters: %v", snap)
	}
}
