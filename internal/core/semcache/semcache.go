// Package semcache implements the semantic LLM cache of the paper's
// Section III-C. Unlike a conventional exact-match cache, lookups embed the
// query and accept the nearest cached query above a similarity threshold.
// Entries carry a usage class — Reuse (a hit avoids the LLM call entirely)
// or Augment (a hit only enriches the next prompt) — and the weighted
// eviction policy prefers keeping Reuse entries, as the paper argues the
// two hit classes "should have different weights when considering
// eviction". Sub-query entries are first-class, enabling the Cache(A)
// configuration of Table III.
package semcache

import (
	"sync"

	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/vector"
)

// Class is how a cached entry is consumed on a hit.
type Class int

const (
	// Reuse entries replace an LLM call outright (case 1 in the paper).
	Reuse Class = iota
	// Augment entries only enrich the prompt of a new call (case 2).
	Augment
)

// Kind distinguishes original queries from decomposed sub-queries.
type Kind int

const (
	Original Kind = iota
	SubQuery
)

// Policy selects the eviction strategy.
type Policy int

const (
	// LRU evicts the least recently used entry.
	LRU Policy = iota
	// LFU evicts the least frequently hit entry.
	LFU
	// Weighted evicts the entry with the smallest class-weighted usage
	// score — the paper's proposed policy.
	Weighted
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case Weighted:
		return "weighted"
	default:
		return "unknown"
	}
}

// Entry is one cached (query, response) pair.
type Entry struct {
	Query    string
	Response string
	Kind     Kind
	Class    Class
	// Hits counts lookups served by this entry.
	Hits int
	// lastUsed is a logical clock value for recency.
	lastUsed int64
}

// Hit is a successful lookup.
type Hit struct {
	Entry      Entry
	Similarity float64
	Exact      bool
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Lookups   int
	Hits      int
	ExactHits int
	Evictions int
}

// HitRate is Hits/Lookups (0 when empty).
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a bounded semantic cache. Cache is safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	emb       *embed.Embedder
	idx       *vector.Flat
	entries   map[vector.ID]*Entry
	byExact   map[string]vector.ID
	nextID    vector.ID
	capacity  int
	threshold float64
	policy    Policy
	clock     int64
	stats     Stats
	// admission gates what gets cached (nil = admit everything).
	admission Admission
	// ttl expires entries older than this many logical ticks (0 = never).
	ttl int64

	log *obs.Logger

	// Metric handles, resolved once at construction.
	mLookups, mHitExact, mHitSemantic, mMisses *obs.Counter
	mEvictions, mExpired, mAdmitRejects, mPuts *obs.Counter
	mStaleLookups, mStaleHits                  *obs.Counter
	hSimilarity                                *obs.Histogram
}

// Config parameterizes a Cache.
type Config struct {
	// Embedder embeds queries; required.
	Embedder *embed.Embedder
	// Capacity bounds the entry count; 0 means unbounded.
	Capacity int
	// Threshold is the minimum cosine similarity for a semantic hit.
	// Defaults to 0.85.
	Threshold float64
	// Policy selects eviction. Defaults to Weighted.
	Policy Policy
	// Obs receives the cache's hit/miss/evict/admission counters and the
	// hit-similarity histogram. Nil means obs.Default.
	Obs *obs.Registry
	// Log receives semcache_evict lifecycle events. Nil means
	// obs.DefaultLogger.
	Log *obs.Logger
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.Embedder == nil {
		panic("semcache: nil embedder")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.85
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default
	}
	log := cfg.Log
	if log == nil {
		log = obs.DefaultLogger
	}
	return &Cache{
		emb:       cfg.Embedder,
		log:       log,
		idx:       vector.NewFlat(cfg.Embedder.Dim(), vector.Cosine),
		entries:   make(map[vector.ID]*Entry),
		byExact:   make(map[string]vector.ID),
		capacity:  cfg.Capacity,
		threshold: cfg.Threshold,
		policy:    cfg.Policy,

		mLookups:      reg.Counter("semcache_lookups_total"),
		mHitExact:     reg.Counter("semcache_hits_total", "kind", "exact"),
		mHitSemantic:  reg.Counter("semcache_hits_total", "kind", "semantic"),
		mMisses:       reg.Counter("semcache_misses_total"),
		mEvictions:    reg.Counter("semcache_evictions_total"),
		mExpired:      reg.Counter("semcache_expired_total"),
		mAdmitRejects: reg.Counter("semcache_admission_rejects_total"),
		mPuts:         reg.Counter("semcache_puts_total"),
		mStaleLookups: reg.Counter("semcache_stale_lookups_total"),
		mStaleHits:    reg.Counter("semcache_stale_hits_total"),
		hSimilarity:   reg.Histogram("semcache_hit_similarity", obs.SimilarityBuckets),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Lookup finds the best cached entry for query: an exact match if present,
// otherwise the most similar entry above the threshold.
func (c *Cache) Lookup(query string) (Hit, bool) {
	return c.LookupTraced(query, "")
}

// LookupTraced is Lookup with the calling request's trace ID, retained
// as the hit-similarity histogram's exemplar so a borderline-similarity
// bucket resolves to a concrete request in /debug/traces.
func (c *Cache) LookupTraced(query, trace string) (Hit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.stats.Lookups++
	c.mLookups.Inc()

	if id, ok := c.byExact[query]; ok {
		e := c.entries[id]
		if c.expiredLocked(e) {
			c.removeLocked(id)
			c.mExpired.Inc()
		} else {
			e.Hits++
			e.lastUsed = c.clock
			c.stats.Hits++
			c.stats.ExactHits++
			c.mHitExact.Inc()
			c.hSimilarity.ObserveWithExemplar(1, trace)
			return Hit{Entry: *e, Similarity: 1, Exact: true}, true
		}
	}

	// Scratch embedding: the query vector is only needed for this one
	// search, so it is drawn from (and returned to) the embedder's pool
	// instead of allocating per lookup.
	qv := c.emb.TextScratch(query)
	hits := c.idx.Search(*qv, 1)
	c.emb.ReleaseScratch(qv)
	if len(hits) == 0 || hits[0].Score < c.threshold {
		c.mMisses.Inc()
		return Hit{}, false
	}
	e := c.entries[hits[0].ID]
	if c.expiredLocked(e) {
		c.removeLocked(hits[0].ID)
		c.mExpired.Inc()
		c.mMisses.Inc()
		return Hit{}, false
	}
	e.Hits++
	e.lastUsed = c.clock
	c.stats.Hits++
	c.mHitSemantic.Inc()
	c.hSimilarity.ObserveWithExemplar(hits[0].Score, trace)
	return Hit{Entry: *e, Similarity: hits[0].Score}, true
}

// LookupStale finds the nearest cached entry at or above floor, ignoring
// the configured hit threshold and the TTL — the degraded-mode lookup
// behind the proxy's stale-serve: when the whole cascade is down, an
// approximate old answer beats an error. Stale lookups keep their own
// counters (semcache_stale_*) so the headline hit rate stays a measure of
// normal operation.
func (c *Cache) LookupStale(query string, floor float64) (Hit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.mStaleLookups.Inc()
	qv := c.emb.TextScratch(query)
	hits := c.idx.Search(*qv, 1)
	c.emb.ReleaseScratch(qv)
	if len(hits) == 0 || hits[0].Score < floor {
		return Hit{}, false
	}
	e := c.entries[hits[0].ID]
	e.Hits++
	e.lastUsed = c.clock
	c.mStaleHits.Inc()
	return Hit{Entry: *e, Similarity: hits[0].Score, Exact: e.Query == query}, true
}

// expiredLocked reports whether e is past the TTL.
func (c *Cache) expiredLocked(e *Entry) bool {
	return c.ttl > 0 && c.clock-e.lastUsed > c.ttl
}

// removeLocked deletes an entry by id.
func (c *Cache) removeLocked(id vector.ID) {
	e, ok := c.entries[id]
	if !ok {
		return
	}
	delete(c.byExact, e.Query)
	delete(c.entries, id)
	c.idx.Remove(id)
}

// Put inserts a (query, response) pair. Re-putting an existing query
// refreshes its response.
func (c *Cache) Put(query, response string, kind Kind, class Class) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if id, ok := c.byExact[query]; ok {
		e := c.entries[id]
		e.Response = response
		e.lastUsed = c.clock
		return
	}
	if c.admission != nil && !c.admission.Admit(query) {
		c.mAdmitRejects.Inc()
		return
	}
	c.mPuts.Inc()
	id := c.nextID
	c.nextID++
	c.entries[id] = &Entry{Query: query, Response: response, Kind: kind, Class: class, lastUsed: c.clock}
	c.byExact[query] = id
	if err := c.idx.Add(vector.Item{ID: id, Vec: c.emb.Text(query)}); err != nil {
		panic(err) // IDs are unique by construction
	}
	if c.capacity > 0 && len(c.entries) > c.capacity {
		c.evictLocked(id)
	}
}

// evictLocked removes one entry per the configured policy. The entry just
// inserted (keep) is exempt, so cold newcomers are not evicted before they
// can prove useful.
func (c *Cache) evictLocked(keep vector.ID) {
	var victim vector.ID
	first := true
	better := func(a, b *Entry) bool { // is a a better victim than b?
		switch c.policy {
		case LRU:
			return a.lastUsed < b.lastUsed
		case LFU:
			if a.Hits != b.Hits {
				return a.Hits < b.Hits
			}
			return a.lastUsed < b.lastUsed
		default: // Weighted
			wa, wb := c.weight(a), c.weight(b)
			if wa != wb {
				return wa < wb
			}
			return a.lastUsed < b.lastUsed
		}
	}
	for id, e := range c.entries {
		if id == keep {
			continue
		}
		if first || better(e, c.entries[victim]) {
			victim = id
			first = false
		}
	}
	e := c.entries[victim]
	delete(c.byExact, e.Query)
	delete(c.entries, victim)
	c.idx.Remove(victim)
	c.stats.Evictions++
	c.mEvictions.Inc()
	// Evictions happen under the put-caller's lock but are cheap to log
	// (ring write, no I/O); they have no single owning request.
	c.log.Emit(obs.Debug, "semcache_evict", "policy", c.policy.String(), "hits", e.Hits)
}

// weight scores an entry's retention value: hit count scaled by the class
// weight (Reuse hits save a whole LLM call; Augment hits only improve a
// prompt).
func (c *Cache) weight(e *Entry) float64 {
	w := 1.0
	if e.Class == Augment {
		w = 0.4
	}
	return w * float64(e.Hits+1)
}
