package semcache

import (
	"context"
	"hash/fnv"
)

// Admission decides whether a freshly computed (query, response) pair is
// worth caching — the paper's "decide whether to cache ... or refrain from
// caching based on the likelihood of future access. Predictive methods ...
// can be designed to predict the probability of future access."
type Admission interface {
	// Admit reports whether the query should be cached. Implementations may
	// update internal state (e.g. frequency sketches) on every call.
	Admit(query string) bool
}

// AdmitAll caches everything (the default).
type AdmitAll struct{}

// Admit implements Admission.
func (AdmitAll) Admit(string) bool { return true }

// Doorkeeper is a TinyLFU-style admission predictor: a query is admitted
// only on its second sighting within a sliding window, so one-off queries
// never displace recurring ones. The sketch is a counting filter that
// halves on every windowSize insertions (aging).
type Doorkeeper struct {
	counts     map[uint64]uint8
	inserts    int
	windowSize int
}

// NewDoorkeeper returns a Doorkeeper with the given aging window (number of
// observations between halvings). 0 uses 1024.
func NewDoorkeeper(windowSize int) *Doorkeeper {
	if windowSize <= 0 {
		windowSize = 1024
	}
	return &Doorkeeper{counts: make(map[uint64]uint8), windowSize: windowSize}
}

// Admit implements Admission.
func (d *Doorkeeper) Admit(query string) bool {
	h := fnv.New64a()
	h.Write([]byte(query))
	key := h.Sum64()

	d.inserts++
	if d.inserts >= d.windowSize {
		d.inserts = 0
		for k, c := range d.counts {
			c /= 2
			if c == 0 {
				delete(d.counts, k)
			} else {
				d.counts[k] = c
			}
		}
	}
	seen := d.counts[key]
	if seen < 255 {
		d.counts[key] = seen + 1
	}
	return seen >= 1
}

// SetAdmission installs an admission policy; nil restores AdmitAll.
func (c *Cache) SetAdmission(a Admission) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admission = a
}

// SetTTL bounds entry lifetime in logical ticks (each Lookup or Put
// advances the clock by one). 0 disables expiry. Logical time keeps the
// cache deterministic — the property every experiment in this repository
// relies on — while still modelling staleness.
func (c *Cache) SetTTL(ticks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ttl = ticks
}

// GetOrCompute returns the cached response for query, or computes, caches
// and returns it. The compute callback runs outside the cache lock.
func (c *Cache) GetOrCompute(ctx context.Context, query string, kind Kind, class Class,
	compute func(ctx context.Context) (string, error)) (string, bool, error) {
	if hit, ok := c.Lookup(query); ok {
		return hit.Entry.Response, true, nil
	}
	out, err := compute(ctx)
	if err != nil {
		return "", false, err
	}
	c.Put(query, out, kind, class)
	return out, false, nil
}
