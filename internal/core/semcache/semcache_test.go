package semcache

import (
	"fmt"
	"testing"

	"repro/internal/embed"
)

func newCache(capacity int, policy Policy) *Cache {
	return New(Config{Embedder: embed.New(embed.DefaultDim), Capacity: capacity, Policy: policy})
}

func TestExactHit(t *testing.T) {
	c := newCache(0, Weighted)
	c.Put("in which city was Alice born?", "Lyon", Original, Reuse)
	h, ok := c.Lookup("in which city was Alice born?")
	if !ok || !h.Exact || h.Entry.Response != "Lyon" {
		t.Fatalf("hit = %+v ok=%v", h, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.ExactHits != 1 || st.Lookups != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSemanticHit(t *testing.T) {
	c := newCache(0, Weighted)
	c.Put("What are the names of stadiums that had concerts in 2014?", "Anfield, Camp Nou", Original, Reuse)
	// Paraphrase: high similarity, not exact.
	h, ok := c.Lookup("Show the names of stadiums that had concerts in 2014")
	if !ok {
		t.Fatal("semantic paraphrase missed")
	}
	if h.Exact {
		t.Error("paraphrase reported exact")
	}
	if h.Similarity < 0.85 || h.Similarity >= 1 {
		t.Errorf("similarity = %v", h.Similarity)
	}
}

func TestUnrelatedQueryMisses(t *testing.T) {
	c := newCache(0, Weighted)
	c.Put("What are the names of stadiums that had concerts in 2014?", "x", Original, Reuse)
	if _, ok := c.Lookup("predict the execution time of this analytical join query"); ok {
		t.Error("unrelated query hit")
	}
	if c.Stats().HitRate() != 0 {
		t.Errorf("hit rate = %v", c.Stats().HitRate())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := newCache(0, Weighted)
	c.Put("q", "old", Original, Reuse)
	c.Put("q", "new", Original, Reuse)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	h, _ := c.Lookup("q")
	if h.Entry.Response != "new" {
		t.Errorf("response = %q", h.Entry.Response)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(2, LRU)
	c.Put("alpha query one", "1", Original, Reuse)
	c.Put("beta query two", "2", Original, Reuse)
	c.Lookup("alpha query one") // refresh alpha
	c.Put("gamma query three", "3", Original, Reuse)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup("beta query two"); ok {
		t.Error("LRU kept the least recently used entry")
	}
	if _, ok := c.Lookup("alpha query one"); !ok {
		t.Error("LRU evicted the recently used entry")
	}
}

func TestLFUEviction(t *testing.T) {
	c := newCache(2, LFU)
	c.Put("alpha query one", "1", Original, Reuse)
	c.Put("beta query two", "2", Original, Reuse)
	c.Lookup("alpha query one")
	c.Lookup("alpha query one")
	c.Lookup("beta query two")
	c.Put("gamma query three", "3", Original, Reuse)
	if _, ok := c.Lookup("beta query two"); ok {
		t.Error("LFU kept the less frequent entry")
	}
}

func TestWeightedEvictionPrefersReuse(t *testing.T) {
	c := newCache(2, Weighted)
	c.Put("reuse entry query", "r", Original, Reuse)
	c.Put("augment entry query", "a", Original, Augment)
	// Same hit counts: the augment entry has lower weight and goes first.
	c.Lookup("reuse entry query")
	c.Lookup("augment entry query")
	c.Put("newcomer entry query", "n", Original, Reuse)
	if _, ok := c.Lookup("augment entry query"); ok {
		t.Error("weighted policy kept the augment entry over the reuse entry")
	}
	if _, ok := c.Lookup("reuse entry query"); !ok {
		t.Error("weighted policy evicted the reuse entry")
	}
}

func TestEvictionCountsAndCapacity(t *testing.T) {
	c := newCache(3, LRU)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("query number %d with padding words", i), "r", Original, Reuse)
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
	if c.Stats().Evictions != 7 {
		t.Errorf("evictions = %d, want 7", c.Stats().Evictions)
	}
}

func TestSubQueryEntries(t *testing.T) {
	c := newCache(0, Weighted)
	c.Put("In which city was Alice born?", "Lyon", SubQuery, Reuse)
	h, ok := c.Lookup("In which city was Alice born?")
	if !ok || h.Entry.Kind != SubQuery {
		t.Errorf("sub-query entry = %+v ok=%v", h, ok)
	}
}

func TestThresholdRespected(t *testing.T) {
	strict := New(Config{Embedder: embed.New(embed.DefaultDim), Threshold: 0.999})
	strict.Put("What are the names of stadiums that had concerts in 2014?", "x", Original, Reuse)
	if _, ok := strict.Lookup("Show the names of stadiums that had concerts in 2014"); ok {
		t.Error("strict threshold admitted a paraphrase")
	}
	loose := New(Config{Embedder: embed.New(embed.DefaultDim), Threshold: 0.5})
	loose.Put("What are the names of stadiums that had concerts in 2014?", "x", Original, Reuse)
	if _, ok := loose.Lookup("Show the names of stadiums that had concerts in 2014"); !ok {
		t.Error("loose threshold missed a paraphrase")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || Weighted.String() != "weighted" {
		t.Error("policy names wrong")
	}
}

func TestNewPanicsWithoutEmbedder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without embedder did not panic")
		}
	}()
	New(Config{})
}

func BenchmarkLookup(b *testing.B) {
	c := newCache(0, Weighted)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("cached question number %d about stadiums", i), "r", Original, Reuse)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup("cached question number 42 about stadiums")
	}
}
