package semcache

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestAdmitAll(t *testing.T) {
	var a AdmitAll
	if !a.Admit("anything") {
		t.Error("AdmitAll rejected")
	}
}

func TestDoorkeeperSecondSighting(t *testing.T) {
	d := NewDoorkeeper(0)
	if d.Admit("query one") {
		t.Error("first sighting admitted")
	}
	if !d.Admit("query one") {
		t.Error("second sighting rejected")
	}
	if d.Admit("query two") {
		t.Error("unrelated first sighting admitted")
	}
}

func TestDoorkeeperAging(t *testing.T) {
	d := NewDoorkeeper(4)
	d.Admit("q") // count 1
	// Flood past the window so counts halve (1/2 -> 0, entry dropped).
	for i := 0; i < 5; i++ {
		d.Admit(fmt.Sprintf("filler-%d", i))
	}
	if d.Admit("q") {
		t.Error("aged-out query still admitted on what is effectively a first sighting")
	}
}

func TestCacheWithDoorkeeper(t *testing.T) {
	c := newCache(0, Weighted)
	c.SetAdmission(NewDoorkeeper(0))
	// First Put: rejected by the doorkeeper (first sighting).
	c.Put("one-off analytical question", "resp", Original, Reuse)
	if c.Len() != 0 {
		t.Fatalf("one-off cached: len=%d", c.Len())
	}
	// Second Put of the same query: admitted.
	c.Put("one-off analytical question", "resp", Original, Reuse)
	if c.Len() != 1 {
		t.Fatalf("recurring query not cached: len=%d", c.Len())
	}
	// nil restores admit-all.
	c.SetAdmission(nil)
	c.Put("brand new question", "resp", Original, Reuse)
	if c.Len() != 2 {
		t.Error("admit-all not restored")
	}
}

func TestDoorkeeperProtectsHotEntries(t *testing.T) {
	// Under cache pressure from a one-off scan, the doorkeeper keeps
	// recurring queries cacheable while never admitting the scan.
	c := newCache(4, Weighted)
	dk := NewDoorkeeper(0)
	c.SetAdmission(dk)
	hot := []string{"recurring query alpha", "recurring query beta"}
	for _, q := range hot {
		c.Put(q, "r", Original, Reuse) // sighting 1: rejected
		c.Put(q, "r", Original, Reuse) // sighting 2: admitted
	}
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("scan item %d with unique text", i), "r", Original, Reuse)
	}
	for _, q := range hot {
		if _, ok := c.Lookup(q); !ok {
			t.Errorf("hot query %q evicted by one-off scan", q)
		}
	}
	if c.Len() > 2 {
		t.Errorf("scan items were admitted: len=%d", c.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	c := newCache(0, Weighted)
	c.SetTTL(3)
	c.Put("short lived", "r", Original, Reuse)
	// Advance the logical clock past the TTL with unrelated lookups.
	for i := 0; i < 5; i++ {
		c.Lookup(fmt.Sprintf("unrelated probe %d", i))
	}
	if _, ok := c.Lookup("short lived"); ok {
		t.Error("expired entry served")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not removed: len=%d", c.Len())
	}
}

func TestTTLRefreshOnHit(t *testing.T) {
	c := newCache(0, Weighted)
	c.SetTTL(3)
	c.Put("kept alive", "r", Original, Reuse)
	for i := 0; i < 10; i++ {
		if _, ok := c.Lookup("kept alive"); !ok {
			t.Fatalf("entry expired despite being hit every tick (i=%d)", i)
		}
	}
}

func TestGetOrCompute(t *testing.T) {
	c := newCache(0, Weighted)
	calls := 0
	compute := func(ctx context.Context) (string, error) {
		calls++
		return "computed", nil
	}
	out, cached, err := c.GetOrCompute(context.Background(), "q", Original, Reuse, compute)
	if err != nil || cached || out != "computed" {
		t.Fatalf("first call: %q cached=%v err=%v", out, cached, err)
	}
	out, cached, err = c.GetOrCompute(context.Background(), "q", Original, Reuse, compute)
	if err != nil || !cached || out != "computed" {
		t.Fatalf("second call: %q cached=%v err=%v", out, cached, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
}

func TestGetOrComputeError(t *testing.T) {
	c := newCache(0, Weighted)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(context.Background(), "q", Original, Reuse,
		func(ctx context.Context) (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Error("failed compute was cached")
	}
}
