package integrate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/transform"
	"repro/internal/llm"
	"repro/internal/sqlkit"
	"repro/internal/workload"
)

// SerializeRowNL renders one table row as a natural-language sentence — the
// semantically richer serialization the paper proposes over plain
// row-linearization for PLM training data.
func SerializeRowNL(tableName string, cols []sqlkit.Column, row []sqlkit.Value) string {
	parts := make([]string, 0, len(cols))
	for i, c := range cols {
		if i < len(row) && !row[i].IsNull() {
			parts = append(parts, "the "+c.Name+" is "+row[i].Display())
		}
	}
	return "In table " + tableName + ", " + strings.Join(parts, ", ") + "."
}

// StatSentence is one SQL-derived natural-language statistic: the paper's
// "SELECT AVG(SALARY) FROM EMPLOYEE" → "the average salary of all the
// employees ... is $500" mechanism. The SQL is actually executed.
type StatSentence struct {
	SQL      string
	Sentence string
}

// DescribeTable executes aggregate SQL over every numeric column and the
// row count, rendering each result as a sentence. These sentences are the
// structural/statistical training inputs for downstream PLMs.
func DescribeTable(db *sqlkit.DB, table string) ([]StatSentence, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("integrate: unknown table %q", table)
	}
	var out []StatSentence
	countSQL := "SELECT COUNT(*) FROM " + table
	r, err := db.Exec(countSQL)
	if err != nil {
		return nil, err
	}
	out = append(out, StatSentence{
		SQL:      countSQL,
		Sentence: fmt.Sprintf("the table %s contains %s rows", table, r.Rows[0][0].Display()),
	})
	for _, c := range t.Cols {
		if c.Type != sqlkit.TInt && c.Type != sqlkit.TFloat {
			continue
		}
		for _, agg := range []struct{ fn, word string }{
			{"AVG", "average"}, {"MIN", "minimum"}, {"MAX", "maximum"},
		} {
			sql := fmt.Sprintf("SELECT %s(%s) FROM %s", agg.fn, c.Name, table)
			r, err := db.Exec(sql)
			if err != nil {
				return nil, err
			}
			if len(r.Rows) == 0 || r.Rows[0][0].IsNull() {
				continue
			}
			out = append(out, StatSentence{
				SQL: sql,
				Sentence: fmt.Sprintf("the %s %s of all the rows in the %s table is %s",
					agg.word, c.Name, table, r.Rows[0][0].Display()),
			})
		}
	}
	return out, nil
}

// Chunk is one slice of a large table.
type Chunk struct {
	Start, End int // row range [Start, End)
}

// SplitAdvisor recommends how to split a large table into PLM-sized chunks
// — the paper's "LLMs can assist in splitting big tables". The engine
// computes the split from the row count and the per-chunk budget; the LLM
// call prices the consultation and can, at weak tiers, recommend a split
// that overflows the budget.
type SplitAdvisor struct {
	Model llm.Model
}

// Recommend returns chunk boundaries so that each chunk holds at most
// maxRows rows.
func (s *SplitAdvisor) Recommend(ctx context.Context, table *sqlkit.Table, maxRows int) ([]Chunk, llm.Response, error) {
	if maxRows <= 0 {
		return nil, llm.Response{}, fmt.Errorf("integrate: non-positive chunk budget")
	}
	n := len(table.Rows)
	gold := (n + maxRows - 1) / maxRows
	if gold == 0 {
		gold = 1
	}
	wrong := gold - 1 // one chunk too few: overflows the budget
	if wrong < 1 {
		wrong = gold + 1
	}
	resp, err := s.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskLabel,
		Prompt:     fmt.Sprintf("Table %s has %d rows; the PLM input window fits %d rows. How many chunks?", table.Name, n, maxRows),
		Gold:       fmt.Sprintf("%d", gold),
		Wrong:      fmt.Sprintf("%d", wrong),
		Difficulty: 0.2,
	})
	if err != nil {
		return nil, llm.Response{}, err
	}
	var k int
	fmt.Sscanf(resp.Text, "%d", &k)
	if k < 1 {
		k = 1
	}
	per := (n + k - 1) / k
	var out []Chunk
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		out = append(out, Chunk{Start: start, End: end})
	}
	if n == 0 {
		out = []Chunk{{0, 0}}
	}
	return out, resp, nil
}

// --- Data cleaning ---

// CleanReport summarizes a cleaning pass.
type CleanReport struct {
	Column  string
	Pattern string
	Violations,
	Fixed int
}

// CleanColumnDates normalizes a date column with mixed formats to the
// majority format, using pattern mining to find violations and the
// column-transformation synthesis from the transform package to fix them.
// This composes two LLM applications exactly as the paper suggests
// (patterns validate quality; transformation programs repair it).
func CleanColumnDates(rows []workload.Row, col string) (CleanReport, []workload.Row) {
	rep := CleanReport{Column: col}
	// Majority format.
	counts := map[string]int{}
	for _, r := range rows {
		for _, f := range []string{"words", "slash", "iso"} {
			if _, _, _, ok := transform.ParseDateAs(f, r[col]); ok {
				counts[f]++
				break
			}
		}
	}
	var formats []string
	for f := range counts {
		formats = append(formats, f)
	}
	sort.Slice(formats, func(i, j int) bool {
		if counts[formats[i]] != counts[formats[j]] {
			return counts[formats[i]] > counts[formats[j]]
		}
		return formats[i] < formats[j]
	})
	if len(formats) == 0 {
		return rep, rows
	}
	major := formats[0]
	out := make([]workload.Row, len(rows))
	for i, r := range rows {
		nr := workload.Row{}
		for k, v := range r {
			nr[k] = v
		}
		v := nr[col]
		if _, _, _, ok := transform.ParseDateAs(major, v); ok || v == "" {
			out[i] = nr
			continue
		}
		rep.Violations++
		for _, f := range formats[1:] {
			if y, m, d, ok := transform.ParseDateAs(f, v); ok {
				nr[col] = transform.RenderDateAs(major, y, m, d)
				rep.Fixed++
				break
			}
		}
		out[i] = nr
	}
	if p, ok := transform.MinePattern(columnValues(out, col)); ok {
		rep.Pattern = p.String()
	}
	return rep, out
}

func columnValues(rows []workload.Row, col string) []string {
	var out []string
	for _, r := range rows {
		if r[col] != "" {
			out = append(out, r[col])
		}
	}
	return out
}
