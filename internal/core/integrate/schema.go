package integrate

import (
	"context"
	"sort"
	"strings"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

// ColumnSpec is one column offered for schema matching: its name and a
// sample of values.
type ColumnSpec struct {
	Name   string
	Sample []string
}

// SchemaMatch pairs a source column with its best target column.
type SchemaMatch struct {
	Source, Target string
	Score          float64
}

// SchemaMatcher aligns columns of two schemas. The engine scores candidate
// pairs by blended name similarity and value-distribution embedding
// similarity, then takes a greedy one-to-one assignment; each accepted pair
// is confirmed with an LLM call.
type SchemaMatcher struct {
	Model llm.Model
	Emb   *embed.Embedder
	// MinScore rejects pairs below this blended score.
	MinScore float64
	// Cost accumulates the API spend of every confirmation call, error
	// paths included.
	Cost token.Cost
}

// NewSchemaMatcher returns a matcher with sensible defaults.
func NewSchemaMatcher(m llm.Model, e *embed.Embedder) *SchemaMatcher {
	return &SchemaMatcher{Model: m, Emb: e, MinScore: 0.35}
}

// pairScore blends column-name similarity, value-shape agreement and
// value-embedding similarity. The shape feature (majority character-class
// signature of the values) is what lets "signup_date" align with
// "registration_date" even when no value is shared.
func (s *SchemaMatcher) pairScore(a, b ColumnSpec) float64 {
	name := trigramSim(a.Name, b.Name)
	shape := 0.0
	if shapeSignature(a.Sample) == shapeSignature(b.Sample) && shapeSignature(a.Sample) != "" {
		shape = 1
	}
	emb := embed.Cosine(s.Emb.Column(a.Name, a.Sample), s.Emb.Column(b.Name, b.Sample))
	return 0.35*name + 0.35*shape + 0.3*emb
}

// shapeSignature is the majority character-class sequence of the values:
// "L D D" for "Aug 14 2023", "L L" for "Alice Anderson", "L" for "Lyon".
func shapeSignature(values []string) string {
	counts := map[string]int{}
	for _, v := range values {
		var sig []string
		cur := ""
		flush := func() {
			if cur != "" {
				sig = append(sig, cur)
				cur = ""
			}
		}
		for _, r := range v {
			switch {
			case r >= '0' && r <= '9':
				if cur != "D" {
					flush()
					cur = "D"
				}
			case r == ' ':
				flush()
			default:
				if cur != "L" {
					flush()
					cur = "L"
				}
			}
		}
		flush()
		counts[strings.Join(sig, " ")]++
	}
	best, bestN := "", 0
	for s, n := range counts {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	return best
}

// Match aligns source columns to target columns one-to-one.
func (s *SchemaMatcher) Match(ctx context.Context, source, target []ColumnSpec) ([]SchemaMatch, error) {
	type cand struct {
		si, ti int
		score  float64
	}
	var cands []cand
	for i, a := range source {
		for j, b := range target {
			if sc := s.pairScore(a, b); sc >= s.MinScore {
				cands = append(cands, cand{i, j, sc})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].si != cands[j].si {
			return cands[i].si < cands[j].si
		}
		return cands[i].ti < cands[j].ti
	})
	usedS, usedT := map[int]bool{}, map[int]bool{}
	var out []SchemaMatch
	for _, c := range cands {
		if usedS[c.si] || usedT[c.ti] {
			continue
		}
		a, b := source[c.si], target[c.ti]
		gold, wrong := "yes", "no"
		margin := c.score - s.MinScore
		difficulty := 0.6 - margin
		if difficulty < 0.05 {
			difficulty = 0.05
		}
		resp, err := s.Model.Complete(ctx, llm.Request{
			Task: llm.TaskLabel,
			Prompt: "Do these two columns describe the same attribute?\nA: " + a.Name + " e.g. " + strings.Join(a.Sample, "||") +
				"\nB: " + b.Name + " e.g. " + strings.Join(b.Sample, "||"),
			Gold:       gold,
			Wrong:      wrong,
			Difficulty: difficulty,
		})
		s.Cost += resp.Cost
		if err != nil {
			return nil, err
		}
		if resp.Text != "yes" {
			continue
		}
		usedS[c.si], usedT[c.ti] = true, true
		out = append(out, SchemaMatch{Source: a.Name, Target: b.Name, Score: c.score})
	}
	return out, nil
}

// --- Column type annotation (the paper's few-shot CTA example) ---

// TypeAnnotator labels columns with semantic types by few-shot
// nearest-centroid classification: labeled example columns are embedded,
// per-type centroids averaged, and a new column is assigned the nearest
// centroid's type. The LLM call carries the paper's exact prompt shape.
type TypeAnnotator struct {
	Model llm.Model
	Emb   *embed.Embedder

	types     []string
	centroids map[string][]float64
}

// NewTypeAnnotator trains the annotator from labeled example columns.
func NewTypeAnnotator(m llm.Model, e *embed.Embedder, examples []workload.ColumnTypeSample) *TypeAnnotator {
	a := &TypeAnnotator{Model: m, Emb: e, centroids: map[string][]float64{}}
	counts := map[string]int{}
	for _, ex := range examples {
		v := e.Column("", ex.Values)
		if a.centroids[ex.Gold] == nil {
			a.centroids[ex.Gold] = make([]float64, len(v))
		}
		for i, x := range v {
			a.centroids[ex.Gold][i] += float64(x)
		}
		counts[ex.Gold]++
	}
	for ty, c := range a.centroids {
		n := float64(counts[ty])
		for i := range c {
			c[i] /= n
		}
		a.types = append(a.types, ty)
	}
	sort.Strings(a.types)
	return a
}

// classify is the deterministic few-shot engine.
func (a *TypeAnnotator) classify(values []string) (best string, margin float64) {
	v := a.Emb.Column("", values)
	scores := make(map[string]float64, len(a.types))
	for _, ty := range a.types {
		var dot float64
		for i, c := range a.centroids[ty] {
			dot += c * float64(v[i])
		}
		scores[ty] = dot
	}
	var second float64
	bestScore := -1e18
	for _, ty := range a.types {
		if scores[ty] > bestScore {
			second = bestScore
			bestScore = scores[ty]
			best = ty
		} else if scores[ty] > second {
			second = scores[ty]
		}
	}
	return best, bestScore - second
}

// Annotate predicts the semantic type of a column.
func (a *TypeAnnotator) Annotate(ctx context.Context, values []string) (string, llm.Response, error) {
	gold, margin := a.classify(values)
	wrong := a.types[0]
	if wrong == gold && len(a.types) > 1 {
		wrong = a.types[1]
	}
	difficulty := 0.55 - margin*3
	if difficulty < 0.05 {
		difficulty = 0.05
	}
	if difficulty > 0.9 {
		difficulty = 0.9
	}
	resp, err := a.Model.Complete(ctx, llm.Request{
		Task: llm.TaskLabel,
		Prompt: "Given the following column types: " + strings.Join(a.types, ", ") +
			". You need to predict the column type according to the column values. " +
			strings.Join(values, "||") + ", this column type is __.",
		Gold:       gold,
		Wrong:      wrong,
		Difficulty: difficulty,
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}
