package integrate

import (
	"sort"

	"repro/internal/workload"
)

// Clusters groups rows into entity clusters from pairwise match decisions
// using union-find: the transitive closure of "is the same entity as".
// Each cluster is a sorted slice of row indexes; singletons are included,
// so the clusters partition [0, n).
func Clusters(decisions []MatchDecision, n int) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, d := range decisions {
		if d.Match && d.I >= 0 && d.I < n && d.J >= 0 && d.J < n {
			union(d.I, d.J)
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// Merge produces one canonical record per cluster: for each column, the
// most frequent non-empty value wins, ties broken by the earliest row —
// the survivorship rule of deduplication pipelines.
func Merge(rows []workload.Row, cluster []int, cols []string) workload.Row {
	out := workload.Row{}
	for _, c := range cols {
		counts := map[string]int{}
		first := map[string]int{}
		for pos, i := range cluster {
			v := rows[i][c]
			if v == "" {
				continue
			}
			counts[v]++
			if _, seen := first[v]; !seen {
				first[v] = pos
			}
		}
		best, bestN, bestPos := "", 0, 1<<30
		for v, nv := range counts {
			if nv > bestN || (nv == bestN && first[v] < bestPos) {
				best, bestN, bestPos = v, nv, first[v]
			}
		}
		out[c] = best
	}
	return out
}

// Dedupe runs clustering plus merging, returning one canonical row per
// entity, ordered by the clusters' smallest member index.
func Dedupe(rows []workload.Row, decisions []MatchDecision, cols []string) []workload.Row {
	clusters := Clusters(decisions, len(rows))
	out := make([]workload.Row, 0, len(clusters))
	for _, cl := range clusters {
		out = append(out, Merge(rows, cl, cols))
	}
	return out
}
