// Package integrate implements the paper's Section II-C applications:
// entity resolution, schema matching, column type annotation and data
// cleaning via LLM prompting, plus the table-understanding toolkit
// (row/column serialization, SQL-to-natural-language statistics sentences,
// and large-table splitting).
package integrate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

// trigramSim is Jaccard similarity over character trigrams — the classic
// string-matching core of entity resolution systems.
func trigramSim(a, b string) float64 {
	ta, tb := trigramSet(a), trigramSet(b)
	if len(ta) == 0 || len(tb) == 0 {
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigramSet(s string) map[string]bool {
	s = strings.ToLower(strings.Join(strings.Fields(s), " "))
	out := map[string]bool{}
	r := []rune(s)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = true
	}
	return out
}

// SerializeEntity renders a row as the entity description used in ER
// prompts.
func SerializeEntity(row workload.Row, cols []string) string {
	parts := make([]string, 0, len(cols))
	for _, c := range cols {
		if row[c] != "" {
			parts = append(parts, c+": "+row[c])
		}
	}
	return strings.Join(parts, "; ")
}

// PairScore computes the similarity of two rows over the compared columns
// (mean per-column trigram similarity).
func PairScore(a, b workload.Row, cols []string) float64 {
	if len(cols) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cols {
		sum += trigramSim(a[c], b[c])
	}
	return sum / float64(len(cols))
}

// Resolver performs entity resolution: candidate pairs survive a cheap
// blocking pass, then each pair is judged by an LLM call using the paper's
// prompt ("Are the following entity descriptions the same real-world
// entity?"). The matching engine is the trigram similarity above; the LLM
// tier decides whether its judgment is delivered faithfully, with pairs
// near the decision boundary being hardest.
type Resolver struct {
	Model llm.Model
	// Threshold is the match decision boundary on PairScore.
	Threshold float64
	// CompareCols are the columns entity identity depends on.
	CompareCols []string
	// BlockCol groups rows so only same-block pairs are compared; empty
	// disables blocking.
	BlockCol string
	// Cost accumulates the API spend of every judgment call, error paths
	// included, so callers can account resolution against a budget.
	Cost token.Cost
}

// MatchDecision is the outcome for one candidate pair.
type MatchDecision struct {
	I, J  int
	Score float64
	Match bool
}

// Resolve finds duplicate pairs among rows. It returns the decisions for
// every compared pair and the number of LLM calls made.
func (r *Resolver) Resolve(ctx context.Context, rows []workload.Row) ([]MatchDecision, int, error) {
	return r.judgePairs(ctx, rows, r.candidatePairs(rows))
}

// judgePairs runs the LLM match judgment over an explicit pair list.
func (r *Resolver) judgePairs(ctx context.Context, rows []workload.Row, pairs [][2]int) ([]MatchDecision, int, error) {
	var out []MatchDecision
	calls := 0
	for _, p := range pairs {
		score := PairScore(rows[p[0]], rows[p[1]], r.CompareCols)
		engineSays := score >= r.Threshold
		// Boundary distance drives difficulty: a pair at the threshold is
		// genuinely ambiguous, a clear match/non-match is easy.
		margin := score - r.Threshold
		if margin < 0 {
			margin = -margin
		}
		difficulty := 0.75 - 1.5*margin
		if difficulty < 0.05 {
			difficulty = 0.05
		}
		gold, wrong := "yes", "no"
		if !engineSays {
			gold, wrong = "no", "yes"
		}
		resp, err := r.Model.Complete(ctx, llm.Request{
			Task: llm.TaskLabel,
			Prompt: "Are the following entity descriptions the same real-world entity?\nA: " +
				SerializeEntity(rows[p[0]], r.CompareCols) + "\nB: " + SerializeEntity(rows[p[1]], r.CompareCols),
			Gold:       gold,
			Wrong:      wrong,
			Difficulty: difficulty,
		})
		r.Cost += resp.Cost
		if err != nil {
			return nil, calls, err
		}
		calls++
		out = append(out, MatchDecision{I: p[0], J: p[1], Score: score, Match: resp.Text == "yes"})
	}
	return out, calls, nil
}

// candidatePairs applies blocking: only pairs sharing the block key are
// compared (all pairs when blocking is disabled).
func (r *Resolver) candidatePairs(rows []workload.Row) [][2]int {
	var out [][2]int
	if r.BlockCol == "" {
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	}
	blocks := map[string][]int{}
	for i, row := range rows {
		blocks[strings.ToLower(row[r.BlockCol])] = append(blocks[strings.ToLower(row[r.BlockCol])], i)
	}
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx := blocks[k]
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx); j++ {
				out = append(out, [2]int{idx[i], idx[j]})
			}
		}
	}
	return out
}

// ExactBaseline is the naive comparator LLM-based ER is measured against:
// two rows match only when every compared column is byte-identical.
func ExactBaseline(rows []workload.Row, cols []string) []MatchDecision {
	var out []MatchDecision
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			match := true
			for _, c := range cols {
				if rows[i][c] != rows[j][c] {
					match = false
					break
				}
			}
			if match {
				out = append(out, MatchDecision{I: i, J: j, Score: 1, Match: true})
			}
		}
	}
	return out
}

// PRF1 grades decisions against gold duplicate pairs.
func PRF1(decisions []MatchDecision, gold [][2]int) (precision, recall, f1 float64) {
	goldSet := map[[2]int]bool{}
	for _, g := range gold {
		goldSet[norm(g)] = true
	}
	tp, fp := 0, 0
	for _, d := range decisions {
		if !d.Match {
			continue
		}
		if goldSet[norm([2]int{d.I, d.J})] {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if len(gold) > 0 {
		recall = float64(tp) / float64(len(gold))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}

func norm(p [2]int) [2]int {
	if p[0] > p[1] {
		return [2]int{p[1], p[0]}
	}
	return p
}

// String implements fmt.Stringer for diagnostics.
func (d MatchDecision) String() string {
	return fmt.Sprintf("(%d,%d score=%.2f match=%t)", d.I, d.J, d.Score, d.Match)
}
