package integrate

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestClustersTransitiveClosure(t *testing.T) {
	decisions := []MatchDecision{
		{I: 0, J: 1, Match: true},
		{I: 1, J: 2, Match: true}, // 0-1-2 chain
		{I: 3, J: 4, Match: true},
		{I: 5, J: 6, Match: false}, // non-matches must not merge
	}
	got := Clusters(decisions, 7)
	want := [][]int{{0, 1, 2}, {3, 4}, {5}, {6}}
	if len(got) != len(want) {
		t.Fatalf("clusters = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("cluster %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("cluster %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// Property: clusters always partition [0, n) regardless of the decision set.
func TestClustersPartitionProperty(t *testing.T) {
	f := func(pairs []uint8, n8 uint8) bool {
		n := int(n8%20) + 1
		var decisions []MatchDecision
		for i := 0; i+1 < len(pairs); i += 2 {
			decisions = append(decisions, MatchDecision{
				I: int(pairs[i]) % n, J: int(pairs[i+1]) % n, Match: pairs[i]%2 == 0,
			})
		}
		seen := map[int]int{}
		for _, cl := range Clusters(decisions, n) {
			if len(cl) == 0 {
				return false
			}
			for _, i := range cl {
				seen[i]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeSurvivorship(t *testing.T) {
	rows := []workload.Row{
		{"name": "Alice Anderson", "city": "Lyon", "segment": "retail"},
		{"name": "ALICE ANDERSON", "city": "Lyon", "segment": ""},
		{"name": "Alice Anderson", "city": "LYON", "segment": "retail"},
	}
	m := Merge(rows, []int{0, 1, 2}, []string{"name", "city", "segment"})
	if m["name"] != "Alice Anderson" {
		t.Errorf("name = %q (majority should win)", m["name"])
	}
	if m["city"] != "Lyon" {
		t.Errorf("city = %q", m["city"])
	}
	if m["segment"] != "retail" {
		t.Errorf("segment = %q (empty values must not win)", m["segment"])
	}
}

func TestDedupeEndToEnd(t *testing.T) {
	set := workload.GenCustomers(9, 60, 0, 0.3)
	r := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: []string{"name"}, BlockCol: "country"}
	decisions, _, err := r.Resolve(context.Background(), set.Rows)
	if err != nil {
		t.Fatal(err)
	}
	deduped := Dedupe(set.Rows, decisions, set.Cols)
	// 60 originals + 18 duplicates; dedup should land near 60.
	if len(deduped) >= len(set.Rows) {
		t.Errorf("dedupe removed nothing: %d of %d", len(deduped), len(set.Rows))
	}
	if len(deduped) < 55 || len(deduped) > 66 {
		t.Errorf("deduped to %d rows, expected ~60", len(deduped))
	}
	for _, row := range deduped {
		if row["name"] == "" {
			t.Error("canonical row lost its name")
		}
	}
}

func TestClustersEmpty(t *testing.T) {
	if got := Clusters(nil, 0); len(got) != 0 {
		t.Errorf("empty clusters = %v", got)
	}
	got := Clusters(nil, 3)
	if len(got) != 3 {
		t.Errorf("no-decision clusters = %v", got)
	}
}

func TestSortedNeighborhoodBlocking(t *testing.T) {
	set := workload.GenCustomers(13, 80, 0, 0.25)
	pairs := SortedNeighborhood(set.Rows, "name", 5)
	// Bounded candidate count.
	if len(pairs) > len(set.Rows)*4 {
		t.Errorf("too many candidates: %d", len(pairs))
	}
	// The window must surface most gold duplicate pairs (names sort
	// adjacently even with case/typo perturbations... case differences are
	// lowercased by the key).
	inPairs := map[[2]int]bool{}
	for _, p := range pairs {
		inPairs[p] = true
	}
	covered := 0
	for _, g := range set.DuplicatePairs {
		a, b := g[0], g[1]
		if a > b {
			a, b = b, a
		}
		if inPairs[[2]int{a, b}] {
			covered++
		}
	}
	if float64(covered)/float64(len(set.DuplicatePairs)) < 0.6 {
		t.Errorf("sorted neighborhood covered only %d/%d gold pairs", covered, len(set.DuplicatePairs))
	}
}

func TestResolvePairsWithSortedNeighborhood(t *testing.T) {
	set := workload.GenCustomers(13, 80, 0, 0.25)
	r := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: []string{"name"}}
	pairs := SortedNeighborhood(set.Rows, "name", 5)
	decisions, calls, err := r.ResolvePairs(context.Background(), set.Rows, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(pairs) {
		t.Errorf("calls %d != pairs %d", calls, len(pairs))
	}
	_, rec, _ := PRF1(decisions, set.DuplicatePairs)
	if rec < 0.5 {
		t.Errorf("recall via sorted neighborhood %.3f too low", rec)
	}
}

func TestSortedNeighborhoodWindowFloor(t *testing.T) {
	rows := []workload.Row{{"k": "b"}, {"k": "a"}, {"k": "c"}}
	pairs := SortedNeighborhood(rows, "k", 0) // floors to 2: adjacent only
	if len(pairs) != 2 {
		t.Errorf("pairs = %v", pairs)
	}
}
