package integrate

import (
	"context"
	"sort"
	"strings"

	"repro/internal/workload"
)

// SortedNeighborhood generates candidate pairs with the classic
// sorted-neighborhood method: rows are sorted by a blocking key and every
// pair within a sliding window of the sorted order is compared. Unlike
// hash blocking on an exact key, it tolerates typos at the key's tail and
// bounds the candidate count at n·(window−1) regardless of skew.
func SortedNeighborhood(rows []workload.Row, keyCol string, window int) [][2]int {
	if window < 2 {
		window = 2
	}
	type keyed struct {
		key string
		idx int
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		ks[i] = keyed{key: strings.ToLower(r[keyCol]), idx: i}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].idx < ks[j].idx
	})
	var out [][2]int
	for i := range ks {
		for j := i + 1; j < len(ks) && j < i+window; j++ {
			a, b := ks[i].idx, ks[j].idx
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// ResolvePairs runs the resolver's LLM judgment over an explicit candidate
// pair list (from any blocking strategy), bypassing the resolver's own
// blocking.
func (r *Resolver) ResolvePairs(ctx context.Context, rows []workload.Row, pairs [][2]int) ([]MatchDecision, int, error) {
	return r.judgePairs(ctx, rows, pairs)
}
