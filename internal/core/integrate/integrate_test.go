package integrate

import (
	"context"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func strongModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "strong", Capability: 1.0, NoiseAmp: 0.001,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func TestTrigramSim(t *testing.T) {
	if s := trigramSim("Alice Anderson", "Alice Anderson"); s != 1 {
		t.Errorf("self sim = %v", s)
	}
	near := trigramSim("Alice Anderson", "Alce Anderson") // dropped char
	far := trigramSim("Alice Anderson", "Zoltan Kovacs")
	if near <= far {
		t.Errorf("near %v not above far %v", near, far)
	}
	if s := trigramSim("", ""); s != 1 {
		t.Errorf("empty-empty = %v", s)
	}
	if s := trigramSim("ab", "cd"); s != 0 {
		t.Errorf("short unrelated = %v", s)
	}
}

func TestEntityResolutionBeatsExactBaseline(t *testing.T) {
	set := workload.GenCustomers(3, 80, 0, 0.25)
	// Identity is carried by the name; blocking on country bounds the pair
	// count. Comparing on the block key itself would inflate every
	// same-block pair's score.
	cols := []string{"name"}

	r := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: cols, BlockCol: "country"}
	decisions, calls, err := r.Resolve(context.Background(), set.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no LLM calls made")
	}
	_, recLLM, f1LLM := PRF1(decisions, set.DuplicatePairs)

	base := ExactBaseline(set.Rows, []string{"name", "city", "signup_date"})
	_, recBase, _ := PRF1(base, set.DuplicatePairs)

	// Perturbed duplicates defeat exact matching; similarity+LLM recovers
	// most of them.
	if recBase > 0.1 {
		t.Errorf("exact baseline recall %.3f unexpectedly high", recBase)
	}
	if recLLM < 0.6 {
		t.Errorf("LLM resolver recall %.3f too low", recLLM)
	}
	if f1LLM < 0.55 {
		t.Errorf("LLM resolver F1 %.3f too low", f1LLM)
	}
}

func TestBlockingReducesPairs(t *testing.T) {
	set := workload.GenCustomers(5, 60, 0, 0.2)
	cols := []string{"name"}
	blocked := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: cols, BlockCol: "country"}
	unblocked := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: cols}
	_, callsB, err := blocked.Resolve(context.Background(), set.Rows)
	if err != nil {
		t.Fatal(err)
	}
	_, callsU, err := unblocked.Resolve(context.Background(), set.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if callsB >= callsU/2 {
		t.Errorf("blocking saved too little: %d vs %d calls", callsB, callsU)
	}
}

func TestPRF1Edge(t *testing.T) {
	p, r, f1 := PRF1(nil, nil)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("empty PRF1 = %v %v %v", p, r, f1)
	}
	dec := []MatchDecision{{I: 2, J: 1, Match: true}}
	_, rec, _ := PRF1(dec, [][2]int{{1, 2}})
	if rec != 1 {
		t.Errorf("pair order not normalized: recall %v", rec)
	}
}

func TestSerializeEntity(t *testing.T) {
	s := SerializeEntity(workload.Row{"name": "Alice", "city": "", "country": "Florin"}, []string{"name", "city", "country"})
	if s != "name: Alice; country: Florin" {
		t.Errorf("serialize = %q", s)
	}
}

func TestSchemaMatcher(t *testing.T) {
	e := embed.New(embed.DefaultDim)
	m := NewSchemaMatcher(strongModel(), e)
	source := []ColumnSpec{
		{Name: "customer_name", Sample: []string{"Alice Anderson", "Bruno Costa"}},
		{Name: "signup_date", Sample: []string{"Aug 14 2023", "Sep 02 2021"}},
		{Name: "city", Sample: []string{"Lyon", "Riga"}},
	}
	target := []ColumnSpec{
		{Name: "name", Sample: []string{"Dana Silva", "Omar Petrov"}},
		{Name: "registration_date", Sample: []string{"Jul 01 2022", "Jan 20 2020"}},
		{Name: "town", Sample: []string{"Kyoto", "Porto"}},
	}
	matches, err := m.Match(context.Background(), source, target)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, mt := range matches {
		got[mt.Source] = mt.Target
	}
	if got["signup_date"] != "registration_date" {
		t.Errorf("date columns not matched: %v", got)
	}
	if got["customer_name"] == "registration_date" || got["city"] == "registration_date" {
		t.Errorf("one-to-one violated: %v", got)
	}
	// One-to-one: no target repeated.
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("target %s matched twice", v)
		}
		seen[v] = true
	}
}

func TestTypeAnnotatorPaperExample(t *testing.T) {
	e := embed.New(embed.DefaultDim)
	train := workload.GenColumnTypeBench(7, 60)
	a := NewTypeAnnotator(strongModel(), e, train)

	// The paper's running example: "Basketball||Badminton||Table Tennis,
	// this column type is __" -> sports.
	got, resp, err := a.Annotate(context.Background(), []string{"Basketball", "Badminton", "Table Tennis"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "sports" {
		t.Errorf("annotated %q, want sports", got)
	}
	if !strings.Contains(resp.Model, "strong") {
		t.Errorf("model = %s", resp.Model)
	}
}

func TestTypeAnnotatorAccuracy(t *testing.T) {
	e := embed.New(embed.DefaultDim)
	train := workload.GenColumnTypeBench(7, 120)
	test := workload.GenColumnTypeBench(8, 60)
	a := NewTypeAnnotator(strongModel(), e, train)
	correct := 0
	for _, c := range test {
		got, _, err := a.Annotate(context.Background(), c.Values)
		if err != nil {
			t.Fatal(err)
		}
		if got == c.Gold {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.8 {
		t.Errorf("CTA accuracy %.3f too low", acc)
	}
}

func TestSerializeRowNL(t *testing.T) {
	db := workload.ConcertDB(11)
	tab := db.Table("stadium")
	s := SerializeRowNL(tab.Name, tab.Cols, tab.Rows[0])
	if !strings.Contains(s, "In table stadium") || !strings.Contains(s, "the capacity is") {
		t.Errorf("serialization = %q", s)
	}
}

func TestDescribeTable(t *testing.T) {
	db := workload.ConcertDB(11)
	stats, err := DescribeTable(db, "stadium")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 4 { // count + avg/min/max over at least capacity
		t.Fatalf("stats = %d sentences", len(stats))
	}
	foundAvg := false
	for _, s := range stats {
		if strings.Contains(s.SQL, "AVG(capacity)") {
			foundAvg = true
			if !strings.Contains(s.Sentence, "average capacity") {
				t.Errorf("avg sentence = %q", s.Sentence)
			}
		}
		// Every sentence's SQL must execute (they were executed to build
		// the sentence, re-check).
		if _, err := db.Exec(s.SQL); err != nil {
			t.Errorf("stat SQL fails: %v", err)
		}
	}
	if !foundAvg {
		t.Error("no AVG sentence produced")
	}
	if _, err := DescribeTable(db, "nope"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestSplitAdvisor(t *testing.T) {
	db := workload.ConcertDB(11)
	tab := db.Table("concert")
	s := &SplitAdvisor{Model: strongModel()}
	chunks, _, err := s.Recommend(context.Background(), tab, 50)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, c := range chunks {
		if c.End-c.Start > 50 {
			t.Errorf("chunk [%d,%d) overflows budget", c.Start, c.End)
		}
		covered += c.End - c.Start
	}
	if covered != len(tab.Rows) {
		t.Errorf("chunks cover %d of %d rows", covered, len(tab.Rows))
	}
	if _, _, err := s.Recommend(context.Background(), tab, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCleanColumnDates(t *testing.T) {
	rows := []workload.Row{
		{"d": "Aug 14 2023"},
		{"d": "Sep 02 2021"},
		{"d": "8/14/2023"},
		{"d": "Jan 30 1999"},
		{"d": ""},
	}
	rep, cleaned := CleanColumnDates(rows, "d")
	if rep.Violations != 1 || rep.Fixed != 1 {
		t.Errorf("report = %+v", rep)
	}
	if cleaned[2]["d"] != "Aug 14 2023" {
		t.Errorf("fixed value = %q", cleaned[2]["d"])
	}
	if rep.Pattern == "" {
		t.Error("no pattern mined after cleaning")
	}
	// Input untouched.
	if rows[2]["d"] != "8/14/2023" {
		t.Error("cleaning mutated input")
	}
}

func BenchmarkResolve(b *testing.B) {
	set := workload.GenCustomers(3, 60, 0, 0.2)
	r := &Resolver{Model: strongModel(), Threshold: 0.5, CompareCols: []string{"name"}, BlockCol: "country"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Resolve(context.Background(), set.Rows); err != nil {
			b.Fatal(err)
		}
	}
}
