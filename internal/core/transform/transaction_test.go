package transform

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sqlkit"
)

func TestParsePaymentsPaperExample(t *testing.T) {
	// "Alice wants to buy a laptop from Bob, they agree on a price of
	// $1,000, and Bob needs to pay $5 to the express company as freight."
	ps, err := ParsePayments("Alice pays Bob $1000 and Bob pays Express $5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("payments = %d", len(ps))
	}
	if ps[0] != (Payment{From: "Alice", To: "Bob", Amount: 1000}) {
		t.Errorf("first = %+v", ps[0])
	}
	if ps[1] != (Payment{From: "Bob", To: "Express", Amount: 5}) {
		t.Errorf("second = %+v", ps[1])
	}
}

func TestParsePaymentsAltPhrasings(t *testing.T) {
	ps, err := ParsePayments("Alice needs to pay $50 to Bob. Bob transfers Carol $20.")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Amount != 50 || ps[1].To != "Carol" {
		t.Errorf("parsed %+v", ps)
	}
}

func TestParsePaymentsErrors(t *testing.T) {
	for _, s := range []string{"", "Alice greets Bob", "Alice pays Bob"} {
		if _, err := ParsePayments(s); err == nil {
			t.Errorf("ParsePayments(%q) succeeded", s)
		}
	}
}

func TestTransactionSQLExecutes(t *testing.T) {
	ps := []Payment{{From: "Alice", To: "Bob", Amount: 1000}, {From: "Bob", To: "Express", Amount: 5}}
	script := TransactionSQL(ps)
	db := sqlkit.NewDB()
	db.Exec("CREATE TABLE accounts (owner TEXT, balance INT)")
	db.Exec("INSERT INTO accounts VALUES ('Alice', 5000), ('Bob', 100), ('Express', 0)")
	if _, err := db.ExecScript(script); err != nil {
		t.Fatalf("script failed: %v\n%s", err, script)
	}
	r, _ := db.Exec("SELECT balance FROM accounts WHERE owner = 'Bob'")
	if r.Rows[0][0].Int != 1095 {
		t.Errorf("Bob = %v", r.Rows[0][0])
	}
	// Total is conserved.
	r, _ = db.Exec("SELECT SUM(balance) FROM accounts")
	if r.Rows[0][0].Int != 5100 {
		t.Errorf("total = %v", r.Rows[0][0])
	}
}

func TestNL2TransactionStrongModel(t *testing.T) {
	n := &NL2Transaction{Model: strongModel()}
	script, resp, err := n.Translate(context.Background(), "Alice pays Bob $1000 and Bob pays Express $5")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Correct {
		t.Error("strong model erred")
	}
	if !strings.HasPrefix(script, "BEGIN") || !strings.HasSuffix(script, "COMMIT;") {
		t.Errorf("script not a transaction:\n%s", script)
	}
	if !ValidateConservation(script) {
		t.Error("correct script fails conservation check")
	}
}

func TestValidationCatchesCorruption(t *testing.T) {
	// Collect a wrong output by using a model that always errs on non-zero
	// difficulty, then confirm the conservation validator flags it.
	n := &NL2Transaction{Model: failingModel()}
	script, resp, err := n.Translate(context.Background(), "Alice pays Bob $1000 and Bob pays Express $5")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Correct {
		t.Skip("model unexpectedly correct")
	}
	if ValidateConservation(script) {
		t.Errorf("validator missed dropped credit leg:\n%s", script)
	}
}

func TestValidateConservationEdge(t *testing.T) {
	if ValidateConservation("") {
		t.Error("empty script validated")
	}
	if ValidateConservation("SELECT 1") {
		t.Error("non-transaction validated")
	}
}
