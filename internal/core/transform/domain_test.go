package transform

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// employeeSpec declares the second NL2SQL domain.
func employeeSpec() *DomainSpec {
	return &DomainSpec{
		Entity:       "employee",
		EntityPlural: "employees",
		Key:          "employee_id",
		NameCol:      "name",
		Events: []EventSpec{
			{Verb: "worked on", Noun: "projects", Table: "project_assignment", YearCol: "year"},
			{Verb: "attended", Noun: "trainings", Table: "training_session", YearCol: "year"},
		},
		Attrs: []AttrSpec{{Noun: "salary", Col: "salary"}},
	}
}

func TestDomainParseEmployee(t *testing.T) {
	dt := NewDomainTranslator(employeeSpec(), strongModel())
	p, err := dt.Parse("What are the names of employees that worked on projects in 2015 or attended trainings in 2016?")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Atoms) != 2 || p.Conn != workload.ConnOr {
		t.Fatalf("parsed %+v", p)
	}
	if p.Atoms[0].Event.Table != "project_assignment" || p.Atoms[1].Event.Table != "training_session" {
		t.Errorf("event mapping wrong: %+v", p.Atoms)
	}
	if p.Difficulty() != DifficultyCompound {
		t.Errorf("difficulty = %v", p.Difficulty())
	}
}

func TestDomainParseAttrAndMost(t *testing.T) {
	dt := NewDomainTranslator(employeeSpec(), strongModel())
	p, err := dt.Parse("Show the names of employees that have a salary greater than 60000?")
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Kind != "attr" || p.Atoms[0].Op != ">" || p.Atoms[0].N != 60000 {
		t.Errorf("attr atom = %+v", p.Atoms[0])
	}

	p, err = dt.Parse("Show the names of employees that worked on the most projects in 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Kind != "most" {
		t.Errorf("most atom = %+v", p.Atoms[0])
	}
}

func TestDomainRejectsForeignQuestions(t *testing.T) {
	dt := NewDomainTranslator(employeeSpec(), strongModel())
	for _, q := range []string{
		"What are the names of stadiums that had concerts in 2014?", // wrong domain
		"Show the names of employees that danced in 2015?",          // unknown verb
		"",
	} {
		if _, err := dt.Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestDomainGoldSQLExecutes(t *testing.T) {
	db := workload.EmployeeDB(3)
	dt := NewDomainTranslator(employeeSpec(), strongModel())
	qs := workload.EmployeeQuestions(5, 40)
	for _, q := range qs {
		p, err := dt.Parse(q.Text)
		if err != nil {
			t.Errorf("cannot parse %q: %v", q.Text, err)
			continue
		}
		if p.SQL() != q.GoldSQL {
			t.Errorf("SQL mismatch for %q:\n  parsed: %s\n  gold:   %s", q.Text, p.SQL(), q.GoldSQL)
		}
		if _, err := db.Exec(p.SQL()); err != nil {
			t.Errorf("SQL fails for %q: %v", q.Text, err)
		}
	}
}

func TestDomainTranslateEndToEnd(t *testing.T) {
	db := workload.EmployeeDB(3)
	dt := NewDomainTranslator(employeeSpec(), strongModel())
	qs := workload.EmployeeQuestions(7, 20)
	for _, q := range qs {
		sql, resp, err := dt.Translate(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Correct {
			t.Errorf("strong model erred on %q", q.Text)
		}
		got, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("translated SQL fails: %v\n%s", err, sql)
		}
		want, _ := db.Exec(q.GoldSQL)
		if !got.EqualBag(want) {
			t.Errorf("execution mismatch for %q", q.Text)
		}
	}
}

func TestDomainWeakModelEmitsValidWrongSQL(t *testing.T) {
	db := workload.EmployeeDB(3)
	dt := NewDomainTranslator(employeeSpec(), weakModel())
	qs := workload.EmployeeQuestions(11, 40)
	wrongs := 0
	for _, q := range qs {
		sql, resp, err := dt.Translate(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(sql); err != nil {
			t.Errorf("emitted SQL invalid: %v\n%s", err, sql)
		}
		if !resp.Correct {
			wrongs++
		}
	}
	if wrongs == 0 {
		t.Error("weak model never erred on the employee domain")
	}
}

// The concert schema expressed as a DomainSpec must parse concert-style
// questions too — the generality check.
func TestConcertExpressibleAsDomain(t *testing.T) {
	spec := &DomainSpec{
		Entity:       "stadium",
		EntityPlural: "stadiums",
		Key:          "stadium_id",
		NameCol:      "name",
		Events: []EventSpec{
			{Verb: "had", Noun: "concerts", Table: "concert", YearCol: "year"},
			{Verb: "had", Noun: "sports meetings", Table: "sports_meeting", YearCol: "year"},
		},
		Attrs: []AttrSpec{{Noun: "capacity", Col: "capacity"}},
	}
	dt := NewDomainTranslator(spec, strongModel())
	db := workload.ConcertDB(3)
	p, err := dt.Parse("What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(p.SQL()); err != nil {
		t.Fatalf("domain-generated concert SQL fails: %v\n%s", err, p.SQL())
	}
}
