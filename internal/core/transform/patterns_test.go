package transform

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestMinePatternPaperExample(t *testing.T) {
	// The paper's example: "Aug 14 2023" has pattern
	// "<letter>{3} <digit>{2} <digit>{4}".
	p, ok := MinePattern([]string{"Aug 14 2023", "Sep 02 2021", "Jan 30 1999"})
	if !ok {
		t.Fatal("no pattern mined")
	}
	if got := p.String(); got != "<letter>{3} <digit>{2} <digit>{4}" {
		t.Errorf("pattern = %q", got)
	}
	if !p.Match("Dec 25 2020") {
		t.Error("pattern rejects conforming value")
	}
	if p.Match("8/14/2023") {
		t.Error("pattern accepts other format")
	}
}

func TestMinePatternStructuralMismatch(t *testing.T) {
	if _, ok := MinePattern([]string{"Aug 14 2023", "2023-08-14"}); ok {
		t.Error("mined a pattern over structurally different values")
	}
	if _, ok := MinePattern(nil); ok {
		t.Error("mined a pattern over no values")
	}
}

func TestMinePatternVariableWidth(t *testing.T) {
	p, ok := MinePattern([]string{"C001", "C12345"})
	if !ok {
		t.Fatal("no pattern")
	}
	if !p.Match("C99") || !p.Match("C123456") == false && false {
		t.Errorf("variable-width matching wrong for %s", p)
	}
	if !p.Match("C9") {
		t.Error("min-width value rejected")
	}
}

// Property: any pattern mined from a set matches every member of the set.
func TestMinedPatternMatchesInputs(t *testing.T) {
	f := func(a, b, c string) bool {
		vals := []string{a, b, c}
		for _, v := range vals {
			if v == "" {
				return true
			}
		}
		p, ok := MinePattern(vals)
		if !ok {
			return true
		}
		for _, v := range vals {
			if !p.Match(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchRateAndDrift(t *testing.T) {
	old := []string{"Aug 14 2023", "Sep 02 2021", "Jan 30 1999"}
	refreshedGood := []string{"Feb 11 2024", "Mar 03 2024"}
	refreshedBad := []string{"2024-02-11", "2024-03-03"}

	drift, p := DriftDetected(old, refreshedGood, 0.1)
	if drift {
		t.Errorf("false drift alarm; pattern %s", p)
	}
	drift, _ = DriftDetected(old, refreshedBad, 0.1)
	if !drift {
		t.Error("drift missed")
	}
}

func TestInferDateTransform(t *testing.T) {
	src := []string{"Aug 14 2023", "Sep 02 2021"}
	dst := []string{"1/5/2020", "12/31/2019"}
	tf, name, ok := InferColumnTransform(src, dst)
	if !ok {
		t.Fatal("no transform inferred")
	}
	if name != "date:words->slash" {
		t.Errorf("name = %q", name)
	}
	got, ok := tf("Aug 14 2023")
	if !ok || got != "8/14/2023" {
		t.Errorf("transform(\"Aug 14 2023\") = %q, %v", got, ok)
	}
}

func TestInferCaseTransform(t *testing.T) {
	src := []string{"Liverpool", "Barcelona"}
	dst := []string{"LIVERPOOL", "BARCELONA"}
	tf, name, ok := InferColumnTransform(src, dst)
	if !ok || name != "case:upper" {
		t.Fatalf("inferred %q ok=%v", name, ok)
	}
	if got, _ := tf("Milan"); got != "MILAN" {
		t.Errorf("got %q", got)
	}
}

func TestInferIdentity(t *testing.T) {
	vals := []string{"x", "y"}
	_, name, ok := InferColumnTransform(vals, vals)
	if !ok || name != "identity" {
		t.Errorf("identity not inferred: %q %v", name, ok)
	}
}

func TestInferNoTransform(t *testing.T) {
	if _, _, ok := InferColumnTransform([]string{"abc"}, []string{"123"}); ok {
		t.Error("transform invented between unrelated columns")
	}
	if _, _, ok := InferColumnTransform(nil, nil); ok {
		t.Error("transform inferred from empty columns")
	}
}

func TestJoinableByTransform(t *testing.T) {
	// The paper's scenario: two date columns naming the same days in
	// different formats become joinable under the inferred transform.
	src := []string{"Aug 14 2023", "Sep 02 2021"}
	dst := []string{"9/2/2021", "8/14/2023", "1/1/2000"}
	ok, name := JoinableByTransform(src, dst)
	if !ok {
		t.Errorf("joinable pair rejected (transform %q)", name)
	}
	// Remove one date: no longer joinable.
	ok, _ = JoinableByTransform(src, dst[:1])
	if ok {
		t.Error("non-joinable pair accepted")
	}
}

func TestDateFormatDetection(t *testing.T) {
	if f := dateFormat([]string{workload.FormatDateISO(2020, 1, 2)}); f != "iso" {
		t.Errorf("iso detected as %q", f)
	}
	if f := dateFormat([]string{"not a date"}); f != "" {
		t.Errorf("garbage detected as %q", f)
	}
}

func TestPatternStringStable(t *testing.T) {
	p, _ := MinePattern([]string{"AB-12", "XY-99"})
	if !strings.Contains(p.String(), "<letter>{2}-<digit>{2}") {
		t.Errorf("pattern = %q", p.String())
	}
}
