package transform

import (
	"context"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func strongModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "strong", Capability: 1.0, NoiseAmp: 0.001,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func weakModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "weak", Capability: 0.5,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func TestParseQuestionSimple(t *testing.T) {
	p, err := ParseQuestion("What are the names of stadiums that had concerts in 2014?")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Atoms) != 1 || p.Atoms[0].Kind != "event" || p.Atoms[0].Year != 2014 {
		t.Errorf("parsed %+v", p)
	}
	if p.Difficulty() != DifficultySimple {
		t.Errorf("difficulty = %v", p.Difficulty())
	}
}

func TestParseQuestionCompoundForms(t *testing.T) {
	cases := []struct {
		q    string
		conn workload.Connective
	}{
		{"What are the names of stadiums that had concerts in 2014 or had sports meetings in 2015?", workload.ConnOr},
		{"Show the names of stadiums that had concerts in 2014 and had sports meetings in 2015?", workload.ConnAnd},
		{"Show the names of stadiums that had concerts in 2014 but did not have sports meetings in 2015?", workload.ConnNot},
	}
	for _, tc := range cases {
		p, err := ParseQuestion(tc.q)
		if err != nil {
			t.Errorf("ParseQuestion(%q): %v", tc.q, err)
			continue
		}
		if p.Conn != tc.conn || len(p.Atoms) != 2 {
			t.Errorf("%q parsed as conn=%v atoms=%d", tc.q, p.Conn, len(p.Atoms))
		}
		if p.Difficulty() != DifficultyCompound {
			t.Errorf("compound difficulty = %v", p.Difficulty())
		}
	}
}

func TestParseQuestionSuperlative(t *testing.T) {
	p, err := ParseQuestion("What are the names of stadiums that had the most number of concerts in 2014?")
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Kind != "most" || p.Difficulty() != DifficultySuperlative {
		t.Errorf("parsed %+v", p)
	}
}

func TestParseQuestionCapacity(t *testing.T) {
	p, err := ParseQuestion("Show the names of stadiums that have a capacity greater than 60000?")
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms[0].Kind != "capacity" || p.Atoms[0].CapOp != ">" || p.Atoms[0].CapN != 60000 {
		t.Errorf("parsed %+v", p.Atoms[0])
	}
}

func TestParseQuestionRejectsGarbage(t *testing.T) {
	for _, q := range []string{"", "how is the weather", "What are the names of stadiums that dance?"} {
		if _, err := ParseQuestion(q); err == nil {
			t.Errorf("ParseQuestion(%q) succeeded", q)
		}
	}
}

// Every generated workload question must be parseable, and the parse must
// reproduce the gold SQL (the parser IS the translation engine).
func TestParserRoundTripsWorkload(t *testing.T) {
	qs := workload.GenNL2SQL(17, 100)
	for _, q := range qs {
		p, err := ParseQuestion(q.Text)
		if err != nil {
			t.Errorf("cannot parse %q: %v", q.Text, err)
			continue
		}
		if p.SQL() != q.GoldSQL {
			t.Errorf("SQL mismatch for %q:\n  parsed: %s\n  gold:   %s", q.Text, p.SQL(), q.GoldSQL)
		}
	}
}

func TestTranslateWithStrongModelIsExact(t *testing.T) {
	tr := NewTranslator(strongModel())
	db := workload.ConcertDB(3)
	qs := workload.GenNL2SQL(19, 30)
	for _, q := range qs {
		sql, resp, err := tr.Translate(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Correct {
			t.Errorf("strong model erred on %q", q.Text)
		}
		got, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("translated SQL fails: %v\n%s", err, sql)
		}
		want, _ := db.Exec(q.GoldSQL)
		if !got.EqualBag(want) {
			t.Errorf("execution mismatch for %q", q.Text)
		}
	}
}

func TestWeakModelProducesExecutableWrongSQL(t *testing.T) {
	tr := NewTranslator(weakModel())
	db := workload.ConcertDB(3)
	qs := workload.GenNL2SQL(23, 60)
	wrongs := 0
	for _, q := range qs {
		sql, resp, err := tr.Translate(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(sql); err != nil {
			t.Errorf("emitted SQL does not execute: %v\n%s", err, sql)
		}
		if !resp.Correct {
			wrongs++
		}
	}
	if wrongs == 0 {
		t.Error("weak model never erred; corruption path untested")
	}
}

func TestTranslateAtomicEasierThanCompound(t *testing.T) {
	// A mid-tier model should translate atomic phrases more reliably than
	// whole compound questions — the Table II mechanism. The tier matches
	// the calibration target of the difficulty constants.
	m := llm.NewSim(llm.SimConfig{Name: "mid", Capability: 0.80,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
	tr := NewTranslator(m)
	qs := workload.GenNL2SQL(29, 200)

	compOK, compN := 0, 0
	atomOK, atomN := 0, 0
	for _, q := range qs {
		if q.Class != workload.Compound {
			continue
		}
		_, resp, err := tr.Translate(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		compN++
		if resp.Correct {
			compOK++
		}
		for _, a := range q.Atoms {
			_, aresp, err := tr.TranslateAtomic(context.Background(), a.Phrase())
			if err != nil {
				t.Fatal(err)
			}
			atomN++
			if aresp.Correct {
				atomOK++
			}
		}
	}
	accComp := float64(compOK) / float64(compN)
	accAtom := float64(atomOK) / float64(atomN)
	if accAtom <= accComp {
		t.Errorf("atomic accuracy %.3f not above compound %.3f", accAtom, accComp)
	}
}

func TestPromptIncludesExamples(t *testing.T) {
	tr := NewTranslator(strongModel())
	p := tr.Prompt("test question")
	if len(tr.Examples) == 0 {
		t.Fatal("no default examples")
	}
	if token.Count(p) <= token.Count("test question") {
		t.Error("prompt not bigger than question")
	}
}
