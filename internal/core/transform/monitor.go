package transform

import (
	"fmt"
	"sort"
)

// DriftAlert reports one detected quality regression in a monitored column.
type DriftAlert struct {
	Batch     int
	Column    string
	MatchRate float64
	Pattern   string
}

// String implements fmt.Stringer.
func (a DriftAlert) String() string {
	return fmt.Sprintf("batch %d: column %q matches pattern %q at %.0f%%", a.Batch, a.Column, a.Pattern, 100*a.MatchRate)
}

// ColumnMonitor watches a column across refresh batches and raises an
// alert when incoming values stop conforming to the pattern mined from the
// baseline — the paper's Section II-B3: "data is often refreshed ...
// the column patterns discovered by LLMs can help validate the data
// quality with much more ease."
type ColumnMonitor struct {
	Column    string
	Tolerance float64
	pattern   Pattern
	batch     int
	alerts    []DriftAlert
}

// NewColumnMonitor mines the baseline pattern. It fails when the baseline
// has no consistent pattern (nothing to monitor against).
func NewColumnMonitor(column string, baseline []string, tolerance float64) (*ColumnMonitor, error) {
	p, ok := MinePattern(baseline)
	if !ok {
		return nil, fmt.Errorf("transform: column %q has no consistent baseline pattern", column)
	}
	return &ColumnMonitor{Column: column, Tolerance: tolerance, pattern: p}, nil
}

// Pattern returns the baseline pattern being enforced.
func (m *ColumnMonitor) Pattern() string { return m.pattern.String() }

// Observe checks one refresh batch, returning an alert when the match rate
// falls below 1−Tolerance.
func (m *ColumnMonitor) Observe(values []string) (DriftAlert, bool) {
	m.batch++
	rate := m.pattern.MatchRate(values)
	if rate < 1-m.Tolerance {
		a := DriftAlert{Batch: m.batch, Column: m.Column, MatchRate: rate, Pattern: m.pattern.String()}
		m.alerts = append(m.alerts, a)
		return a, true
	}
	return DriftAlert{}, false
}

// Alerts returns all alerts raised so far.
func (m *ColumnMonitor) Alerts() []DriftAlert { return append([]DriftAlert(nil), m.alerts...) }

// SchemaAlert reports a schema drift event: columns appearing or
// disappearing between batches.
type SchemaAlert struct {
	Batch   int
	Added   []string
	Removed []string
}

// SchemaMonitor watches the column set of a feed across batches — the
// "schema drift" half of the paper's data-quality concern.
type SchemaMonitor struct {
	baseline map[string]bool
	batch    int
}

// NewSchemaMonitor records the baseline column set.
func NewSchemaMonitor(cols []string) *SchemaMonitor {
	m := &SchemaMonitor{baseline: map[string]bool{}}
	for _, c := range cols {
		m.baseline[c] = true
	}
	return m
}

// Observe diffs one batch's columns against the baseline.
func (m *SchemaMonitor) Observe(cols []string) (SchemaAlert, bool) {
	m.batch++
	seen := map[string]bool{}
	var added []string
	for _, c := range cols {
		seen[c] = true
		if !m.baseline[c] {
			added = append(added, c)
		}
	}
	var removed []string
	for c := range m.baseline {
		if !seen[c] {
			removed = append(removed, c)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	if len(added) == 0 && len(removed) == 0 {
		return SchemaAlert{}, false
	}
	return SchemaAlert{Batch: m.batch, Added: added, Removed: removed}, true
}
