package transform

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/llm"
	"repro/internal/workload"
)

// DomainSpec declares an NL2SQL domain: a head entity table whose names
// are asked for, event tables linked by the entity key (verb phrases like
// "attended trainings in 2016"), and numeric attributes (phrases like
// "have a salary greater than 50000"). The question grammar, SQL
// generation and difficulty calibration are all derived from the spec —
// the generalization of the concert-schema translator, addressing the
// paper's "implicit matching between the entities in the NL query and the
// database tables" beyond one hard-coded domain.
type DomainSpec struct {
	// Entity is the head entity table ("employee"); EntityPlural the noun
	// used in questions ("employees").
	Entity       string
	EntityPlural string
	// Key joins the entity to its event tables ("employee_id").
	Key string
	// NameCol is the projected column ("name").
	NameCol string
	// Events are the linkable activities.
	Events []EventSpec
	// Attrs are the numeric attribute predicates.
	Attrs []AttrSpec
}

// EventSpec is one event table: "worked on projects in 2015" with
// Verb="worked on", Noun="projects", Table="project_assignment".
type EventSpec struct {
	Verb  string
	Noun  string
	Table string
	// YearCol is the temporal column ("year").
	YearCol string
}

// AttrSpec is one numeric attribute: "have a salary greater than N".
type AttrSpec struct {
	Noun string
	Col  string
}

// DomainAtom is one parsed atomic condition in a domain.
type DomainAtom struct {
	// Kind is "event", "most", or "attr".
	Kind  string
	Event *EventSpec
	Year  int
	Attr  *AttrSpec
	Op    string // ">" or "<"
	N     int
}

// Phrase renders the atom as the verb phrase used inside questions.
func (a DomainAtom) Phrase() string {
	switch a.Kind {
	case "event":
		return fmt.Sprintf("%s %s in %d", a.Event.Verb, a.Event.Noun, a.Year)
	case "most":
		return fmt.Sprintf("%s the most %s in %d", a.Event.Verb, a.Event.Noun, a.Year)
	case "attr":
		word := "greater"
		if a.Op == "<" {
			word = "smaller"
		}
		return fmt.Sprintf("have a %s %s than %d", a.Attr.Noun, word, a.N)
	default:
		return "?"
	}
}

// SQL renders the gold SQL for "names of <entities> that <atom>".
func (a DomainAtom) SQL(spec *DomainSpec) string {
	switch a.Kind {
	case "event":
		return fmt.Sprintf("SELECT DISTINCT h.%s FROM %s AS h JOIN %s AS e ON h.%s = e.%s WHERE e.%s = %d",
			spec.NameCol, spec.Entity, a.Event.Table, spec.Key, spec.Key, a.Event.YearCol, a.Year)
	case "most":
		return fmt.Sprintf("SELECT h.%s FROM %s AS h JOIN %s AS e ON h.%s = e.%s WHERE e.%s = %d GROUP BY h.%s ORDER BY COUNT(*) DESC, h.%s ASC LIMIT 1",
			spec.NameCol, spec.Entity, a.Event.Table, spec.Key, spec.Key, a.Event.YearCol, a.Year, spec.NameCol, spec.NameCol)
	case "attr":
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s %s %d",
			spec.NameCol, spec.Entity, a.Attr.Col, a.Op, a.N)
	default:
		return ""
	}
}

// DomainParsed is a parsed domain question.
type DomainParsed struct {
	Atoms []DomainAtom
	Conn  workload.Connective
	spec  *DomainSpec
}

// SQL renders the gold SQL for the whole question.
func (p DomainParsed) SQL() string {
	if len(p.Atoms) == 0 {
		return ""
	}
	sql := p.Atoms[0].SQL(p.spec)
	if len(p.Atoms) == 2 {
		op := map[workload.Connective]string{
			workload.ConnOr:  " UNION ",
			workload.ConnAnd: " INTERSECT ",
			workload.ConnNot: " EXCEPT ",
		}[p.Conn]
		sql += op + p.Atoms[1].SQL(p.spec)
	}
	return sql
}

// Difficulty mirrors the concert calibration.
func (p DomainParsed) Difficulty() float64 {
	if len(p.Atoms) > 1 {
		return DifficultyCompound
	}
	if len(p.Atoms) == 1 && p.Atoms[0].Kind == "most" {
		return DifficultySuperlative
	}
	return DifficultySimple
}

// DomainTranslator is the spec-driven NL2SQL translator.
type DomainTranslator struct {
	Spec  *DomainSpec
	Model llm.Model

	reHead  *regexp.Regexp
	reMost  *regexp.Regexp
	reEvent *regexp.Regexp
	reAttr  *regexp.Regexp
}

// NewDomainTranslator compiles the grammar for a spec.
func NewDomainTranslator(spec *DomainSpec, m llm.Model) *DomainTranslator {
	plural := regexp.QuoteMeta(spec.EntityPlural)
	var verbs, nouns []string
	for _, e := range spec.Events {
		verbs = append(verbs, regexp.QuoteMeta(e.Verb))
		nouns = append(nouns, regexp.QuoteMeta(e.Noun))
	}
	var attrs []string
	for _, a := range spec.Attrs {
		attrs = append(attrs, regexp.QuoteMeta(a.Noun))
	}
	verbAlt := strings.Join(verbs, "|")
	nounAlt := strings.Join(nouns, "|")
	attrAlt := strings.Join(attrs, "|")
	return &DomainTranslator{
		Spec:    spec,
		Model:   m,
		reHead:  regexp.MustCompile(`(?i)^(what are the names of ` + plural + ` that|show the names of ` + plural + ` that)\s+(.*?)\??$`),
		reMost:  regexp.MustCompile(`(?i)^(` + verbAlt + `)\s+the most\s+(` + nounAlt + `)\s+in\s+(\d{4})$`),
		reEvent: regexp.MustCompile(`(?i)^(` + verbAlt + `)\s+(` + nounAlt + `)\s+in\s+(\d{4})$`),
		reAttr:  regexp.MustCompile(`(?i)^have a\s+(` + attrAlt + `)\s+(greater|smaller)\s+than\s+(\d+)$`),
	}
}

// Parse parses a domain question into its atoms and connective.
func (t *DomainTranslator) Parse(q string) (DomainParsed, error) {
	m := t.reHead.FindStringSubmatch(strings.TrimSpace(q))
	if m == nil {
		return DomainParsed{}, fmt.Errorf("transform: question does not match the %s domain: %q", t.Spec.Entity, q)
	}
	body := m[2]
	var parts []string
	conn := workload.ConnNone
	switch {
	case strings.Contains(body, " but not "):
		parts = strings.SplitN(body, " but not ", 2)
		conn = workload.ConnNot
	case strings.Contains(body, " or "):
		parts = strings.SplitN(body, " or ", 2)
		conn = workload.ConnOr
	case strings.Contains(body, " and "):
		parts = strings.SplitN(body, " and ", 2)
		conn = workload.ConnAnd
	default:
		parts = []string{body}
	}
	out := DomainParsed{Conn: conn, spec: t.Spec}
	for _, part := range parts {
		a, err := t.parseAtom(strings.TrimSpace(part))
		if err != nil {
			return DomainParsed{}, err
		}
		out.Atoms = append(out.Atoms, a)
	}
	return out, nil
}

func (t *DomainTranslator) parseAtom(s string) (DomainAtom, error) {
	if m := t.reMost.FindStringSubmatch(s); m != nil {
		e := t.eventByNoun(m[2])
		if e == nil {
			return DomainAtom{}, fmt.Errorf("transform: unknown event noun %q", m[2])
		}
		y, _ := strconv.Atoi(m[3])
		return DomainAtom{Kind: "most", Event: e, Year: y}, nil
	}
	if m := t.reEvent.FindStringSubmatch(s); m != nil {
		e := t.eventByNoun(m[2])
		if e == nil {
			return DomainAtom{}, fmt.Errorf("transform: unknown event noun %q", m[2])
		}
		y, _ := strconv.Atoi(m[3])
		return DomainAtom{Kind: "event", Event: e, Year: y}, nil
	}
	if m := t.reAttr.FindStringSubmatch(s); m != nil {
		a := t.attrByNoun(m[1])
		if a == nil {
			return DomainAtom{}, fmt.Errorf("transform: unknown attribute %q", m[1])
		}
		op := ">"
		if strings.EqualFold(m[2], "smaller") {
			op = "<"
		}
		n, _ := strconv.Atoi(m[3])
		return DomainAtom{Kind: "attr", Attr: a, Op: op, N: n}, nil
	}
	return DomainAtom{}, fmt.Errorf("transform: unrecognized condition %q in the %s domain", s, t.Spec.Entity)
}

func (t *DomainTranslator) eventByNoun(noun string) *EventSpec {
	for i := range t.Spec.Events {
		if strings.EqualFold(t.Spec.Events[i].Noun, noun) {
			return &t.Spec.Events[i]
		}
	}
	return nil
}

func (t *DomainTranslator) attrByNoun(noun string) *AttrSpec {
	for i := range t.Spec.Attrs {
		if strings.EqualFold(t.Spec.Attrs[i].Noun, noun) {
			return &t.Spec.Attrs[i]
		}
	}
	return nil
}

// Translate converts one domain question to SQL via an LLM call, with the
// same corruption realism as the concert translator (wrong set operation
// for compounds; off-by-one year or flipped comparison for atoms).
func (t *DomainTranslator) Translate(ctx context.Context, question string) (string, llm.Response, error) {
	parsed, err := t.Parse(question)
	if err != nil {
		return "", llm.Response{}, err
	}
	gold := parsed.SQL()
	wrong := t.corrupt(parsed)
	resp, err := t.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskNL2SQL,
		Prompt:     fmt.Sprintf("Translate over the %s schema: %s", t.Spec.Entity, question),
		Gold:       gold,
		Wrong:      wrong,
		Difficulty: parsed.Difficulty(),
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}

func (t *DomainTranslator) corrupt(p DomainParsed) string {
	if len(p.Atoms) == 2 {
		wrongOp := map[workload.Connective]string{
			workload.ConnOr:  " INTERSECT ",
			workload.ConnAnd: " UNION ",
			workload.ConnNot: " UNION ",
		}[p.Conn]
		return p.Atoms[0].SQL(t.Spec) + wrongOp + p.Atoms[1].SQL(t.Spec)
	}
	if len(p.Atoms) == 1 {
		a := p.Atoms[0]
		switch a.Kind {
		case "event", "most":
			a.Year++
		case "attr":
			if a.Op == ">" {
				a.Op = "<"
			} else {
				a.Op = ">"
			}
		}
		return a.SQL(t.Spec)
	}
	return fmt.Sprintf("SELECT %s FROM %s", t.Spec.NameCol, t.Spec.Entity)
}
