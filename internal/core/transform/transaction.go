package transform

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/llm"
)

// NL2Transaction converts a natural-language description of a multi-step
// money flow into a SQL transaction — the paper's Alice-buys-a-laptop
// example. The grammar accepts sentences of the form
//
//	"<payer> pays <payee> $<amount>"
//
// joined by "and", "then", commas or periods, and emits BEGIN/UPDATE.../
// COMMIT over an accounts(owner TEXT, balance INT) table.
type NL2Transaction struct {
	Model llm.Model
}

// Payment is one parsed transfer.
type Payment struct {
	From   string
	To     string
	Amount int64
}

var rePayment = regexp.MustCompile(`(?i)([A-Za-z][A-Za-z ]*?)\s+(?:pays|needs to pay|transfers)\s+(?:\$(\d+)\s+to\s+)?([A-Za-z][A-Za-z ]*?)(?:\s+\$(\d+))?$`)

// ParsePayments extracts the ordered transfers from text.
func ParsePayments(text string) ([]Payment, error) {
	// Normalize sentence separators.
	text = strings.NewReplacer(". ", ";", ", and ", ";", " and ", ";", " then ", ";", ",", ";").Replace(text)
	text = strings.TrimSuffix(strings.TrimSpace(text), ".")
	var out []Payment
	for _, sent := range strings.Split(text, ";") {
		sent = strings.TrimSpace(sent)
		if sent == "" {
			continue
		}
		m := rePayment.FindStringSubmatch(sent)
		if m == nil {
			return nil, fmt.Errorf("transform: unrecognized payment sentence %q", sent)
		}
		var amountStr string
		if m[2] != "" {
			amountStr = m[2] // "pays $N to Y"
		} else {
			amountStr = m[4] // "pays Y $N"
		}
		if amountStr == "" {
			return nil, fmt.Errorf("transform: no amount in %q", sent)
		}
		n, err := strconv.ParseInt(amountStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("transform: bad amount in %q: %w", sent, err)
		}
		out = append(out, Payment{
			From:   strings.TrimSpace(m[1]),
			To:     strings.TrimSpace(m[3]),
			Amount: n,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("transform: no payments found in %q", text)
	}
	return out, nil
}

// TransactionSQL renders the payments as a SQL transaction script.
func TransactionSQL(payments []Payment) string {
	var b strings.Builder
	b.WriteString("BEGIN;\n")
	for _, p := range payments {
		fmt.Fprintf(&b, "UPDATE accounts SET balance = balance - %d WHERE owner = '%s';\n", p.Amount, p.From)
		fmt.Fprintf(&b, "UPDATE accounts SET balance = balance + %d WHERE owner = '%s';\n", p.Amount, p.To)
	}
	b.WriteString("COMMIT;")
	return b.String()
}

// Translate converts the NL description to a transaction script with one
// LLM call. Multi-statement generation is a step-by-step reasoning task:
// moderately hard, with the typical failure being a dropped leg of one
// transfer (which breaks balance conservation — detectable by validation).
func (t *NL2Transaction) Translate(ctx context.Context, text string) (string, llm.Response, error) {
	payments, err := ParsePayments(text)
	if err != nil {
		return "", llm.Response{}, err
	}
	gold := TransactionSQL(payments)

	// Wrong variant: forget the credit leg of the last payment.
	wrongPayments := make([]Payment, len(payments))
	copy(wrongPayments, payments)
	var wb strings.Builder
	wb.WriteString("BEGIN;\n")
	for i, p := range wrongPayments {
		fmt.Fprintf(&wb, "UPDATE accounts SET balance = balance - %d WHERE owner = '%s';\n", p.Amount, p.From)
		if i != len(wrongPayments)-1 {
			fmt.Fprintf(&wb, "UPDATE accounts SET balance = balance + %d WHERE owner = '%s';\n", p.Amount, p.To)
		}
	}
	wb.WriteString("COMMIT;")

	difficulty := 0.35 + 0.12*float64(len(payments)-1)
	if difficulty > 0.85 {
		difficulty = 0.85
	}
	resp, err := t.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskTransform,
		Prompt:     "Convert to a SQL transaction over accounts(owner, balance): " + text,
		Gold:       gold,
		Wrong:      wb.String(),
		Difficulty: difficulty,
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}

// ValidateConservation checks that a generated transaction script conserves
// total balance: the sum of all debits equals the sum of all credits. This
// is the kind of cheap domain validation the paper's Section III-E calls
// for before trusting LLM output.
func ValidateConservation(script string) bool {
	var debit, credit int64
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		lower := strings.ToLower(line)
		if !strings.HasPrefix(lower, "update accounts set balance = balance") {
			continue
		}
		var amt int64
		if _, err := fmt.Sscanf(lower, "update accounts set balance = balance - %d", &amt); err == nil {
			debit += amt
			continue
		}
		if _, err := fmt.Sscanf(lower, "update accounts set balance = balance + %d", &amt); err == nil {
			credit += amt
		}
	}
	return debit == credit && debit > 0
}
