package transform

import "testing"

// FuzzParseQuestion asserts the NL question parser is total and that any
// successful parse renders executable-shaped SQL (non-empty, starts with
// SELECT).
func FuzzParseQuestion(f *testing.F) {
	seeds := []string{
		"What are the names of stadiums that had concerts in 2014?",
		"Show the names of stadiums that had concerts in 2014 or had sports meetings in 2015?",
		"Show the names of stadiums that had concerts in 2014 but did not have sports meetings in 2015?",
		"What are the names of stadiums that had the most number of concerts in 2014?",
		"Show the names of stadiums that have a capacity greater than 60000?",
		"what are the names of stadiums that had concerts in 99999?",
		"Show the names of stadiums that",
		"", "???", "had concerts in 2014",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		p, err := ParseQuestion(q)
		if err != nil {
			return
		}
		sql := p.SQL()
		if len(sql) < 6 || sql[:6] != "SELECT" {
			t.Fatalf("parse of %q produced non-SELECT SQL %q", q, sql)
		}
		if d := p.Difficulty(); d <= 0 || d > 1 {
			t.Fatalf("difficulty %v out of range for %q", d, q)
		}
	})
}

// FuzzMinePattern asserts pattern mining is total and sound: a mined
// pattern matches every input it was mined from.
func FuzzMinePattern(f *testing.F) {
	f.Add("Aug 14 2023", "Sep 02 2021")
	f.Add("C001", "C9999")
	f.Add("", "x")
	f.Add("日本語", "日本語2")
	f.Fuzz(func(t *testing.T, a, b string) {
		if a == "" || b == "" {
			return
		}
		p, ok := MinePattern([]string{a, b})
		if !ok {
			return
		}
		if !p.Match(a) || !p.Match(b) {
			t.Fatalf("pattern %q does not match its own inputs %q / %q", p.String(), a, b)
		}
	})
}
