package transform

import (
	"strings"
	"testing"
)

func TestColumnMonitorDetectsDrift(t *testing.T) {
	baseline := []string{"Aug 14 2023", "Sep 02 2021", "Jan 30 1999"}
	m, err := NewColumnMonitor("signup_date", baseline, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Pattern(), "<letter>{3}") {
		t.Errorf("pattern = %q", m.Pattern())
	}

	// Conforming batch: no alert.
	if _, drifted := m.Observe([]string{"Feb 11 2024", "Mar 03 2024"}); drifted {
		t.Error("false alarm on conforming batch")
	}
	// Refreshed feed switches format: alert.
	alert, drifted := m.Observe([]string{"2024-02-11", "2024-03-03", "Apr 01 2024"})
	if !drifted {
		t.Fatal("drift missed")
	}
	if alert.Batch != 2 || alert.MatchRate > 0.5 {
		t.Errorf("alert = %+v", alert)
	}
	if !strings.Contains(alert.String(), "signup_date") {
		t.Errorf("alert string = %q", alert.String())
	}
	if len(m.Alerts()) != 1 {
		t.Errorf("alerts = %d", len(m.Alerts()))
	}
}

func TestColumnMonitorToleranceAbsorbsNoise(t *testing.T) {
	m, err := NewColumnMonitor("d", []string{"Aug 14 2023", "Sep 02 2021"}, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	// One outlier in three values = 33% non-conforming, inside tolerance.
	if _, drifted := m.Observe([]string{"Feb 11 2024", "Mar 03 2024", "garbage"}); drifted {
		t.Error("tolerance did not absorb a single outlier")
	}
}

func TestColumnMonitorNoBaselinePattern(t *testing.T) {
	if _, err := NewColumnMonitor("x", []string{"Aug 14 2023", "2023-08-14"}, 0.1); err == nil {
		t.Error("inconsistent baseline accepted")
	}
}

func TestSchemaMonitor(t *testing.T) {
	m := NewSchemaMonitor([]string{"name", "city", "signup_date"})
	if _, drifted := m.Observe([]string{"city", "name", "signup_date"}); drifted {
		t.Error("reordered identical schema flagged")
	}
	alert, drifted := m.Observe([]string{"name", "city", "signup_ts", "segment"})
	if !drifted {
		t.Fatal("schema drift missed")
	}
	if len(alert.Added) != 2 || alert.Added[0] != "segment" || alert.Added[1] != "signup_ts" {
		t.Errorf("added = %v", alert.Added)
	}
	if len(alert.Removed) != 1 || alert.Removed[0] != "signup_date" {
		t.Errorf("removed = %v", alert.Removed)
	}
}
