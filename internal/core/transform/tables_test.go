package transform

import (
	"context"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

// failingModel always errs on any non-trivial difficulty.
func failingModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "failing", Capability: 0.0, NoiseAmp: 0.001,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func TestParseDocumentAllFormats(t *testing.T) {
	docs := workload.GenDocs(61, 9)
	for _, d := range docs {
		got, err := ParseDocument(d)
		if err != nil {
			t.Errorf("doc %d (%s): %v", d.ID, d.Format, err)
			continue
		}
		if acc := got.CellAccuracy(d.Cols, d.Gold); acc != 1 {
			t.Errorf("doc %d (%s): cell accuracy %.3f, want 1.0", d.ID, d.Format, acc)
		}
	}
}

func TestDirectExtractStrongModel(t *testing.T) {
	e := &DirectExtractor{Model: strongModel()}
	docs := workload.GenDocs(67, 6)
	for _, d := range docs {
		got, resp, err := e.Extract(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Correct {
			t.Errorf("strong model erred on doc %d", d.ID)
		}
		if acc := got.CellAccuracy(d.Cols, d.Gold); acc != 1 {
			t.Errorf("doc %d accuracy %.3f", d.ID, acc)
		}
		if resp.Cost <= 0 {
			t.Error("extraction billed nothing")
		}
	}
}

func TestDirectExtractWeakModelDegrades(t *testing.T) {
	e := &DirectExtractor{Model: failingModel()}
	docs := workload.GenDocs(71, 6)
	perfect := 0
	for _, d := range docs {
		got, _, err := e.Extract(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if got.CellAccuracy(d.Cols, d.Gold) == 1 {
			perfect++
		}
	}
	if perfect == len(docs) {
		t.Error("failing model extracted everything perfectly")
	}
}

func TestSynthesizeProgramAndApply(t *testing.T) {
	s := &Synthesizer{Model: strongModel()}
	docs := workload.GenDocs(73, 12)
	// One exemplar per format; the program is then applied to every other
	// document of that format with zero LLM calls.
	programs := map[string]Program{}
	for _, d := range docs {
		if _, ok := programs[d.Format]; ok {
			continue
		}
		p, resp, err := s.Synthesize(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Correct {
			t.Errorf("synthesis erred for %s", d.Format)
		}
		programs[d.Format] = p
	}
	for _, d := range docs {
		got, err := programs[d.Format].Apply(d)
		if err != nil {
			t.Errorf("apply to doc %d (%s): %v", d.ID, d.Format, err)
			continue
		}
		if acc := got.CellAccuracy(d.Cols, d.Gold); acc != 1 {
			t.Errorf("program on doc %d (%s): accuracy %.3f", d.ID, d.Format, acc)
		}
	}
}

func TestProgramFormatMismatch(t *testing.T) {
	p := Program{Format: "sheet"}
	if _, err := p.Apply(workload.Doc{Format: "xml"}); err == nil {
		t.Error("format mismatch not rejected")
	}
}

func TestProgramMissingOpsFails(t *testing.T) {
	// A sheet program without skip_title should misidentify the header.
	docs := workload.GenDocs(79, 12)
	var sheet workload.Doc
	found := false
	for _, d := range docs {
		if d.Format == "sheet" {
			sheet = d
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sheet doc generated")
	}
	bad := Program{Format: "sheet", Ops: []Op{{Kind: "header"}}}
	if _, err := bad.Apply(sheet); err == nil {
		t.Error("under-specified program applied cleanly")
	}
}

func TestEncodeDecodeTableRoundTrip(t *testing.T) {
	in := ExtractedTable{
		Cols: []string{"a", "b"},
		Rows: []workload.Row{{"a": "1", "b": "x"}, {"a": "2", "b": "y"}},
	}
	out, err := decodeTable(encodeTable(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Rows[1]["b"] != "y" {
		t.Errorf("round trip lost data: %+v", out)
	}
}

func TestDecodeTableEmpty(t *testing.T) {
	if _, err := decodeTable(""); err == nil {
		t.Error("empty encoding decoded")
	}
}

func TestCellAccuracyEmptyGold(t *testing.T) {
	var tab ExtractedTable
	if acc := tab.CellAccuracy(nil, nil); acc != 0 {
		t.Errorf("accuracy on empty gold = %v", acc)
	}
}

func BenchmarkParseDocument(b *testing.B) {
	docs := workload.GenDocs(83, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDocument(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}
