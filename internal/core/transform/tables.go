package transform

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/workload"
)

// ExtractedTable is the relational form recovered from a semi-structured
// document.
type ExtractedTable struct {
	Cols []string
	Rows []workload.Row
}

// CellAccuracy grades an extraction against gold rows: the fraction of gold
// cells reproduced exactly (rows aligned by position).
func (t ExtractedTable) CellAccuracy(goldCols []string, gold []workload.Row) float64 {
	if len(gold) == 0 {
		return 0
	}
	total, hit := 0, 0
	for i, g := range gold {
		for _, c := range goldCols {
			total++
			if i < len(t.Rows) && t.Rows[i][c] == g[c] {
				hit++
			}
		}
	}
	return float64(hit) / float64(total)
}

// DirectExtractor converts each document with one LLM call per document —
// the paper's "transform directly" approach. The genuinely implemented
// parsers below compute the correct extraction; the LLM tier decides
// whether the emitted table is right.
type DirectExtractor struct {
	Model llm.Model
}

// Extract converts one document.
func (e *DirectExtractor) Extract(ctx context.Context, doc workload.Doc) (ExtractedTable, llm.Response, error) {
	gold, err := parseDoc(doc)
	if err != nil {
		return ExtractedTable{}, llm.Response{}, err
	}
	wrong := corruptTable(gold)
	difficulty := map[string]float64{"xml": 0.30, "json": 0.25, "sheet": 0.45}[doc.Format]
	resp, err := e.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskExtract,
		Prompt:     "Extract a relational table (" + strings.Join(doc.Cols, ", ") + ") from this " + doc.Format + " document:\n" + doc.Body,
		Gold:       encodeTable(gold),
		Wrong:      encodeTable(wrong),
		Difficulty: difficulty,
	})
	if err != nil {
		return ExtractedTable{}, llm.Response{}, err
	}
	out, err := decodeTable(resp.Text)
	if err != nil {
		return ExtractedTable{}, resp, err
	}
	return out, resp, nil
}

// parseDoc is the real transformation engine: XML via the streaming token
// reader, JSON via generic decoding, spreadsheets via grid heuristics
// (title/blank/footer rows are recognized and dropped).
func parseDoc(doc workload.Doc) (ExtractedTable, error) {
	switch doc.Format {
	case "xml":
		return parseXMLRecords(doc.Body)
	case "json":
		return parseJSONRecords(doc.Body)
	case "sheet":
		return parseSheet(doc.Body)
	default:
		return ExtractedTable{}, fmt.Errorf("transform: unknown document format %q", doc.Format)
	}
}

// ParseDocument exposes the deterministic (non-LLM) parsing path, the
// baseline the LLM approaches are compared against.
func ParseDocument(doc workload.Doc) (ExtractedTable, error) { return parseDoc(doc) }

func parseXMLRecords(body string) (ExtractedTable, error) {
	dec := xml.NewDecoder(strings.NewReader(body))
	var out ExtractedTable
	colSet := map[string]bool{}
	var cur workload.Row
	var field string
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, fmt.Errorf("transform: xml parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch depth {
			case 2: // record element
				cur = workload.Row{}
			case 3: // field element
				field = t.Name.Local
			}
		case xml.CharData:
			if depth == 3 && field != "" {
				cur[field] = strings.TrimSpace(string(t))
				colSet[field] = true
			}
		case xml.EndElement:
			if depth == 2 && cur != nil {
				out.Rows = append(out.Rows, cur)
				cur = nil
			}
			if depth == 3 {
				field = ""
			}
			depth--
		}
	}
	out.Cols = sortedKeys(colSet)
	return out, nil
}

func parseJSONRecords(body string) (ExtractedTable, error) {
	var recs []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		return ExtractedTable{}, fmt.Errorf("transform: json parse: %w", err)
	}
	var out ExtractedTable
	colSet := map[string]bool{}
	for _, rec := range recs {
		row := workload.Row{}
		for k, v := range rec {
			colSet[k] = true
			switch x := v.(type) {
			case string:
				row[k] = x
			case float64:
				row[k] = trimFloat(x)
			case bool:
				row[k] = fmt.Sprintf("%t", x)
			case nil:
				row[k] = ""
			default:
				b, _ := json.Marshal(x)
				row[k] = string(b)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	out.Cols = sortedKeys(colSet)
	return out, nil
}

// parseSheet recovers the relational core of a spreadsheet grid: it finds
// the header row (the first row whose cells all look like identifiers),
// skips title and blank rows above it, and drops aggregate footer rows.
func parseSheet(body string) (ExtractedTable, error) {
	lines := strings.Split(body, "\n")
	var out ExtractedTable
	headerAt := -1
	for i, line := range lines {
		cells := strings.Split(line, "\t")
		if len(cells) >= 2 && allIdentifiers(cells) {
			out.Cols = cells
			headerAt = i
			break
		}
	}
	if headerAt == -1 {
		return out, fmt.Errorf("transform: no header row found in sheet")
	}
	for _, line := range lines[headerAt+1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if isFooterRow(cells) {
			continue
		}
		row := workload.Row{}
		for j, c := range out.Cols {
			if j < len(cells) {
				row[c] = strings.TrimSpace(cells[j])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func allIdentifiers(cells []string) bool {
	for _, c := range cells {
		c = strings.TrimSpace(c)
		if c == "" {
			return false
		}
		for _, r := range c {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
				return false
			}
		}
	}
	return true
}

func isFooterRow(cells []string) bool {
	first := strings.ToUpper(strings.TrimSpace(cells[0]))
	if first != "TOTAL" && first != "SUM" && first != "AVERAGE" {
		return false
	}
	empty := 0
	for _, c := range cells[1:] {
		if strings.TrimSpace(c) == "" || strings.TrimSpace(c) == "-" {
			empty++
		}
	}
	return empty >= len(cells)/2
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// corruptTable is the plausible wrong extraction: the last row dropped and
// one header mis-read — real failure modes of direct LLM extraction.
func corruptTable(t ExtractedTable) ExtractedTable {
	out := ExtractedTable{Cols: append([]string(nil), t.Cols...)}
	n := len(t.Rows)
	if n > 1 {
		n--
	}
	for i := 0; i < n; i++ {
		row := workload.Row{}
		for k, v := range t.Rows[i] {
			row[k] = v
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) > 0 && len(out.Cols) > 0 {
		c := out.Cols[len(out.Cols)-1]
		out.Rows[0][c] = ""
	}
	return out
}

// encodeTable/decodeTable move tables through the LLM's text channel.
func encodeTable(t ExtractedTable) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, "\t"))
	for _, row := range t.Rows {
		b.WriteString("\n")
		cells := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cells[i] = row[c]
		}
		b.WriteString(strings.Join(cells, "\t"))
	}
	return b.String()
}

func decodeTable(s string) (ExtractedTable, error) {
	lines := strings.Split(s, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return ExtractedTable{}, fmt.Errorf("transform: empty table encoding")
	}
	out := ExtractedTable{Cols: strings.Split(lines[0], "\t")}
	for _, line := range lines[1:] {
		cells := strings.Split(line, "\t")
		row := workload.Row{}
		for i, c := range out.Cols {
			if i < len(cells) {
				row[c] = cells[i]
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// --- Operator program synthesis (the paper's second approach) ---

// Op is one table-shaping operator in a synthesized transformation program.
type Op struct {
	// Kind is one of "skip_title", "drop_blank", "header", "drop_footer".
	Kind string
}

// Program is an ordered operator sequence applicable to any document with
// the same layout. Synthesizing it costs one LLM call; applying it is free
// — the cost asymmetry the paper highlights ("we only need to call LLMs
// once or a few times").
type Program struct {
	Format string
	Ops    []Op
}

// Synthesizer produces transformation programs with a single LLM call per
// document *layout*.
type Synthesizer struct {
	Model llm.Model
}

// Synthesize inspects one exemplar document and emits a program for its
// layout.
func (s *Synthesizer) Synthesize(ctx context.Context, exemplar workload.Doc) (Program, llm.Response, error) {
	gold := programFor(exemplar.Format)
	wrong := Program{Format: exemplar.Format, Ops: []Op{{Kind: "header"}}} // missing cleanup ops
	resp, err := s.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskTransform,
		Prompt:     "Synthesize a transformation operator sequence for this " + exemplar.Format + " layout:\n" + exemplar.Body,
		Gold:       encodeProgram(gold),
		Wrong:      encodeProgram(wrong),
		Difficulty: 0.35,
	})
	if err != nil {
		return Program{}, llm.Response{}, err
	}
	p, err := decodeProgram(resp.Text)
	if err != nil {
		return Program{}, resp, err
	}
	return p, resp, nil
}

func programFor(format string) Program {
	switch format {
	case "sheet":
		return Program{Format: format, Ops: []Op{{Kind: "skip_title"}, {Kind: "drop_blank"}, {Kind: "header"}, {Kind: "drop_footer"}}}
	default:
		return Program{Format: format, Ops: []Op{{Kind: "header"}}}
	}
}

func encodeProgram(p Program) string {
	kinds := make([]string, len(p.Ops))
	for i, o := range p.Ops {
		kinds[i] = o.Kind
	}
	return p.Format + ":" + strings.Join(kinds, ",")
}

func decodeProgram(s string) (Program, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return Program{}, fmt.Errorf("transform: bad program encoding %q", s)
	}
	p := Program{Format: parts[0]}
	for _, k := range strings.Split(parts[1], ",") {
		if k != "" {
			p.Ops = append(p.Ops, Op{Kind: k})
		}
	}
	return p, nil
}

// Apply runs the program on a document without any LLM call. Structured
// formats delegate to their parsers; sheet programs execute the operator
// sequence over the grid.
func (p Program) Apply(doc workload.Doc) (ExtractedTable, error) {
	if doc.Format != p.Format {
		return ExtractedTable{}, fmt.Errorf("transform: program for %q applied to %q", p.Format, doc.Format)
	}
	if p.Format != "sheet" {
		return parseDoc(doc)
	}
	lines := strings.Split(doc.Body, "\n")
	has := func(kind string) bool {
		for _, o := range p.Ops {
			if o.Kind == kind {
				return true
			}
		}
		return false
	}
	var out ExtractedTable
	i := 0
	if has("skip_title") {
		for i < len(lines) && !strings.Contains(lines[i], "\t") {
			i++
		}
	}
	if has("drop_blank") {
		for i < len(lines) && strings.TrimSpace(lines[i]) == "" {
			i++
		}
	}
	if !has("header") || i >= len(lines) {
		return out, fmt.Errorf("transform: program found no header")
	}
	out.Cols = strings.Split(lines[i], "\t")
	if !allIdentifiers(out.Cols) {
		return out, fmt.Errorf("transform: program misidentified header row %q", lines[i])
	}
	for _, line := range lines[i+1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		if has("drop_footer") && isFooterRow(cells) {
			continue
		}
		row := workload.Row{}
		for j, c := range out.Cols {
			if j < len(cells) {
				row[c] = strings.TrimSpace(cells[j])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
