package transform

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/workload"
)

// PrepOp is one data-preparation operator (Section II-B4). Operators are
// pure row-set transformations so pipelines compose freely.
type PrepOp struct {
	Name  string
	Apply func(rows []workload.Row, cols []string) []workload.Row
}

// StandardOps returns the operator library: imputation, date normalization,
// deduplication, case normalization and blank-row dropping.
func StandardOps() []PrepOp {
	return []PrepOp{
		{Name: "drop_empty_rows", Apply: opDropEmpty},
		{Name: "impute_mode", Apply: opImputeMode},
		{Name: "normalize_dates", Apply: opNormalizeDates},
		{Name: "normalize_case", Apply: opNormalizeCase},
		{Name: "dedupe_exact", Apply: opDedupeExact},
	}
}

func opDropEmpty(rows []workload.Row, cols []string) []workload.Row {
	var out []workload.Row
	for _, r := range rows {
		empty := true
		for _, c := range cols {
			if r[c] != "" {
				empty = false
				break
			}
		}
		if !empty {
			out = append(out, r)
		}
	}
	return out
}

// opImputeMode fills blanks with the column's most frequent value.
func opImputeMode(rows []workload.Row, cols []string) []workload.Row {
	modes := map[string]string{}
	for _, c := range cols {
		counts := map[string]int{}
		for _, r := range rows {
			if v := r[c]; v != "" {
				counts[v]++
			}
		}
		best, bestN := "", 0
		for v, n := range counts {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		modes[c] = best
	}
	out := make([]workload.Row, len(rows))
	for i, r := range rows {
		nr := workload.Row{}
		for k, v := range r {
			nr[k] = v
		}
		for _, c := range cols {
			if nr[c] == "" {
				nr[c] = modes[c]
			}
		}
		out[i] = nr
	}
	return out
}

func opNormalizeDates(rows []workload.Row, cols []string) []workload.Row {
	out := make([]workload.Row, len(rows))
	for i, r := range rows {
		nr := workload.Row{}
		for k, v := range r {
			nr[k] = v
		}
		for _, c := range cols {
			v := nr[c]
			for _, f := range []string{"words", "slash"} {
				if y, m, d, ok := parseDateAny(f, v); ok {
					nr[c] = workload.FormatDateISO(y, m, d)
					break
				}
			}
		}
		out[i] = nr
	}
	return out
}

func opNormalizeCase(rows []workload.Row, cols []string) []workload.Row {
	out := make([]workload.Row, len(rows))
	for i, r := range rows {
		nr := workload.Row{}
		for k, v := range r {
			nr[k] = v
		}
		for _, c := range cols {
			nr[c] = strings.ToLower(nr[c])
		}
		out[i] = nr
	}
	return out
}

func opDedupeExact(rows []workload.Row, cols []string) []workload.Row {
	seen := map[string]bool{}
	var out []workload.Row
	for _, r := range rows {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = r[c]
		}
		k := strings.Join(parts, "\x00")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// Pipeline is an ordered operator sequence.
type Pipeline []PrepOp

// Names lists the pipeline's operator names.
func (p Pipeline) Names() []string {
	out := make([]string, len(p))
	for i, op := range p {
		out[i] = op.Name
	}
	return out
}

// Run applies the pipeline.
func (p Pipeline) Run(rows []workload.Row, cols []string) []workload.Row {
	for _, op := range p {
		rows = op.Apply(rows, cols)
	}
	return rows
}

// ScoreFunc grades prepared data for the downstream task (higher is
// better); e.g. imputation accuracy against gold cells, or duplicate
// elimination rate.
type ScoreFunc func(rows []workload.Row) float64

// SearchResult is one evaluated candidate pipeline.
type SearchResult struct {
	Pipeline Pipeline
	Score    float64
	// Evaluated counts how many pipelines the search scored — the search
	// space the LLM recommendation shrinks.
	Evaluated int
}

// ExhaustiveSearch tries every permutation of every subset of ops up to
// maxLen and returns the best pipeline — the baseline with the "huge search
// space" the paper describes.
func ExhaustiveSearch(ops []PrepOp, maxLen int, rows []workload.Row, cols []string, score ScoreFunc) SearchResult {
	best := SearchResult{}
	var cur Pipeline
	var rec func()
	rec = func() {
		s := score(cur.Run(rows, cols))
		best.Evaluated++
		if s > best.Score || best.Pipeline == nil {
			cp := make(Pipeline, len(cur))
			copy(cp, cur)
			best.Pipeline, best.Score = cp, s
		}
		if len(cur) == maxLen {
			return
		}
		for _, op := range ops {
			used := false
			for _, u := range cur {
				if u.Name == op.Name {
					used = true
					break
				}
			}
			if used {
				continue
			}
			cur = append(cur, op)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return best
}

// Recommender uses an LLM call to propose a small set of candidate
// pipelines from a description of the data's defects, shrinking the search
// space ("LLMs can use the chain-of-thought ability ... to recommend
// candidate pipelines, significantly reducing the search space").
type Recommender struct {
	Model llm.Model
}

// DataProfile summarizes the defects observed in the input.
type DataProfile struct {
	MissingRate  float64
	MixedDates   bool
	MixedCase    bool
	HasDupes     bool
	HasEmptyRows bool
}

// Profile inspects rows and reports defects.
func Profile(rows []workload.Row, cols []string) DataProfile {
	var p DataProfile
	total, missing := 0, 0
	dateFormatsSeen := map[string]bool{}
	caseMix := map[string]bool{}
	seen := map[string]int{}
	for _, r := range rows {
		empty := true
		var parts []string
		for _, c := range cols {
			v := r[c]
			parts = append(parts, v)
			total++
			if v == "" {
				missing++
				continue
			}
			empty = false
			for _, f := range []string{"words", "slash", "iso"} {
				if _, _, _, ok := parseDateAny(f, v); ok {
					dateFormatsSeen[f] = true
					break
				}
			}
			if v != strings.ToLower(v) {
				caseMix["upper"] = true
			} else {
				caseMix["lower"] = true
			}
		}
		if empty {
			p.HasEmptyRows = true
		}
		seen[strings.Join(parts, "\x00")]++
	}
	for _, n := range seen {
		if n > 1 {
			p.HasDupes = true
		}
	}
	if total > 0 {
		p.MissingRate = float64(missing) / float64(total)
	}
	p.MixedDates = len(dateFormatsSeen) > 1
	p.MixedCase = len(caseMix) > 1
	return p
}

// Recommend returns candidate pipelines for the profile. The gold
// recommendation is derived from the profile (the real planning logic);
// the LLM tier may return a weaker candidate set.
func (r *Recommender) Recommend(ctx context.Context, profile DataProfile, ops []PrepOp) ([]Pipeline, llm.Response, error) {
	byName := map[string]PrepOp{}
	for _, op := range ops {
		byName[op.Name] = op
	}
	var wanted []string
	if profile.HasEmptyRows {
		wanted = append(wanted, "drop_empty_rows")
	}
	if profile.MissingRate > 0 {
		wanted = append(wanted, "impute_mode")
	}
	if profile.MixedDates {
		wanted = append(wanted, "normalize_dates")
	}
	if profile.MixedCase {
		wanted = append(wanted, "normalize_case")
	}
	if profile.HasDupes {
		wanted = append(wanted, "dedupe_exact")
	}
	sort.Strings(wanted)
	gold := strings.Join(wanted, ",")
	wrong := "dedupe_exact" // under-specified plan

	resp, err := r.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskTransform,
		Prompt:     fmt.Sprintf("Recommend preparation operators for data with profile %+v. Available: %s", profile, opNames(ops)),
		Gold:       gold,
		Wrong:      wrong,
		Difficulty: 0.4,
	})
	if err != nil {
		return nil, llm.Response{}, err
	}
	var names []string
	if resp.Text != "" {
		names = strings.Split(resp.Text, ",")
	}
	// The recommendation is a candidate *set*; return its identity ordering
	// plus one alternative ordering, giving the search a tiny space.
	var base Pipeline
	for _, n := range names {
		if op, ok := byName[strings.TrimSpace(n)]; ok {
			base = append(base, op)
		}
	}
	cands := []Pipeline{base}
	if len(base) > 1 {
		alt := make(Pipeline, len(base))
		copy(alt, base)
		alt[0], alt[len(alt)-1] = alt[len(alt)-1], alt[0]
		cands = append(cands, alt)
	}
	return cands, resp, nil
}

func opNames(ops []PrepOp) string {
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	return strings.Join(names, ", ")
}

// GuidedSearch evaluates only the recommended candidates.
func GuidedSearch(cands []Pipeline, rows []workload.Row, cols []string, score ScoreFunc) SearchResult {
	best := SearchResult{}
	for _, p := range cands {
		s := score(p.Run(rows, cols))
		best.Evaluated++
		if s > best.Score || best.Pipeline == nil {
			best.Pipeline, best.Score = p, s
		}
	}
	return best
}
