// Package transform implements the paper's Section II-B applications:
// NL2SQL and NL2Transaction translation, transformation of semi-structured
// documents and spreadsheets into relational tables (Figure 4), column
// pattern mining and column transformation programs, and data-preparation
// pipeline recommendation.
package transform

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/llm"
	"repro/internal/workload"
)

// Difficulty calibration for NL2SQL requests. Whole compound questions
// require multi-step reasoning and are hard for a single LLM call; atomic
// sub-questions are easy. These constants encode the mechanism behind the
// paper's Table II ("the sub-queries tend to be simpler, increasing the
// possibility of converting them into correct SQL").
// The values are calibrated against the gpt-3.5 tier (capability 0.80,
// noise ±0.08) so that whole-compound translation succeeds ~62% of the
// time and atomic translation ~94% — reproducing Table II's 79% → 91%
// accuracy lift on the generated question mix.
const (
	DifficultySimple      = 0.30
	DifficultySuperlative = 0.55
	DifficultyCompound    = 0.78
	DifficultyAtomic      = 0.73
)

// Translator converts natural-language questions over the concert/stadium
// schema into SQL via an LLM call. The rule-based parser computes the
// correct translation (the simulated model's gold output); the model's
// capability decides whether the emitted SQL is the correct one or a
// plausible corruption.
type Translator struct {
	Model llm.Model
	// Examples optionally prepends few-shot examples to every prompt,
	// inflating token cost the way real prompts do.
	Examples []string
}

// NewTranslator returns a Translator over the given model.
func NewTranslator(m llm.Model) *Translator {
	return &Translator{Model: m, Examples: defaultExamples()}
}

func defaultExamples() []string {
	return []string{
		"Q: Show the names of stadiums that had concerts in 2012?\nSQL: SELECT DISTINCT s.name FROM stadium AS s JOIN concert AS e ON s.stadium_id = e.stadium_id WHERE e.year = 2012",
		"Q: What are the names of stadiums that have a capacity greater than 30000?\nSQL: SELECT name FROM stadium WHERE capacity > 30000",
	}
}

// Prompt renders the full prompt for a question (schema header, few-shot
// examples, question). Exposed so the query-combination optimizer can
// account for and deduplicate example tokens.
func (t *Translator) Prompt(question string) string {
	var b strings.Builder
	b.WriteString("Translate the question into SQL over tables stadium(stadium_id, name, city, capacity), concert(concert_id, stadium_id, year, attendance), sports_meeting(meeting_id, stadium_id, year).\n")
	for _, ex := range t.Examples {
		b.WriteString(ex)
		b.WriteString("\n")
	}
	b.WriteString("Q: " + question + "\nSQL:")
	return b.String()
}

// Translate converts one NL question to SQL with a single LLM call.
func (t *Translator) Translate(ctx context.Context, question string) (string, llm.Response, error) {
	return t.translate(ctx, question, t.Prompt(question))
}

// TranslateWithPrompt is Translate with a caller-supplied prompt (used by
// query combination, which merges several questions' prompts).
func (t *Translator) TranslateWithPrompt(ctx context.Context, question, prompt string) (string, llm.Response, error) {
	return t.translate(ctx, question, prompt)
}

func (t *Translator) translate(ctx context.Context, question, promptText string) (string, llm.Response, error) {
	parsed, err := ParseQuestion(question)
	if err != nil {
		return "", llm.Response{}, err
	}
	gold := parsed.SQL()
	wrong := corruptSQL(parsed)
	resp, err := t.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskNL2SQL,
		Prompt:     promptText,
		Gold:       gold,
		Wrong:      wrong,
		Difficulty: parsed.Difficulty(),
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}

// ParsedQuestion is the structure recovered from an NL question by the
// rule-based grammar: the atoms plus the connective.
type ParsedQuestion struct {
	Atoms []workload.Atom
	Conn  workload.Connective
}

// Difficulty returns the calibrated difficulty of translating the whole
// question in one shot.
func (p ParsedQuestion) Difficulty() float64 {
	if len(p.Atoms) > 1 {
		return DifficultyCompound
	}
	if len(p.Atoms) == 1 && p.Atoms[0].Kind == "most" {
		return DifficultySuperlative
	}
	return DifficultySimple
}

// SQL renders the gold SQL for the parsed question.
func (p ParsedQuestion) SQL() string {
	if len(p.Atoms) == 0 {
		return ""
	}
	sql := p.Atoms[0].SQL()
	if len(p.Atoms) == 2 {
		op := map[workload.Connective]string{
			workload.ConnOr:  " UNION ",
			workload.ConnAnd: " INTERSECT ",
			workload.ConnNot: " EXCEPT ",
		}[p.Conn]
		sql += op + p.Atoms[1].SQL()
	}
	return sql
}

var (
	reHead     = regexp.MustCompile(`(?i)^(what are the names of stadiums that|show the names of stadiums that)\s+(.*?)\??$`)
	reEvent    = regexp.MustCompile(`(?i)^ha[dv]e?\s+(concerts|sports meetings)\s+in\s+(\d{4})$`)
	reMost     = regexp.MustCompile(`(?i)^ha[dv]e?\s+the most number of\s+(concerts|sports meetings)\s+in\s+(\d{4})$`)
	reCapacity = regexp.MustCompile(`(?i)^have a capacity\s+(greater|smaller)\s+than\s+(\d+)$`)
)

// ParseQuestion parses a question produced by the workload grammar into its
// atoms and connective. This parser is the genuinely-implemented core of
// the NL2SQL engine: the simulated LLM's "skill" is whether it applies this
// translation correctly under its capability budget.
func ParseQuestion(q string) (ParsedQuestion, error) {
	m := reHead.FindStringSubmatch(strings.TrimSpace(q))
	if m == nil {
		return ParsedQuestion{}, fmt.Errorf("transform: unrecognized question form %q", q)
	}
	body := m[2]

	// Split on the compound connectives. "but did not" binds the negated
	// branch; plain "or"/"and" join two positive atoms.
	var parts []string
	conn := workload.ConnNone
	switch {
	case strings.Contains(body, " but did not "):
		parts = strings.SplitN(body, " but did not ", 2)
		conn = workload.ConnNot
	case strings.Contains(body, " or "):
		parts = strings.SplitN(body, " or ", 2)
		conn = workload.ConnOr
	case strings.Contains(body, " and "):
		parts = strings.SplitN(body, " and ", 2)
		conn = workload.ConnAnd
	default:
		parts = []string{body}
	}

	var out ParsedQuestion
	out.Conn = conn
	for i, part := range parts {
		a, err := parseAtomPhrase(strings.TrimSpace(part), conn == workload.ConnNot && i == 1)
		if err != nil {
			return ParsedQuestion{}, err
		}
		out.Atoms = append(out.Atoms, a)
	}
	return out, nil
}

// parseAtomPhrase parses one verb phrase. After "but did not", the phrase
// arrives without its own auxiliary ("have concerts in 2014").
func parseAtomPhrase(s string, negContext bool) (workload.Atom, error) {
	if negContext && !strings.HasPrefix(strings.ToLower(s), "have") && !strings.HasPrefix(strings.ToLower(s), "had") {
		s = "have " + s
	}
	if m := reMost.FindStringSubmatch(s); m != nil {
		y, _ := strconv.Atoi(m[2])
		return workload.Atom{Kind: "most", Event: strings.ToLower(m[1]), Year: y}, nil
	}
	if m := reEvent.FindStringSubmatch(s); m != nil {
		y, _ := strconv.Atoi(m[2])
		return workload.Atom{Kind: "event", Event: strings.ToLower(m[1]), Year: y}, nil
	}
	if m := reCapacity.FindStringSubmatch(s); m != nil {
		n, _ := strconv.Atoi(m[2])
		op := ">"
		if strings.EqualFold(m[1], "smaller") {
			op = "<"
		}
		return workload.Atom{Kind: "capacity", CapOp: op, CapN: n}, nil
	}
	return workload.Atom{}, fmt.Errorf("transform: unrecognized condition %q", s)
}

// corruptSQL produces the plausible-but-wrong translation the simulated
// model emits when it errs: compound questions get the wrong set operation,
// atomic questions get an off-by-one year or flipped comparison — the kinds
// of mistakes NL2SQL systems actually make.
func corruptSQL(p ParsedQuestion) string {
	if len(p.Atoms) == 2 {
		wrongOp := map[workload.Connective]string{
			workload.ConnOr:  " INTERSECT ",
			workload.ConnAnd: " UNION ",
			workload.ConnNot: " UNION ",
		}[p.Conn]
		return p.Atoms[0].SQL() + wrongOp + p.Atoms[1].SQL()
	}
	if len(p.Atoms) == 1 {
		a := p.Atoms[0]
		switch a.Kind {
		case "event", "most":
			a.Year++
		case "capacity":
			if a.CapOp == ">" {
				a.CapOp = "<"
			} else {
				a.CapOp = ">"
			}
		}
		return a.SQL()
	}
	return "SELECT name FROM stadium"
}

// TranslateAtomic translates one atomic verb phrase ("had concerts in
// 2014") into its sub-query SQL. Sub-questions are easy (DifficultyAtomic),
// which is what makes decomposition improve accuracy.
func (t *Translator) TranslateAtomic(ctx context.Context, phrase string) (string, llm.Response, error) {
	atom, err := parseAtomPhrase(strings.TrimSpace(phrase), true)
	if err != nil {
		return "", llm.Response{}, err
	}
	gold := atom.SQL()
	wrongAtom := atom
	if wrongAtom.Kind == "capacity" {
		if wrongAtom.CapOp == ">" {
			wrongAtom.CapOp = "<"
		} else {
			wrongAtom.CapOp = ">"
		}
	} else {
		wrongAtom.Year++
	}
	resp, err := t.Model.Complete(ctx, llm.Request{
		Task:       llm.TaskNL2SQL,
		Prompt:     t.Prompt("stadiums that " + phrase),
		Gold:       gold,
		Wrong:      wrongAtom.SQL(),
		Difficulty: DifficultyAtomic,
		NoiseKey:   "atomic:" + phrase,
	})
	if err != nil {
		return "", llm.Response{}, err
	}
	return resp.Text, resp, nil
}
