package transform

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// dirtyRows builds a small dataset with every defect class.
func dirtyRows() ([]workload.Row, []string) {
	cols := []string{"name", "city", "date"}
	rows := []workload.Row{
		{"name": "Alice", "city": "Lyon", "date": "Aug 14 2023"},
		{"name": "alice", "city": "lyon", "date": "8/14/2023"},
		{"name": "Bob", "city": "", "date": "Sep 02 2021"},
		{"name": "", "city": "", "date": ""},
		{"name": "Carol", "city": "Lyon", "date": "2021-09-02"},
		{"name": "Carol", "city": "Lyon", "date": "2021-09-02"},
	}
	return rows, cols
}

// score rewards clean data: no blanks, one date format, no exact dupes.
func cleanScore(cols []string) ScoreFunc {
	return func(rows []workload.Row) float64 {
		if len(rows) == 0 {
			return 0
		}
		total, good := 0, 0
		seen := map[string]int{}
		for _, r := range rows {
			key := ""
			for _, c := range cols {
				total++
				v := r[c]
				key += v + "\x00"
				if v == "" {
					continue
				}
				if c == "date" {
					if _, _, _, ok := parseDateAny("iso", v); !ok {
						continue
					}
				}
				good++
			}
			seen[key]++
		}
		dupPenalty := 0.0
		for _, n := range seen {
			if n > 1 {
				dupPenalty += float64(n - 1)
			}
		}
		return float64(good)/float64(total) - 0.1*dupPenalty
	}
}

func TestOperatorsIndividually(t *testing.T) {
	rows, cols := dirtyRows()
	if got := opDropEmpty(rows, cols); len(got) != 5 {
		t.Errorf("drop_empty kept %d rows", len(got))
	}
	imputed := opImputeMode(rows, cols)
	if imputed[2]["city"] == "" {
		t.Error("impute left blank city")
	}
	normed := opNormalizeDates(rows, cols)
	if normed[0]["date"] != "2023-08-14" {
		t.Errorf("date normalize = %q", normed[0]["date"])
	}
	lowered := opNormalizeCase(rows, cols)
	if lowered[0]["name"] != "alice" {
		t.Errorf("case normalize = %q", lowered[0]["name"])
	}
	if got := opDedupeExact(rows, cols); len(got) != len(rows)-1 {
		t.Errorf("dedupe kept %d rows", len(got))
	}
}

func TestOperatorsDoNotMutateInput(t *testing.T) {
	rows, cols := dirtyRows()
	before := rows[0]["date"]
	opNormalizeDates(rows, cols)
	if rows[0]["date"] != before {
		t.Error("normalize_dates mutated its input")
	}
}

func TestExhaustiveSearchFindsGoodPipeline(t *testing.T) {
	rows, cols := dirtyRows()
	score := cleanScore(cols)
	res := ExhaustiveSearch(StandardOps(), 3, rows, cols, score)
	if res.Score <= score(rows) {
		t.Errorf("search did not improve: %.3f vs raw %.3f", res.Score, score(rows))
	}
	if res.Evaluated < 50 {
		t.Errorf("exhaustive search evaluated only %d pipelines", res.Evaluated)
	}
}

func TestProfileDetectsDefects(t *testing.T) {
	rows, cols := dirtyRows()
	p := Profile(rows, cols)
	if !p.MixedDates || !p.MixedCase || !p.HasDupes || !p.HasEmptyRows || p.MissingRate <= 0 {
		t.Errorf("profile missed defects: %+v", p)
	}
	clean := Profile([]workload.Row{{"a": "x"}}, []string{"a"})
	if clean.HasDupes || clean.MissingRate != 0 {
		t.Errorf("clean profile wrong: %+v", clean)
	}
}

func TestGuidedSearchMuchCheaper(t *testing.T) {
	rows, cols := dirtyRows()
	score := cleanScore(cols)
	profile := Profile(rows, cols)

	r := &Recommender{Model: strongModel()}
	cands, resp, err := r.Recommend(context.Background(), profile, StandardOps())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Correct {
		t.Error("strong recommender erred")
	}
	guided := GuidedSearch(cands, rows, cols, score)
	exhaustive := ExhaustiveSearch(StandardOps(), 3, rows, cols, score)

	if guided.Evaluated >= exhaustive.Evaluated/5 {
		t.Errorf("guided search not much cheaper: %d vs %d evaluations", guided.Evaluated, exhaustive.Evaluated)
	}
	if guided.Score < exhaustive.Score*0.9 {
		t.Errorf("guided score %.3f too far below exhaustive %.3f", guided.Score, exhaustive.Score)
	}
}

func TestRecommenderWeakModelUnderSpecifies(t *testing.T) {
	rows, cols := dirtyRows()
	profile := Profile(rows, cols)
	r := &Recommender{Model: failingModel()}
	cands, resp, err := r.Recommend(context.Background(), profile, StandardOps())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Correct {
		t.Skip("failing model unexpectedly correct")
	}
	if len(cands) == 0 {
		t.Fatal("no candidates at all")
	}
	if len(cands[0]) >= 4 {
		t.Errorf("weak model still produced a full plan: %v", cands[0].Names())
	}
}

func TestPipelineNames(t *testing.T) {
	p := Pipeline{StandardOps()[0], StandardOps()[2]}
	names := p.Names()
	if names[0] != "drop_empty_rows" || names[1] != "normalize_dates" {
		t.Errorf("names = %v", names)
	}
}
