package transform

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/workload"
)

// PatternToken is one element of a mined column pattern: either a literal
// string or a character class with a repetition count.
type PatternToken struct {
	// Class is "letter", "digit", or "literal".
	Class string
	// Count is the repetition for class tokens.
	Count int
	// Lit is the literal text for literal tokens.
	Lit string
}

// Pattern is a mined column pattern — the "<letter>{3} <digit>{2}
// <digit>{4}" representation from the paper's Section II-B3.
type Pattern []PatternToken

// String renders the pattern in the paper's notation.
func (p Pattern) String() string {
	var b strings.Builder
	for _, t := range p {
		switch t.Class {
		case "literal":
			b.WriteString(t.Lit)
		default:
			fmt.Fprintf(&b, "<%s>{%d}", t.Class, t.Count)
		}
	}
	return b.String()
}

// tokenizeValue splits a value into runs of letters, digits, and literal
// separators.
func tokenizeValue(s string) Pattern {
	var out Pattern
	var cur PatternToken
	flush := func() {
		if cur.Class != "" {
			out = append(out, cur)
			cur = PatternToken{}
		}
	}
	for _, r := range s {
		var class string
		switch {
		case unicode.IsLetter(r):
			class = "letter"
		case unicode.IsDigit(r):
			class = "digit"
		default:
			class = "literal"
		}
		if class == "literal" {
			flush()
			out = append(out, PatternToken{Class: "literal", Lit: string(r)})
			continue
		}
		if cur.Class == class {
			cur.Count++
			continue
		}
		flush()
		cur = PatternToken{Class: class, Count: 1}
	}
	flush()
	return out
}

// MinePattern infers the tightest pattern matching every value in the
// column: per-position classes must agree; repetition counts that vary
// across values widen to the observed maximum with Count recorded as the
// max and matching allowing [1, Count]. It returns false when values
// disagree structurally (different token sequences).
func MinePattern(values []string) (Pattern, bool) {
	if len(values) == 0 {
		return nil, false
	}
	base := tokenizeValue(values[0])
	exact := make([]bool, len(base)) // whether Count is exact across values
	for i := range exact {
		exact[i] = true
	}
	for _, v := range values[1:] {
		p := tokenizeValue(v)
		if len(p) != len(base) {
			return nil, false
		}
		for i := range base {
			if p[i].Class != base[i].Class {
				return nil, false
			}
			if base[i].Class == "literal" {
				if p[i].Lit != base[i].Lit {
					return nil, false
				}
				continue
			}
			if p[i].Count != base[i].Count {
				exact[i] = false
				if p[i].Count > base[i].Count {
					base[i].Count = p[i].Count
				}
			}
		}
	}
	_ = exact
	return base, true
}

// Match reports whether s conforms to the pattern (class tokens accept 1 to
// Count repetitions; literals must match exactly).
func (p Pattern) Match(s string) bool {
	r := []rune(s)
	pos := 0
	for _, t := range p {
		switch t.Class {
		case "literal":
			lit := []rune(t.Lit)
			if pos+len(lit) > len(r) || string(r[pos:pos+len(lit)]) != t.Lit {
				return false
			}
			pos += len(lit)
		default:
			n := 0
			for pos < len(r) && n < t.Count && classOf(r[pos]) == t.Class {
				pos++
				n++
			}
			if n == 0 {
				return false
			}
		}
	}
	return pos == len(r)
}

func classOf(r rune) string {
	switch {
	case unicode.IsLetter(r):
		return "letter"
	case unicode.IsDigit(r):
		return "digit"
	default:
		return "literal"
	}
}

// MatchRate is the fraction of values matching the pattern — the data
// quality validation signal ("the column patterns discovered by LLMs can
// help validate the data quality").
func (p Pattern) MatchRate(values []string) float64 {
	if len(values) == 0 {
		return 0
	}
	hit := 0
	for _, v := range values {
		if p.Match(v) {
			hit++
		}
	}
	return float64(hit) / float64(len(values))
}

// DriftDetected reports whether a refreshed column no longer conforms to
// the pattern mined from its previous snapshot (schema/data drift,
// Section II-B3). tolerance is the allowed non-matching fraction.
func DriftDetected(old, refreshed []string, tolerance float64) (bool, Pattern) {
	p, ok := MinePattern(old)
	if !ok {
		return false, nil
	}
	return p.MatchRate(refreshed) < 1-tolerance, p
}

// --- Column transformation programs ---

// ColumnTransform converts a value from a source column format to the
// destination column format. ok is false when the value does not conform.
type ColumnTransform func(value string) (string, bool)

// dateFormat identifies which known date layout a column uses.
func dateFormat(values []string) string {
	layouts := []struct {
		name  string
		parse func(string) (int, int, int, bool)
	}{
		{"words", parseWords},
		{"slash", parseSlash},
		{"iso", parseISO},
	}
	for _, l := range layouts {
		all := true
		for _, v := range values {
			if _, _, _, ok := l.parse(v); !ok {
				all = false
				break
			}
		}
		if all && len(values) > 0 {
			return l.name
		}
	}
	return ""
}

func parseWords(s string) (y, m, d int, ok bool) {
	months := []string{"jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec"}
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return
	}
	for i, mo := range months {
		if strings.EqualFold(mo, parts[0]) {
			m = i + 1
		}
	}
	if m == 0 {
		return
	}
	if _, err := fmt.Sscanf(parts[1]+" "+parts[2], "%d %d", &d, &y); err != nil {
		return 0, 0, 0, false
	}
	return y, m, d, true
}

func parseSlash(s string) (y, m, d int, ok bool) {
	if n, err := fmt.Sscanf(s, "%d/%d/%d", &m, &d, &y); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, 0, 0, false
	}
	return y, m, d, true
}

func parseISO(s string) (y, m, d int, ok bool) {
	if n, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	if m < 1 || m > 12 || d < 1 || d > 31 || y < 1000 {
		return 0, 0, 0, false
	}
	return y, m, d, true
}

func renderDate(format string, y, m, d int) string {
	switch format {
	case "words":
		return workload.FormatDateWords(y, m, d)
	case "slash":
		return workload.FormatDateSlash(y, m, d)
	case "iso":
		return workload.FormatDateISO(y, m, d)
	default:
		return ""
	}
}

// ParseDateAs parses s in the named date layout ("words", "slash", "iso").
func ParseDateAs(format, s string) (int, int, int, bool) { return parseDateAny(format, s) }

// RenderDateAs renders a date in the named layout.
func RenderDateAs(format string, y, m, d int) string { return renderDate(format, y, m, d) }

func parseDateAny(format, s string) (int, int, int, bool) {
	switch format {
	case "words":
		return parseWords(s)
	case "slash":
		return parseSlash(s)
	case "iso":
		return parseISO(s)
	default:
		return 0, 0, 0, false
	}
}

// InferColumnTransform synthesizes a transformation program between two
// columns that represent the same data in different formats — the paper's
// "Aug 14 2023" vs "8/14/2023" joinable-columns example. Supported program
// families: date format conversion, case normalization, and identity.
func InferColumnTransform(src, dst []string) (ColumnTransform, string, bool) {
	if len(src) == 0 || len(dst) == 0 {
		return nil, "", false
	}
	// Date reformat?
	sf, df := dateFormat(src), dateFormat(dst)
	if sf != "" && df != "" && sf != df {
		name := fmt.Sprintf("date:%s->%s", sf, df)
		return func(v string) (string, bool) {
			y, m, d, ok := parseDateAny(sf, v)
			if !ok {
				return "", false
			}
			return renderDate(df, y, m, d), true
		}, name, true
	}
	// Identity?
	if equalSlices(src, dst) {
		return func(v string) (string, bool) { return v, true }, "identity", true
	}
	// Case normalization?
	if sameLower(src, dst) {
		if allUpper(dst) {
			return func(v string) (string, bool) { return strings.ToUpper(v), true }, "case:upper", true
		}
		if allLower(dst) {
			return func(v string) (string, bool) { return strings.ToLower(v), true }, "case:lower", true
		}
	}
	return nil, "", false
}

func sameLower(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

func allUpper(vs []string) bool {
	for _, v := range vs {
		if v != strings.ToUpper(v) {
			return false
		}
	}
	return true
}

func allLower(vs []string) bool {
	for _, v := range vs {
		if v != strings.ToLower(v) {
			return false
		}
	}
	return true
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// JoinableByTransform reports whether two columns become joinable under an
// inferred transformation: every transformed source value appears in the
// destination column.
func JoinableByTransform(src, dst []string) (bool, string) {
	tf, name, ok := InferColumnTransform(src, dst)
	if !ok {
		return false, ""
	}
	in := make(map[string]bool, len(dst))
	for _, v := range dst {
		in[v] = true
	}
	for _, v := range src {
		out, ok := tf(v)
		if !ok || !in[out] {
			return false, name
		}
	}
	return true, name
}
