package validate

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func midModel() *llm.SimModel {
	return llm.NewSim(llm.SimConfig{Name: "mid", Capability: 0.7,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
}

func TestSelfConsistencyEasyUnanimous(t *testing.T) {
	req := llm.Request{Task: llm.TaskQA, Prompt: "trivial lookup", Gold: "Lyon", Wrong: "Riga", Difficulty: 0.05}
	res, err := SelfConsistency(context.Background(), midModel(), req, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "Lyon" || res.Agreement != 1 {
		t.Errorf("consensus = %q agreement %.2f", res.Answer, res.Agreement)
	}
	if len(res.Votes) != 5 || res.Cost <= 0 {
		t.Errorf("votes %d cost %v", len(res.Votes), res.Cost)
	}
}

func TestSelfConsistencyBorderlineDisagrees(t *testing.T) {
	// Difficulty right at capability: noise flips some samples, and the
	// disagreement is the validation signal.
	set := workload.GenQA(19, 200)
	m := midModel()
	sawDisagreement := false
	for _, it := range set.Items {
		if it.Difficulty < 0.62 || it.Difficulty > 0.78 {
			continue
		}
		res, err := SelfConsistency(context.Background(), m, llm.Request{
			Prompt: it.Question, Gold: it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Agreement < 1 {
			sawDisagreement = true
			break
		}
	}
	if !sawDisagreement {
		t.Error("borderline queries never disagreed; agreement carries no signal")
	}
}

func TestAgreementFiltersErrors(t *testing.T) {
	// Accepting only high-agreement answers must raise precision over
	// accepting everything.
	set := workload.GenQA(23, 300)
	m := midModel()
	var allCorrect, allN, accCorrect, accN int
	for _, it := range set.Items {
		res, err := SelfConsistency(context.Background(), m, llm.Request{
			Prompt: it.Question, Gold: it.Answer, Wrong: it.Distractor, Difficulty: it.Difficulty,
			WrongAlts: []string{"I am not certain.", "It is not mentioned in the context."},
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		correct := res.Answer == it.Answer
		allN++
		if correct {
			allCorrect++
		}
		if res.Agreement >= 0.8 {
			accN++
			if correct {
				accCorrect++
			}
		}
	}
	if accN == 0 || accN == allN {
		t.Fatalf("degenerate acceptance: %d of %d", accN, allN)
	}
	rawAcc := float64(allCorrect) / float64(allN)
	validatedAcc := float64(accCorrect) / float64(accN)
	if validatedAcc <= rawAcc {
		t.Errorf("validated accuracy %.3f not above raw %.3f", validatedAcc, rawAcc)
	}
}

func TestAttributeEvidence(t *testing.T) {
	facts := []string{
		"Kyoto is a city in Hyrkania.",
		"Mei Tanaka was born in Kyoto and researches genomics at Apex Labs.",
		"Apex Labs is headquartered in Lyon and was founded in 1954.",
	}
	attrs := AttributeEvidence("In which city was Mei Tanaka born?", "Kyoto", facts)
	if attrs[0].Fact != facts[1] {
		t.Errorf("top attribution = %q", attrs[0].Fact)
	}
	if attrs[0].Score <= attrs[2].Score {
		t.Error("supporting fact not scored above unrelated fact")
	}
}

func TestSupported(t *testing.T) {
	facts := []string{"Mei Tanaka was born in Kyoto."}
	if !Supported("Kyoto", facts) {
		t.Error("grounded answer reported unsupported")
	}
	if Supported("Riga", facts) {
		t.Error("hallucinated answer reported supported")
	}
	if Supported("", facts) {
		t.Error("empty answer supported")
	}
}

func TestWorkerJudgeDeterministic(t *testing.T) {
	w := NewWorker("w1", 0.8)
	a := w.Judge("item-1", true)
	b := w.Judge("item-1", true)
	if a != b {
		t.Error("worker verdict nondeterministic")
	}
}

func TestWorkerAccuracyCalibrated(t *testing.T) {
	w := NewWorker("w2", 0.8)
	right := 0
	const n = 2000
	for i := 0; i < n; i++ {
		truth := i%2 == 0
		if w.Judge(fmt.Sprintf("item-%d", i), truth) == truth {
			right++
		}
	}
	acc := float64(right) / n
	if acc < 0.75 || acc > 0.85 {
		t.Errorf("worker accuracy %.3f, want ~0.8", acc)
	}
}

func TestCrowdBeatsSingleWorker(t *testing.T) {
	workers := []*Worker{
		NewWorker("a", 0.75), NewWorker("b", 0.75), NewWorker("c", 0.75),
		NewWorker("d", 0.75), NewWorker("e", 0.75),
	}
	crowd := NewCrowd(workers...)
	const n = 1000
	crowdRight, soloRight := 0, 0
	for i := 0; i < n; i++ {
		truth := i%3 != 0
		key := fmt.Sprintf("out-%d", i)
		if verdict, _ := crowd.Accept(key, truth); verdict == truth {
			crowdRight++
		}
		if workers[0].Judge(key, truth) == truth {
			soloRight++
		}
	}
	if crowdRight <= soloRight {
		t.Errorf("crowd %d not above solo %d", crowdRight, soloRight)
	}
}

func TestCalibrationDownweightsBadWorker(t *testing.T) {
	good := NewWorker("good", 0.95)
	bad := NewWorker("bad", 0.3) // adversarially wrong
	crowd := NewCrowd(good, bad)

	var goldItems []string
	var goldTruth []bool
	for i := 0; i < 200; i++ {
		goldItems = append(goldItems, fmt.Sprintf("gold-%d", i))
		goldTruth = append(goldTruth, i%2 == 0)
	}
	crowd.Calibrate(goldItems, goldTruth)
	if good.reliability <= bad.reliability {
		t.Errorf("calibration failed: good %.2f vs bad %.2f", good.reliability, bad.reliability)
	}

	// With calibration, the good worker dominates the vote.
	right := 0
	const n = 500
	for i := 0; i < n; i++ {
		truth := i%2 == 0
		if verdict, _ := crowd.Accept(fmt.Sprintf("item-%d", i), truth); verdict == truth {
			right++
		}
	}
	if float64(right)/n < 0.85 {
		t.Errorf("calibrated crowd accuracy %.3f too low", float64(right)/n)
	}
}

func TestEmptyCrowd(t *testing.T) {
	c := NewCrowd()
	verdict, share := c.Accept("x", true)
	if verdict || share != 0 {
		t.Errorf("empty crowd verdict %v share %v", verdict, share)
	}
}

func BenchmarkSelfConsistency(b *testing.B) {
	m := midModel()
	req := llm.Request{Prompt: "a question of moderate length about stadium concerts", Gold: "g", Wrong: "w", Difficulty: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SelfConsistency(context.Background(), m, req, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAcceptSequentialSavesJudgments(t *testing.T) {
	workers := make([]*Worker, 9)
	for i := range workers {
		workers[i] = NewWorker(fmt.Sprintf("sw%d", i), 0.95)
	}
	crowd := NewCrowd(workers...)

	totalConsulted, full := 0, 0
	agree := 0
	const n = 300
	for i := 0; i < n; i++ {
		truth := i%3 != 0
		key := fmt.Sprintf("seq-%d", i)
		vSeq, _, used := crowd.AcceptSequential(key, truth)
		vFull, _ := crowd.Accept(key, truth)
		totalConsulted += used
		full += len(workers)
		if vSeq == vFull {
			agree++
		}
	}
	if totalConsulted >= full {
		t.Errorf("sequential used %d judgments, full panel %d", totalConsulted, full)
	}
	// With high-reliability workers the early stop should rarely flip the
	// verdict relative to the full panel.
	if float64(agree)/n < 0.97 {
		t.Errorf("sequential agreed with full panel only %.3f", float64(agree)/n)
	}
}

func TestAcceptSequentialEmptyCrowd(t *testing.T) {
	c := NewCrowd()
	verdict, share, used := c.AcceptSequential("x", true)
	if verdict || share != 0 || used != 0 {
		t.Errorf("empty sequential = %v %v %d", verdict, share, used)
	}
}
