package validate

import (
	"context"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/token"
	"repro/internal/workload"
)

func TestLeaveOneOutFindsSupportingFact(t *testing.T) {
	m := llm.NewSim(llm.SimConfig{Name: "loo", Capability: 0.85,
		Price: token.Price{InputPer1K: 1000, OutputPer1K: 2000}})
	set := workload.GenQA(31, 40)

	checked := 0
	for _, it := range set.Items {
		if it.Hops != 2 {
			continue
		}
		// The item's gold facts plus distractors.
		facts := append([]string{}, it.Facts...)
		facts = append(facts, "Turin is a city in Borduria.", "Onyx Group was founded in 1971.")

		buildReq := func(fs []string) llm.Request {
			// Missing support makes the question unanswerable from context:
			// the builder raises difficulty accordingly. This is how a
			// retrieval-grounded pipeline actually behaves.
			difficulty := it.Difficulty
			joined := strings.Join(fs, " ")
			for _, gold := range it.Facts {
				if !strings.Contains(joined, gold) {
					difficulty = 0.99
				}
			}
			return llm.Request{
				Task:       llm.TaskQA,
				Prompt:     "Context: " + joined + "\nQ: " + it.Question,
				Gold:       it.Answer,
				Wrong:      it.Distractor,
				Difficulty: difficulty,
			}
		}
		attrs, cost, err := LeaveOneOut(context.Background(), m, facts, buildReq)
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 {
			t.Error("ablations billed nothing")
		}
		// Every gold fact must out-score every distractor.
		minGold, maxDistr := 2.0, -2.0
		for i, a := range attrs {
			if i < len(it.Facts) {
				if a.Score < minGold {
					minGold = a.Score
				}
			} else if a.Score > maxDistr {
				maxDistr = a.Score
			}
		}
		if minGold <= maxDistr {
			t.Errorf("item %d: gold fact score %.3f not above distractor %.3f", it.ID, minGold, maxDistr)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no 2-hop items checked")
	}
}

func TestTopEvidence(t *testing.T) {
	attrs := []Attribution{{Score: 0.1}, {Score: 0.9}, {Score: 0.3}}
	if got := TopEvidence(attrs); got != 1 {
		t.Errorf("TopEvidence = %d", got)
	}
	if got := TopEvidence(nil); got != -1 {
		t.Errorf("TopEvidence(nil) = %d", got)
	}
}
