// Package validate implements the paper's Section III-E: validating LLM
// outputs before data-management systems trust them. Three mechanisms are
// provided — self-consistency voting across prompt variants, interpretable
// evidence attribution (which input facts support the answer), and
// human-in-the-loop crowd scoring with learned worker reliabilities.
package validate

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/token"
)

// Vote is one self-consistency sample.
type Vote struct {
	Text       string
	Confidence float64
}

// ConsensusResult is the outcome of self-consistency validation.
type ConsensusResult struct {
	Answer string
	// Agreement is the fraction of samples voting for Answer.
	Agreement float64
	Votes     []Vote
	Cost      token.Cost
}

// SelfConsistency re-asks the model k times with lexically varied prompts
// (each variant draws an independent noise stream in the simulated model,
// exactly as temperature-sampled runs differ in a real one) and majority-
// votes the answers. The agreement score is the validation signal: data
// pipelines accept an answer only above an agreement threshold.
func SelfConsistency(ctx context.Context, m llm.Model, req llm.Request, k int) (ConsensusResult, error) {
	if k <= 0 {
		k = 3
	}
	var res ConsensusResult
	counts := map[string]int{}
	for i := 0; i < k; i++ {
		v := req
		// Prompt variants: semantically identical, lexically distinct.
		v.Prompt = fmt.Sprintf("%s\n(please answer carefully, attempt %d)", req.Prompt, i+1)
		resp, err := m.Complete(ctx, v)
		if err != nil {
			return res, err
		}
		res.Votes = append(res.Votes, Vote{Text: resp.Text, Confidence: resp.Confidence})
		res.Cost += resp.Cost
		counts[resp.Text]++
	}
	best, bestN := "", 0
	for text, n := range counts {
		if n > bestN || (n == bestN && text < best) {
			best, bestN = text, n
		}
	}
	res.Answer = best
	res.Agreement = float64(bestN) / float64(k)
	return res, nil
}

// --- Evidence attribution (interpretable LLMs) ---

// Attribution scores one input fact's support for an answer.
type Attribution struct {
	Fact  string
	Score float64
}

// AttributeEvidence ranks the context facts by how strongly they support
// the produced answer: facts containing the answer string score highest,
// then facts sharing question terms. This is the string-level analogue of
// attention/leave-one-out attribution and gives the human verifier the
// "database-specific explanation" the paper asks for: *which* input rows
// or documents the output rests on.
func AttributeEvidence(question, answer string, facts []string) []Attribution {
	qTokens := tokenSet(question)
	out := make([]Attribution, len(facts))
	for i, f := range facts {
		score := 0.0
		if answer != "" && strings.Contains(strings.ToLower(f), strings.ToLower(answer)) {
			score += 1.0
		}
		fTokens := tokenSet(f)
		overlap := 0
		for t := range qTokens {
			if fTokens[t] {
				overlap++
			}
		}
		if len(qTokens) > 0 {
			score += float64(overlap) / float64(len(qTokens))
		}
		out[i] = Attribution{Fact: f, Score: score}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Supported reports whether the answer is grounded in at least one fact —
// the cheap hallucination check data pipelines should run before accepting
// extracted values.
func Supported(answer string, facts []string) bool {
	if answer == "" {
		return false
	}
	for _, f := range facts {
		if strings.Contains(strings.ToLower(f), strings.ToLower(answer)) {
			return true
		}
	}
	return false
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, t := range strings.Fields(strings.ToLower(s)) {
		t = strings.Trim(t, ".,?!;:'\"")
		if len(t) > 2 {
			out[t] = true
		}
	}
	return out
}

// --- Human-in-the-loop crowd scoring ---

// Worker is one simulated crowd participant: it judges an LLM output as
// acceptable or not, and is right with probability Accuracy. Judgments are
// deterministic per (worker, item) via the same hash-noise mechanism as the
// simulated models.
type Worker struct {
	ID       string
	Accuracy float64
	// reliability is the learned weight from gold-question calibration;
	// 1.0 until calibrated.
	reliability float64
}

// NewWorker returns a worker with unit reliability.
func NewWorker(id string, accuracy float64) *Worker {
	return &Worker{ID: id, Accuracy: accuracy, reliability: 1}
}

// Judge returns the worker's verdict on an item whose true quality is
// goodTruth.
func (w *Worker) Judge(itemKey string, goodTruth bool) bool {
	u := noise(w.ID, itemKey)
	if u < w.Accuracy {
		return goodTruth
	}
	return !goodTruth
}

// Crowd aggregates workers with reliability-weighted voting.
type Crowd struct {
	Workers []*Worker
	// Threshold is the weighted approval share required to accept.
	Threshold float64
}

// NewCrowd returns a crowd with a 0.5 threshold.
func NewCrowd(workers ...*Worker) *Crowd {
	return &Crowd{Workers: workers, Threshold: 0.5}
}

// Calibrate runs gold items (known-quality outputs) past every worker and
// sets reliabilities to the observed accuracy — the paper's "define a score
// function ... utilize crowdsourcing for scoring".
func (c *Crowd) Calibrate(goldItems []string, goldTruth []bool) {
	for _, w := range c.Workers {
		right := 0
		for i, item := range goldItems {
			if w.Judge("gold:"+item, goldTruth[i]) == goldTruth[i] {
				right++
			}
		}
		if len(goldItems) > 0 {
			w.reliability = float64(right) / float64(len(goldItems))
		}
	}
}

// Accept returns the crowd's weighted verdict on an item plus the approval
// share.
func (c *Crowd) Accept(itemKey string, goodTruth bool) (bool, float64) {
	var yes, total float64
	for _, w := range c.Workers {
		weight := w.reliability
		total += weight
		if w.Judge(itemKey, goodTruth) {
			yes += weight
		}
	}
	if total == 0 {
		return false, 0
	}
	share := yes / total
	return share >= c.Threshold, share
}

// AcceptSequential queries workers one at a time and stops as soon as the
// remaining voters cannot overturn the current weighted lead — the
// budget-aware form of crowd validation (crowdsourcing bills per
// judgment). It returns the verdict, the approval share among consulted
// workers, and how many workers were consulted.
func (c *Crowd) AcceptSequential(itemKey string, goodTruth bool) (verdict bool, share float64, consulted int) {
	var yes, total float64
	var remaining float64
	for _, w := range c.Workers {
		remaining += w.reliability
	}
	for _, w := range c.Workers {
		weight := w.reliability
		remaining -= weight
		total += weight
		if w.Judge(itemKey, goodTruth) {
			yes += weight
		}
		consulted++
		// Decided when even a unanimous remainder cannot move the verdict
		// across the threshold.
		grand := total + remaining
		if grand == 0 {
			break
		}
		bestCase := (yes + remaining) / grand
		worstCase := yes / grand
		if worstCase >= c.Threshold || bestCase < c.Threshold {
			break
		}
	}
	if total == 0 {
		return false, 0, consulted
	}
	share = yes / total
	return share >= c.Threshold, share, consulted
}

// noise maps (worker, item) to uniform [0,1), deterministic. The FNV pass
// is followed by a splitmix64 finalizer: FNV alone leaves the high bits of
// short, suffix-varying keys badly mixed.
func noise(worker, item string) float64 {
	h := uint64(1469598103934665603)
	for _, s := range []string{worker, "\x00", item} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
