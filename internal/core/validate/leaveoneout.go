package validate

import (
	"context"

	"repro/internal/llm"
	"repro/internal/token"
)

// LeaveOneOut measures each context fact's influence on the model's answer
// by re-asking the question with that fact removed and recording the
// confidence drop — the model-grounded counterpart of AttributeEvidence
// (string-grounded), and the classic ablation form of LLM interpretability
// the paper's Section III-E-1 asks for.
//
// buildReq constructs the request for a given context subset; callers
// encode how missing context affects the task (e.g. raising difficulty
// when a supporting fact is absent). The returned attributions are ordered
// like facts; Score is baselineConfidence − ablatedConfidence, so larger
// means more load-bearing.
func LeaveOneOut(ctx context.Context, m llm.Model, facts []string,
	buildReq func(facts []string) llm.Request) ([]Attribution, token.Cost, error) {

	base, err := m.Complete(ctx, buildReq(facts))
	if err != nil {
		return nil, 0, err
	}
	cost := base.Cost
	out := make([]Attribution, len(facts))
	for i, f := range facts {
		ablated := make([]string, 0, len(facts)-1)
		ablated = append(ablated, facts[:i]...)
		ablated = append(ablated, facts[i+1:]...)
		resp, err := m.Complete(ctx, buildReq(ablated))
		if err != nil {
			return nil, cost, err
		}
		cost += resp.Cost
		out[i] = Attribution{Fact: f, Score: base.Confidence - resp.Confidence}
	}
	return out, cost, nil
}

// TopEvidence returns the index of the highest-scoring attribution, or -1.
func TopEvidence(attrs []Attribution) int {
	best, bestScore := -1, 0.0
	for i, a := range attrs {
		if best == -1 || a.Score > bestScore {
			best, bestScore = i, a.Score
		}
	}
	return best
}
