package obs

import (
	"context"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "proxy.complete")
	_, lookup := StartSpan(ctx, "cache.lookup")
	lookup.SetAttr("hit", false)
	lookup.End()
	stepCtx, step := StartSpan(ctx, "cascade.step")
	step.SetAttr("model", "gpt-4")
	step.SetAttr("cost_microusd", int64(120))
	_, inner := StartSpan(stepCtx, "llm.complete")
	inner.End()
	step.End()
	root.SetAttr("source", "cascade")
	root.End()

	got := tr.Recent(0)
	if len(got) != 1 {
		t.Fatalf("traces = %d, want 1", len(got))
	}
	rt := got[0]
	if rt.Name != "proxy.complete" || rt.Attrs["source"] != "cascade" {
		t.Errorf("root = %+v", rt)
	}
	if len(rt.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(rt.Children))
	}
	if rt.Children[0].Name != "cache.lookup" || rt.Children[0].Attrs["hit"] != "false" {
		t.Errorf("child 0 = %+v", rt.Children[0])
	}
	cs := rt.Children[1]
	if cs.Attrs["model"] != "gpt-4" || cs.Attrs["cost_microusd"] != "120" {
		t.Errorf("cascade step = %+v", cs)
	}
	if len(cs.Children) != 1 || cs.Children[0].Name != "llm.complete" {
		t.Errorf("nested = %+v", cs.Children)
	}
}

func TestDetachedSpanIsHarmless(t *testing.T) {
	// No parent in ctx: the span works but is recorded nowhere.
	_, s := StartSpan(context.Background(), "orphan")
	s.SetAttr("k", "v")
	s.End()
	var nilSpan *Span
	nilSpan.SetAttr("k", "v") // nil-safe
	nilSpan.End()
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), string(rune('a'+i)))
		s.End()
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring kept %d, want 3", len(got))
	}
	// Newest first: e, d, c.
	if got[0].Name != "e" || got[1].Name != "d" || got[2].Name != "c" {
		t.Errorf("ring order = %s %s %s", got[0].Name, got[1].Name, got[2].Name)
	}
	if limited := tr.Recent(2); len(limited) != 2 {
		t.Errorf("Recent(2) = %d entries", len(limited))
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Errorf("ring holds %d, want 1 (double End double-recorded)", tr.Len())
	}
}

// TestConcurrentTracing exercises many goroutines tracing at once while a
// reader drains Recent — the -race proof for the trace half.
func TestConcurrentTracing(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Recent(8)
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), "req")
				_, c := StartSpan(ctx, "step")
				c.SetAttr("i", i)
				c.End()
				root.End()
			}
		}()
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if tr.Len() != 16 {
		t.Errorf("ring holds %d, want 16", tr.Len())
	}
}
