package obs

import (
	"strings"
	"testing"
	"time"
)

func TestGoRunsFunction(t *testing.T) {
	done := make(chan struct{})
	Go(NewRegistry(), "unit", func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("spawned function never ran")
	}
}

func TestGoRecoversPanicAndCounts(t *testing.T) {
	reg := NewRegistry()
	Go(reg, "boom", func() { panic("kaboom") })

	c := reg.Counter("goroutine_panics_total", "task", "boom")
	deadline := time.Now().Add(2 * time.Second)
	for c.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panic was not recovered and counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGoRunsDefersBeforeRecovery(t *testing.T) {
	reg := NewRegistry()
	cleaned := make(chan struct{})
	Go(reg, "cleanup", func() {
		defer close(cleaned) // must run during the unwind
		panic("kaboom")
	})
	select {
	case <-cleaned:
	case <-time.After(2 * time.Second):
		t.Fatal("deferred cleanup did not run during panic unwind")
	}
}

func TestGoNilRegistryFallsBackToDefault(t *testing.T) {
	done := make(chan struct{})
	Go(nil, "default_reg", func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("spawned function never ran")
	}
}

func TestCheckMetricName(t *testing.T) {
	for _, ok := range []string{"requests_total", "sched_queue_depth", "x", "a1_b2"} {
		if err := CheckMetricName(ok); err != nil {
			t.Errorf("CheckMetricName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "BadName", "1starts_with_digit", "has-dash", "has.dot", "has space", "_leading"} {
		if err := CheckMetricName(bad); err == nil {
			t.Errorf("CheckMetricName(%q) = nil, want error", bad)
		}
	}
}

func TestRegistryRejectsIllegalName(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("registering an illegal metric name did not panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "invalid metric name") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	NewRegistry().Counter("Not-A-Valid-Name")
}

func TestRegistryAcceptsLegalName(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("legal_snake_case").Inc()
	reg.Gauge("another_legal_name").Set(1)
	reg.Histogram("latency_seconds", LatencyBuckets).Observe(0.1)
}
