package obs

import (
	"context"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"", Debug, true},
		{"debug", Debug, true},
		{"info", Info, true},
		{"INFO", Info, true},
		{"warn", Warn, true},
		{"warning", Warn, true},
		{"error", Error, true},
		{"fatal", Debug, false},
	}
	for _, c := range cases {
		got, ok := ParseLevel(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseLevel(%q) = (%v, %t), want (%v, %t)", c.in, got, ok, c.want, c.ok)
		}
	}
	for l, name := range map[Level]string{Debug: "debug", Info: "info", Warn: "warn", Error: "error", Level(9): "unknown"} {
		if l.String() != name {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), name)
		}
	}
}

func TestEventLogWraparound(t *testing.T) {
	ring := NewEventLog(4)
	lg := NewLogger(ring, Debug, NewRegistry())
	for i := 0; i < 10; i++ {
		lg.Emit(Info, "wrap_test", "i", i)
	}
	if ring.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", ring.Cap())
	}
	if ring.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", ring.Len())
	}
	if ring.Overwritten() != 6 {
		t.Fatalf("Overwritten() = %d, want 6", ring.Overwritten())
	}
	evs := ring.Events(EventFilter{})
	if len(evs) != 4 {
		t.Fatalf("Events returned %d events, want 4", len(evs))
	}
	// Newest 4 survive, in chronological order with increasing seq.
	for i, e := range evs {
		if wantAttr := string('6' + byte(i)); e.Attrs["i"] != wantAttr {
			t.Errorf("event %d attr i = %q, want %q", i, e.Attrs["i"], wantAttr)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventLogFilters(t *testing.T) {
	ring := NewEventLog(64)
	lg := NewLogger(ring, Debug, NewRegistry())
	ctxA := ContextWithSpan(context.Background(), &Span{traceID: "ta"})
	ctxB := ContextWithSpan(context.Background(), &Span{traceID: "tb"})
	lg.Event(ctxA, Debug, "step_one")
	lg.Event(ctxA, Warn, "step_two")
	lg.Event(ctxB, Info, "step_one")
	lg.Emit(Error, "step_three")

	if got := len(ring.Events(EventFilter{Trace: "ta"})); got != 2 {
		t.Errorf("trace filter: got %d events, want 2", got)
	}
	if got := len(ring.Events(EventFilter{Name: "step_one"})); got != 2 {
		t.Errorf("name filter: got %d events, want 2", got)
	}
	if got := len(ring.Events(EventFilter{Min: Warn})); got != 2 {
		t.Errorf("level filter: got %d events, want 2", got)
	}
	if got := len(ring.Events(EventFilter{Trace: "ta", Min: Warn})); got != 1 {
		t.Errorf("combined filter: got %d events, want 1", got)
	}
	// Max keeps the newest events.
	evs := ring.Events(EventFilter{Max: 2})
	if len(evs) != 2 || evs[1].Name != "step_three" {
		t.Errorf("Max filter: got %v, want newest 2 ending in step_three", evs)
	}
	// Uncorrelated event has no trace.
	if evs[1].Trace != "" {
		t.Errorf("Emit produced trace %q, want empty", evs[1].Trace)
	}
}

func TestLoggerMinLevelAndCounters(t *testing.T) {
	reg := NewRegistry()
	ring := NewEventLog(16)
	lg := NewLogger(ring, Warn, reg)
	lg.Emit(Debug, "dropped_event")
	lg.Emit(Info, "dropped_event")
	lg.Emit(Warn, "kept_event")
	lg.Emit(Error, "kept_event")
	if got := ring.Len(); got != 2 {
		t.Fatalf("ring holds %d events, want 2 (min level Warn)", got)
	}
	if v := reg.Counter("log_events_total", "level", "warn").Value(); v != 1 {
		t.Errorf("log_events_total{level=warn} = %d, want 1", v)
	}
	if v := reg.Counter("log_events_total", "level", "debug").Value(); v != 0 {
		t.Errorf("log_events_total{level=debug} = %d, want 0", v)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Event(context.Background(), Error, "ignored_event") // must not panic
	lg.Emit(Error, "ignored_event")
	if lg.Sink() != nil {
		t.Error("nil logger Sink() != nil")
	}
}

func TestLoggerRejectsBadEventName(t *testing.T) {
	lg := NewLogger(NewEventLog(4), Debug, NewRegistry())
	defer func() {
		if recover() == nil {
			t.Fatal("Emit with a non-snake name did not panic")
		}
	}()
	lg.Emit(Info, "Bad-Name")
}

func TestEventLogConcurrent(t *testing.T) {
	ring := NewEventLog(32)
	lg := NewLogger(ring, Debug, NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lg.Emit(Info, "concurrent_event", "i", i)
				ring.Events(EventFilter{Max: 5})
			}
		}()
	}
	wg.Wait()
	if ring.Len() != 32 {
		t.Fatalf("Len() = %d, want full ring of 32", ring.Len())
	}
	if ring.Overwritten() != 8*200-32 {
		t.Fatalf("Overwritten() = %d, want %d", ring.Overwritten(), 8*200-32)
	}
}
