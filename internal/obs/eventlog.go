package obs

import (
	"context"
	"strings"
	"sync"
	"time"
)

// Level grades event severity. The zero value is Debug, so an
// unconfigured logger keeps everything and lets readers filter.
type Level int8

// Severity levels, least to most severe.
const (
	Debug Level = iota
	Info
	Warn
	Error

	numLevels = 4
)

// String returns the lowercase level name ("debug", "info", ...).
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "unknown"
	}
}

// ParseLevel maps a level name (case-insensitive) back to its Level.
// The empty string parses as Debug so optional filters default open.
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(s) {
	case "", "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn", "warning":
		return Warn, true
	case "error":
		return Error, true
	default:
		return Debug, false
	}
}

// Event is one structured lifecycle event, JSON-ready for the
// /debug/events endpoint. Seq orders events totally within one
// EventLog; Trace links the event to a span tree when the emitting
// context carried one.
type Event struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Name  string            `json:"name"`
	Trace string            `json:"trace,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// eventRecord is the stored form; attrs stay as an ordered slice until
// export.
type eventRecord struct {
	seq   uint64
	time  time.Time
	level Level
	name  string
	trace string
	attrs []Label
}

// DefaultEventCapacity is the ring size of DefaultEvents and of logs
// built with NewEventLog(0).
const DefaultEventCapacity = 4096

// EventLog is a bounded ring of recent events. Writes overwrite the
// oldest entry once full; Overwritten reports how many were lost so
// readers can tell a truncated story from a complete one. EventLog is
// safe for concurrent use.
type EventLog struct {
	mu          sync.Mutex
	ring        []eventRecord
	next        int
	n           int
	seq         uint64
	overwritten uint64
}

// DefaultEvents is the process-wide event ring, the fallback for
// components not given an explicit log.
var DefaultEvents = NewEventLog(DefaultEventCapacity)

// NewEventLog returns a ring retaining the last capacity events
// (DefaultEventCapacity when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{ring: make([]eventRecord, capacity)}
}

// Cap returns the ring capacity.
func (l *EventLog) Cap() int { return len(l.ring) }

// Len reports how many events the ring currently holds.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Overwritten reports how many events have been evicted by wraparound
// since the log was created.
func (l *EventLog) Overwritten() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overwritten
}

// add appends one event, evicting the oldest when full.
func (l *EventLog) add(r eventRecord) {
	l.mu.Lock()
	l.seq++
	r.seq = l.seq
	if l.n == len(l.ring) {
		l.overwritten++
	} else {
		l.n++
	}
	l.ring[l.next] = r
	l.next = (l.next + 1) % len(l.ring)
	l.mu.Unlock()
}

// EventFilter selects events from an EventLog. The zero value matches
// everything the ring holds.
type EventFilter struct {
	// Trace keeps only events carrying this trace ID.
	Trace string
	// Name keeps only events with this exact name.
	Name string
	// Tenant keeps only events whose "tenant" attribute equals this
	// value (the attribute the Logger stamps from the request context).
	Tenant string
	// Min drops events below this level.
	Min Level
	// Max caps the result to the newest Max matching events (0 = all).
	Max int
}

// matches reports whether r passes the filter (Max excluded — it is a
// result cap, not a predicate).
func (f EventFilter) matches(r eventRecord) bool {
	if r.level < f.Min {
		return false
	}
	if f.Trace != "" && r.trace != f.Trace {
		return false
	}
	if f.Name != "" && r.name != f.Name {
		return false
	}
	if f.Tenant != "" {
		found := false
		for _, a := range r.attrs {
			if a.Key == "tenant" && a.Value == f.Tenant {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Events returns the retained events matching f in chronological order
// (oldest first). When f.Max truncates, the newest events win — the
// tail of a request's story is worth more than its head.
func (l *EventLog) Events(f EventFilter) []Event {
	events, _, _ := l.EventsSince(0, f)
	return events
}

// EventsSince returns the retained events with seq > since that match
// f, oldest first, plus cursor bookkeeping: next is the newest seq the
// log has ever assigned (pass it back as the next call's since), and
// missing counts events in (since, next] that wraparound already
// evicted before this read — the consumer's gap. With since == 0,
// missing equals the log's total overwritten count.
func (l *EventLog) EventsSince(since uint64, f EventFilter) (events []Event, missing, next uint64) {
	l.mu.Lock()
	recs := make([]eventRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - l.n + i + len(l.ring)) % len(l.ring)
		r := l.ring[idx]
		if r.seq <= since {
			continue
		}
		if f.matches(r) {
			recs = append(recs, r)
		}
	}
	next = l.seq
	// Oldest retained seq is seq−n+1; anything the cursor wanted below
	// that is gone regardless of filters.
	if l.n > 0 {
		if oldest := l.seq - uint64(l.n) + 1; since+1 < oldest {
			missing = oldest - 1 - since
		}
	} else if l.seq > since {
		missing = l.seq - since
	}
	l.mu.Unlock()
	if f.Max > 0 && len(recs) > f.Max {
		recs = recs[len(recs)-f.Max:]
	}
	events = make([]Event, len(recs))
	for i, r := range recs {
		e := Event{Seq: r.seq, Time: r.time, Level: r.level.String(), Name: r.name, Trace: r.trace}
		if len(r.attrs) > 0 {
			e.Attrs = make(map[string]string, len(r.attrs))
			for _, a := range r.attrs {
				e.Attrs[a.Key] = a.Value
			}
		}
		events[i] = e
	}
	return events, missing, next
}

// Logger emits leveled, trace-correlated events into an EventLog and
// counts them per level in a Registry. All methods are nil-safe (a nil
// logger drops everything) and safe for concurrent use.
type Logger struct {
	events  *EventLog
	min     Level
	byLevel [numLevels]*Counter
}

// DefaultLogger writes every level into DefaultEvents and counts into
// the Default registry — the fallback for components not given an
// explicit logger.
var DefaultLogger = NewLogger(DefaultEvents, Debug, Default)

// NewLogger builds a logger writing events at or above min into events
// (DefaultEvents when nil), counting log_events_total{level} into reg
// (Default when nil).
func NewLogger(events *EventLog, min Level, reg *Registry) *Logger {
	if events == nil {
		events = DefaultEvents
	}
	if reg == nil {
		reg = Default
	}
	lg := &Logger{events: events, min: min}
	for l := Debug; l < numLevels; l++ {
		lg.byLevel[l] = reg.Counter("log_events_total", "level", l.String())
	}
	return lg
}

// Sink returns the EventLog this logger writes into.
func (lg *Logger) Sink() *EventLog {
	if lg == nil {
		return nil
	}
	return lg.events
}

// validatedEventNames caches names that already passed CheckMetricName,
// keeping the per-event cost of the grammar check to one map load.
// Event names are call-site constants, so the cache stays small.
var validatedEventNames sync.Map

// checkEventName panics on a name outside the lowercase_snake metric
// grammar — event names share the metric charter so /debug/events and
// /metrics speak one vocabulary (and the metricname analyzer lints
// both).
func checkEventName(name string) {
	if _, ok := validatedEventNames.Load(name); ok {
		return
	}
	if err := CheckMetricName(name); err != nil {
		panic(err)
	}
	validatedEventNames.Store(name, struct{}{})
}

// Event emits one event correlated to the trace carried by ctx (if
// any). kv lists alternating key/value attribute pairs; values render
// like Span.SetAttr. The name must be lowercase_snake (panics
// otherwise, matching Registry semantics). When ctx carries a tenant
// identity (WithTenant), the event gains a "tenant" attribute so
// /debug/events?tenant= replays one tenant's story.
func (lg *Logger) Event(ctx context.Context, level Level, name string, kv ...interface{}) {
	if lg == nil || level < lg.min {
		return
	}
	trace := ""
	if ctx != nil {
		trace = TraceIDFromContext(ctx)
		if tenant, ok := tenantFrom(ctx); ok {
			kv = append(kv, "tenant", tenant)
		}
	}
	lg.emit(level, name, trace, kv)
}

// Emit emits one event with no trace correlation — for lifecycle
// points that have no request context, like breaker transitions and
// batch flushes.
func (lg *Logger) Emit(level Level, name string, kv ...interface{}) {
	if lg == nil || level < lg.min {
		return
	}
	lg.emit(level, name, "", kv)
}

func (lg *Logger) emit(level Level, name, trace string, kv []interface{}) {
	checkEventName(name)
	var attrs []Label
	if n := len(kv) / 2; n > 0 {
		attrs = make([]Label, n)
		for i := 0; i < n; i++ {
			k, _ := kv[2*i].(string)
			attrs[i] = Label{Key: k, Value: attrString(kv[2*i+1])}
		}
	}
	lg.events.add(eventRecord{time: time.Now(), level: level, name: name, trace: trace, attrs: attrs})
	if level >= 0 && level < numLevels {
		lg.byLevel[level].Inc()
	}
}
