package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeCollectorSamplesSynchronously(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Hour) // ticker will never fire
	defer stop()

	if v := reg.Gauge("go_goroutines").Value(); v < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", v)
	}
	if v := reg.Gauge("go_heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("go_heap_alloc_bytes = %g, want > 0", v)
	}
	if v := reg.Gauge("go_heap_sys_bytes").Value(); v <= 0 {
		t.Errorf("go_heap_sys_bytes = %g, want > 0", v)
	}
	if v := reg.Gauge("go_next_gc_bytes").Value(); v <= 0 {
		t.Errorf("go_next_gc_bytes = %g, want > 0", v)
	}
}

func TestRuntimeCollectorObservesGCCycles(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Hour)
	defer stop()

	c := &runtimeCollector{
		gGoroutines: reg.Gauge("go_goroutines"),
		gHeapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		gHeapSys:    reg.Gauge("go_heap_sys_bytes"),
		gHeapObjs:   reg.Gauge("go_heap_objects"),
		gNextGC:     reg.Gauge("go_next_gc_bytes"),
		gGCCPU:      reg.Gauge("go_gc_cpu_fraction"),
		mGCCycles:   reg.Counter("go_gc_cycles_total"),
		hGCPause:    reg.Histogram("go_gc_pause_seconds", GCPauseBuckets),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC = ms.NumGC

	runtime.GC()
	runtime.GC()
	c.sample()

	if v := c.mGCCycles.Value(); v < 2 {
		t.Errorf("go_gc_cycles_total = %d, want >= 2 after two forced GCs", v)
	}
	if n := c.hGCPause.Count(); n < 2 {
		t.Errorf("go_gc_pause_seconds count = %d, want >= 2", n)
	}
}

func TestRuntimeCollectorStopIdempotent(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Millisecond)
	stop()
	stop() // second call must not panic (close of closed channel)
}
