package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// exemplarSlot is the stored form of one bucket's most recent exemplar.
type exemplarSlot struct {
	value float64
	trace string
	at    time.Time
}

// Exemplar links one histogram bucket to the concrete request that most
// recently landed in it, so a fat p99 bucket resolves to a
// /debug/traces?trace= lifecycle instead of staying an anonymous count.
type Exemplar struct {
	// Value is the observed sample.
	Value float64 `json:"value"`
	// Trace is the request's trace ID — the key into /debug/traces and
	// /debug/events.
	Trace string `json:"trace"`
	// Time is when the sample was observed.
	Time time.Time `json:"time"`
}

// ObserveWithExemplar records one sample and, when trace is non-empty,
// retains it as the bucket's exemplar (last writer wins — recency beats
// completeness for debugging tails). The exemplar store is a single
// atomic pointer swap per observation, so the hot path stays lock-free.
func (h *Histogram) ObserveWithExemplar(v float64, trace string) {
	h.Observe(v)
	if trace == "" || h.exemplars == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.exemplars[i].Store(&exemplarSlot{value: v, trace: trace, at: time.Now()})
}

// Exemplars returns the retained exemplars keyed by bucket upper bound
// ("0.005", ..., "+Inf"). Buckets that never saw an exemplar-bearing
// observation are absent; the map is nil when none exist.
func (h *Histogram) Exemplars() map[string]Exemplar {
	if h.exemplars == nil {
		return nil
	}
	var out map[string]Exemplar
	for i := range h.exemplars {
		slot := h.exemplars[i].Load()
		if slot == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.buckets) {
			le = formatValue(h.buckets[i])
		}
		if out == nil {
			out = make(map[string]Exemplar)
		}
		out[le] = Exemplar{Value: slot.value, Trace: slot.trace, Time: slot.at}
	}
	return out
}

// ExemplarNear returns an exemplar representative of the q-th quantile:
// the one retained by the bucket holding that rank, or — because a
// bucket may have counts but no exemplar yet — the nearest populated
// bucket, preferring the tail (higher buckets first). ok is false when
// the histogram holds no exemplars at all.
func (h *Histogram) ExemplarNear(q float64) (Exemplar, bool) {
	if h.exemplars == nil || h.Count() == 0 {
		return Exemplar{}, false
	}
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	at := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if at >= len(h.exemplars) {
		at = len(h.exemplars) - 1
	}
	for i := at; i < len(h.exemplars); i++ {
		if slot := h.exemplars[i].Load(); slot != nil {
			return Exemplar{Value: slot.value, Trace: slot.trace, Time: slot.at}, true
		}
	}
	for i := at - 1; i >= 0; i-- {
		if slot := h.exemplars[i].Load(); slot != nil {
			return Exemplar{Value: slot.value, Trace: slot.trace, Time: slot.at}, true
		}
	}
	return Exemplar{}, false
}

// exemplars is the per-bucket exemplar store, one atomic pointer per
// bucket (+Inf included). It is allocated for every registry-built
// histogram — 17 pointers for the default latency layout — so opting in
// is just calling ObserveWithExemplar.
type exemplarStore = []atomic.Pointer[exemplarSlot]

func newExemplarStore(buckets []float64) exemplarStore {
	return make(exemplarStore, len(buckets)+1)
}
