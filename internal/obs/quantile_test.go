package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %g, want 0", got)
	}
	// 10 observations per bucket region: [0,0.01], (0.01,0.1], (0.1,1], (1,+Inf).
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(5)
	}
	// p50 = rank 20 of 40, exactly the top of the second bucket.
	if got := h.Quantile(0.5); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 0.1", got)
	}
	// p25 lands at the top of the first bucket.
	if got := h.Quantile(0.25); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("Quantile(0.25) = %g, want 0.01", got)
	}
	// Within-bucket interpolation: p37.5 is rank 15, halfway into bucket 2
	// (0.01..0.1) -> 0.055.
	if got := h.Quantile(0.375); math.Abs(got-0.055) > 1e-9 {
		t.Errorf("Quantile(0.375) = %g, want 0.055", got)
	}
	// The +Inf bucket clamps to the last finite bound.
	if got := h.Quantile(0.99); math.Abs(got-1) > 1e-9 {
		t.Errorf("Quantile(0.99) = %g, want clamp to 1", got)
	}
	// q clamps into [0,1].
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Errorf("Quantile(-3) = %g, want Quantile(0) = %g", got, h.Quantile(0))
	}
	if got := h.Quantile(7); got != h.Quantile(1) {
		t.Errorf("Quantile(7) = %g, want Quantile(1) = %g", got, h.Quantile(7))
	}
}

func TestJSONExpositionQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Type   string `json:"type"`
		Points []struct {
			Histogram struct {
				Quantiles map[string]float64 `json:"quantiles"`
			} `json:"histogram"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("exposition is not JSON: %v\n%s", err, sb.String())
	}
	fam, ok := doc["lat_seconds"]
	if !ok {
		t.Fatalf("lat_seconds family missing from exposition:\n%s", sb.String())
	}
	if len(fam.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(fam.Points))
	}
	qs := fam.Points[0].Histogram.Quantiles
	for _, want := range []string{"p50", "p95", "p99"} {
		v, ok := qs[want]
		if !ok {
			t.Errorf("quantiles missing %s: %v", want, qs)
			continue
		}
		// All observations sit in (0.01, 0.1]; every quantile
		// interpolates inside that bucket.
		if v <= 0.01 || v > 0.1 {
			t.Errorf("%s = %g, want within (0.01, 0.1]", want, v)
		}
	}

	// Empty histograms carry no quantiles block.
	r2 := NewRegistry()
	r2.Histogram("empty_seconds", []float64{1})
	sb.Reset()
	if err := r2.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "quantiles") {
		t.Errorf("empty histogram exposition contains quantiles:\n%s", sb.String())
	}
}
