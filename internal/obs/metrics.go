// Package obs is the serving stack's observability substrate: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus-text and JSON exposition) and request-scoped tracing (a
// context-carried span tree with a bounded in-memory ring of recent
// traces). Every serving-path package — the model family, the cascade, the
// semantic cache, the query optimizer and the proxy — records into a
// Registry and emits spans, so cascade thresholds and cache policies can be
// tuned against measurements instead of guesses.
//
// Hot-path cost is one atomic add per counter update; registries hand out
// metric handles that instrumented code resolves once and keeps.
package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing int64 metric. The zero value is
// unusable; obtain counters from a Registry. All methods are safe for
// concurrent use.
type Counter struct {
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. Obtain gauges from a
// Registry. All methods are safe for concurrent use.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric (cumulative buckets on
// exposition, Prometheus-style). Obtain histograms from a Registry. All
// methods are safe for concurrent use.
type Histogram struct {
	labels  []Label
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	// exemplars holds one slot per bucket (+Inf last), populated by
	// ObserveWithExemplar; nil on histograms built outside a Registry.
	exemplars exemplarStore
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v, or len (the +Inf bucket)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding that rank — the standard
// fixed-bucket estimate, exact only at bucket bounds. Samples landing
// in the +Inf bucket clamp to the last finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return quantileFromCum(h.buckets, cum, q)
}

// quantileFromCum estimates a quantile from cumulative bucket counts
// (the exposition form: one count per upper bound, +Inf last).
func quantileFromCum(bounds []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(bounds) {
		// +Inf bucket: the best defensible point estimate is the largest
		// finite bound (0 when the histogram has no finite buckets at all).
		if len(bounds) == 0 {
			return 0
		}
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	if i > 0 {
		lower = bounds[i-1]
	}
	var prev int64
	if i > 0 {
		prev = cum[i-1]
	}
	inBucket := cum[i] - prev
	if inBucket <= 0 {
		return bounds[i]
	}
	frac := (rank - float64(prev)) / float64(inBucket)
	return lower + (bounds[i]-lower)*frac
}

// Default bucket layouts shared by the instrumented packages.
var (
	// LatencyBuckets covers sub-millisecond in-process serving up through
	// multi-second simulated model calls, in seconds.
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// CostBuckets covers per-call spend in micro-dollars.
	CostBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000}
	// SimilarityBuckets covers semantic-cache hit similarities.
	SimilarityBuckets = []float64{0.80, 0.85, 0.90, 0.925, 0.95, 0.97, 0.98, 0.99, 0.995, 1}
)

// formatValue renders a float without trailing noise ("3", "0.25").
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
