package obs

import (
	"sort"
	"sync"
	"time"
)

// AlertState is one rule's position in the pending → firing → resolved
// lifecycle.
type AlertState int8

const (
	// AlertInactive means the rule's condition does not currently hold.
	AlertInactive AlertState = iota
	// AlertPending means the condition holds but has not yet held for
	// the rule's for-duration.
	AlertPending
	// AlertFiring means the condition has held for at least the rule's
	// for-duration.
	AlertFiring
)

// String returns the lowercase state name.
func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// AlertSeries is one metric series as the alert engine sees it: family
// name, label set and current value (histograms contribute their _count
// and _sum).
type AlertSeries struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// EvalContext is what a Condition evaluates against: one coherent view
// of the registry, the SLO scorecard and the tenant table, plus the
// previous evaluation's values for rate-of-change predicates.
type EvalContext struct {
	// Now is the evaluation instant (the engine's injected clock).
	Now time.Time
	// Elapsed is the time since the previous evaluation; zero on the
	// first, which disables rate-of-change conditions for that round.
	Elapsed time.Duration
	// Series is the registry's current state.
	Series []AlertSeries
	// Prev maps series key (name{labels}) → value at the previous
	// evaluation; nil on the first.
	Prev map[string]float64
	// SLO is the fresh per-class scorecard, nil when no tracker is
	// wired.
	SLO *SLOSnapshot
	// Tenants is the fresh tenant attribution table, nil when no
	// accountant is wired.
	Tenants *TenantSnapshot
	// PrevTenantSpend maps tenant → attributed spend at the previous
	// evaluation; nil on the first.
	PrevTenantSpend map[string]int64
}

// matches reports whether the series carries every want label with the
// wanted value (subset match).
func (s AlertSeries) matches(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Condition is one declarative alert predicate. Eval returns the
// condition's current value (for display) and whether it holds.
type Condition interface {
	Eval(ec *EvalContext) (value float64, active bool)
}

// Threshold holds when any series of Metric matching Labels (subset
// match; nil matches all) exceeds Above. The reported value is the
// maximum across matches.
type Threshold struct {
	Metric string
	Labels map[string]string
	Above  float64
}

// Eval implements Condition.
func (c Threshold) Eval(ec *EvalContext) (float64, bool) {
	max, seen := 0.0, false
	for _, s := range ec.Series {
		if s.Name != c.Metric || !s.matches(c.Labels) {
			continue
		}
		if !seen || s.Value > max {
			max, seen = s.Value, true
		}
	}
	return max, seen && max > c.Above
}

// RateOfChange holds when any matching series of Metric grew faster
// than PerSecondAbove since the previous evaluation. Counter-shaped
// metrics only — a shrinking series reads as rate 0, not negative.
type RateOfChange struct {
	Metric         string
	Labels         map[string]string
	PerSecondAbove float64
}

// Eval implements Condition.
func (c RateOfChange) Eval(ec *EvalContext) (float64, bool) {
	if ec.Elapsed <= 0 || ec.Prev == nil {
		return 0, false
	}
	secs := ec.Elapsed.Seconds()
	max := 0.0
	for _, s := range ec.Series {
		if s.Name != c.Metric || !s.matches(c.Labels) {
			continue
		}
		delta := s.Value - ec.Prev[seriesKey(s)]
		if delta < 0 {
			delta = 0
		}
		if rate := delta / secs; rate > max {
			max = rate
		}
	}
	return max, max > c.PerSecondAbove
}

// SLOBurn holds when a class's error-budget burn rate exceeds Above on
// the given window. Class "" matches every class (value = the worst);
// SLO selects "latency" or "availability"; Window is "5m" or "1h".
type SLOBurn struct {
	Class  string
	SLO    string
	Window string
	Above  float64
}

// Eval implements Condition.
func (c SLOBurn) Eval(ec *EvalContext) (float64, bool) {
	if ec.SLO == nil {
		return 0, false
	}
	max := 0.0
	for class, cs := range ec.SLO.Classes {
		if c.Class != "" && class != c.Class {
			continue
		}
		w, ok := cs.Windows[c.Window]
		if !ok {
			continue
		}
		burn := w.LatencyBurnRate
		if c.SLO == "availability" {
			burn = w.AvailabilityBurnRate
		}
		if burn > max {
			max = burn
		}
	}
	return max, max > c.Above
}

// TenantSpendRate holds when any tracked tenant's attributed spend grew
// faster than MicroUSDPerSecondAbove since the previous evaluation —
// the per-tenant cost-spike detector.
type TenantSpendRate struct {
	MicroUSDPerSecondAbove float64
}

// Eval implements Condition.
func (c TenantSpendRate) Eval(ec *EvalContext) (float64, bool) {
	if ec.Tenants == nil || ec.Elapsed <= 0 || ec.PrevTenantSpend == nil {
		return 0, false
	}
	secs := ec.Elapsed.Seconds()
	max := 0.0
	for _, t := range ec.Tenants.Tenants {
		delta := float64(t.SpendMicroUSD - ec.PrevTenantSpend[t.Tenant])
		if delta < 0 {
			delta = 0
		}
		if rate := delta / secs; rate > max {
			max = rate
		}
	}
	return max, max > c.MicroUSDPerSecondAbove
}

// CondFunc adapts a plain function to Condition for predicates the
// declarative forms cannot express.
type CondFunc func(ec *EvalContext) (float64, bool)

// Eval implements Condition.
func (f CondFunc) Eval(ec *EvalContext) (float64, bool) { return f(ec) }

// seriesKey renders a series' identity (name{labels}) for the prev map.
func seriesKey(s AlertSeries) string {
	lbls := make([]Label, 0, len(s.Labels))
	for k, v := range s.Labels {
		lbls = append(lbls, Label{Key: k, Value: v})
	}
	sort.Slice(lbls, func(i, j int) bool { return lbls[i].Key < lbls[j].Key })
	return s.Name + promLabels(lbls, "", "")
}

// alertRule is one registered rule plus its lifecycle state.
type alertRule struct {
	name     string
	cond     Condition
	forDur   time.Duration
	severity Level
	desc     string

	state AlertState
	since time.Time // entered the current non-inactive state
	value float64
}

// RuleOption configures one AddRule registration.
type RuleOption func(*alertRule)

// ForDuration requires the condition to hold for d before the rule
// moves pending → firing (0 fires immediately).
func ForDuration(d time.Duration) RuleOption {
	return func(r *alertRule) { r.forDur = d }
}

// WithSeverity grades the rule (default Warn).
func WithSeverity(l Level) RuleOption {
	return func(r *alertRule) { r.severity = l }
}

// WithDescription attaches an operator-facing explanation.
func WithDescription(s string) RuleOption {
	return func(r *alertRule) { r.desc = s }
}

// AlertConfig parameterizes an AlertEngine.
type AlertConfig struct {
	// Source is the registry the conditions evaluate over. Nil means
	// Default.
	Source *Registry
	// SLO, when non-nil, feeds SLOBurn conditions (its Snapshot is taken
	// each evaluation, which also refreshes the slo_* gauges).
	SLO *SLOTracker
	// Tenants, when non-nil, feeds TenantSpendRate conditions.
	Tenants *TenantAccountant
	// Obs receives alert_transitions_total{state} and the alert_firing /
	// alert_pending gauges. Nil means Source.
	Obs *Registry
	// Log receives alert_transition lifecycle events. Nil means
	// DefaultLogger.
	Log *Logger
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
	// DisableDefaultRules suppresses the built-in rule pack when the
	// engine is wired by the proxy.
	DisableDefaultRules bool
}

// AlertEngine evaluates declarative rules over metric, SLO and tenant
// state, walking each through pending → firing → resolved with every
// transition emitted into the event log and counted in
// alert_transitions_total{state}. Evaluation is on-demand (the
// /v1/alerts and /healthz handlers drive it) or periodic via Start.
// AlertEngine is safe for concurrent use.
type AlertEngine struct {
	src     *Registry
	slo     *SLOTracker
	tenants *TenantAccountant
	log     *Logger
	now     func() time.Time

	mu         sync.Mutex
	rules      []*alertRule
	prev       map[string]float64
	prevTenant map[string]int64
	prevAt     time.Time

	mToPending, mToFiring, mToResolved *Counter
	gFiring, gPending                  *Gauge
}

// NewAlertEngine builds an engine from cfg (no rules yet — see AddRule
// and AddDefaultRules).
func NewAlertEngine(cfg AlertConfig) *AlertEngine {
	src := cfg.Source
	if src == nil {
		src = Default
	}
	reg := cfg.Obs
	if reg == nil {
		reg = src
	}
	lg := cfg.Log
	if lg == nil {
		lg = DefaultLogger
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &AlertEngine{
		src:         src,
		slo:         cfg.SLO,
		tenants:     cfg.Tenants,
		log:         lg,
		now:         now,
		mToPending:  reg.Counter("alert_transitions_total", "state", "pending"),
		mToFiring:   reg.Counter("alert_transitions_total", "state", "firing"),
		mToResolved: reg.Counter("alert_transitions_total", "state", "resolved"),
		gFiring:     reg.Gauge("alert_firing"),
		gPending:    reg.Gauge("alert_pending"),
	}
}

// AddRule registers one rule. The name must be lowercase_snake (panics
// otherwise, matching Registry semantics — rule names land in event
// attributes and dashboards and share the metric-name charter); a
// duplicate name replaces the earlier rule.
func (e *AlertEngine) AddRule(name string, cond Condition, opts ...RuleOption) {
	if err := CheckMetricName(name); err != nil {
		panic(err)
	}
	r := &alertRule{name: name, cond: cond, severity: Warn}
	for _, opt := range opts {
		opt(r)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, old := range e.rules {
		if old.name == name {
			e.rules[i] = r
			return
		}
	}
	e.rules = append(e.rules, r)
}

// AddDefaultRules registers the built-in rule pack: SLO burn (latency
// and availability, fast window), breaker-open, shed rate and
// per-tenant spend spikes.
func (e *AlertEngine) AddDefaultRules() {
	e.AddRule("slo_latency_burn_high",
		SLOBurn{SLO: "latency", Window: "5m", Above: 2},
		ForDuration(30*time.Second), WithSeverity(Warn),
		WithDescription("a request class is burning its latency error budget more than 2x faster than the objective allows (5m window)"))
	e.AddRule("slo_availability_burn_high",
		SLOBurn{SLO: "availability", Window: "5m", Above: 2},
		ForDuration(30*time.Second), WithSeverity(Error),
		WithDescription("a request class is burning its availability error budget more than 2x faster than the objective allows (5m window)"))
	e.AddRule("breaker_open",
		Threshold{Metric: "breaker_state", Above: 0.5}, WithSeverity(Error),
		WithDescription("a model tier's circuit breaker is open or probing; the cascade is skipping it"))
	e.AddRule("shed_rate_high",
		RateOfChange{Metric: "limiter_shed_total", PerSecondAbove: 1},
		ForDuration(30*time.Second), WithSeverity(Warn),
		WithDescription("the concurrency limiter is shedding more than 1 req/s"))
	e.AddRule("tenant_spend_spike",
		TenantSpendRate{MicroUSDPerSecondAbove: 50_000},
		WithSeverity(Warn),
		WithDescription("one tenant's attributed spend is growing faster than $0.05/s"))
}

// AlertStatus is one rule's JSON-ready state for /v1/alerts.
type AlertStatus struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	State    string `json:"state"`
	// Value is the condition's value at the last evaluation.
	Value float64 `json:"value"`
	// ForMS is the rule's pending → firing hold requirement.
	ForMS float64 `json:"for_ms"`
	// Since is when the rule entered its current pending/firing state.
	Since       *time.Time `json:"since,omitempty"`
	Description string     `json:"description,omitempty"`
}

// AlertsSnapshot is the engine's JSON envelope.
type AlertsSnapshot struct {
	EvaluatedAt time.Time     `json:"evaluated_at"`
	Firing      int           `json:"firing"`
	Pending     int           `json:"pending"`
	Rules       []AlertStatus `json:"rules"`
}

// buildContext assembles one coherent EvalContext. Taking the SLO
// snapshot first also refreshes the slo_* gauges, so Threshold rules
// over slo_burn_rate observe the same instant.
func (e *AlertEngine) buildContext(now time.Time) *EvalContext {
	ec := &EvalContext{Now: now}
	if e.slo != nil {
		snap := e.slo.Snapshot()
		ec.SLO = &snap
	}
	if e.tenants != nil {
		snap := e.tenants.Snapshot(0)
		ec.Tenants = &snap
	}
	for _, fe := range e.src.export() {
		for _, p := range fe.points {
			lbls := make(map[string]string, len(p.labels))
			for _, l := range p.labels {
				lbls[l.Key] = l.Value
			}
			if p.hist != nil {
				ec.Series = append(ec.Series,
					AlertSeries{Name: fe.name + "_count", Labels: lbls, Value: float64(p.hist.Count)},
					AlertSeries{Name: fe.name + "_sum", Labels: lbls, Value: p.hist.Sum})
				continue
			}
			ec.Series = append(ec.Series, AlertSeries{Name: fe.name, Labels: lbls, Value: p.value})
		}
	}
	return ec
}

// Evaluate runs every rule once against fresh state, applies the state
// machine, and returns the resulting snapshot. Each transition is
// emitted as an alert_transition event and counted per target state.
func (e *AlertEngine) Evaluate() AlertsSnapshot {
	if e == nil {
		return AlertsSnapshot{Rules: []AlertStatus{}}
	}
	now := e.now()
	ec := e.buildContext(now)

	e.mu.Lock()
	defer e.mu.Unlock()
	ec.Prev = e.prev
	ec.PrevTenantSpend = e.prevTenant
	if !e.prevAt.IsZero() {
		ec.Elapsed = now.Sub(e.prevAt)
	}

	for _, r := range e.rules {
		v, active := r.cond.Eval(ec)
		r.value = v
		switch {
		case active && r.state == AlertInactive:
			e.transition(r, AlertPending, now)
			if now.Sub(r.since) >= r.forDur {
				e.transition(r, AlertFiring, now)
			}
		case active && r.state == AlertPending:
			if now.Sub(r.since) >= r.forDur {
				e.transition(r, AlertFiring, now)
			}
		case !active && r.state != AlertInactive:
			e.transition(r, AlertInactive, now)
		}
	}

	// Persist this round's values for the next round's rate conditions.
	e.prev = make(map[string]float64, len(ec.Series))
	for _, s := range ec.Series {
		e.prev[seriesKey(s)] = s.Value
	}
	if ec.Tenants != nil {
		e.prevTenant = make(map[string]int64, len(ec.Tenants.Tenants))
		for _, t := range ec.Tenants.Tenants {
			e.prevTenant[t.Tenant] = t.SpendMicroUSD
		}
	}
	e.prevAt = now
	return e.snapshotLocked(now)
}

// transition moves r to next, metering and logging the edge. The
// "resolved" transition is the inactive edge from pending or firing.
// Caller holds e.mu.
func (e *AlertEngine) transition(r *alertRule, next AlertState, now time.Time) {
	from := r.state
	r.state = next
	r.since = now
	toName := next.String()
	switch next {
	case AlertPending:
		e.mToPending.Inc()
	case AlertFiring:
		e.mToFiring.Inc()
		// since keeps the pending entry time so operators see how long the
		// condition has truly held; the transition instant is the event's.
	case AlertInactive:
		toName = "resolved"
		e.mToResolved.Inc()
	}
	level := Warn
	if r.severity == Error && next == AlertFiring {
		level = Error
	}
	if next == AlertInactive {
		level = Info
	}
	// Transitions aggregate many requests, so the event is uncorrelated.
	e.log.Emit(level, "alert_transition",
		"rule", r.name, "from", from.String(), "to", toName,
		"value", r.value, "severity", r.severity.String())
}

// Snapshot returns the current rule states without re-evaluating.
func (e *AlertEngine) Snapshot() AlertsSnapshot {
	if e == nil {
		return AlertsSnapshot{Rules: []AlertStatus{}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked(e.prevAt)
}

// snapshotLocked renders the rules and refreshes the alert_firing /
// alert_pending gauges. Caller holds e.mu.
func (e *AlertEngine) snapshotLocked(at time.Time) AlertsSnapshot {
	snap := AlertsSnapshot{EvaluatedAt: at, Rules: make([]AlertStatus, 0, len(e.rules))}
	for _, r := range e.rules {
		st := AlertStatus{
			Rule:        r.name,
			Severity:    r.severity.String(),
			State:       r.state.String(),
			Value:       r.value,
			ForMS:       float64(r.forDur.Microseconds()) / 1000,
			Description: r.desc,
		}
		if r.state != AlertInactive {
			since := r.since
			st.Since = &since
			if r.state == AlertFiring {
				snap.Firing++
			} else {
				snap.Pending++
			}
		}
		snap.Rules = append(snap.Rules, st)
	}
	sort.Slice(snap.Rules, func(i, j int) bool { return snap.Rules[i].Rule < snap.Rules[j].Rule })
	e.gFiring.Set(float64(snap.Firing))
	e.gPending.Set(float64(snap.Pending))
	return snap
}

// Start launches a periodic evaluation loop (for deployments where
// nothing polls /v1/alerts) and returns its stop function. Stop is
// idempotent.
func (e *AlertEngine) Start(interval time.Duration) (stop func()) {
	if e == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	Go(e.src, "alert_eval", func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.Evaluate()
			case <-done:
				return
			}
		}
	})
	return func() { once.Do(func() { close(done) }) }
}
