package obs

import (
	"math"
	"testing"
	"time"
)

// sloHarness returns a tracker on a settable fake clock.
func sloHarness(objectives map[string]SLOObjective) (*SLOTracker, *Registry, *time.Time) {
	reg := NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	t := NewSLOTracker(SLOConfig{
		Objectives: objectives,
		Now:        func() time.Time { return now },
		Obs:        reg,
	})
	return t, reg, &now
}

func TestSLONoTrafficAttains(t *testing.T) {
	tr, _, _ := sloHarness(nil)
	snap := tr.Snapshot()
	if len(snap.Classes) != 0 {
		t.Fatalf("idle tracker reported %d classes, want 0", len(snap.Classes))
	}
	var nilTracker *SLOTracker
	nilTracker.Record("interactive", time.Millisecond, true) // must not panic
	if got := nilTracker.Snapshot(); len(got.Classes) != 0 {
		t.Fatal("nil tracker snapshot not empty")
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	tr, reg, _ := sloHarness(map[string]SLOObjective{
		"interactive": {LatencyTarget: 100 * time.Millisecond, LatencyGoal: 0.95, AvailabilityGoal: 0.99},
	})
	// 100 requests: 2 errors, 10 slow.
	for i := 0; i < 100; i++ {
		lat := 10 * time.Millisecond
		if i < 10 {
			lat = 200 * time.Millisecond
		}
		tr.Record("interactive", lat, i >= 2)
	}
	snap := tr.Snapshot()
	w := snap.Classes["interactive"].Windows["5m"]
	if w.Requests != 100 || w.Errors != 2 || w.Slow != 10 {
		t.Fatalf("window = %+v, want 100 requests / 2 errors / 10 slow", w)
	}
	// Availability burn: badFrac 0.02 over budget 0.01 = 2.0.
	if math.Abs(w.AvailabilityBurnRate-2.0) > 1e-9 {
		t.Errorf("availability burn = %g, want 2.0", w.AvailabilityBurnRate)
	}
	if math.Abs(w.Availability-0.98) > 1e-9 {
		t.Errorf("availability = %g, want 0.98", w.Availability)
	}
	// Latency burn: badFrac 0.10 over budget 0.05 = 2.0.
	if math.Abs(w.LatencyBurnRate-2.0) > 1e-9 {
		t.Errorf("latency burn = %g, want 2.0", w.LatencyBurnRate)
	}
	// The 1h window sees the same traffic.
	if lw := snap.Classes["interactive"].Windows["1h"]; lw.Requests != 100 {
		t.Errorf("1h window requests = %d, want 100", lw.Requests)
	}
	// Snapshot refreshed the gauges.
	if g := reg.Gauge("slo_burn_rate", "class", "interactive", "slo", "availability", "window", "5m").Value(); math.Abs(g-2.0) > 1e-9 {
		t.Errorf("slo_burn_rate gauge = %g, want 2.0", g)
	}
	if g := reg.Gauge("slo_attainment", "class", "interactive", "slo", "latency", "window", "5m").Value(); math.Abs(g-0.90) > 1e-9 {
		t.Errorf("slo_attainment gauge = %g, want 0.90", g)
	}
	// Counters track totals.
	if v := reg.Counter("slo_requests_total", "class", "interactive").Value(); v != 100 {
		t.Errorf("slo_requests_total = %d, want 100", v)
	}
	if v := reg.Counter("slo_slow_total", "class", "interactive").Value(); v != 10 {
		t.Errorf("slo_slow_total = %d, want 10", v)
	}
}

func TestSLOWindowRollOff(t *testing.T) {
	tr, _, now := sloHarness(nil)
	tr.Record("batch", time.Millisecond, false) // one error now

	// 6 minutes later it has left the 5m window but not the 1h window.
	*now = now.Add(6 * time.Minute)
	snap := tr.Snapshot()
	if w := snap.Classes["batch"].Windows["5m"]; w.Requests != 0 || w.AvailabilityBurnRate != 0 {
		t.Errorf("5m window after 6min = %+v, want empty", w)
	}
	if w := snap.Classes["batch"].Windows["1h"]; w.Requests != 1 || w.Errors != 1 {
		t.Errorf("1h window after 6min = %+v, want the recorded request", w)
	}

	// 2 hours later it has left both windows, and the stale bucket is
	// recycled rather than double-counted when new traffic lands on it.
	*now = now.Add(2 * time.Hour)
	snap = tr.Snapshot()
	if w := snap.Classes["batch"].Windows["1h"]; w.Requests != 0 {
		t.Errorf("1h window after 2h = %+v, want empty", w)
	}
	if w := snap.Classes["batch"].Windows["1h"]; w.Availability != 1 {
		t.Errorf("idle availability = %g, want 1.0", w.Availability)
	}
	tr.Record("batch", time.Millisecond, true)
	snap = tr.Snapshot()
	if w := snap.Classes["batch"].Windows["5m"]; w.Requests != 1 || w.Errors != 0 {
		t.Errorf("recycled bucket window = %+v, want 1 request / 0 errors", w)
	}
}

func TestSLODefaultsPerClass(t *testing.T) {
	tr, _, _ := sloHarness(nil)
	tr.Record("interactive", time.Millisecond, true)
	tr.Record("batch", time.Millisecond, true)
	snap := tr.Snapshot()
	if ms := snap.Classes["interactive"].Objective.LatencyTargetMS; ms != 500 {
		t.Errorf("interactive default latency target = %gms, want 500ms", ms)
	}
	if ms := snap.Classes["batch"].Objective.LatencyTargetMS; ms != 5000 {
		t.Errorf("batch default latency target = %gms, want 5000ms", ms)
	}
	if g := snap.Classes["batch"].Objective.AvailabilityGoal; g != 0.99 {
		t.Errorf("default availability goal = %g, want 0.99", g)
	}
}

func TestSLOPerfectGoalBurnsHard(t *testing.T) {
	tr, _, _ := sloHarness(map[string]SLOObjective{
		"interactive": {AvailabilityGoal: 1.0, LatencyGoal: 0.95, LatencyTarget: time.Second},
	})
	tr.Record("interactive", time.Millisecond, false)
	w := tr.Snapshot().Classes["interactive"].Windows["5m"]
	if w.AvailabilityBurnRate < 1e6 {
		t.Errorf("burn with zero budget = %g, want huge", w.AvailabilityBurnRate)
	}
}
