package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the identity attributed to requests that carry no
// explicit tenant — anonymous traffic is still accounted, just in one
// shared bucket.
const DefaultTenant = "anon"

// DefaultTenantCapacity bounds the accountant's heavy-hitter table when
// TenantConfig.Capacity is zero.
const DefaultTenantCapacity = 1024

// MaxTenantLen caps tenant identifiers; the serving front door rejects
// longer ones so a hostile header cannot bloat the accountant or the
// event log.
const MaxTenantLen = 128

// tenantKey carries the request's tenant identity through a context.
type tenantKey struct{}

// WithTenant returns ctx tagged with the tenant identity. The identity
// travels the whole serving path — proxy → cascade → sched → llm —
// because context values survive context.WithoutCancel, and every
// lifecycle event emitted under the context carries it as a "tenant"
// attribute.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant tagged on ctx, defaulting to
// DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if t, ok := tenantFrom(ctx); ok {
		return t
	}
	return DefaultTenant
}

// ExplicitTenant reports the tenant explicitly tagged on ctx, if any —
// for callers (like span annotation) that must not default untagged
// traffic to DefaultTenant.
func ExplicitTenant(ctx context.Context) (string, bool) {
	return tenantFrom(ctx)
}

// tenantFrom reports the explicitly-tagged tenant, distinguishing
// "unset" so event emission only annotates requests that opted in.
func tenantFrom(ctx context.Context) (string, bool) {
	if ctx == nil {
		return "", false
	}
	t, ok := ctx.Value(tenantKey{}).(string)
	return t, ok && t != ""
}

// TenantSample is one finished request's attribution record.
type TenantSample struct {
	// Latency is the request's wall-clock duration (feeds the per-tenant
	// latency distribution and p95).
	Latency time.Duration
	// CacheHit marks a request served from the semantic cache.
	CacheHit bool
	// Shed marks a request rejected by the concurrency limiter.
	Shed bool
	// Error marks a request that produced no usable answer.
	Error bool
}

// tenantEntry is one tracked tenant's counters. All fields but the
// identity are atomics, so the accountant's fast path is a read lock
// plus a handful of atomic adds.
type tenantEntry struct {
	name string
	// floor is the space-saving overcount bound inherited from the entry
	// this one evicted: the tenant's true request count is at most
	// requests and at least requests − floor.
	floor int64

	requests, cacheHits, escalations, shed, errors, spendMicro atomic.Int64
	latency                                                    []atomic.Int64 // per-bucket counts over LatencyBuckets, +Inf last
}

func (e *tenantEntry) observeLatency(d time.Duration) {
	v := d.Seconds()
	i := sort.SearchFloat64s(LatencyBuckets, v)
	e.latency[i].Add(1)
}

// TenantConfig parameterizes a TenantAccountant.
type TenantConfig struct {
	// Capacity bounds the number of tenants tracked individually. Beyond
	// it the accountant behaves as a space-saving heavy-hitter sketch:
	// a new tenant evicts the currently smallest one and inherits its
	// request count as an overcount floor, so the top spenders stay
	// accurate while memory stays O(Capacity) at millions of tenant IDs.
	// Defaults to DefaultTenantCapacity.
	Capacity int
	// Obs receives the aggregate tenant_requests_total /
	// tenant_evictions_total counters and the tenant_tracked gauge.
	// Per-tenant numbers deliberately never become metric labels — the
	// accountant, not the registry, bounds that cardinality. Nil means
	// Default.
	Obs *Registry
}

// TenantAccountant aggregates per-tenant usage — requests, cache hits,
// escalations, sheds, spend and latency — behind a bounded space-saving
// table. It is the attribution layer consulted by /v1/tenants and the
// per-tenant alert conditions, and the prerequisite for hashing or
// quota'ing requests by tenant. TenantAccountant is safe for concurrent
// use.
type TenantAccountant struct {
	capacity int

	mu      sync.RWMutex
	tenants map[string]*tenantEntry
	evicted atomic.Int64

	mRequests  *Counter
	mEvictions *Counter
	gTracked   *Gauge
}

// NewTenantAccountant builds an accountant from cfg.
func NewTenantAccountant(cfg TenantConfig) *TenantAccountant {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultTenantCapacity
	}
	reg := cfg.Obs
	if reg == nil {
		reg = Default
	}
	return &TenantAccountant{
		capacity:   cfg.Capacity,
		tenants:    make(map[string]*tenantEntry, cfg.Capacity),
		mRequests:  reg.Counter("tenant_requests_total"),
		mEvictions: reg.Counter("tenant_evictions_total"),
		gTracked:   reg.Gauge("tenant_tracked"),
	}
}

// Capacity returns the heavy-hitter table bound.
func (a *TenantAccountant) Capacity() int {
	if a == nil {
		return 0
	}
	return a.capacity
}

// entry returns the tenant's counters, admitting (and possibly
// evicting) on first sight. The existing-tenant path takes only the
// read lock.
func (a *TenantAccountant) entry(tenant string) *tenantEntry {
	a.mu.RLock()
	e := a.tenants[tenant]
	a.mu.RUnlock()
	if e != nil {
		return e
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e = a.tenants[tenant]; e != nil {
		return e
	}
	e = &tenantEntry{name: tenant, latency: make([]atomic.Int64, len(LatencyBuckets)+1)}
	if len(a.tenants) >= a.capacity {
		// Space-saving replacement: evict the smallest tracked tenant and
		// let the newcomer inherit its count as an overcount floor.
		var victim *tenantEntry
		for _, cand := range a.tenants {
			if victim == nil || cand.requests.Load() < victim.requests.Load() {
				victim = cand
			}
		}
		delete(a.tenants, victim.name)
		e.floor = victim.requests.Load()
		e.requests.Store(e.floor)
		a.evicted.Add(1)
		a.mEvictions.Inc()
	}
	a.tenants[tenant] = e
	a.gTracked.Set(float64(len(a.tenants)))
	return e
}

// Record attributes one finished request to tenant.
func (a *TenantAccountant) Record(tenant string, s TenantSample) {
	if a == nil {
		return
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	e := a.entry(tenant)
	e.requests.Add(1)
	a.mRequests.Inc()
	if s.CacheHit {
		e.cacheHits.Add(1)
	}
	if s.Shed {
		e.shed.Add(1)
	}
	if s.Error {
		e.errors.Add(1)
	}
	e.observeLatency(s.Latency)
}

// AddSpend attributes cost (micro-dollars) and escalations to tenant.
// It is called once per upstream cascade run — by the proxy's detached
// upstream goroutine, success or failure — so the sum across tenants
// stays meter-exact with the proxy's global spend counter even when
// coalesced waiters share one run.
func (a *TenantAccountant) AddSpend(tenant string, microUSD int64, escalations int) {
	if a == nil {
		return
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	e := a.entry(tenant)
	if microUSD > 0 {
		e.spendMicro.Add(microUSD)
	}
	if escalations > 0 {
		e.escalations.Add(int64(escalations))
	}
}

// Spend reports the spend attributed to tenant so far; ok is false for
// tenants not currently tracked.
func (a *TenantAccountant) Spend(tenant string) (microUSD int64, ok bool) {
	if a == nil {
		return 0, false
	}
	a.mu.RLock()
	e := a.tenants[tenant]
	a.mu.RUnlock()
	if e == nil {
		return 0, false
	}
	return e.spendMicro.Load(), true
}

// TenantStat is one tenant's attribution scorecard, JSON-ready for
// /v1/tenants.
type TenantStat struct {
	Tenant   string `json:"tenant"`
	Requests int64  `json:"requests"`
	// RequestsFloor, when nonzero, is the space-saving overcount bound:
	// the true request count is at least requests − requests_floor.
	RequestsFloor int64   `json:"requests_floor,omitempty"`
	CacheHits     int64   `json:"cache_hits"`
	Escalations   int64   `json:"escalations"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	SpendMicroUSD int64   `json:"spend_micro_usd"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
}

// TenantSnapshot is the accountant's JSON envelope.
type TenantSnapshot struct {
	Capacity int   `json:"capacity"`
	Tracked  int   `json:"tracked"`
	Evicted  int64 `json:"evicted"`
	// Tenants is sorted by spend (then requests, then name) descending —
	// the heavy hitters first.
	Tenants []TenantStat `json:"tenants"`
}

// Snapshot captures up to topN tenants (0 = all tracked), heaviest
// spenders first.
func (a *TenantAccountant) Snapshot(topN int) TenantSnapshot {
	if a == nil {
		return TenantSnapshot{Tenants: []TenantStat{}}
	}
	a.mu.RLock()
	entries := make([]*tenantEntry, 0, len(a.tenants))
	for _, e := range a.tenants {
		entries = append(entries, e)
	}
	a.mu.RUnlock()

	stats := make([]TenantStat, len(entries))
	for i, e := range entries {
		st := TenantStat{
			Tenant:        e.name,
			Requests:      e.requests.Load(),
			RequestsFloor: e.floor,
			CacheHits:     e.cacheHits.Load(),
			Escalations:   e.escalations.Load(),
			Shed:          e.shed.Load(),
			Errors:        e.errors.Load(),
			SpendMicroUSD: e.spendMicro.Load(),
		}
		cum := make([]int64, len(e.latency))
		var total int64
		for j := range e.latency {
			total += e.latency[j].Load()
			cum[j] = total
		}
		if total > 0 {
			st.P50MS = quantileFromCum(LatencyBuckets, cum, 0.50) * 1000
			st.P95MS = quantileFromCum(LatencyBuckets, cum, 0.95) * 1000
		}
		stats[i] = st
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].SpendMicroUSD != stats[j].SpendMicroUSD {
			return stats[i].SpendMicroUSD > stats[j].SpendMicroUSD
		}
		if stats[i].Requests != stats[j].Requests {
			return stats[i].Requests > stats[j].Requests
		}
		return stats[i].Tenant < stats[j].Tenant
	})
	if topN > 0 && len(stats) > topN {
		stats = stats[:topN]
	}
	return TenantSnapshot{
		Capacity: a.capacity,
		Tracked:  len(entries),
		Evicted:  a.evicted.Load(),
		Tenants:  stats,
	}
}
