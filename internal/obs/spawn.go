package obs

// Go is the serving path's managed goroutine spawn: it runs fn on a new
// goroutine with panic containment. A panic in fn is recovered — the
// process stays up, and the event is counted on reg's
// goroutine_panics_total{task=...} counter so dashboards surface it
// instead of a crash log. Deferred calls inside fn (waitgroup Done,
// cancel funcs) still run during the unwind before the recovery fires.
//
// The gospawn analyzer (internal/analysis/gospawn) requires serving-path
// goroutines to either use this helper or carry their own recovery; the
// one bare spawn below is the helper's own body.
func Go(reg *Registry, task string, fn func()) {
	if reg == nil {
		reg = Default
	}
	mPanics := reg.Counter("goroutine_panics_total", "task", task)
	//llmdm:allow gospawn — this IS the managed spawn helper; recovery is installed below
	go func() {
		defer func() {
			if r := recover(); r != nil {
				mPanics.Inc()
			}
		}()
		fn()
	}()
}
