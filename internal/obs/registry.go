package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and hands out metric handles. The fast
// path (re-resolving an existing metric) takes two read locks and no
// allocation; instrumented code should still resolve handles once and keep
// them. Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Default is the process-wide registry. Instrumented packages fall back to
// it when not given an explicit registry, so a default-configured stack
// (proxy, bench harness) observes everything with zero wiring.
var Default = NewRegistry()

type family struct {
	name    string
	typ     string // "counter" | "gauge" | "histogram"
	buckets []float64

	mu      sync.RWMutex
	metrics map[string]interface{} // label key -> *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name with the given label pairs
// ("key", "value", ...), creating it on first use. Registering the same
// name as a different metric type panics (a programming error).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	f := r.familyFor(name, "counter", nil)
	key, lbls := labelKey(labels)
	if m, ok := f.lookup(key); ok {
		return m.(*Counter)
	}
	m, _ := f.create(key, &Counter{labels: lbls})
	return m.(*Counter)
}

// Gauge returns the gauge for name with the given label pairs, creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	f := r.familyFor(name, "gauge", nil)
	key, lbls := labelKey(labels)
	if m, ok := f.lookup(key); ok {
		return m.(*Gauge)
	}
	m, _ := f.create(key, &Gauge{labels: lbls})
	return m.(*Gauge)
}

// Histogram returns the histogram for name with the given bucket upper
// bounds (ascending; +Inf implicit) and label pairs, creating it on first
// use. The first registration of a family fixes its buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	f := r.familyFor(name, "histogram", buckets)
	key, lbls := labelKey(labels)
	if m, ok := f.lookup(key); ok {
		return m.(*Histogram)
	}
	h := &Histogram{labels: lbls, buckets: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1), exemplars: newExemplarStore(f.buckets)}
	m, _ := f.create(key, h)
	return m.(*Histogram)
}

// metricNameRE is the charter for metric family names: lowercase_snake,
// starting with a letter. Prometheus-compatible, grep-able, and stable —
// a name built with fmt.Sprintf would silently fork a family per request.
// The metricname analyzer (internal/analysis/metricname) enforces this on
// literal call sites at lint time; the runtime guard below backstops
// names the analyzer cannot resolve (computed or cross-package).
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// CheckMetricName reports whether name is a legal metric family name:
// lowercase_snake, starting with a letter.
func CheckMetricName(name string) error {
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("obs: invalid metric name %q: must match %s (lowercase_snake)", name, metricNameRE)
	}
	return nil
}

func (r *Registry) familyFor(name, typ string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		// Validate on the creation slow path only: an illegal name can never
		// reach an existing family, because creating it would have panicked.
		if err := CheckMetricName(name); err != nil {
			panic(err)
		}
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			b := buckets
			if typ == "histogram" && len(b) == 0 {
				b = LatencyBuckets
			}
			f = &family{name: name, typ: typ, buckets: b, metrics: make(map[string]interface{})}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) lookup(key string) (interface{}, bool) {
	f.mu.RLock()
	m, ok := f.metrics[key]
	f.mu.RUnlock()
	return m, ok
}

// create inserts fresh under the write lock, returning the winner if a
// concurrent caller got there first.
func (f *family) create(key string, fresh interface{}) (interface{}, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[key]; ok {
		return m, false
	}
	f.metrics[key] = fresh
	return fresh, true
}

// labelKey canonicalizes variadic ("k","v") pairs: sorted by key, joined
// with unprintable separators. Odd trailing values are dropped.
func labelKey(kv []string) (string, []Label) {
	n := len(kv) / 2
	if n == 0 {
		return "", nil
	}
	lbls := make([]Label, n)
	for i := 0; i < n; i++ {
		lbls[i] = Label{Key: kv[2*i], Value: kv[2*i+1]}
	}
	sort.Slice(lbls, func(i, j int) bool { return lbls[i].Key < lbls[j].Key })
	var b strings.Builder
	for _, l := range lbls {
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String(), lbls
}

// --- exposition ---

// histPoint is a histogram's exported state. Quantiles are bucket
// estimates computed at export time — they live only in the exposition
// (not in Snapshot, whose entries must stay additive for Delta).
type histPoint struct {
	Buckets   []int64            `json:"buckets"` // cumulative counts per upper bound, +Inf last
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"` // p50/p95/p99 estimates
	// Exemplars maps bucket upper bound → the most recent trace-bearing
	// observation in that bucket (JSON exposition only; the Prometheus
	// text format predates exemplars).
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// exportQuantiles are the percentile estimates attached to every
// exported histogram point.
var exportQuantiles = map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}

type point struct {
	labels []Label
	value  float64    // counters and gauges
	hist   *histPoint // histograms
}

type familyExport struct {
	name    string
	typ     string
	buckets []float64
	points  []point
}

// export walks the registry into a deterministic (sorted) snapshot.
func (r *Registry) export() []familyExport {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]familyExport, 0, len(fams))
	for _, f := range fams {
		fe := familyExport{name: f.name, typ: f.typ, buckets: f.buckets}
		f.mu.RLock()
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch m := f.metrics[k].(type) {
			case *Counter:
				fe.points = append(fe.points, point{labels: m.labels, value: float64(m.Value())})
			case *Gauge:
				fe.points = append(fe.points, point{labels: m.labels, value: m.Value()})
			case *Histogram:
				hp := &histPoint{Count: m.Count(), Sum: m.Sum(), Buckets: make([]int64, len(m.counts))}
				var cum int64
				for i := range m.counts {
					cum += m.counts[i].Load()
					hp.Buckets[i] = cum
				}
				if hp.Buckets[len(hp.Buckets)-1] > 0 {
					hp.Quantiles = make(map[string]float64, len(exportQuantiles))
					for name, q := range exportQuantiles {
						hp.Quantiles[name] = quantileFromCum(f.buckets, hp.Buckets, q)
					}
				}
				hp.Exemplars = m.Exemplars()
				fe.points = append(fe.points, point{labels: m.labels, hist: hp})
			}
		}
		f.mu.RUnlock()
		out = append(out, fe)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fe := range r.export() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fe.name, fe.typ); err != nil {
			return err
		}
		for _, p := range fe.points {
			if fe.typ != "histogram" {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", fe.name, promLabels(p.labels, "", ""), formatValue(p.value)); err != nil {
					return err
				}
				continue
			}
			for i, cum := range p.hist.Buckets {
				le := "+Inf"
				if i < len(fe.buckets) {
					le = formatValue(fe.buckets[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fe.name, promLabels(p.labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				fe.name, promLabels(p.labels, "", ""), formatValue(p.hist.Sum),
				fe.name, promLabels(p.labels, "", ""), p.hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders {k="v",...}, appending an extra pair when extraK is
// non-empty, or "" when there are no labels at all.
func promLabels(labels []Label, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// jsonPoint is one metric in the JSON exposition.
type jsonPoint struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *histPoint        `json:"histogram,omitempty"`
}

// jsonFamily is one family in the JSON exposition.
type jsonFamily struct {
	Type    string      `json:"type"`
	Buckets []float64   `json:"buckets,omitempty"`
	Points  []jsonPoint `json:"points"`
}

// WriteJSON writes the registry as a JSON object keyed by family name.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]jsonFamily)
	for _, fe := range r.export() {
		jf := jsonFamily{Type: fe.typ}
		if fe.typ == "histogram" {
			jf.Buckets = fe.buckets
		}
		for _, p := range fe.points {
			jp := jsonPoint{}
			if len(p.labels) > 0 {
				jp.Labels = make(map[string]string, len(p.labels))
				for _, l := range p.labels {
					jp.Labels[l.Key] = l.Value
				}
			}
			if p.hist != nil {
				jp.Hist = p.hist
			} else {
				v := p.value
				jp.Value = &v
			}
			jf.Points = append(jf.Points, jp)
		}
		out[fe.name] = jf
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Snapshot is a flat point-in-time view of a registry: "name{k=\"v\"}" →
// value. Histograms contribute name_count and name_sum entries.
type Snapshot map[string]float64

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := make(Snapshot)
	for _, fe := range r.export() {
		for _, p := range fe.points {
			base := fe.name + promLabels(p.labels, "", "")
			if p.hist != nil {
				s[fe.name+"_count"+promLabels(p.labels, "", "")] = float64(p.hist.Count)
				s[fe.name+"_sum"+promLabels(p.labels, "", "")] = p.hist.Sum
			} else {
				s[base] = p.value
			}
		}
	}
	return s
}

// Delta returns s − prev, keeping only entries that changed (new entries
// count in full).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot)
	for k, v := range s {
		if dv := v - prev[k]; dv != 0 {
			d[k] = dv
		}
	}
	return d
}

// Summary renders the snapshot as sorted "name value" lines, each prefixed
// with indent — the llmdm-bench -telemetry output.
func (s Snapshot) Summary(indent string) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s%s %s\n", indent, k, formatValue(s[k]))
	}
	return b.String()
}
