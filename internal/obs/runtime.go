package obs

import (
	"runtime"
	"sync"
	"time"
)

// DefaultRuntimeInterval is the sampling period for collectors started
// with StartRuntimeCollector(reg, 0).
const DefaultRuntimeInterval = 5 * time.Second

// GCPauseBuckets covers stop-the-world GC pauses, in seconds.
var GCPauseBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1}

// runtimeCollector samples Go runtime health into a registry.
type runtimeCollector struct {
	gGoroutines *Gauge
	gHeapAlloc  *Gauge
	gHeapSys    *Gauge
	gHeapObjs   *Gauge
	gNextGC     *Gauge
	gGCCPU      *Gauge
	mGCCycles   *Counter
	hGCPause    *Histogram

	lastNumGC uint32
}

// StartRuntimeCollector begins sampling runtime health — goroutine
// count, heap and GC stats, and per-cycle GC pause durations — into reg
// every interval (DefaultRuntimeInterval when interval <= 0). The first
// sample is taken synchronously so metrics exist before the first tick.
// The returned stop function halts the sampler and is idempotent.
func StartRuntimeCollector(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	c := &runtimeCollector{
		gGoroutines: reg.Gauge("go_goroutines"),
		gHeapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		gHeapSys:    reg.Gauge("go_heap_sys_bytes"),
		gHeapObjs:   reg.Gauge("go_heap_objects"),
		gNextGC:     reg.Gauge("go_next_gc_bytes"),
		gGCCPU:      reg.Gauge("go_gc_cpu_fraction"),
		mGCCycles:   reg.Counter("go_gc_cycles_total"),
		hGCPause:    reg.Histogram("go_gc_pause_seconds", GCPauseBuckets),
	}
	// Baseline NumGC without observing pauses: cycles before the
	// collector started are not its story to tell.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC = ms.NumGC
	c.sample()

	done := make(chan struct{})
	Go(reg, "runtime_collector", func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.sample()
			case <-done:
				return
			}
		}
	})
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// sample reads runtime state into the metric handles. ReadMemStats
// stops the world briefly, so this runs on the sampling interval, never
// per request.
func (c *runtimeCollector) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gGoroutines.Set(float64(runtime.NumGoroutine()))
	c.gHeapAlloc.Set(float64(ms.HeapAlloc))
	c.gHeapSys.Set(float64(ms.HeapSys))
	c.gHeapObjs.Set(float64(ms.HeapObjects))
	c.gNextGC.Set(float64(ms.NextGC))
	c.gGCCPU.Set(ms.GCCPUFraction)

	if ms.NumGC > c.lastNumGC {
		c.mGCCycles.Add(int64(ms.NumGC - c.lastNumGC))
		// PauseNs is a ring of the last 256 pause durations; replay only
		// the cycles since the previous sample (capped at ring size).
		first := c.lastNumGC + 1
		if ms.NumGC > 255 && first < ms.NumGC-255 {
			first = ms.NumGC - 255
		}
		for i := first; i <= ms.NumGC; i++ {
			c.hGCPause.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		c.lastNumGC = ms.NumGC
	}
}
