package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "source", "cache")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) resolves to the same handle.
	if r.Counter("reqs_total", "source", "cache") != c {
		t.Error("re-resolving returned a different counter")
	}
	// Different labels are a different series.
	if r.Counter("reqs_total", "source", "cascade") == c {
		t.Error("distinct labels shared a counter")
	}

	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("calls_total", "model", "gpt-4").Add(7)
	r.Gauge("queue_depth").Set(2.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE calls_total counter",
		`calls_total{model="gpt-4"} 7`,
		"# TYPE queue_depth gauge",
		"queue_depth 2.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("calls_total", "model", "m").Inc()
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"calls_total"`, `"counter"`, `"histogram"`, `"model": "m"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("json missing %q:\n%s", want, sb.String())
		}
	}
}

func TestSnapshotDeltaSummary(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(2)
	before := r.Snapshot()
	c.Add(3)
	r.Counter("y_total", "k", "v").Inc()
	d := r.Snapshot().Delta(before)
	if d["x_total"] != 3 {
		t.Errorf("delta x_total = %v, want 3", d["x_total"])
	}
	if d[`y_total{k="v"}`] != 1 {
		t.Errorf("delta y_total = %v, want 1 (have %v)", d[`y_total{k="v"}`], d)
	}
	sum := d.Summary("  ")
	if !strings.Contains(sum, "  x_total 3") {
		t.Errorf("summary = %q", sum)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter re-registered as gauge")
		}
	}()
	r.Gauge("m")
}

// TestConcurrentRegistry hammers creation and updates from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			models := []string{"a", "b", "c"}
			for i := 0; i < 500; i++ {
				m := models[i%len(models)]
				r.Counter("calls_total", "model", m).Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("lat", LatencyBuckets, "model", m).Observe(float64(i) / 1000)
				r.Gauge("inflight").Add(-1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, m := range []string{"a", "b", "c"} {
		total += r.Counter("calls_total", "model", m).Value()
	}
	if total != workers*500 {
		t.Errorf("total = %d, want %d", total, workers*500)
	}
	if g := r.Gauge("inflight").Value(); g != 0 {
		t.Errorf("inflight gauge = %v, want 0", g)
	}
	var hist int64
	for _, m := range []string{"a", "b", "c"} {
		hist += r.Histogram("lat", LatencyBuckets, "model", m).Count()
	}
	if hist != workers*500 {
		t.Errorf("histogram count = %d, want %d", hist, workers*500)
	}
}
