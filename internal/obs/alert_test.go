package obs

import (
	"testing"
	"time"
)

// alertHarness wires an engine to a fresh registry, SLO tracker and
// tenant accountant on a shared settable clock.
func alertHarness() (*AlertEngine, *Registry, *SLOTracker, *TenantAccountant, *time.Time) {
	reg := NewRegistry()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	slo := NewSLOTracker(SLOConfig{
		Objectives: map[string]SLOObjective{"interactive": {LatencyTarget: 10 * time.Millisecond, LatencyGoal: 0.95, AvailabilityGoal: 0.99}},
		Now:        clock,
		Obs:        reg,
	})
	tenants := NewTenantAccountant(TenantConfig{Capacity: 8, Obs: reg})
	events := NewEventLog(256)
	e := NewAlertEngine(AlertConfig{
		Source:  reg,
		SLO:     slo,
		Tenants: tenants,
		Log:     NewLogger(events, Debug, reg),
		Now:     clock,
	})
	return e, reg, slo, tenants, &now
}

func TestAlertThresholdLifecycle(t *testing.T) {
	e, reg, _, _, now := alertHarness()
	g := reg.Gauge("breaker_state", "model", "gpt_heavy")
	e.AddRule("breaker_open", Threshold{Metric: "breaker_state", Above: 0.5}, WithSeverity(Error))

	snap := e.Evaluate()
	if snap.Rules[0].State != "inactive" || snap.Firing != 0 {
		t.Fatalf("closed breaker: %+v", snap)
	}

	// For == 0 fires in a single evaluation: pending and firing edges
	// both happen.
	g.Set(1)
	*now = now.Add(time.Second)
	snap = e.Evaluate()
	if snap.Firing != 1 || snap.Rules[0].State != "firing" {
		t.Fatalf("open breaker: %+v", snap)
	}
	if snap.Rules[0].Value != 1 {
		t.Fatalf("value = %g, want 1", snap.Rules[0].Value)
	}
	if snap.Rules[0].Since == nil {
		t.Fatal("firing rule has no since")
	}

	g.Set(0)
	*now = now.Add(time.Second)
	snap = e.Evaluate()
	if snap.Firing != 0 || snap.Rules[0].State != "inactive" {
		t.Fatalf("recovered breaker: %+v", snap)
	}

	if got := reg.Counter("alert_transitions_total", "state", "firing").Value(); got != 1 {
		t.Fatalf("firing transitions = %d, want 1", got)
	}
	if got := reg.Counter("alert_transitions_total", "state", "resolved").Value(); got != 1 {
		t.Fatalf("resolved transitions = %d, want 1", got)
	}

	// Every edge landed in the event log: pending, firing, resolved.
	events := e.log.Sink().Events(EventFilter{Name: "alert_transition"})
	if len(events) != 3 {
		t.Fatalf("alert_transition events = %d, want 3", len(events))
	}
	wantTo := []string{"pending", "firing", "resolved"}
	for i, ev := range events {
		if ev.Attrs["rule"] != "breaker_open" || ev.Attrs["to"] != wantTo[i] {
			t.Fatalf("event %d = %+v, want to=%s", i, ev.Attrs, wantTo[i])
		}
	}
}

func TestAlertForDurationHoldsPending(t *testing.T) {
	e, reg, _, _, now := alertHarness()
	g := reg.Gauge("queue_depth")
	e.AddRule("queue_deep", Threshold{Metric: "queue_depth", Above: 10}, ForDuration(30*time.Second))

	g.Set(50)
	snap := e.Evaluate()
	if snap.Pending != 1 || snap.Firing != 0 {
		t.Fatalf("first eval: %+v", snap)
	}

	// Still inside the hold window: pending, not firing.
	*now = now.Add(10 * time.Second)
	snap = e.Evaluate()
	if snap.Pending != 1 || snap.Firing != 0 {
		t.Fatalf("10s in: %+v", snap)
	}

	// Condition clears before the hold elapses: resolved without ever
	// firing.
	g.Set(0)
	*now = now.Add(5 * time.Second)
	snap = e.Evaluate()
	if snap.Pending != 0 || snap.Firing != 0 {
		t.Fatalf("cleared: %+v", snap)
	}
	if got := reg.Counter("alert_transitions_total", "state", "firing").Value(); got != 0 {
		t.Fatal("fired despite never holding for-duration")
	}

	// Re-trips and holds long enough: fires.
	g.Set(50)
	*now = now.Add(time.Second)
	e.Evaluate()
	*now = now.Add(31 * time.Second)
	snap = e.Evaluate()
	if snap.Firing != 1 {
		t.Fatalf("after hold: %+v", snap)
	}
}

func TestAlertRateOfChange(t *testing.T) {
	e, reg, _, _, now := alertHarness()
	c := reg.Counter("limiter_shed_total")
	e.AddRule("shed_rate_high", RateOfChange{Metric: "limiter_shed_total", PerSecondAbove: 1})

	// First evaluation has no previous values — inactive by definition.
	if snap := e.Evaluate(); snap.Pending+snap.Firing != 0 {
		t.Fatalf("first eval: %+v", snap)
	}

	// 30 sheds over 10 seconds = 3/s > 1/s.
	c.Add(30)
	*now = now.Add(10 * time.Second)
	snap := e.Evaluate()
	if snap.Firing != 1 {
		t.Fatalf("hot shed rate: %+v", snap)
	}
	if v := snap.Rules[0].Value; v < 2.9 || v > 3.1 {
		t.Fatalf("rate = %g, want ~3", v)
	}

	// Flat counter → rate 0 → resolved.
	*now = now.Add(10 * time.Second)
	if snap = e.Evaluate(); snap.Firing != 0 {
		t.Fatalf("flat counter: %+v", snap)
	}
}

func TestAlertSLOBurn(t *testing.T) {
	e, _, slo, _, now := alertHarness()
	e.AddRule("slo_latency_burn_high", SLOBurn{SLO: "latency", Window: "5m", Above: 2})

	// 100 requests all meeting the 10ms target: no burn.
	for i := 0; i < 100; i++ {
		slo.Record("interactive", time.Millisecond, true)
	}
	if snap := e.Evaluate(); snap.Pending+snap.Firing != 0 {
		t.Fatalf("healthy: %+v", snap)
	}

	// Half the next wave blows the target: slow fraction ~0.33 over a
	// 0.05 budget = burn ~6.7 > 2.
	for i := 0; i < 50; i++ {
		slo.Record("interactive", 50*time.Millisecond, true)
	}
	*now = now.Add(time.Second)
	snap := e.Evaluate()
	if snap.Firing != 1 {
		t.Fatalf("burning: %+v", snap)
	}
}

func TestAlertTenantSpendRate(t *testing.T) {
	e, _, _, tenants, now := alertHarness()
	e.AddRule("tenant_spend_spike", TenantSpendRate{MicroUSDPerSecondAbove: 100})

	tenants.AddSpend("acme", 500, 0)
	e.Evaluate() // baseline

	// 10_000 μ$ in 10s = 1000 μ$/s for acme.
	tenants.AddSpend("acme", 10_000, 0)
	tenants.AddSpend("umbrella", 50, 0)
	*now = now.Add(10 * time.Second)
	snap := e.Evaluate()
	if snap.Firing != 1 {
		t.Fatalf("spike: %+v", snap)
	}

	*now = now.Add(10 * time.Second)
	if snap = e.Evaluate(); snap.Firing != 0 {
		t.Fatalf("quiet: %+v", snap)
	}
}

func TestAlertDefaultRulesAndReplace(t *testing.T) {
	e, _, _, _, _ := alertHarness()
	e.AddDefaultRules()
	snap := e.Evaluate()
	want := []string{"breaker_open", "shed_rate_high", "slo_availability_burn_high", "slo_latency_burn_high", "tenant_spend_spike"}
	if len(snap.Rules) != len(want) {
		t.Fatalf("rules = %d, want %d", len(snap.Rules), len(want))
	}
	for i, r := range snap.Rules {
		if r.Rule != want[i] {
			t.Fatalf("rule %d = %s, want %s (sorted)", i, r.Rule, want[i])
		}
		if r.Description == "" {
			t.Fatalf("rule %s has no description", r.Rule)
		}
	}

	// Re-adding a name replaces in place rather than duplicating.
	e.AddRule("breaker_open", Threshold{Metric: "breaker_state", Above: 5})
	if got := len(e.Evaluate().Rules); got != len(want) {
		t.Fatalf("after replace: %d rules, want %d", got, len(want))
	}

	// Rule names share the metric-name charter.
	defer func() {
		if recover() == nil {
			t.Fatal("bad rule name did not panic")
		}
	}()
	e.AddRule("Bad-Name", Threshold{})
}

func TestAlertEngineNilSafe(t *testing.T) {
	var e *AlertEngine
	if snap := e.Evaluate(); len(snap.Rules) != 0 {
		t.Fatal("nil engine evaluated rules")
	}
	if snap := e.Snapshot(); len(snap.Rules) != 0 {
		t.Fatal("nil engine snapshot non-empty")
	}
	stop := e.Start(time.Second)
	stop()
}

func TestAlertStartStop(t *testing.T) {
	e, reg, _, _, _ := alertHarness()
	g := reg.Gauge("breaker_state")
	g.Set(1)
	e.AddRule("breaker_open", Threshold{Metric: "breaker_state", Above: 0.5})
	stop := e.Start(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Snapshot().Firing == 1 {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background loop never evaluated")
}
