package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a request's trace tree. Spans are created
// by Tracer.Start (roots) and StartSpan (children), annotated with SetAttr,
// and closed with End. All methods are nil-safe and safe for concurrent
// use, so instrumentation can be unconditional.
type Span struct {
	name    string
	start   time.Time
	traceID string // set before the span is shared; read without the lock

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	attrs    []Label
	children []*Span

	// tracer is set on root spans only; End hands the finished tree to it.
	tracer *Tracer
}

// attrString renders an annotation value: ints, floats, bools and
// durations get compact forms, everything else fmt.Sprint. Shared by
// Span.SetAttr and Logger events so traces and the event log agree.
func attrString(value interface{}) string {
	switch x := value.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}

// SetAttr records a key/value annotation. Values are rendered to strings:
// ints, floats, bools and durations get compact forms, everything else
// fmt.Sprint.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	v := attrString(value)
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: v})
	s.mu.Unlock()
}

// End closes the span. Ending a root span publishes its finished tree to
// the tracer's ring. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.record(s)
	}
}

// addChild attaches c under s.
func (s *Span) addChild(c *Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// TraceID returns the ID of the trace this span belongs to, or "" for
// detached spans. IDs are minted by Tracer.Start and inherited by
// children, so every span in one request's tree shares one ID — the
// join key between /debug/traces and /debug/events.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// TraceIDFromContext returns the trace ID of the span carried by ctx,
// or "" when ctx carries none.
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}

// SpanData is the exported (JSON-ready) form of a finished span tree.
type SpanData struct {
	Name       string            `json:"name"`
	TraceID    string            `json:"trace_id,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanData        `json:"children,omitempty"`
}

// data snapshots the span tree. Safe to call on live spans (un-ended spans
// report the duration so far).
func (s *Span) data() SpanData {
	s.mu.Lock()
	d := SpanData{Name: s.name, TraceID: s.traceID, Start: s.start, DurationMS: float64(s.duration.Microseconds()) / 1000}
	if !s.ended {
		d.DurationMS = float64(time.Since(s.start).Microseconds()) / 1000
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.data())
	}
	return d
}

// spanKey carries the current span through a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of the current span in ctx. When ctx carries no
// span the returned span is detached — fully usable but recorded nowhere —
// so library code can instrument unconditionally at negligible cost.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		s.traceID = parent.traceID
		parent.addChild(s)
	}
	return ContextWithSpan(ctx, s), s
}

// Tracer keeps a bounded ring of the most recent finished root spans.
// Tracer is safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	ring []*Span
	next int
	n    int
}

// DefaultTraceCapacity is the ring size of DefaultTracer and of tracers
// built with NewTracer(0).
const DefaultTraceCapacity = 64

// DefaultTracer is the process-wide trace ring, the fallback for
// components not given an explicit tracer.
var DefaultTracer = NewTracer(DefaultTraceCapacity)

// NewTracer returns a tracer retaining the last capacity root spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

// traceSeq mints process-unique trace IDs.
var traceSeq atomic.Uint64

// newTraceID returns a fresh process-unique trace ID ("t1", "t2", ...
// in hex). IDs only need to be unique within the in-memory rings they
// join, so a counter beats entropy.
func newTraceID() string {
	return "t" + strconv.FormatUint(traceSeq.Add(1), 16)
}

// Start begins a root span recorded into this tracer's ring when ended.
// The returned context carries the span; child spans started from it via
// StartSpan attach beneath it. Each root gets a fresh trace ID,
// inherited by its children and readable via TraceIDFromContext.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return StartSpan(ctx, name)
	}
	s := &Span{name: name, start: time.Now(), traceID: newTraceID(), tracer: t}
	return ContextWithSpan(ctx, s), s
}

// record pushes a finished root into the ring.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first (all retained
// traces when n <= 0).
func (t *Tracer) Recent(n int) []SpanData {
	t.mu.Lock()
	spans := make([]*Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.next - 1 - i + len(t.ring) + len(t.ring)) % len(t.ring)
		spans = append(spans, t.ring[idx])
	}
	t.mu.Unlock()
	if n > 0 && len(spans) > n {
		spans = spans[:n]
	}
	out := make([]SpanData, len(spans))
	for i, s := range spans {
		out[i] = s.data()
	}
	return out
}

// ByID returns the retained trace whose root carries the given ID.
func (t *Tracer) ByID(id string) (SpanData, bool) {
	t.mu.Lock()
	var found *Span
	for i := 0; i < t.n; i++ {
		idx := (t.next - 1 - i + len(t.ring) + len(t.ring)) % len(t.ring)
		if t.ring[idx].traceID == id {
			found = t.ring[idx]
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return SpanData{}, false
	}
	return found.data(), true
}

// Len reports how many traces the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
