package obs

import (
	"context"
	"fmt"
	"testing"
)

func TestEventsSinceCursor(t *testing.T) {
	l := NewEventLog(8)
	lg := NewLogger(l, Debug, NewRegistry())
	for i := 0; i < 5; i++ {
		lg.Emit(Info, "tick", "i", i)
	}

	// Fresh cursor sees everything, no gap.
	events, missing, next := l.EventsSince(0, EventFilter{})
	if len(events) != 5 || missing != 0 || next != 5 {
		t.Fatalf("fresh read: %d events, missing %d, next %d", len(events), missing, next)
	}

	// Resuming from the cursor yields only the new events.
	lg.Emit(Info, "tick", "i", 5)
	events, missing, next = l.EventsSince(next, EventFilter{})
	if len(events) != 1 || events[0].Seq != 6 || missing != 0 || next != 6 {
		t.Fatalf("incremental read: %+v missing %d next %d", events, missing, next)
	}

	// Caught up: empty, same cursor.
	events, missing, next = l.EventsSince(next, EventFilter{})
	if len(events) != 0 || missing != 0 || next != 6 {
		t.Fatalf("caught-up read: %d events missing %d next %d", len(events), missing, next)
	}
}

func TestEventsSinceWraparoundGap(t *testing.T) {
	l := NewEventLog(4)
	lg := NewLogger(l, Debug, NewRegistry())
	lg.Emit(Info, "tick", "i", 0)
	_, _, cursor := l.EventsSince(0, EventFilter{}) // cursor = 1

	// Ten more events blow through the 4-slot ring: seqs 2..7 are gone,
	// only 8..11 retained. The consumer at cursor 1 lost 6.
	for i := 1; i <= 10; i++ {
		lg.Emit(Info, "tick", "i", i)
	}
	events, missing, next := l.EventsSince(cursor, EventFilter{})
	if len(events) != 4 {
		t.Fatalf("retained = %d, want 4", len(events))
	}
	if events[0].Seq != 8 || events[3].Seq != 11 {
		t.Fatalf("seq range = %d..%d, want 8..11", events[0].Seq, events[3].Seq)
	}
	if missing != 6 {
		t.Fatalf("missing = %d, want 6", missing)
	}
	if next != 11 {
		t.Fatalf("next = %d, want 11", next)
	}

	// A since==0 read reports the log's total loss, matching Overwritten.
	_, missing, _ = l.EventsSince(0, EventFilter{})
	if missing != l.Overwritten() {
		t.Fatalf("missing %d != overwritten %d", missing, l.Overwritten())
	}

	// Filters compose with the cursor: gap reporting is about seq range,
	// not about how many matched.
	events, missing, _ = l.EventsSince(cursor, EventFilter{Name: "nope"})
	if len(events) != 0 || missing != 6 {
		t.Fatalf("filtered read: %d events, missing %d", len(events), missing)
	}
}

func TestEventTenantAttribute(t *testing.T) {
	l := NewEventLog(16)
	lg := NewLogger(l, Debug, NewRegistry())

	lg.Event(context.Background(), Info, "request_done", "source", "cache")
	lg.Event(WithTenant(context.Background(), "acme"), Info, "request_done", "source", "cascade")
	lg.Event(WithTenant(context.Background(), "umbrella"), Info, "request_done")

	all := l.Events(EventFilter{})
	if len(all) != 3 {
		t.Fatalf("events = %d, want 3", len(all))
	}
	if _, ok := all[0].Attrs["tenant"]; ok {
		t.Fatalf("untenanted event grew a tenant attr: %+v", all[0].Attrs)
	}
	if got := all[1].Attrs["tenant"]; got != "acme" {
		t.Fatalf("tenant attr = %q, want acme", got)
	}
	if got := all[1].Attrs["source"]; got != "cascade" {
		t.Fatalf("explicit attrs lost: %+v", all[1].Attrs)
	}

	// The Tenant filter replays one tenant's story.
	acme := l.Events(EventFilter{Tenant: "acme"})
	if len(acme) != 1 || acme[0].Attrs["source"] != "cascade" {
		t.Fatalf("tenant filter = %+v", acme)
	}
	if got := l.Events(EventFilter{Tenant: "ghost"}); len(got) != 0 {
		t.Fatalf("ghost tenant matched %d events", len(got))
	}
}

func TestEventsSinceMaxKeepsNewest(t *testing.T) {
	l := NewEventLog(32)
	lg := NewLogger(l, Debug, NewRegistry())
	for i := 0; i < 10; i++ {
		lg.Emit(Info, "tick", "i", fmt.Sprint(i))
	}
	events, _, _ := l.EventsSince(0, EventFilter{Max: 3})
	if len(events) != 3 || events[2].Attrs["i"] != "9" {
		t.Fatalf("max-capped read = %+v", events)
	}
}
