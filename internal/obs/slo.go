package obs

import (
	"sort"
	"sync"
	"time"
)

// SLO window geometry: one hour of 10-second buckets, with the short
// burn window spanning the newest 5 minutes of the same ring.
const (
	sloBucketSeconds = 10
	sloLongBuckets   = 360 // 1h
	sloShortBuckets  = 30  // 5m
)

// SLOWindows names the burn-rate windows every snapshot reports.
var SLOWindows = []string{"5m", "1h"}

// SLOObjective states what "good" means for one request class.
type SLOObjective struct {
	// LatencyTarget is the per-request latency bound; a request slower
	// than this is "slow" even if it succeeded.
	LatencyTarget time.Duration
	// LatencyGoal is the fraction of requests that must meet
	// LatencyTarget (e.g. 0.95).
	LatencyGoal float64
	// AvailabilityGoal is the fraction of requests that must succeed
	// (e.g. 0.99).
	AvailabilityGoal float64
}

// withDefaults fills zero fields: interactive traffic gets a tight
// latency bound, everything else a relaxed one.
func (o SLOObjective) withDefaults(class string) SLOObjective {
	if o.LatencyTarget <= 0 {
		if class == "interactive" {
			o.LatencyTarget = 500 * time.Millisecond
		} else {
			o.LatencyTarget = 5 * time.Second
		}
	}
	if o.LatencyGoal <= 0 {
		o.LatencyGoal = 0.95
	}
	if o.AvailabilityGoal <= 0 {
		o.AvailabilityGoal = 0.99
	}
	return o
}

// SLOConfig parameterizes an SLOTracker.
type SLOConfig struct {
	// Objectives maps request class → objective. Classes recorded but
	// not listed here get per-class defaults, so the tracker never drops
	// traffic on the floor.
	Objectives map[string]SLOObjective
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
	// Obs receives slo_requests_total / slo_errors_total /
	// slo_slow_total counters and slo_burn_rate / slo_attainment gauges.
	// Nil means obs.Default.
	Obs *Registry
}

// sloBucket is one 10-second slice of a class's traffic.
type sloBucket struct {
	epoch  int64 // unix time / sloBucketSeconds; stale buckets are recycled
	total  int64
	errors int64
	slow   int64
}

// sloClass is the tracker's per-class state.
type sloClass struct {
	obj     SLOObjective
	buckets [sloLongBuckets]sloBucket

	mTotal  *Counter
	mErrors *Counter
	mSlow   *Counter
}

// SLOTracker scores per-class traffic against latency and availability
// objectives and computes multi-window (5m/1h) error-budget burn rates.
// A burn rate of 1.0 means the class is spending its budget exactly as
// fast as the objective allows; sustained rates far above 1 on both
// windows mean the SLO will be missed. SLOTracker is safe for
// concurrent use.
type SLOTracker struct {
	cfg SLOConfig
	reg *Registry
	now func() time.Time

	mu      sync.Mutex
	classes map[string]*sloClass
}

// NewSLOTracker builds a tracker from cfg.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	reg := cfg.Obs
	if reg == nil {
		reg = Default
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &SLOTracker{cfg: cfg, reg: reg, now: now, classes: make(map[string]*sloClass)}
}

// class returns (creating on first use) the state for a class. Caller
// holds t.mu.
func (t *SLOTracker) classLocked(name string) *sloClass {
	c := t.classes[name]
	if c == nil {
		obj := t.cfg.Objectives[name].withDefaults(name)
		c = &sloClass{
			obj:     obj,
			mTotal:  t.reg.Counter("slo_requests_total", "class", name),
			mErrors: t.reg.Counter("slo_errors_total", "class", name),
			mSlow:   t.reg.Counter("slo_slow_total", "class", name),
		}
		t.classes[name] = c
	}
	return c
}

// Record scores one finished request: its class, wall-clock latency,
// and whether it produced a usable answer.
func (t *SLOTracker) Record(class string, latency time.Duration, ok bool) {
	if t == nil {
		return
	}
	epoch := t.now().Unix() / sloBucketSeconds
	slow := false

	t.mu.Lock()
	c := t.classLocked(class)
	slow = latency > c.obj.LatencyTarget
	b := &c.buckets[epoch%sloLongBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if !ok {
		b.errors++
	}
	if slow {
		b.slow++
	}
	t.mu.Unlock()

	c.mTotal.Inc()
	if !ok {
		c.mErrors.Inc()
	}
	if slow {
		c.mSlow.Inc()
	}
}

// SLOWindow is one class's scorecard over one lookback window.
type SLOWindow struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Slow     int64 `json:"slow"`
	// Availability and LatencyAttainment are good-request fractions
	// (1.0 with no traffic — an idle service is not failing).
	Availability      float64 `json:"availability"`
	LatencyAttainment float64 `json:"latency_attainment"`
	// Burn rates are bad-fraction / budget-fraction: 1.0 burns the
	// error budget exactly at the objective's allowed pace.
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	LatencyBurnRate      float64 `json:"latency_burn_rate"`
}

// SLOClassSnapshot is one class's objectives plus per-window scores.
type SLOClassSnapshot struct {
	Objective struct {
		LatencyTargetMS  float64 `json:"latency_target_ms"`
		LatencyGoal      float64 `json:"latency_goal"`
		AvailabilityGoal float64 `json:"availability_goal"`
	} `json:"objective"`
	Windows map[string]SLOWindow `json:"windows"`
}

// SLOSnapshot is the full JSON-ready SLO scorecard, served at /v1/slo.
type SLOSnapshot struct {
	Classes map[string]SLOClassSnapshot `json:"classes"`
}

// Snapshot computes the current scorecard and refreshes the
// slo_burn_rate{class,slo,window} and slo_attainment{class,slo,window}
// gauges, so scraping /metrics after Snapshot sees fresh values.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	snap := SLOSnapshot{Classes: make(map[string]SLOClassSnapshot)}
	if t == nil {
		return snap
	}
	epoch := t.now().Unix() / sloBucketSeconds

	type gaugeSet struct {
		class, window string
		w             SLOWindow
	}
	var sets []gaugeSet

	t.mu.Lock()
	names := make([]string, 0, len(t.classes))
	for name := range t.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := t.classes[name]
		cs := SLOClassSnapshot{Windows: make(map[string]SLOWindow, len(SLOWindows))}
		cs.Objective.LatencyTargetMS = float64(c.obj.LatencyTarget.Microseconds()) / 1000
		cs.Objective.LatencyGoal = c.obj.LatencyGoal
		cs.Objective.AvailabilityGoal = c.obj.AvailabilityGoal
		for _, window := range SLOWindows {
			span := int64(sloLongBuckets)
			if window == "5m" {
				span = sloShortBuckets
			}
			var w SLOWindow
			for i := range c.buckets {
				b := &c.buckets[i]
				if b.epoch > epoch-span && b.epoch <= epoch {
					w.Requests += b.total
					w.Errors += b.errors
					w.Slow += b.slow
				}
			}
			w.Availability, w.AvailabilityBurnRate = sloScore(w.Requests, w.Errors, c.obj.AvailabilityGoal)
			w.LatencyAttainment, w.LatencyBurnRate = sloScore(w.Requests, w.Slow, c.obj.LatencyGoal)
			cs.Windows[window] = w
			sets = append(sets, gaugeSet{class: name, window: window, w: w})
		}
		snap.Classes[name] = cs
	}
	t.mu.Unlock()

	for _, s := range sets {
		t.reg.Gauge("slo_burn_rate", "class", s.class, "slo", "availability", "window", s.window).Set(s.w.AvailabilityBurnRate)
		t.reg.Gauge("slo_burn_rate", "class", s.class, "slo", "latency", "window", s.window).Set(s.w.LatencyBurnRate)
		t.reg.Gauge("slo_attainment", "class", s.class, "slo", "availability", "window", s.window).Set(s.w.Availability)
		t.reg.Gauge("slo_attainment", "class", s.class, "slo", "latency", "window", s.window).Set(s.w.LatencyAttainment)
	}
	return snap
}

// sloScore turns (total, bad, goal) into (good fraction, burn rate).
// With no traffic the class is attaining (1.0) and burning nothing.
func sloScore(total, bad int64, goal float64) (attainment, burn float64) {
	if total == 0 {
		return 1, 0
	}
	badFrac := float64(bad) / float64(total)
	budget := 1 - goal
	if budget <= 0 {
		budget = 1e-9 // a 100% goal has no budget; any badness burns hard
	}
	return 1 - badFrac, badFrac / budget
}
