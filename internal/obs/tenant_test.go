package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTenantContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != DefaultTenant {
		t.Fatalf("untagged ctx tenant = %q, want %q", got, DefaultTenant)
	}
	if _, ok := tenantFrom(ctx); ok {
		t.Fatal("untagged ctx reported an explicit tenant")
	}
	ctx = WithTenant(ctx, "acme")
	if got := TenantFrom(ctx); got != "acme" {
		t.Fatalf("tenant = %q, want acme", got)
	}
	// The identity must survive detachment — the proxy's upstream
	// goroutine attributes spend after WithoutCancel.
	detached := context.WithoutCancel(ctx)
	if got := TenantFrom(detached); got != "acme" {
		t.Fatalf("tenant after WithoutCancel = %q, want acme", got)
	}
	// Empty tenant is a no-op tag.
	if got := TenantFrom(WithTenant(context.Background(), "")); got != DefaultTenant {
		t.Fatalf("empty tag tenant = %q, want %q", got, DefaultTenant)
	}
}

func TestTenantAccountantRecordAndSpend(t *testing.T) {
	reg := NewRegistry()
	a := NewTenantAccountant(TenantConfig{Capacity: 8, Obs: reg})

	for i := 0; i < 5; i++ {
		a.Record("acme", TenantSample{Latency: 2 * time.Millisecond, CacheHit: i > 0})
	}
	a.AddSpend("acme", 1200, 0)
	a.Record("umbrella", TenantSample{Latency: 50 * time.Millisecond})
	a.AddSpend("umbrella", 9000, 2)
	a.Record("", TenantSample{Latency: time.Millisecond, Shed: true, Error: true})

	if spend, ok := a.Spend("acme"); !ok || spend != 1200 {
		t.Fatalf("acme spend = %d,%v want 1200,true", spend, ok)
	}
	if _, ok := a.Spend("ghost"); ok {
		t.Fatal("untracked tenant reported spend")
	}

	snap := a.Snapshot(0)
	if snap.Tracked != 3 || snap.Evicted != 0 || snap.Capacity != 8 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
	// Sorted by spend descending: umbrella, acme, anon.
	if snap.Tenants[0].Tenant != "umbrella" || snap.Tenants[1].Tenant != "acme" || snap.Tenants[2].Tenant != DefaultTenant {
		t.Fatalf("order = %v", snap.Tenants)
	}
	u := snap.Tenants[0]
	if u.Requests != 1 || u.Escalations != 2 || u.SpendMicroUSD != 9000 {
		t.Fatalf("umbrella stat = %+v", u)
	}
	if u.P95MS <= 0 {
		t.Fatalf("umbrella p95 = %g, want > 0", u.P95MS)
	}
	ac := snap.Tenants[1]
	if ac.Requests != 5 || ac.CacheHits != 4 {
		t.Fatalf("acme stat = %+v", ac)
	}
	an := snap.Tenants[2]
	if an.Shed != 1 || an.Errors != 1 {
		t.Fatalf("anon stat = %+v", an)
	}
	if got := reg.Counter("tenant_requests_total").Value(); got != 7 {
		t.Fatalf("tenant_requests_total = %d, want 7", got)
	}

	// topN truncation keeps the heavy hitters.
	top := a.Snapshot(1)
	if len(top.Tenants) != 1 || top.Tenants[0].Tenant != "umbrella" {
		t.Fatalf("top-1 = %v", top.Tenants)
	}

	// Nil accountant is inert everywhere.
	var nilA *TenantAccountant
	nilA.Record("x", TenantSample{})
	nilA.AddSpend("x", 1, 1)
	if _, ok := nilA.Spend("x"); ok {
		t.Fatal("nil accountant reported spend")
	}
	if s := nilA.Snapshot(0); s.Tenants == nil || len(s.Tenants) != 0 {
		t.Fatalf("nil accountant snapshot = %+v", s)
	}
}

func TestTenantAccountantSpaceSavingEviction(t *testing.T) {
	reg := NewRegistry()
	a := NewTenantAccountant(TenantConfig{Capacity: 2, Obs: reg})
	for i := 0; i < 10; i++ {
		a.Record("whale", TenantSample{})
	}
	a.Record("minnow", TenantSample{})

	// A third tenant evicts the smallest (minnow, 1 request) and
	// inherits its count as an overcount floor.
	a.Record("newcomer", TenantSample{})
	snap := a.Snapshot(0)
	if snap.Tracked != 2 || snap.Evicted != 1 {
		t.Fatalf("after eviction: %+v", snap)
	}
	var nc *TenantStat
	for i := range snap.Tenants {
		if snap.Tenants[i].Tenant == "newcomer" {
			nc = &snap.Tenants[i]
		}
		if snap.Tenants[i].Tenant == "minnow" {
			t.Fatal("minnow survived eviction")
		}
	}
	if nc == nil {
		t.Fatal("newcomer not tracked")
	}
	if nc.Requests != 2 || nc.RequestsFloor != 1 {
		t.Fatalf("newcomer = %+v, want requests 2 floor 1", nc)
	}
	// The whale was never at risk.
	if _, ok := a.Spend("whale"); !ok {
		t.Fatal("whale evicted")
	}
	if got := reg.Counter("tenant_evictions_total").Value(); got != 1 {
		t.Fatalf("tenant_evictions_total = %d, want 1", got)
	}
	if got := reg.Gauge("tenant_tracked").Value(); got != 2 {
		t.Fatalf("tenant_tracked = %g, want 2", got)
	}
}

func TestTenantAccountantConcurrent(t *testing.T) {
	a := NewTenantAccountant(TenantConfig{Capacity: 4, Obs: NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tenant := fmt.Sprintf("t%d", (g+i)%6) // more tenants than capacity
				a.Record(tenant, TenantSample{Latency: time.Millisecond})
				a.AddSpend(tenant, 3, 0)
			}
		}(g)
	}
	wg.Wait()
	snap := a.Snapshot(0)
	if snap.Tracked != 4 {
		t.Fatalf("tracked = %d, want capacity 4", snap.Tracked)
	}
	var spend int64
	for _, st := range snap.Tenants {
		spend += st.SpendMicroUSD
	}
	if spend <= 0 {
		t.Fatal("no spend attributed")
	}
}
