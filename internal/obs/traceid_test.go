package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTracerMintsTraceIDs(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "req")
	id := root.TraceID()
	if id == "" || !strings.HasPrefix(id, "t") {
		t.Fatalf("TraceID() = %q, want t-prefixed id", id)
	}
	if got := TraceIDFromContext(ctx); got != id {
		t.Errorf("TraceIDFromContext = %q, want %q", got, id)
	}
	// Children inherit the root's ID.
	childCtx, child := StartSpan(ctx, "step")
	if child.TraceID() != id {
		t.Errorf("child TraceID = %q, want %q", child.TraceID(), id)
	}
	if got := TraceIDFromContext(childCtx); got != id {
		t.Errorf("child ctx TraceID = %q, want %q", got, id)
	}
	child.End()
	root.End()

	// Distinct requests get distinct IDs.
	_, other := tr.Start(context.Background(), "req")
	if other.TraceID() == id {
		t.Errorf("two roots share trace id %q", id)
	}
	other.End()

	// ByID finds the recorded tree, and its JSON carries the id.
	data, ok := tr.ByID(id)
	if !ok {
		t.Fatalf("ByID(%q) not found", id)
	}
	if data.TraceID != id || data.Name != "req" {
		t.Errorf("ByID data = %+v", data)
	}
	if len(data.Children) != 1 || data.Children[0].TraceID != id {
		t.Errorf("child data = %+v, want inherited trace id", data.Children)
	}
	if _, ok := tr.ByID("t_no_such"); ok {
		t.Error("ByID on an unknown id reported found")
	}
}

func TestTraceIDNilAndDetached(t *testing.T) {
	if got := TraceIDFromContext(context.Background()); got != "" {
		t.Errorf("empty ctx TraceID = %q, want empty", got)
	}
	var nilSpan *Span
	if nilSpan.TraceID() != "" {
		t.Error("nil span TraceID not empty")
	}
	// Detached spans (no tracer) carry no ID.
	_, s := StartSpan(context.Background(), "orphan")
	if s.TraceID() != "" {
		t.Errorf("detached span TraceID = %q, want empty", s.TraceID())
	}
	s.End()
}
