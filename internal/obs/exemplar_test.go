package obs

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", LatencyBuckets)

	if got := h.Exemplars(); got != nil {
		t.Fatalf("fresh histogram exemplars = %v, want nil", got)
	}
	if _, ok := h.ExemplarNear(0.99); ok {
		t.Fatal("empty histogram returned an exemplar")
	}

	h.ObserveWithExemplar(0.003, "t_fast")
	h.ObserveWithExemplar(0.004, "t_fast2") // same bucket: last writer wins
	h.ObserveWithExemplar(0.8, "t_slow")
	h.Observe(0.002)                 // plain observe never touches exemplars
	h.ObserveWithExemplar(0.009, "") // empty trace: counted, no exemplar

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplar buckets = %d (%v), want 2", len(ex), ex)
	}
	if got := ex["0.005"]; got.Trace != "t_fast2" || got.Value != 0.004 {
		t.Fatalf("0.005 bucket exemplar = %+v, want t_fast2@0.004", got)
	}
	if got := ex["1"]; got.Trace != "t_slow" {
		t.Fatalf("1s bucket exemplar = %+v, want t_slow", got)
	}
	if got := ex["0.005"]; got.Time.IsZero() {
		t.Fatal("exemplar timestamp is zero")
	}

	// The tail quantile resolves to the slow request's trace.
	near, ok := h.ExemplarNear(0.99)
	if !ok || near.Trace != "t_slow" {
		t.Fatalf("p99 exemplar = %+v,%v want t_slow", near, ok)
	}
	// A low quantile resolves to the fast bucket.
	near, ok = h.ExemplarNear(0.10)
	if !ok || near.Trace != "t_fast2" {
		t.Fatalf("p10 exemplar = %+v,%v want t_fast2", near, ok)
	}
}

func TestExemplarNearFallsBackAcrossBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_fallback_seconds", LatencyBuckets)
	// Many plain samples dominate the distribution; only one early bucket
	// holds an exemplar. ExemplarNear must still return it rather than
	// reporting none.
	for i := 0; i < 100; i++ {
		h.Observe(4.0)
	}
	h.ObserveWithExemplar(0.0002, "t_only")
	near, ok := h.ExemplarNear(0.99)
	if !ok || near.Trace != "t_only" {
		t.Fatalf("fallback exemplar = %+v,%v want t_only", near, ok)
	}
}

func TestExemplarsInJSONExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_prom_seconds", LatencyBuckets)
	h.ObserveWithExemplar(0.3, "txpromlink")

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"txpromlink"`) {
		t.Fatalf("JSON exposition lacks exemplar trace:\n%s", b.String())
	}

	// The Prometheus text format must stay exemplar-free (version 0.0.4
	// predates them).
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "txpromlink") {
		t.Fatalf("Prometheus exposition leaked exemplars:\n%s", b.String())
	}
}

func TestBareHistogramExemplarSafe(t *testing.T) {
	// Histograms constructed outside a Registry have no exemplar store;
	// ObserveWithExemplar must still count the sample without panicking.
	legacy := &Histogram{buckets: LatencyBuckets, counts: make([]atomic.Int64, len(LatencyBuckets)+1)}
	legacy.ObserveWithExemplar(0.01, "t_x")
	if legacy.Count() != 1 {
		t.Fatalf("count = %d, want 1", legacy.Count())
	}
	if legacy.Exemplars() != nil {
		t.Fatal("nil store grew exemplars")
	}
	if _, ok := legacy.ExemplarNear(0.5); ok {
		t.Fatal("nil store returned an exemplar")
	}
}
