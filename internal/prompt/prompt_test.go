package prompt

import (
	"strings"
	"testing"

	"repro/internal/embed"
)

func newStore(budget int) *Store {
	return NewStore(embed.New(embed.DefaultDim), budget)
}

func TestTemplateRender(t *testing.T) {
	tpl := Template{Name: "cta", Text: "Given types: {{types}}. Predict the type of: {{values}}."}
	got := tpl.Render(map[string]string{"types": "country, person", "values": "USA||UK"})
	want := "Given types: country, person. Predict the type of: USA||UK."
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	// Unknown placeholders stay visible.
	if !strings.Contains(tpl.Render(nil), "{{types}}") {
		t.Error("unknown placeholder silently dropped")
	}
}

func TestAddSelectSimilarity(t *testing.T) {
	s := newStore(0)
	s.Add(Example{Input: "names of stadiums with concerts in 2014", Output: "SELECT ..."})
	s.Add(Example{Input: "predict execution time of a join query", Output: "42ms"})
	s.Add(Example{Input: "stadiums that had concerts in 2015", Output: "SELECT ..."})

	sel := s.Select("stadiums that had concerts in 2013", 2, BySimilarity)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	for _, x := range sel {
		if !strings.Contains(x.Example.Input, "stadiums") {
			t.Errorf("selected unrelated example %q", x.Example.Input)
		}
	}
}

func TestPerformanceAwareReordersByReward(t *testing.T) {
	s := newStore(0)
	// Two near-identical examples; the second accumulates bad reward.
	good := s.Add(Example{Input: "stadiums with concerts in 2014", Output: "A"})
	bad := s.Add(Example{Input: "stadiums with concerts in 2015", Output: "B"})
	for i := 0; i < 5; i++ {
		s.Feedback(good, 1)
		s.Feedback(bad, 0)
	}
	sel := s.Select("stadiums with concerts in 2016", 1, ByPerformance)
	if len(sel) != 1 || sel[0].ID != good {
		t.Errorf("performance-aware selection picked %v", sel)
	}
}

func TestFeedbackAccumulates(t *testing.T) {
	s := newStore(0)
	id := s.Add(Example{Input: "x", Output: "y"})
	s.Feedback(id, 1)
	s.Feedback(id, 0)
	sel := s.Select("x", 1, BySimilarity)
	if sel[0].Example.Uses != 2 || sel[0].Example.MeanReward() != 0.5 {
		t.Errorf("feedback state wrong: %+v", sel[0].Example)
	}
	// Feedback on a missing ID must be a no-op, not a panic.
	s.Feedback(999, 1)
}

func TestBudgetEvictsLowestReward(t *testing.T) {
	s := newStore(3)
	a := s.Add(Example{Input: "aaaa", Output: "1"})
	b := s.Add(Example{Input: "bbbb", Output: "2"})
	c := s.Add(Example{Input: "cccc", Output: "3"})
	s.Feedback(a, 1)
	s.Feedback(b, 0) // worst
	s.Feedback(c, 1)
	s.Add(Example{Input: "dddd", Output: "4"})
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	sel := s.Select("bbbb", 3, BySimilarity)
	for _, x := range sel {
		if x.ID == b {
			t.Error("lowest-reward example survived eviction")
		}
	}
}

func TestMeanRewardPrior(t *testing.T) {
	e := Example{}
	if e.MeanReward() != 0.5 {
		t.Errorf("unused prior = %v, want 0.5", e.MeanReward())
	}
}

func TestBuildFewShot(t *testing.T) {
	sel := []Selected{
		{Example: Example{Input: "USA||UK||France", Output: "country"}},
		{Example: Example{Input: "Michael Jackson||Beckham", Output: "person"}},
	}
	p := BuildFewShot("Predict the column type.", sel, "Basketball||Badminton")
	for _, want := range []string{"Predict the column type.", "(1) Input: USA||UK||France", "Output: country", "(2)", "Basketball||Badminton"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
	if !strings.HasSuffix(p, "Output:") {
		t.Error("prompt should end at completion point")
	}
}

func TestSharedExamples(t *testing.T) {
	a := []Selected{{ID: 1}, {ID: 2}, {ID: 3}}
	b := []Selected{{ID: 3}, {ID: 4}, {ID: 1}}
	if got := SharedExamples(a, b); got != 2 {
		t.Errorf("shared = %d, want 2", got)
	}
	if got := SharedExamples(a, nil); got != 0 {
		t.Errorf("shared with nil = %d", got)
	}
}

func TestSelectMoreThanStored(t *testing.T) {
	s := newStore(0)
	s.Add(Example{Input: "only one", Output: "x"})
	sel := s.Select("only one", 5, BySimilarity)
	if len(sel) != 1 {
		t.Errorf("selected %d, want 1", len(sel))
	}
}

func BenchmarkSelect(b *testing.B) {
	s := newStore(0)
	for i := 0; i < 500; i++ {
		s.Add(Example{Input: "example number " + strings.Repeat("x", i%17), Output: "o"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select("example number xxxx", 5, ByPerformance)
	}
}
