package prompt

import (
	"fmt"
	"testing"

	"repro/internal/embed"
)

func TestBanditExploresUnusedExamples(t *testing.T) {
	s := NewStore(embed.New(embed.DefaultDim), 0)
	// Two similar examples; one has been pulled a lot.
	hot := s.Add(Example{Input: "stadiums with concerts in 2014", Output: "A"})
	cold := s.Add(Example{Input: "stadiums with concerts in 2015", Output: "B"})
	for i := 0; i < 50; i++ {
		s.Feedback(hot, 0.6)
	}
	b := NewBanditSelector(s)
	sel := b.Select("stadiums with concerts in 2016", 1)
	if len(sel) != 1 || sel[0].ID != cold {
		t.Errorf("bandit did not explore the unused arm: picked %v", sel)
	}
}

func TestBanditConvergesToRewardingArm(t *testing.T) {
	s := NewStore(embed.New(embed.DefaultDim), 0)
	good := s.Add(Example{Input: "example question variant alpha", Output: "good"})
	bad := s.Add(Example{Input: "example question variant beta", Output: "bad"})
	b := NewBanditSelector(s)

	// Simulated environment: using the good example yields reward 1,
	// the bad one 0.
	pickCounts := map[interface{}]int{}
	for round := 0; round < 200; round++ {
		sel := b.Select("example question variant gamma", 1)
		if len(sel) != 1 {
			t.Fatal("no selection")
		}
		reward := 0.0
		if sel[0].ID == good {
			reward = 1
		}
		b.Feedback(sel, reward)
		if round >= 100 {
			pickCounts[sel[0].ID]++
		}
	}
	if pickCounts[good] <= pickCounts[bad] {
		t.Errorf("bandit did not converge: good=%d bad=%d", pickCounts[good], pickCounts[bad])
	}
	if float64(pickCounts[good])/100 < 0.7 {
		t.Errorf("good arm picked only %d/100 in the second half", pickCounts[good])
	}
}

func TestBanditRespectsSimilarityAnchor(t *testing.T) {
	s := NewStore(embed.New(embed.DefaultDim), 0)
	relevant := s.Add(Example{Input: "predict execution time of join queries", Output: "x"})
	s.Add(Example{Input: "completely unrelated poetry about rivers", Output: "y"})
	b := NewBanditSelector(s)
	// Even with equal (empty) reward history, the relevant example should
	// dominate for an on-topic query after a few pulls stabilize bonuses.
	wins := 0
	for i := 0; i < 10; i++ {
		sel := b.Select("predict execution time of scan queries", 1)
		if len(sel) == 1 && sel[0].ID == relevant {
			wins++
		}
		b.Feedback(sel, 0.5)
	}
	if wins < 6 {
		t.Errorf("relevant example won only %d/10", wins)
	}
}

func BenchmarkBanditSelect(b *testing.B) {
	s := NewStore(embed.New(embed.DefaultDim), 0)
	for i := 0; i < 300; i++ {
		s.Add(Example{Input: fmt.Sprintf("stored example number %d about data", i), Output: "o"})
	}
	sel := NewBanditSelector(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select("stored example about data processing", 4)
	}
}
