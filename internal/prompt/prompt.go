// Package prompt implements prompt construction and historical prompt
// selection — the paper's Section III-A challenge.
//
// Prompts for data-management tasks are built from templates plus few-shot
// examples. Historical examples are stored in a vector index; selection can
// be purely similarity-based (the common practice the paper critiques) or
// performance-aware (the paper's envisioned improvement: "incorporate the
// performance of LLMs as a target"). A bounded store evicts examples by
// learned utility, realizing the "which historical prompts should be stored
// within a limited budget" question.
package prompt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/embed"
	"repro/internal/vector"
)

// Template is a named prompt template with {{var}} placeholders.
type Template struct {
	Name string
	Text string
}

// Render substitutes {{key}} placeholders from vars. Unknown placeholders
// are left intact so mistakes are visible in output rather than silent.
func (t Template) Render(vars map[string]string) string {
	out := t.Text
	for k, v := range vars {
		out = strings.ReplaceAll(out, "{{"+k+"}}", v)
	}
	return out
}

// Example is one historical (input, output) pair with its observed utility.
type Example struct {
	Input  string
	Output string
	// Reward accumulates observed LLM performance when this example was
	// included in a prompt (1 for a correct downstream answer, 0 for wrong).
	Reward float64
	// Uses counts how often the example was selected.
	Uses int
}

// MeanReward is the example's average observed reward (0.5 prior when
// unused, so fresh examples are explored).
func (e Example) MeanReward() float64 {
	if e.Uses == 0 {
		return 0.5
	}
	return e.Reward / float64(e.Uses)
}

// Selection is how examples are chosen for a new query.
type Selection int

const (
	// BySimilarity ranks purely on embedding similarity — the baseline.
	BySimilarity Selection = iota
	// ByPerformance ranks on similarity blended with observed reward — the
	// paper's performance-aware index target.
	ByPerformance
)

// Store is a budgeted few-shot example store over a vector index.
// Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	emb      *embed.Embedder
	idx      *vector.Flat
	examples map[vector.ID]*Example
	nextID   vector.ID
	budget   int
	// alpha blends reward into the performance-aware score.
	alpha float64
}

// NewStore returns a Store holding at most budget examples (0 = unbounded).
func NewStore(emb *embed.Embedder, budget int) *Store {
	return &Store{
		emb:      emb,
		idx:      vector.NewFlat(emb.Dim(), vector.Cosine),
		examples: make(map[vector.ID]*Example),
		budget:   budget,
		alpha:    0.5,
	}
}

// Len reports the number of stored examples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.examples)
}

// Add stores an example, evicting the lowest-utility one if over budget.
// It returns the example's ID for later reward feedback.
func (s *Store) Add(ex Example) vector.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	cp := ex
	s.examples[id] = &cp
	if err := s.idx.Add(vector.Item{ID: id, Vec: s.emb.Text(ex.Input)}); err != nil {
		// IDs are monotonically assigned under the lock; duplicates are a
		// programming error.
		panic(err)
	}
	if s.budget > 0 && len(s.examples) > s.budget {
		s.evictLocked()
	}
	return id
}

// evictLocked removes the example with the lowest retention utility:
// mean reward, tie-broken toward the least-used (oldest information).
// This is the greedy realization of the paper's budgeted retention policy.
func (s *Store) evictLocked() {
	var victim vector.ID
	best := 2.0
	for id, ex := range s.examples {
		u := ex.MeanReward()
		if u < best || (u == best && id < victim) {
			best = u
			victim = id
		}
	}
	delete(s.examples, victim)
	s.idx.Remove(victim)
}

// Selected is one chosen example with its ranking score.
type Selected struct {
	ID      vector.ID
	Example Example
	Score   float64
}

// Select returns up to k examples for the query under the given strategy.
func (s *Store) Select(query string, k int, mode Selection) []Selected {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.emb.Text(query)
	// Over-fetch so performance blending can reorder a meaningful pool.
	pool := k * 4
	if pool < 16 {
		pool = 16
	}
	hits := s.idx.Search(q, pool)
	out := make([]Selected, 0, len(hits))
	for _, h := range hits {
		ex, ok := s.examples[h.ID]
		if !ok {
			continue
		}
		score := h.Score
		if mode == ByPerformance {
			score = (1-s.alpha)*h.Score + s.alpha*ex.MeanReward()
		}
		out = append(out, Selected{ID: h.ID, Example: *ex, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Feedback records the downstream outcome (reward in [0,1]) of using an
// example.
func (s *Store) Feedback(id vector.ID, reward float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ex, ok := s.examples[id]; ok {
		ex.Uses++
		ex.Reward += reward
	}
}

// BuildFewShot assembles the standard few-shot prompt: instruction,
// numbered examples, then the query.
func BuildFewShot(instruction string, examples []Selected, query string) string {
	var b strings.Builder
	b.WriteString(instruction)
	b.WriteString("\n")
	for i, ex := range examples {
		fmt.Fprintf(&b, "(%d) Input: %s\n    Output: %s\n", i+1, ex.Example.Input, ex.Example.Output)
	}
	b.WriteString("Input: " + query + "\nOutput:")
	return b.String()
}

// SharedExamples reports how many selected examples two prompts have in
// common — the overlap query combination exploits (Section III-B1).
func SharedExamples(a, b []Selected) int {
	in := make(map[vector.ID]bool, len(a))
	for _, x := range a {
		in[x.ID] = true
	}
	n := 0
	for _, y := range b {
		if in[y.ID] {
			n++
		}
	}
	return n
}
