package prompt

import (
	"math"
	"sort"
)

// BanditSelector layers an upper-confidence-bound policy over the example
// store — the paper's Section III-A vision that "reinforcement learning
// algorithms can be designed to determine the most promising prompts".
//
// Selection score = similarity + exploration bonus + exploitation term:
//
//	score = sim + c·sqrt(ln(total+1)/(uses+1)) + mean reward
//
// Unused examples get large bonuses (exploration); examples with proven
// reward keep winning (exploitation); and similarity anchors relevance.
type BanditSelector struct {
	Store *Store
	// C is the exploration coefficient. 0 uses 0.6.
	C float64

	totalPulls int
}

// NewBanditSelector wraps a store.
func NewBanditSelector(s *Store) *BanditSelector {
	return &BanditSelector{Store: s, C: 0.6}
}

// Select chooses up to k examples for the query under UCB and counts the
// pull. Callers must report outcomes via Feedback for the policy to learn.
func (b *BanditSelector) Select(query string, k int) []Selected {
	c := b.C
	if c == 0 {
		c = 0.6
	}
	b.totalPulls++
	// Over-fetch by similarity, then re-rank by UCB.
	pool := b.Store.Select(query, k*6, BySimilarity)
	lnT := math.Log(float64(b.totalPulls) + 1)
	for i := range pool {
		ex := pool[i].Example
		bonus := c * math.Sqrt(lnT/float64(ex.Uses+1))
		pool[i].Score = pool[i].Score + bonus + ex.MeanReward()
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Score != pool[j].Score {
			return pool[i].Score > pool[j].Score
		}
		return pool[i].ID < pool[j].ID
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

// Feedback forwards the observed reward to the store.
func (b *BanditSelector) Feedback(sel []Selected, reward float64) {
	for _, s := range sel {
		b.Store.Feedback(s.ID, reward)
	}
}
