// Package perf is the repository's recorded performance trajectory: a
// fixed suite of micro-benchmarks over the serving path (proxy,
// scheduler, semantic cache) and its kernels (embedding, tokenizer,
// vector search), run via testing.Benchmark and emitted as
// schema-stable JSON artifacts (BENCH_serving.json, BENCH_kernels.json)
// so every PR's perf is diffable against the one before it.
//
// The artifacts are written by `llmdm-bench -bench-json` (see `make
// bench-json`) and compared by `llmdm-bench -bench-compare old new`,
// which exits nonzero on large ns/op regressions — CI runs the
// comparator in warn-only mode, a release gate would not.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// Schema identifies the artifact layout; bump it when field meanings
// change so comparators refuse cross-schema diffs instead of lying.
const Schema = "llmdm-bench/v1"

// Areas of the suite, one artifact per area.
const (
	AreaServing = "serving"
	AreaKernels = "kernels"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is one area's full artifact.
type Report struct {
	Schema     string             `json:"schema"`
	Area       string             `json:"area"`
	Go         string             `json:"go"`
	Benchmarks []Result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

// Spec is one suite entry: a named benchmark body.
type Spec struct {
	Name  string
	Bench func(b *testing.B)
}

// Run executes specs through testing.Benchmark and assembles a report
// (benchmarks sorted by name for a stable artifact diff).
func Run(area string, specs []Spec) Report {
	rep := Report{Schema: Schema, Area: area, Go: runtime.Version()}
	for _, s := range specs {
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s.Bench(b)
		})
		r := Result{
			Name:        s.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		}
		if r.NsPerOp > 0 {
			r.OpsPerSec = 1e9 / r.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	return rep
}

// FileName returns the artifact file name for an area
// ("BENCH_serving.json").
func FileName(area string) string { return "BENCH_" + area + ".json" }

// WriteReport writes rep to dir/BENCH_<area>.json, indented with a
// trailing newline so the artifact diffs cleanly under git.
func WriteReport(dir string, rep Report) (string, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(rep.Area))
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads an artifact and validates its schema.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("perf: %s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return rep, nil
}

// Regression is one comparator finding.
type Regression struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Ratio     float64 `json:"ratio"`
}

// String renders the finding for terminal output.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)", r.Benchmark, r.Metric, r.Old, r.New, r.Ratio)
}

// Compare reports the regressions from old to new: any benchmark whose
// ns/op grew by more than maxRatio, any benchmark that disappeared, and
// any derived metric (higher-is-better, e.g. the scheduler throughput
// win) that shrank by more than the same factor. Micro-benchmarks on
// shared CI hardware are noisy, so maxRatio should be generous (2.0+)
// — this catches order-of-magnitude mistakes, not percent drift.
func Compare(old, new Report, maxRatio float64) []Regression {
	if maxRatio <= 1 {
		maxRatio = 2
	}
	var regs []Regression
	newBy := make(map[string]Result, len(new.Benchmarks))
	for _, r := range new.Benchmarks {
		newBy[r.Name] = r
	}
	for _, o := range old.Benchmarks {
		n, ok := newBy[o.Name]
		if !ok {
			regs = append(regs, Regression{Benchmark: o.Name, Metric: "missing", Old: o.NsPerOp})
			continue
		}
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*maxRatio {
			regs = append(regs, Regression{
				Benchmark: o.Name, Metric: "ns_per_op",
				Old: o.NsPerOp, New: n.NsPerOp, Ratio: n.NsPerOp / o.NsPerOp,
			})
		}
	}
	for name, ov := range old.Derived {
		nv, ok := new.Derived[name]
		if !ok {
			regs = append(regs, Regression{Benchmark: name, Metric: "missing_derived", Old: ov})
			continue
		}
		if ov > 0 && nv < ov/maxRatio {
			regs = append(regs, Regression{
				Benchmark: name, Metric: "derived",
				Old: ov, New: nv, Ratio: nv / ov,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Benchmark < regs[j].Benchmark })
	return regs
}
