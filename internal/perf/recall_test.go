package perf

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/vector"
)

// TestQuantizedRecallOnPerfCorpus gates the int8-quantized scan measured
// by the vector_flat_search_quantized benchmark: over the same corpus the
// kernel benchmarks use, the quantized prefilter must keep recall@10
// against the exact scan at 0.95 or better. If quantization error ever
// grows past what the shortlist absorbs, this fails before the benchmark
// numbers quietly degrade in quality.
func TestQuantizedRecallOnPerfCorpus(t *testing.T) {
	e := embed.New(embed.DefaultDim)
	items := buildCorpus(e)

	exact := vector.NewFlat(e.Dim(), vector.Cosine, vector.Exact())
	quant := vector.NewFlat(e.Dim(), vector.Cosine, vector.Quantized())
	if err := exact.Add(items...); err != nil {
		t.Fatal(err)
	}
	if err := quant.Add(items...); err != nil {
		t.Fatal(err)
	}

	const k = 10
	const queries = 64
	var matched, total int
	for qi := 0; qi < queries; qi++ {
		q := e.Text(perfText(qi * 31 % corpusSize))
		truth := make(map[vector.ID]bool, k)
		for _, r := range exact.Search(q, k) {
			truth[r.ID] = true
		}
		for _, r := range quant.Search(q, k) {
			if truth[r.ID] {
				matched++
			}
		}
		total += k
	}
	recall := float64(matched) / float64(total)
	t.Logf("quantized recall@%d over %d queries: %.4f", k, queries, recall)
	if recall < 0.95 {
		t.Errorf("quantized recall@%d = %.4f, want >= 0.95", k, recall)
	}
}
