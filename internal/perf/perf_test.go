package perf

import (
	"path/filepath"
	"testing"
)

func trivialSpecs() []Spec {
	return []Spec{
		{Name: "z_second", Bench: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = i * i
			}
		}},
		{Name: "a_first", Bench: func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				s += i
			}
			_ = s
		}},
	}
}

func TestRunProducesStableSchema(t *testing.T) {
	rep := Run(AreaKernels, trivialSpecs())
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.Area != AreaKernels || rep.Go == "" {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	// Sorted by name regardless of spec order.
	if rep.Benchmarks[0].Name != "a_first" || rep.Benchmarks[1].Name != "z_second" {
		t.Errorf("order = %s, %s", rep.Benchmarks[0].Name, rep.Benchmarks[1].Name)
	}
	for _, r := range rep.Benchmarks {
		if r.Iterations <= 0 || r.NsPerOp <= 0 || r.OpsPerSec <= 0 {
			t.Errorf("%s measured %+v, want positive iterations/ns/ops", r.Name, r)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out") // WriteReport creates it
	rep := Report{
		Schema: Schema, Area: AreaServing, Go: "go1.22",
		Benchmarks: []Result{{Name: "x", Iterations: 10, NsPerOp: 100, OpsPerSec: 1e7}},
		Derived:    map[string]float64{"sched_throughput_win": 3.5},
	}
	path, err := WriteReport(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_serving.json" {
		t.Errorf("artifact name = %s", filepath.Base(path))
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != rep.Area || len(got.Benchmarks) != 1 || got.Derived["sched_throughput_win"] != 3.5 {
		t.Errorf("round trip = %+v", got)
	}

	// A wrong schema is refused.
	bad := rep
	bad.Schema = "other/v9"
	badPath, err := WriteReport(t.TempDir(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(badPath); err == nil {
		t.Error("ReadReport accepted a foreign schema")
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("ReadReport accepted a missing file")
	}
}

func TestCompare(t *testing.T) {
	old := Report{
		Schema: Schema, Area: AreaServing,
		Benchmarks: []Result{
			{Name: "steady", NsPerOp: 100},
			{Name: "regressed", NsPerOp: 100},
			{Name: "gone", NsPerOp: 100},
		},
		Derived: map[string]float64{"win": 4.0, "lost_metric": 2.0},
	}
	new := Report{
		Schema: Schema, Area: AreaServing,
		Benchmarks: []Result{
			{Name: "steady", NsPerOp: 150},    // 1.5x: under the 2x bar
			{Name: "regressed", NsPerOp: 500}, // 5x: flagged
			{Name: "extra", NsPerOp: 1},       // new benchmarks are fine
		},
		Derived: map[string]float64{"win": 1.0}, // 4x shrink: flagged
	}
	regs := Compare(old, new, 2.0)
	byKey := map[string]Regression{}
	for _, r := range regs {
		byKey[r.Benchmark+"/"+r.Metric] = r
	}
	if len(regs) != 4 {
		t.Fatalf("regressions = %v, want 4", regs)
	}
	if r := byKey["regressed/ns_per_op"]; r.Ratio != 5 {
		t.Errorf("regressed finding = %+v", r)
	}
	if _, ok := byKey["gone/missing"]; !ok {
		t.Errorf("missing benchmark not flagged: %v", regs)
	}
	if r := byKey["win/derived"]; r.Old != 4.0 || r.New != 1.0 {
		t.Errorf("derived finding = %+v", r)
	}
	if _, ok := byKey["lost_metric/missing_derived"]; !ok {
		t.Errorf("missing derived metric not flagged: %v", regs)
	}
	if _, ok := byKey["steady/ns_per_op"]; ok {
		t.Error("1.5x drift flagged at a 2x bar")
	}

	// A generous bar clears the 1.5x and keeps the 5x.
	if regs := Compare(old, new, 4.9); len(regs) != 3 {
		t.Errorf("4.9x bar regressions = %v, want 3 (regressed + gone + lost_metric)", regs)
	}
	// maxRatio <= 1 falls back to 2x instead of flagging everything.
	if regs := Compare(old, old, 0); len(regs) != 0 {
		t.Errorf("self-compare with ratio 0 = %v, want none", regs)
	}
	// Regression strings render for terminal output.
	if s := byKey["regressed/ns_per_op"].String(); s == "" {
		t.Error("empty regression string")
	}
}
