package perf

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core/semcache"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sched"
	"repro/internal/token"
	"repro/internal/vector"
)

// corpusSize is the vector-index population for the search benchmarks —
// big enough that flat vs HNSW scaling is visible, small enough that
// setup stays sub-second.
const corpusSize = 2048

// perfText returns the i-th synthetic document/query text.
func perfText(i int) string {
	return fmt.Sprintf("document %d about caching and cascades for serving workload %d", i, i%7)
}

// buildCorpus embeds corpusSize documents once for the search benches.
func buildCorpus(e *embed.Embedder) []vector.Item {
	items := make([]vector.Item, corpusSize)
	for i := range items {
		items[i] = vector.Item{ID: vector.ID(i), Vec: e.Text(perfText(i))}
	}
	return items
}

// Kernels is the compute-kernel suite: embedding, tokenizing and vector
// search, the non-model work on the serving path's critical path.
func Kernels() []Spec {
	return []Spec{
		{Name: "embed_text", Bench: func(b *testing.B) {
			e := embed.New(embed.DefaultDim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Text(perfText(i % 256))
			}
		}},
		{Name: "tokenizer_count", Bench: func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n += token.Count(perfText(i % 256))
			}
			if n < 0 {
				b.Fatal("impossible token count")
			}
		}},
		{Name: "embed_text_scratch", Bench: func(b *testing.B) {
			e := embed.New(embed.DefaultDim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ReleaseScratch(e.TextScratch(perfText(i % 256)))
			}
		}},
		{Name: "vector_flat_search", Bench: func(b *testing.B) {
			// Default configuration: exact SIMD scan at this scale (the
			// int8 prefilter auto-enables only on memory-bound stores).
			e := embed.New(embed.DefaultDim)
			idx := vector.NewFlat(e.Dim(), vector.Cosine)
			if err := idx.Add(buildCorpus(e)...); err != nil {
				b.Fatal(err)
			}
			q := e.Text("query about caching for serving")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(q, 10)
			}
		}},
		{Name: "vector_flat_search_quantized", Bench: func(b *testing.B) {
			e := embed.New(embed.DefaultDim)
			idx := vector.NewFlat(e.Dim(), vector.Cosine, vector.Quantized())
			if err := idx.Add(buildCorpus(e)...); err != nil {
				b.Fatal(err)
			}
			q := e.Text("query about caching for serving")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(q, 10)
			}
		}},
		{Name: "vector_hnsw_search", Bench: func(b *testing.B) {
			e := embed.New(embed.DefaultDim)
			idx := vector.NewHNSW(vector.HNSWConfig{Dim: e.Dim(), Metric: vector.Cosine, Seed: 42})
			if err := idx.Add(buildCorpus(e)...); err != nil {
				b.Fatal(err)
			}
			q := e.Text("query about caching for serving")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(q, 10)
			}
		}},
		{Name: "vector_ivf_search_quantized", Bench: func(b *testing.B) {
			e := embed.New(embed.DefaultDim)
			idx := vector.NewIVF(vector.IVFConfig{Dim: e.Dim(), Metric: vector.Cosine, NList: 16, NProbe: 4, Seed: 42, Quantized: true})
			if err := idx.Add(buildCorpus(e)...); err != nil {
				b.Fatal(err)
			}
			idx.Train()
			q := e.Text("query about caching for serving")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Search(q, 10)
			}
		}},
	}
}

// perfModel builds a fresh simulated model for the serving benches; the
// paced wrapper compresses simulated seconds to wall-clock microseconds.
func perfModel(reg *obs.Registry, scale float64) (*llm.Paced, *llm.SimModel) {
	sim := llm.NewSim(llm.SimConfig{
		Name:         "bench",
		Capability:   0.9,
		Price:        token.Price{InputPer1K: 1000, OutputPer1K: 2000},
		TokensPerSec: 50,
		Obs:          reg,
	})
	return llm.NewPaced(sim, scale), sim
}

func perfReq(i int) llm.Request {
	return llm.Request{
		Task:       llm.TaskQA,
		Prompt:     fmt.Sprintf("benchmark question %d about serving throughput", i),
		Gold:       fmt.Sprintf("answer %d", i),
		Difficulty: 0.3,
	}
}

// Serving is the serving-path suite: semantic-cache lookups, proxy
// completions (cache-hit and full-cascade) and scheduler submission.
// ctx flows from the caller (the bench CLI's signal-aware root) into
// every model call so the suite stays cancelable.
func Serving(ctx context.Context) []Spec {
	return []Spec{
		{Name: "semcache_hit_exact", Bench: func(b *testing.B) {
			c := semcache.New(semcache.Config{
				Embedder: embed.New(embed.DefaultDim),
				Obs:      obs.NewRegistry(),
				Log:      obs.NewLogger(obs.NewEventLog(64), obs.Debug, obs.NewRegistry()),
			})
			for i := 0; i < 512; i++ {
				c.Put(perfText(i), "cached answer", semcache.Original, semcache.Reuse)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Lookup(perfText(i % 512)); !ok {
					b.Fatal("expected a cache hit")
				}
			}
		}},
		{Name: "semcache_lookup_miss", Bench: func(b *testing.B) {
			c := semcache.New(semcache.Config{
				Embedder:  embed.New(embed.DefaultDim),
				Threshold: 0.999,
				Obs:       obs.NewRegistry(),
				Log:       obs.NewLogger(obs.NewEventLog(64), obs.Debug, obs.NewRegistry()),
			})
			for i := 0; i < 512; i++ {
				c.Put(perfText(i), "cached answer", semcache.Original, semcache.Reuse)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(fmt.Sprintf("completely different probe %d", i))
			}
		}},
		{Name: "proxy_complete_cache_hit", Bench: func(b *testing.B) {
			var spend token.Cost
			p := newBenchProxy(proxy.Config{Threshold: 0.5})
			ans, err := p.Complete(ctx, perfReq(1))
			if err != nil {
				b.Fatal(err)
			}
			spend += ans.Cost
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := p.Complete(ctx, perfReq(1))
				if err != nil {
					b.Fatal(err)
				}
				spend += a.Cost
			}
			if spend < 0 {
				b.Fatal("impossible spend")
			}
		}},
		{Name: "proxy_complete_cascade", Bench: func(b *testing.B) {
			var spend token.Cost
			p := newBenchProxy(proxy.Config{Threshold: 0.5, DisableCache: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := p.Complete(ctx, perfReq(i))
				if err != nil {
					b.Fatal(err)
				}
				spend += a.Cost
			}
			if spend <= 0 && b.N > 0 {
				b.Fatal("cascade path billed nothing")
			}
		}},
		{Name: "stream_ttft", Bench: func(b *testing.B) {
			// Time-to-first-token through the streaming path: the timer
			// runs only from CompleteStream to the first chunk; draining
			// and settling the rest of the stream happens off the clock.
			var spend token.Cost
			p := newBenchProxy(proxy.Config{Threshold: 0.5, DisableCache: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := p.CompleteStream(ctx, perfReq(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Recv(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for {
					if _, rerr := s.Recv(); rerr != nil {
						break
					}
				}
				ans, err := s.Answer()
				if err != nil {
					b.Fatal(err)
				}
				spend += ans.Cost
				s.Close()
				b.StartTimer()
			}
			b.StopTimer()
			if spend <= 0 && b.N > 0 {
				b.Fatal("stream path billed nothing")
			}
		}},
		{Name: "sched_submit", Bench: func(b *testing.B) {
			reg := obs.NewRegistry()
			model, sim := perfModel(reg, 100000)
			s := sched.New(sched.Config{
				MaxBatch: 16,
				MaxWait:  500 * time.Microsecond,
				MinWait:  20 * time.Microsecond,
				Obs:      reg,
				Log:      obs.NewLogger(obs.NewEventLog(64), obs.Debug, reg),
			}, model)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Submit(ctx, "bench", perfReq(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if sim.Meter().Spend <= 0 && b.N > 0 {
				b.Fatal("scheduler path billed nothing")
			}
		}},
	}
}

// newBenchProxy builds a proxy with private observability state so
// benchmark iterations never pollute the process-wide rings.
func newBenchProxy(cfg proxy.Config) *proxy.Proxy {
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.Tracer = obs.NewTracer(16)
	cfg.Log = obs.NewLogger(obs.NewEventLog(256), obs.Debug, reg)
	return proxy.New(cfg)
}

// ThroughputWin measures the scheduler's headline derived metric: the
// ratio of batched to direct request throughput for the same 32-way
// concurrent traffic on the same paced model (mirroring the sched
// package's TestSchedThroughputWin gate, which requires >= 2x at 64-way).
func ThroughputWin(ctx context.Context) (float64, error) {
	const (
		workers   = 32
		perWorker = 4
		scale     = 2000
	)
	direct, directSim := perfModel(obs.NewRegistry(), scale)
	directElapsed, err := driveClients(ctx, workers, perWorker, direct.Complete)
	if err != nil {
		return 0, err
	}
	if directSim.Meter().Spend <= 0 {
		return 0, fmt.Errorf("perf: direct path billed nothing")
	}

	reg := obs.NewRegistry()
	paced, sim := perfModel(reg, scale)
	s := sched.New(sched.Config{
		MaxBatch: 32,
		MaxWait:  2 * time.Millisecond,
		Obs:      reg,
		Log:      obs.NewLogger(obs.NewEventLog(64), obs.Debug, reg),
	}, paced)
	defer s.Close()
	schedElapsed, err := driveClients(ctx, workers, perWorker, func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return s.Submit(ctx, "bench", req)
	})
	if err != nil {
		return 0, err
	}
	if sim.Meter().Spend <= 0 {
		return 0, fmt.Errorf("perf: scheduled path billed nothing")
	}
	if schedElapsed <= 0 {
		return 0, fmt.Errorf("perf: zero scheduled elapsed time")
	}
	return directElapsed.Seconds() / schedElapsed.Seconds(), nil
}

// driveClients fans total = workers*perWorker requests out over workers
// goroutines, returning the wall-clock to finish them all.
func driveClients(ctx context.Context, workers, perWorker int, call func(ctx context.Context, req llm.Request) (llm.Response, error)) (time.Duration, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		spend    token.Cost
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := call(ctx, perfReq(w*perWorker+i))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				spend += resp.Cost
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if spend < 0 {
		return 0, fmt.Errorf("perf: impossible negative spend")
	}
	return time.Since(start), nil
}
